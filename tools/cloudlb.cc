// The cloudlb command-line tool; all logic lives in src/cli so tests can
// drive it without spawning processes.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return cloudlb::run_cli(args, std::cout, std::cerr);
}

#!/usr/bin/env python3
"""cloudlb determinism linter.

Enforces the project rules that keep every run bit-reproducible and every
invariant loud (docs/static-analysis.md):

  wall-clock       no ambient time sources in library code
  ambient-rng      no unseeded / OS-entropy randomness in result paths
  unordered-iter   no range-for over unordered containers in result paths
  naked-new        no naked new/delete outside the slot-arena machinery
  assert           no <cassert> assert() in src/ (CLB_CHECK throws instead)
  float-load       no `float` in load accounting (Eq. 1-3 are double)
  float-literal    no bare 0.05*wall slack literals; use wall_slack()
  pragma-once      headers start with #pragma once
  using-namespace  no `using namespace` at header scope
  shard-annotation partitioned-runtime files (src/runtime/, src/sim/)
                   with per-shard members or ranked scheduling include
                   util/shard_annotations.h
  warm-path-annotation
                   src/sim/ files defining hot-path functions
                   (schedule_*, step, fire_*) include
                   util/shard_annotations.h so CLB_WARM_PATH contracts
                   are visible to the whole-program analyzer

Diagnostics are `path:line: [rule] message`, one per finding; the exit
code is 0 when the tree is clean and 1 otherwise. A finding is suppressed
by a trailing comment naming its rule:

    std::mt19937 gen;  // NOLINT-CLOUDLB(ambient-rng): fixture for tests

Multiple rules separate with commas: `// NOLINT-CLOUDLB(rule-a,rule-b)`.
A suppression naming a rule that fires no diagnostic on its line is itself
reported as `stale-nolint`, so suppressions cannot rot in place after the
code they excused is fixed (and rule-name typos are caught). Rules whose
name starts with `analyzer-` belong to the Clang AST analyzer
(tools/analyzer/), which shares this suppression syntax; the Python
linter cannot evaluate those and leaves them alone.

Usage:
    cloudlb_lint.py [--root DIR]          lint DIR's src/tests/bench/tools
    cloudlb_lint.py [--root DIR] FILE...  lint specific files
    cloudlb_lint.py --selftest DIR        fixture mode (tests/lint/): every
                                          `// EXPECT-LINT(rule)` annotation
                                          must match one diagnostic on its
                                          line, and vice versa
    cloudlb_lint.py --list-rules          print the rule table

Run via scripts/lint.sh, the CMake `lint` target, or `ctest -L lint`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Callable, NamedTuple

# Top-level directories walked in tree mode.
SCAN_DIRS = ("src", "tests", "bench", "tools")

# The linter's own fixture corpus: deliberately bad code, never linted as
# part of the real tree.
EXCLUDED = ("tests/lint/fixtures", "tests/analyzer/fixtures")

SOURCE_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")
HEADER_SUFFIXES = (".h", ".hpp")


class Diagnostic(NamedTuple):
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str


class Rule(NamedTuple):
    name: str
    scopes: tuple[str, ...]  # top-level dirs the rule applies to
    headers_only: bool
    description: str
    check: "Callable[[Rule, pathlib.Path, list[str], list[str]], list[Diagnostic]]"
    # Per-file allowlist: (glob, reason). Files matching any glob are
    # exempt; the reason documents why, like an in-tree NOLINT would.
    allow: tuple[tuple[str, str], ...] = ()


def _raw_prefix_len(line: str, i: int) -> int:
    """Length of a raw-string-literal prefix (R, u8R, uR, UR, LR) ending
    immediately before the quote at line[i], or 0 when the quote does not
    open a raw string (including `FOOBAR"..."`, an identifier that merely
    ends in R)."""
    for pre in ("u8R", "uR", "UR", "LR", "R"):
        if line.endswith(pre, 0, i):
            before = i - len(pre) - 1
            if before < 0 or not (line[before].isalnum() or line[before] == "_"):
                return len(pre)
    return 0


def _strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literal bodies, keeping the
    line structure so diagnostics still point at real lines. Handles raw
    string literals (`R"delim(...)delim"`, possibly spanning lines) and
    backslash line continuations that splice a // comment or a quoted
    literal onto the next physical line; trigraphs are ignored."""
    out: list[str] = []
    in_block = False          # inside /* ... */
    raw_delim: str | None = None  # inside R"delim( ... , awaiting )delim"
    in_line_comment = False   # // comment spliced on by a trailing backslash
    quote: str | None = None  # quoted literal spliced on by a trailing backslash
    for line in lines:
        res: list[str] = []
        i, n = 0, len(line)
        if in_line_comment:
            in_line_comment = line.endswith("\\")
            out.append(" " * n)
            continue
        while i < n:
            c = line[i]
            if raw_delim is not None:
                close = line.find(")" + raw_delim + '"', i)
                if close == -1:
                    res.append(" " * (n - i))
                    i = n
                else:
                    end = close + len(raw_delim) + 2
                    res.append(" " * (end - 1 - i) + '"')
                    i = end
                    raw_delim = None
            elif in_block:
                if line.startswith("*/", i):
                    in_block = False
                    res.append("  ")
                    i += 2
                else:
                    res.append(" ")
                    i += 1
            elif quote:
                if c == "\\":
                    if i + 1 < n:
                        res.append("  ")
                        i += 2
                    else:  # line splice: literal continues on the next line
                        res.append(" ")
                        i += 1
                elif c == quote:
                    quote = None
                    res.append(c)
                    i += 1
                else:
                    res.append(" ")
                    i += 1
            elif line.startswith("//", i):
                in_line_comment = line.endswith("\\")
                res.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                res.append("  ")
                i += 2
            elif c == '"' and _raw_prefix_len(line, i):
                paren = line.find("(", i + 1)
                delim = line[i + 1:paren] if paren != -1 else None
                if delim is not None and len(delim) <= 16 and not re.search(
                        r'[\s\\)"]', delim):
                    close = line.find(")" + delim + '"', paren + 1)
                    if close == -1:
                        res.append('"' + " " * (n - i - 1))
                        raw_delim = delim
                        i = n
                    else:
                        end = close + len(delim) + 2
                        res.append('"' + " " * (end - i - 2) + '"')
                        i = end
                else:  # malformed d-char-seq: fall back to a plain string
                    quote = c
                    res.append(c)
                    i += 1
            elif c in "\"'":
                quote = c
                res.append(c)
                i += 1
            else:
                res.append(c)
                i += 1
        if quote and not line.endswith("\\"):
            quote = None  # unterminated literal; don't poison later lines
        out.append("".join(res))
    return out


def _regex_rule(patterns: list[tuple[str, str]]):
    """Builds a check that flags every line where a pattern matches the
    comment/string-stripped code."""
    compiled = [(re.compile(p), msg) for p, msg in patterns]

    def check(rule: Rule, path: pathlib.Path, raw: list[str],
              code: list[str]) -> list[Diagnostic]:
        del raw
        found = []
        for lineno, text in enumerate(code, 1):
            for pat, msg in compiled:
                if pat.search(text):
                    found.append(Diagnostic(path, lineno, rule.name, msg))
        return found

    return check


def _check_pragma_once(rule: Rule, path: pathlib.Path, raw: list[str],
                       code: list[str]) -> list[Diagnostic]:
    del raw
    for lineno, text in enumerate(code, 1):
        stripped = text.strip()
        if not stripped:
            continue
        if re.fullmatch(r"#\s*pragma\s+once", stripped):
            return []
        return [Diagnostic(path, lineno, rule.name,
                           "header must open with #pragma once")]
    return [Diagnostic(path, 1, rule.name,
                       "header must open with #pragma once")]


def _check_unordered_iter(rule: Rule, path: pathlib.Path, raw: list[str],
                          code: list[str]) -> list[Diagnostic]:
    """Flags range-for statements whose range is (or is declared as) an
    unordered associative container. Identifier tracking is per-file and
    regex-based: declarations split across lines can escape it, which is
    the documented precision/complexity trade-off."""
    del raw
    decl = re.compile(r"unordered_(?:map|set)\s*<[^;{}]*?>[&\s]+(\w+)\s*[;{=(,)]")
    names: set[str] = set()
    for text in code:
        for m in decl.finditer(text):
            names.add(m.group(1))
    range_for = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")
    found = []
    for lineno, text in enumerate(code, 1):
        m = range_for.search(text)
        if not m:
            continue
        range_expr = m.group(1).strip()
        ident = re.fullmatch(r"[\w.\->:]*?(\w+)_?", range_expr)
        if "unordered_" in range_expr or (
                ident and (ident.group(0) in names
                           or range_expr in names)):
            found.append(Diagnostic(
                path, lineno, rule.name,
                f"range-for over unordered container '{range_expr}': "
                "iteration order is hash-dependent and breaks the "
                "determinism contract"))
    return found


def _check_shard_annotation(rule: Rule, path: pathlib.Path, raw: list[str],
                            code: list[str]) -> list[Diagnostic]:
    """Files in the partitioned runtime (src/runtime/, src/sim/) that
    declare per-shard members or call the ranked scheduling API must pull
    in the effect annotations (util/shard_annotations.h), so the AST
    analyzer's shard-safety checks can see the file's contracts. Matching
    on adjacent path components (not a root-relative prefix) keeps the
    rule testable from the fixture corpus."""
    parts = path.parts
    if not any(parts[i:i + 2] in (("src", "runtime"), ("src", "sim"))
               for i in range(len(parts) - 1)):
        return []
    # The include path is a quoted literal, which `code` blanks out;
    # match it on the raw text.
    include = re.compile(r'#\s*include\s+"util/shard_annotations\.h"')
    if any(include.search(text) for text in raw):
        return []
    trigger = re.compile(
        r"\b(?:\w+_shard_\w+|per_shard_\w+"
        r"|schedule_at_ranked|schedule_at_stamped)\b")
    for lineno, text in enumerate(code, 1):
        if trigger.search(text):
            return [Diagnostic(
                path, lineno, rule.name,
                "per-shard state or ranked scheduling without "
                '#include "util/shard_annotations.h"; include the effect '
                "annotations so cloudlb-analyzer can check this file's "
                "shard-safety contracts")]
    return []


def _check_warm_path_annotation(rule: Rule, path: pathlib.Path,
                                raw: list[str],
                                code: list[str]) -> list[Diagnostic]:
    """src/sim/ files that DEFINE hot-path functions — schedule_*, step,
    fire_* — must pull in util/shard_annotations.h: those are exactly the
    functions the CLB_WARM_PATH rollout covers, and the whole-program
    analyzer can only verify an allocation-free warm path where the
    annotation macros are visible. Raw-text heuristics, like the
    shard-annotation rule: a definition starts the line with a return
    type (never an object expression like `core.schedule_at(`), and a
    line ending in ';' is a declaration, not a definition."""
    parts = path.parts
    if not any(parts[i:i + 2] == ("src", "sim")
               for i in range(len(parts) - 1)):
        return []
    include = re.compile(r'#\s*include\s+"util/shard_annotations\.h"')
    if any(include.search(text) for text in raw):
        return []
    definition = re.compile(
        r"^\s*(?:template\s*<[^>]*>\s*)?(?:CLB_\w+\s+)*"
        r"(?:\[\[\w+\]\]\s+)?(?:[\w:<>,*&]+\s+)+"
        r"(?:[\w<>]+::)*(?:schedule_\w+|step|fire_\w+)\s*\(")
    for lineno, text in enumerate(code, 1):
        if definition.search(text) and not text.rstrip().endswith(";"):
            return [Diagnostic(
                path, lineno, rule.name,
                "hot-path function defined without "
                '#include "util/shard_annotations.h"; include it and '
                "annotate the steady-state schedule/step/fire surface "
                "CLB_WARM_PATH so the analyzer's whole-program link can "
                "verify the path stays allocation-free")]
    return []


RULES: list[Rule] = [
    Rule(
        name="wall-clock",
        scopes=("src",),
        headers_only=False,
        description="No ambient time sources in library code: results "
                    "must be a function of simulated time only.",
        check=_regex_rule([
            (r"std::chrono::(system|steady|high_resolution)_clock",
             "wall-clock reads make runs irreproducible; use SimTime"),
            (r"(?<![\w.])time\s*\(", "time() is ambient state; use SimTime"),
            (r"\bgettimeofday\s*\(|\bclock_gettime\s*\(",
             "OS clock reads make runs irreproducible; use SimTime"),
        ]),
    ),
    Rule(
        name="ambient-rng",
        scopes=("src", "bench", "tools"),
        headers_only=False,
        description="All randomness flows from an explicit seed: no OS "
                    "entropy, no default-seeded generators in result "
                    "paths.",
        check=_regex_rule([
            (r"std::random_device",
             "std::random_device is OS entropy; seed an Rng explicitly"),
            (r"std::rand\b|(?<![\w.])srand\s*\(",
             "the C PRNG is hidden global state; use util/rng.h"),
            # Locals only: a trailing-underscore identifier is a class
            # member (seeded by its constructor), and `T name();` is a
            # function declaration, so both stay exempt.
            (r"std::mt19937(?:_64)?\s+\w+\b(?<!_)\s*(?:;|\{\s*\})",
             "unseeded std::mt19937 uses a fixed default seed silently; "
             "use an explicitly seeded Rng"),
            (r"\bRng\s+\w+\b(?<!_)\s*(?:;|\{\s*\})",
             "default-seeded Rng: pass the scenario seed explicitly"),
        ]),
    ),
    Rule(
        name="unordered-iter",
        scopes=("src", "bench", "tools"),
        headers_only=False,
        description="No range-for over unordered containers in result- or "
                    "trace-affecting paths: hash order is not part of the "
                    "determinism contract.",
        check=_check_unordered_iter,
    ),
    Rule(
        name="naked-new",
        scopes=("src",),
        headers_only=False,
        description="No naked new/delete outside the slot-arena machinery; "
                    "ownership lives in containers and smart pointers.",
        check=_regex_rule([
            (r"(?<!::)\bnew\b(?!\s*\()(?!\s*$)",
             "naked new: use make_unique/containers (placement ::new is "
             "reserved for the arena machinery)"),
            # `= delete;` (deleted functions) and `operator delete` are
            # exempt; both naked `delete p` and `delete[] p` are not.
            (r"(?<!operator )\bdelete\b(?!\s*;)",
             "naked delete: ownership must live in a container or smart "
             "pointer"),
        ]),
        allow=(
            ("src/util/small_function.h",
             "the SBO callback arena: placement-new into the inline "
             "buffer plus the audited heap-fallback pair"),
        ),
    ),
    Rule(
        name="assert",
        scopes=("src",),
        headers_only=False,
        description="assert() compiles away in release builds and aborts "
                    "in debug ones; library invariants use CLB_CHECK, "
                    "which always throws CheckFailure.",
        check=_regex_rule([
            (r"(?<![\w.])assert\s*\(",
             "use CLB_CHECK/CLB_CHECK_MSG (util/check.h) instead of "
             "assert()"),
        ]),
    ),
    Rule(
        name="float-load",
        scopes=("src",),
        headers_only=False,
        description="Load accounting (Eq. 1-3) is double end to end; a "
                    "single float narrows T_avg and breaks bitwise "
                    "reproducibility across optimization levels.",
        check=_regex_rule([
            (r"\bfloat\b",
             "use double: Eq. 1-3 load accounting must not narrow"),
        ]),
    ),
    Rule(
        name="float-literal",
        scopes=("src",),
        headers_only=False,
        description="Shared tolerances flow through their named helper: a "
                    "bare wall-slack literal (0.05 x wall) duplicated at a "
                    "use site drifts silently when the canonical value "
                    "changes.",
        check=_regex_rule([
            (r"0\.05\s*\*|\*\s*0\.05",
             "bare wall-slack multiplication; call wall_slack() "
             "(core/background_estimator.h) so the tolerance has one "
             "definition"),
        ]),
    ),
    Rule(
        name="pragma-once",
        scopes=("src", "tests", "bench", "tools"),
        headers_only=True,
        description="Headers open with #pragma once.",
        check=_check_pragma_once,
    ),
    Rule(
        name="shard-annotation",
        scopes=("src",),
        headers_only=False,
        description="Partitioned-runtime files (src/runtime/, src/sim/) "
                    "declaring per-shard members or using the ranked "
                    "scheduling API include util/shard_annotations.h so "
                    "the analyzer sees their effect contracts.",
        check=_check_shard_annotation,
    ),
    Rule(
        name="warm-path-annotation",
        scopes=("src",),
        headers_only=False,
        description="src/sim/ files defining hot-path functions "
                    "(schedule_*, step, fire_*) include "
                    "util/shard_annotations.h so the CLB_WARM_PATH "
                    "contract is visible to the whole-program analyzer.",
        check=_check_warm_path_annotation,
    ),
    Rule(
        name="using-namespace",
        scopes=("src", "tests", "bench", "tools"),
        headers_only=True,
        description="`using namespace` in a header leaks into every "
                    "includer.",
        check=_regex_rule([
            (r"^\s*using\s+namespace\b",
             "no using-namespace at header scope"),
        ]),
    ),
]

NOLINT = re.compile(r"//\s*NOLINT-CLOUDLB\(([^)]*)\)")
EXPECT = re.compile(r"//\s*EXPECT-LINT\(([^)]*)\)")

# The stale-suppression meta-rule (not in RULES: it checks the NOLINT
# comments themselves, after every ordinary rule has run).
STALE_RULE = "stale-nolint"
# Suppressions owned by the Clang AST analyzer (tools/analyzer/), which
# shares the NOLINT-CLOUDLB syntax. The Python linter cannot decide
# whether they are live, so they are exempt from staleness checking here;
# cloudlb-analyzer does its own accounting.
ANALYZER_RULE_PREFIX = "analyzer-"


def _suppressed_rules(line: str) -> set[str]:
    rules: set[str] = set()
    for m in NOLINT.finditer(line):
        rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: pathlib.Path, rel: pathlib.PurePath) -> list[Diagnostic]:
    """Lints one file; `rel` (relative to the scanned root) decides which
    rule scopes apply."""
    try:
        raw = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [Diagnostic(path, 1, "io", f"unreadable: {err}")]
    code = _strip_comments_and_strings(raw)
    scope = rel.parts[0] if rel.parts else ""
    is_header = path.suffix in HEADER_SUFFIXES

    found: list[Diagnostic] = []
    for rule in RULES:
        if scope not in rule.scopes:
            continue
        if rule.headers_only and not is_header:
            continue
        if any(rel.match(glob) or str(rel) == glob for glob, _ in rule.allow):
            continue
        found.extend(rule.check(rule, path, raw, code))

    # Stale-suppression pass: a NOLINT-CLOUDLB naming a rule that fired no
    # diagnostic on its line does nothing — either the offending code was
    # fixed (drop the comment) or the rule name is a typo (fix it). Runs
    # against the pre-suppression findings, so a working suppression is
    # "consumed" and never reported stale.
    fired: dict[int, set[str]] = {}
    for d in found:
        fired.setdefault(d.line, set()).add(d.rule)
    for lineno, line in enumerate(raw, 1):
        for name in sorted(_suppressed_rules(line)):
            if name == STALE_RULE or name.startswith(ANALYZER_RULE_PREFIX):
                continue
            if name not in fired.get(lineno, set()):
                found.append(Diagnostic(
                    path, lineno, STALE_RULE,
                    f"suppression '{name}' matches no diagnostic on this "
                    "line; drop it (or fix the rule name)"))

    return [d for d in found
            if d.line > len(raw)
            or d.rule not in _suppressed_rules(raw[d.line - 1])]


def iter_tree(root: pathlib.Path):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root)
            if any(str(rel).startswith(ex) for ex in EXCLUDED):
                continue
            yield path, rel


def lint_tree(root: pathlib.Path) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    for path, rel in iter_tree(root):
        found.extend(lint_file(path, rel))
    return found


def selftest(root: pathlib.Path) -> int:
    """Fixture mode: diagnostics must match `// EXPECT-LINT(rule)`
    annotations exactly — same line, same rule, nothing extra. Proves each
    rule fires where intended and NOLINT-CLOUDLB suppresses it."""
    failures = 0
    checked = 0
    for path, rel in iter_tree(root):
        raw = path.read_text(encoding="utf-8").splitlines()
        expected: set[tuple[int, str]] = set()
        for lineno, line in enumerate(raw, 1):
            for m in EXPECT.finditer(line):
                for rule in m.group(1).split(","):
                    expected.add((lineno, rule.strip()))
        actual = {(d.line, d.rule) for d in lint_file(path, rel)}
        checked += 1
        for line, rule in sorted(expected - actual):
            print(f"{path}:{line}: FAIL expected [{rule}] diagnostic "
                  "did not fire")
            failures += 1
        for line, rule in sorted(actual - expected):
            print(f"{path}:{line}: FAIL unexpected [{rule}] diagnostic")
            failures += 1
    print(f"selftest: {checked} fixture file(s), {failures} failure(s)")
    return 1 if failures or not checked else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--selftest", type=pathlib.Path, metavar="DIR",
                        help="run fixture expectations under DIR")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            where = ", ".join(rule.scopes)
            kind = "headers" if rule.headers_only else "all sources"
            print(f"{rule.name:16} [{where}; {kind}]\n    {rule.description}")
        print(f"{STALE_RULE:16} [{', '.join(SCAN_DIRS)}; all sources]\n"
              "    A NOLINT-CLOUDLB suppression that fires no diagnostic "
              "on its line\n    is dead weight or a typo; `analyzer-*` "
              "names belong to\n    tools/analyzer/ and are exempt here.")
        return 0

    if args.selftest:
        return selftest(args.selftest.resolve())

    root = args.root.resolve()
    if args.files:
        found: list[Diagnostic] = []
        for f in args.files:
            path = f.resolve()
            found.extend(lint_file(path, path.relative_to(root)))
    else:
        found = lint_tree(root)

    for d in sorted(found, key=lambda d: (str(d.path), d.line, d.rule)):
        print(f"{d.path}:{d.line}: [{d.rule}] {d.message}")
    print(f"cloudlb-lint: {len(found)} finding(s)", file=sys.stderr)
    return 1 if found else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// analyzer-shard-confined: shard-confined state (CLB_SHARD_CONFINED
// fields and records — per-PE ledgers, shard segments, per-shard engine
// state) may only be touched from the owner shard's window-execution
// entry points. Those entry points are the functions carrying a
// shard-effect annotation (CLB_SHARD_CONFINED for window execution,
// CLB_BARRIER_PHASE for the serialized between-windows regime,
// CLB_CANONICAL_COMBINE for the blessed merge helpers); one level of
// calls is followed, as in analyzer-unordered-accum, so an unannotated
// helper invoked directly from an annotated function is still considered
// reached from the contract. Any other function reading or writing a
// confined member is operating on another shard's private state with no
// ordering guarantee — the exact data race the sharded engine's
// shared-nothing contract (docs/sharded-engine.md) exists to prevent.
//
// Member functions of a CLB_SHARD_CONFINED record are exempt for their
// own fields (the record's methods are part of the confined object);
// field-level annotations get no such exemption, because the point of
// annotating a single field is to restrict the surrounding class.
#include "analyzer.h"
#include "annotations.h"

#include <set>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-shard-confined";

// Collects every function definition in the translation unit. Lambda
// call operators are not collected separately: their bodies sit inside
// the enclosing function's body and inherit its permission.
class FunctionCollector
    : public clang::RecursiveASTVisitor<FunctionCollector> {
 public:
  std::vector<const clang::FunctionDecl*> functions;

  bool VisitFunctionDecl(clang::FunctionDecl* fn) {
    if (fn->doesThisDeclarationHaveABody() && fn->getBody() != nullptr)
      functions.push_back(fn);
    return true;
  }
};

// Records the direct callees of one function body (lambdas included —
// work an entry point schedules is part of its execution).
class CalleeCollector : public clang::RecursiveASTVisitor<CalleeCollector> {
 public:
  explicit CalleeCollector(std::set<const clang::FunctionDecl*>& out)
      : out_{out} {}

  bool VisitCallExpr(clang::CallExpr* call) {
    if (const clang::FunctionDecl* callee = call->getDirectCallee())
      out_.insert(
          llvm::cast<clang::FunctionDecl>(callee->getCanonicalDecl()));
    return true;
  }

 private:
  std::set<const clang::FunctionDecl*>& out_;
};

// Flags confined-member accesses inside one (non-entry) function body.
class ConfinedAccessScanner
    : public clang::RecursiveASTVisitor<ConfinedAccessScanner> {
 public:
  ConfinedAccessScanner(AnalyzerContext& ctx, clang::ASTContext& ast,
                        const clang::FunctionDecl* fn)
      : ctx_{ctx}, ast_{ast}, fn_{fn} {}

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const auto* field =
        llvm::dyn_cast<clang::FieldDecl>(member->getMemberDecl());
    bool via_record = false;
    if (!field_is_shard_confined(field, &via_record)) return true;
    // A confined record's own methods operate on their own shard copy.
    if (via_record && method_of(field->getParent())) return true;
    ctx_.report(ast_, member->getMemberLoc(), kCheck,
                "member '" + field->getNameAsString() +
                    "' is shard-confined (CLB_SHARD_CONFINED) but '" +
                    fn_->getQualifiedNameAsString() +
                    "' is not reached from a shard's window-execution "
                    "entry points; annotate the accessor's effect "
                    "(CLB_SHARD_CONFINED / CLB_BARRIER_PHASE / "
                    "CLB_CANONICAL_COMBINE) or route the access through "
                    "the owning shard");
    return true;
  }

 private:
  bool method_of(const clang::RecordDecl* record) const {
    const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(fn_);
    return method != nullptr && record != nullptr &&
           method->getParent()->getCanonicalDecl() ==
               record->getCanonicalDecl();
  }

  AnalyzerContext& ctx_;
  clang::ASTContext& ast_;
  const clang::FunctionDecl* fn_;
};

class ShardConfinedCallback : public MatchFinder::MatchCallback {
 public:
  explicit ShardConfinedCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* tu =
        result.Nodes.getNodeAs<clang::TranslationUnitDecl>("tu");
    if (tu == nullptr) return;

    FunctionCollector collector;
    collector.TraverseDecl(const_cast<clang::TranslationUnitDecl*>(tu));

    // The allowed set: annotated entry points plus their direct callees
    // (one level, lenient — one annotated caller is proof enough that
    // the helper participates in the contract).
    std::set<const clang::FunctionDecl*> allowed;
    for (const clang::FunctionDecl* fn : collector.functions) {
      if (!is_entry_point(fn)) continue;
      allowed.insert(
          llvm::cast<clang::FunctionDecl>(fn->getCanonicalDecl()));
      CalleeCollector callees{allowed};
      callees.TraverseStmt(fn->getBody());
    }
    // Entry points whose bodies live in another TU still bless nothing
    // here, but their own annotation keeps them out of the scan below.

    for (const clang::FunctionDecl* fn : collector.functions) {
      if (is_entry_point(fn)) continue;
      if (allowed.count(
              llvm::cast<clang::FunctionDecl>(fn->getCanonicalDecl())))
        continue;
      ConfinedAccessScanner scanner{ctx_, *result.Context, fn};
      scanner.TraverseStmt(fn->getBody());
    }
  }

 private:
  static bool is_entry_point(const clang::FunctionDecl* fn) {
    return has_clb_annotation(fn, kShardConfinedAnnot) ||
           has_clb_annotation(fn, kBarrierPhaseAnnot) ||
           has_clb_annotation(fn, kCanonicalCombineAnnot);
  }

  AnalyzerContext& ctx_;
};

}  // namespace

void register_shard_confined(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new ShardConfinedCallback{ctx};
  finder.addMatcher(translationUnitDecl().bind("tu"), callback);
}

}  // namespace cloudlb_analyzer

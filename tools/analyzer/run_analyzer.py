#!/usr/bin/env python3
"""Run cloudlb-analyzer over the project's compile database.

Selects every compile_commands.json entry under --root/src (tests and
benches opt in via --also), queries the host clang for its resource
directory (an out-of-tree LibTooling binary does not know where the
builtin headers live), and runs the analyzer once over the whole batch.

After the per-TU batch, the whole-program phases run: `--emit-summary`
writes per-TU effect summaries into --summaries (content-hash cached, so
unchanged TUs are never re-parsed — the script prints the emit wall time
and the reuse count, making cold vs warm cache behavior visible in CI
logs), then `--link` propagates effects across the merged call graph,
filtered through tools/analyzer/baseline.json when present. Pass
`--sarif FILE` to also write the link findings as SARIF 2.1.0 for code
scanning upload, or `--skip-link` for the old per-TU-only behavior.
`--skip-per-tu` runs only the whole-program phases — CI uses it for a
second, warm pass that proves the summary cache ("re-parsed 0/N").

Exit codes mirror the binary: 0 clean, 1 findings, 2 tool error — plus
77 ("skipped") when the environment cannot support a run at all, so
CTest's SKIP_RETURN_CODE can report the tier as skipped rather than
broken.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import subprocess
import sys
import time


def resource_dir() -> str | None:
    """The builtin-header directory of the host clang, if any."""
    for candidate in ("clang", "clang-18", "clang-17", "clang-16",
                      "clang-15", "clang-14"):
        exe = shutil.which(candidate)
        if exe is None:
            continue
        try:
            out = subprocess.run([exe, "-print-resource-dir"],
                                 capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            continue
        path = out.stdout.strip()
        if path:
            return path
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the cloudlb-analyzer executable")
    parser.add_argument("--build", required=True,
                        help="build dir holding compile_commands.json")
    parser.add_argument("--root", required=True, help="repository root")
    parser.add_argument("--also", action="append", default=[],
                        help="additional top-level dirs to analyze "
                             "(default: only src/)")
    parser.add_argument("--summaries", default="",
                        help="summary cache dir for the whole-program "
                             "phases (default: <build>/analyzer_summaries)")
    parser.add_argument("--sarif", default="",
                        help="also write the link findings as SARIF here")
    parser.add_argument("--skip-link", action="store_true",
                        help="per-TU checks only; skip emit-summary/link")
    parser.add_argument("--skip-per-tu", action="store_true",
                        help="whole-program phases only; skip the per-TU "
                             "checks (for warm-cache re-runs)")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary)
    if not args.binary or not binary.exists():
        print("run_analyzer: cloudlb-analyzer binary not built "
              "(configure with -DCLOUDLB_ANALYZER=ON and the LLVM dev "
              "libraries installed); skipping", file=sys.stderr)
        return 77

    build = pathlib.Path(args.build)
    compile_db = build / "compile_commands.json"
    if not compile_db.exists():
        print(f"run_analyzer: {compile_db} not found", file=sys.stderr)
        return 2

    root = pathlib.Path(args.root).resolve()
    wanted = [root / "src"] + [root / extra for extra in args.also]
    sources = sorted(
        {entry["file"] for entry in json.loads(compile_db.read_text())
         if any(str(pathlib.Path(entry["file"]).resolve()).startswith(
                    str(prefix) + "/") for prefix in wanted)})
    if not sources:
        print("run_analyzer: no matching entries in the compile database",
              file=sys.stderr)
        return 2

    command = [str(binary), "-p", str(build)]
    res_dir = resource_dir()
    if res_dir is not None:
        command.append(f"--extra-arg-before=-resource-dir={res_dir}")
    else:
        # Without builtin headers clang cannot parse <cstddef> & co.; a
        # machine with the dev libs but no clang driver cannot run over
        # real sources, only over the hermetic fixtures.
        print("run_analyzer: no clang driver on PATH to supply "
              "-resource-dir; skipping", file=sys.stderr)
        return 77
    if args.skip_link and args.skip_per_tu:
        print("run_analyzer: --skip-link and --skip-per-tu together leave "
              "nothing to run", file=sys.stderr)
        return 2
    worst = 0
    if not args.skip_per_tu:
        proc = subprocess.run(command + sources)
        if proc.returncode == 2 or args.skip_link:
            return proc.returncode
        worst = proc.returncode

    # --- Whole-program phases: emit (cached) then link ------------------
    summaries = (pathlib.Path(args.summaries) if args.summaries
                 else build / "analyzer_summaries")
    emit_cmd = [str(binary), f"--emit-summary={summaries}", "-p", str(build),
                f"--extra-arg-before=-resource-dir={res_dir}"] + sources
    start = time.monotonic()
    emit = subprocess.run(emit_cmd)
    print(f"run_analyzer: --emit-summary took "
          f"{time.monotonic() - start:.1f}s", flush=True)
    if emit.returncode != 0:
        return 2

    link_cmd = [str(binary), f"--link={summaries}", f"--root={root}"]
    baseline = root / "tools" / "analyzer" / "baseline.json"
    if baseline.exists():
        link_cmd.append(f"--baseline={baseline}")
    if args.sarif:
        link_cmd.append(f"--sarif={args.sarif}")
    link = subprocess.run(link_cmd)
    return max(worst, link.returncode)


if __name__ == "__main__":
    sys.exit(main())


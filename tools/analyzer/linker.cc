#include "linker.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <fstream>
#include <unordered_map>

namespace cloudlb_analyzer {

namespace {

// --- Merged whole-program call graph ----------------------------------

struct ResolvedEdge {
  std::size_t target = 0;
  const CallEdge* edge = nullptr;
};

struct Graph {
  std::vector<FunctionSummary> nodes;
  std::unordered_map<std::string, std::size_t> by_usr;
  /// out[i] = edges of nodes[i] whose callee USR resolved to a node.
  std::vector<std::vector<ResolvedEdge>> out;
};

bool has_annot(const FunctionSummary& fn, std::string_view name) {
  for (const std::string& a : fn.annotations)
    if (a == name) return true;
  return false;
}

bool has_any_annot(const FunctionSummary& fn) {
  return !fn.annotations.empty();
}

/// Merges every TU's functions by USR. Header-inline functions reappear
/// in several TUs with identical bodies; keep the richest copy (most
/// calls + facts — a TU that saw more context) and union annotations,
/// which may be split between a header declaration and a definition.
Graph build_graph(const std::vector<TuSummary>& tus) {
  Graph g;
  for (const TuSummary& tu : tus) {
    for (const FunctionSummary& fn : tu.functions) {
      const auto it = g.by_usr.find(fn.usr);
      if (it == g.by_usr.end()) {
        g.by_usr.emplace(fn.usr, g.nodes.size());
        g.nodes.push_back(fn);
        continue;
      }
      FunctionSummary& have = g.nodes[it->second];
      for (const std::string& a : fn.annotations)
        if (!has_annot(have, a)) have.annotations.push_back(a);
      if (fn.calls.size() + fn.facts.size() >
          have.calls.size() + have.facts.size()) {
        const std::vector<std::string> annotations = have.annotations;
        have = fn;
        for (const std::string& a : annotations)
          if (!has_annot(have, a)) have.annotations.push_back(a);
      }
    }
  }
  g.out.resize(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    for (const CallEdge& edge : g.nodes[i].calls) {
      const auto it = g.by_usr.find(edge.usr);
      if (it != g.by_usr.end())
        g.out[i].push_back(ResolvedEdge{it->second, &edge});
    }
  }
  return g;
}

// --- Tarjan SCC (iterative), emitting components callees-first --------

struct SccResult {
  std::vector<std::size_t> component;  ///< node -> component id
  /// Components in emission order: every component precedes the
  /// components that call into it (reverse topological order of the
  /// condensation), so one forward pass is a bottom-up fixpoint.
  std::vector<std::vector<std::size_t>> members;
};

SccResult tarjan_scc(const Graph& g) {
  const std::size_t n = g.nodes.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  SccResult result;
  result.component.assign(n, kUnvisited);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t edge;  ///< next out-edge to examine
  };
  std::vector<Frame> frames;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.node;
      if (frame.edge < g.out[v].size()) {
        const std::size_t w = g.out[v][frame.edge].target;
        ++frame.edge;
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<std::size_t> members;
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.members.size();
          members.push_back(w);
          if (w == v) break;
        }
        result.members.push_back(std::move(members));
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t parent = frames.back().node;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return result;
}

// --- Propagation helpers ----------------------------------------------

struct Reach {
  std::vector<bool> in;
  /// Discovery parents, for rendering root→…→sink chains. parent[i] is
  /// the node we reached i from (kNoParent for seeds).
  std::vector<std::size_t> parent;
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

/// Forward closure from `seeds` over edges satisfying `follow`; a
/// monotone fixpoint, so cycles are handled by the visited set.
template <typename Follow>
Reach closure(const Graph& g, const std::vector<std::size_t>& seeds,
              Follow follow) {
  Reach r;
  r.in.assign(g.nodes.size(), false);
  r.parent.assign(g.nodes.size(), Reach::kNoParent);
  std::deque<std::size_t> queue;
  for (const std::size_t s : seeds) {
    if (!r.in[s]) {
      r.in[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const ResolvedEdge& e : g.out[v]) {
      if (r.in[e.target] || !follow(v, e)) continue;
      r.in[e.target] = true;
      r.parent[e.target] = v;
      queue.push_back(e.target);
    }
  }
  return r;
}

std::string chain_to(const Graph& g, const Reach& r, std::size_t node) {
  std::vector<std::size_t> path;
  for (std::size_t v = node; v != Reach::kNoParent; v = r.parent[v]) {
    path.push_back(v);
    if (path.size() > g.nodes.size()) break;  // defensive: cannot cycle
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += g.nodes[*it].name;
  }
  return out;
}

std::vector<std::size_t> seeds_with(const Graph& g,
                                    std::initializer_list<const char*> names) {
  std::vector<std::size_t> seeds;
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    for (const char* name : names)
      if (has_annot(g.nodes[i], name)) {
        seeds.push_back(i);
        break;
      }
  return seeds;
}

// --- The five whole-program checks ------------------------------------

void check_shard_confined(const Graph& g, std::vector<LinkFinding>* out) {
  // Blessed context: shard-annotated entry points and everything they
  // transitively call. Lambda edges propagate too — a closure created in
  // shard context runs as that shard's event callback, which is still
  // shard context (matching the per-TU rule that an annotated function
  // licenses its callees).
  const Reach blessed =
      closure(g,
              seeds_with(g, {annot::kShardConfined, annot::kBarrierPhase,
                             annot::kCanonicalCombine}),
              [](std::size_t, const ResolvedEdge&) { return true; });
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (blessed.in[i]) continue;
    for (const Fact& fact : g.nodes[i].facts) {
      if (fact.kind != fact_kind::kConfinedTouch || fact.cold) continue;
      out->push_back(LinkFinding{
          "analyzer-shard-confined", g.nodes[i].file, fact.line, fact.col,
          "confined state '" + fact.detail + "' touched in '" +
              g.nodes[i].name +
              "', which no shard-context call chain reaches "
              "(whole-program); annotate the entry point "
              "CLB_SHARD_CONFINED or route through one"});
    }
  }
}

void check_barrier_phase(const Graph& g, std::vector<LinkFinding>* out) {
  // Confined execution context flows from CLB_SHARD_CONFINED functions
  // through unannotated helpers across any edge that is not guarded by
  // an in_window() check, not deferred through a lambda, and not on a
  // cold (check/validation) path. An edge from that context into a
  // CLB_BARRIER_PHASE function is the laundering the per-TU check
  // cannot see past one helper.
  const Reach confined = closure(
      g, seeds_with(g, {annot::kShardConfined}),
      [&g](std::size_t, const ResolvedEdge& e) {
        return !e.edge->guarded && !e.edge->in_lambda && !e.edge->cold &&
               !has_any_annot(g.nodes[e.target]);
      });
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!confined.in[i]) continue;
    for (const ResolvedEdge& e : g.out[i]) {
      if (e.edge->guarded || e.edge->in_lambda || e.edge->cold) continue;
      if (!has_annot(g.nodes[e.target], annot::kBarrierPhase)) continue;
      out->push_back(LinkFinding{
          "analyzer-barrier-phase", g.nodes[i].file, e.edge->line,
          e.edge->col,
          "barrier-phase function '" + g.nodes[e.target].name +
              "' reached from shard-confined context without an "
              "in_window() guard (whole-program chain: " +
              chain_to(g, confined, i) + " -> " + g.nodes[e.target].name +
              ")"});
    }
  }
}

void check_float_merge(const Graph& g, std::vector<LinkFinding>* out) {
  const Reach blessed =
      closure(g, seeds_with(g, {annot::kCanonicalCombine}),
              [](std::size_t, const ResolvedEdge&) { return true; });
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (blessed.in[i]) continue;
    for (const Fact& fact : g.nodes[i].facts) {
      if (fact.kind != fact_kind::kFloatFold || fact.cold) continue;
      out->push_back(LinkFinding{
          "analyzer-float-merge", g.nodes[i].file, fact.line, fact.col,
          "floating-point fold (" + fact.detail + ") over shard data in '" +
              g.nodes[i].name +
              "', outside any canonical-combine call chain "
              "(whole-program); merge through a CLB_CANONICAL_COMBINE "
              "helper"});
    }
  }
}

void check_unranked_fanout(const Graph& g, const SccResult& scc,
                           std::vector<LinkFinding>* out) {
  // Bottom-up: does a function (or an unannotated helper it reaches)
  // contain a bare schedule_at/schedule_after? Tarjan emitted callee
  // components first, so one pass over components is the fixpoint;
  // within a component, iterate until stable (cycles of helpers).
  std::vector<bool> has_bare(g.nodes.size(), false);
  for (const std::vector<std::size_t>& members : scc.members) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::size_t v : members) {
        if (has_bare[v]) continue;
        bool found = false;
        for (const Fact& fact : g.nodes[v].facts)
          if (fact.kind == fact_kind::kBareSchedule && !fact.cold) {
            found = true;
            break;
          }
        if (!found)
          for (const ResolvedEdge& e : g.out[v])
            if (!e.edge->in_lambda && !has_any_annot(g.nodes[e.target]) &&
                has_bare[e.target]) {
              found = true;
              break;
            }
        if (found) {
          has_bare[v] = true;
          changed = true;
        }
      }
    }
  }
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!has_annot(g.nodes[i], annot::kRankedFanout)) continue;
    for (const Fact& fact : g.nodes[i].facts) {
      if (fact.kind != fact_kind::kBareSchedule || !fact.in_loop ||
          fact.cold)
        continue;
      out->push_back(LinkFinding{
          "analyzer-unranked-fanout", g.nodes[i].file, fact.line, fact.col,
          "bare '" + fact.detail + "' in a ranked fan-out loop in '" +
              g.nodes[i].name +
              "'; use schedule_at_ranked/schedule_at_stamped"});
    }
    for (const ResolvedEdge& e : g.out[i]) {
      if (!e.edge->in_loop || e.edge->in_lambda || e.edge->cold) continue;
      if (has_any_annot(g.nodes[e.target]) || !has_bare[e.target]) continue;
      out->push_back(LinkFinding{
          "analyzer-unranked-fanout", g.nodes[i].file, e.edge->line,
          e.edge->col,
          "helper '" + g.nodes[e.target].name +
              "' called in a ranked fan-out loop performs a bare "
              "schedule_at (whole-program); rank the schedule or "
              "annotate the helper"});
    }
  }
}

void check_warm_path(const Graph& g, std::vector<LinkFinding>* out) {
  // Warm reachability: everything synchronously reachable from a
  // CLB_WARM_PATH function over non-cold, non-deferred edges. No
  // annotation stops propagation — warmth is transitive.
  const Reach warm =
      closure(g, seeds_with(g, {annot::kWarmPath}),
              [](std::size_t, const ResolvedEdge& e) {
                return !e.edge->cold && !e.edge->in_lambda;
              });
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (!warm.in[i]) continue;
    const std::string chain = chain_to(g, warm, i);
    for (const Fact& fact : g.nodes[i].facts) {
      if (fact.cold) continue;
      if (fact.kind == fact_kind::kAlloc && !fact.amortized) {
        out->push_back(LinkFinding{
            "analyzer-warm-path", g.nodes[i].file, fact.line, fact.col,
            "heap allocation (" + fact.detail +
                ") reachable on the warm path (chain: " + chain + ")"});
      } else if (fact.kind == fact_kind::kBlock &&
                 !has_annot(g.nodes[i], annot::kWarmPath)) {
        // Blocking primitives in a CLB_WARM_PATH function's own body are
        // its audited mechanism (a worker-team round barrier IS a
        // condition-variable wait) — see shard_annotations.h.
        out->push_back(LinkFinding{
            "analyzer-warm-path", g.nodes[i].file, fact.line, fact.col,
            "blocking call (" + fact.detail +
                ") reachable on the warm path (chain: " + chain + ")"});
      } else if (fact.kind == fact_kind::kOverSbo) {
        out->push_back(LinkFinding{
            "analyzer-warm-path", g.nodes[i].file, fact.line, fact.col,
            "over-SBO callable (" + fact.detail +
                ") constructed on the warm path — the capture spills to "
                "the heap (chain: " + chain + ")"});
      }
    }
  }
}

// --- Suppression and baseline filtering -------------------------------

bool default_read_line(const std::string& path, int line, std::string* text) {
  std::ifstream in{path};
  if (!in) return false;
  std::string current;
  for (int i = 0; i < line; ++i)
    if (!std::getline(in, current)) return false;
  *text = current;
  return true;
}

/// Same comma-separated syntax the per-TU analyzer and the Python
/// linter parse; accepts the check name with or without its
/// "analyzer-" prefix.
bool line_suppresses(const std::string& text, const std::string& check) {
  constexpr std::string_view kMarker{"NOLINT-CLOUDLB("};
  const std::size_t at = text.find(kMarker);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + kMarker.size();
  const std::size_t close = text.find(')', begin);
  if (close == std::string::npos) return false;
  std::string_view names{text.data() + begin, close - begin};
  std::string_view bare{check};
  if (bare.rfind("analyzer-", 0) == 0) bare.remove_prefix(9);
  while (!names.empty()) {
    const std::size_t comma = names.find(',');
    std::string_view part = names.substr(0, comma);
    while (!part.empty() && (part.front() == ' ' || part.front() == '\t'))
      part.remove_prefix(1);
    while (!part.empty() && (part.back() == ' ' || part.back() == '\t'))
      part.remove_suffix(1);
    if (part == check || part == bare) return true;
    if (comma == std::string_view::npos) break;
    names.remove_prefix(comma + 1);
  }
  return false;
}

bool path_suffix_matches(const std::string& baseline_file,
                         const std::string& finding_file) {
  if (baseline_file.empty()) return false;
  if (finding_file == baseline_file) return true;
  if (finding_file.size() <= baseline_file.size()) return false;
  return finding_file.compare(finding_file.size() - baseline_file.size(),
                              baseline_file.size(), baseline_file) == 0 &&
         finding_file[finding_file.size() - baseline_file.size() - 1] == '/';
}

}  // namespace

bool parse_baseline(std::string_view json, std::vector<BaselineEntry>* out,
                    std::string* error) {
  JsonValue root;
  if (!parse_json(json, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "baseline root is not an object";
    return false;
  }
  const JsonValue* version = root.find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::kInt ||
      version->int_value != 1) {
    *error = "baseline schema_version missing or unsupported";
    return false;
  }
  const JsonValue* findings = root.find("findings");
  if (findings == nullptr || findings->kind != JsonValue::Kind::kArray) {
    *error = "baseline \"findings\" array missing";
    return false;
  }
  for (const JsonValue& f : findings->array) {
    if (f.kind != JsonValue::Kind::kObject) {
      *error = "baseline finding is not an object";
      return false;
    }
    BaselineEntry entry;
    const JsonValue* check = f.find("check");
    const JsonValue* file = f.find("file");
    if (check == nullptr || check->kind != JsonValue::Kind::kString ||
        file == nullptr || file->kind != JsonValue::Kind::kString) {
      *error = "baseline finding needs string \"check\" and \"file\"";
      return false;
    }
    entry.check = check->string_value;
    entry.file = file->string_value;
    if (const JsonValue* line = f.find("line"); line != nullptr) {
      if (line->kind != JsonValue::Kind::kInt) {
        *error = "baseline \"line\" must be an integer";
        return false;
      }
      entry.line = static_cast<int>(line->int_value);
    }
    out->push_back(std::move(entry));
  }
  return true;
}

void Linker::add_summary(const TuSummary& summary) {
  tus_.push_back(summary);
}

LinkResult Linker::link(const LinkOptions& options) const {
  LinkResult result;
  const Graph g = build_graph(tus_);
  const SccResult scc = tarjan_scc(g);
  result.stats.tus = tus_.size();
  result.stats.functions = g.nodes.size();
  result.stats.sccs = scc.members.size();

  std::vector<LinkFinding> raw;
  check_shard_confined(g, &raw);
  check_barrier_phase(g, &raw);
  check_float_merge(g, &raw);
  check_unranked_fanout(g, scc, &raw);
  check_warm_path(g, &raw);

  std::sort(raw.begin(), raw.end(), [](const LinkFinding& a,
                                       const LinkFinding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    if (a.check != b.check) return a.check < b.check;
    return a.message < b.message;
  });
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());

  const auto read_line =
      options.read_line ? options.read_line : default_read_line;
  std::vector<bool> baseline_used(options.baseline.size(), false);
  for (LinkFinding& finding : raw) {
    std::string text;
    if (read_line(finding.file, finding.line, &text) &&
        line_suppresses(text, finding.check)) {
      ++result.stats.suppressed;
      continue;
    }
    bool baselined = false;
    for (std::size_t b = 0; b < options.baseline.size(); ++b) {
      const BaselineEntry& entry = options.baseline[b];
      std::string_view bare{finding.check};
      if (bare.rfind("analyzer-", 0) == 0) bare.remove_prefix(9);
      if (entry.check != finding.check && entry.check != bare) continue;
      if (!path_suffix_matches(entry.file, finding.file)) continue;
      if (entry.line >= 0 && entry.line != finding.line) continue;
      baseline_used[b] = true;
      baselined = true;
      break;
    }
    if (baselined) {
      ++result.stats.baselined;
      continue;
    }
    result.findings.push_back(std::move(finding));
  }
  for (std::size_t b = 0; b < options.baseline.size(); ++b)
    if (!baseline_used[b])
      result.unmatched_baseline.push_back(options.baseline[b]);
  return result;
}

std::size_t print_link_result(const LinkResult& result, std::string* out) {
  for (const LinkFinding& f : result.findings) {
    *out += f.file + ':' + std::to_string(f.line) + ':' +
            std::to_string(f.col) + ": warning: " + f.message + " [" +
            f.check + "]\n";
  }
  for (const BaselineEntry& entry : result.unmatched_baseline) {
    *out += "note: stale baseline entry matched nothing: " + entry.check +
            " at " + entry.file;
    if (entry.line >= 0) *out += ':' + std::to_string(entry.line);
    *out += "\n";
  }
  *out += "cloudlb-analyzer --link: " +
          std::to_string(result.findings.size()) + " finding(s) across " +
          std::to_string(result.stats.functions) + " function(s) in " +
          std::to_string(result.stats.tus) + " TU(s), " +
          std::to_string(result.stats.sccs) + " SCC(s); " +
          std::to_string(result.stats.suppressed) + " suppressed, " +
          std::to_string(result.stats.baselined) + " baselined\n";
  return result.findings.size();
}

namespace {

void append_sarif_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  out.push_back('"');
}

std::string relative_uri(const std::string& path, const std::string& root) {
  if (!root.empty()) {
    std::string prefix = root;
    if (prefix.back() != '/') prefix.push_back('/');
    if (path.size() > prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0)
      return path.substr(prefix.size());
  }
  return path;
}

}  // namespace

std::string to_sarif(const LinkResult& result, const std::string& root) {
  // The rule list enumerates every check that can appear, not just those
  // that fired, so code-scanning UIs can show the full rule set.
  static constexpr const char* kRules[] = {
      "analyzer-shard-confined", "analyzer-barrier-phase",
      "analyzer-float-merge", "analyzer-unranked-fanout",
      "analyzer-warm-path"};
  std::string out;
  out +=
      R"({"$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",)";
  out += R"("version":"2.1.0","runs":[{"tool":{"driver":{)";
  out += R"("name":"cloudlb-analyzer","informationUri":)";
  append_sarif_escaped(out,
                       "https://github.com/cloudlb/cloudlb/blob/main/docs/"
                       "static-analysis.md");
  out += R"(,"rules":[)";
  bool first = true;
  for (const char* rule : kRules) {
    if (!first) out += ",";
    first = false;
    out += R"({"id":)";
    append_sarif_escaped(out, rule);
    out += "}";
  }
  out += R"(]}},"results":[)";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const LinkFinding& f = result.findings[i];
    if (i != 0) out += ",";
    out += "\n";
    out += R"({"ruleId":)";
    append_sarif_escaped(out, f.check);
    out += R"(,"level":"warning","message":{"text":)";
    append_sarif_escaped(out, f.message);
    out += R"(},"locations":[{"physicalLocation":{"artifactLocation":{"uri":)";
    append_sarif_escaped(out, relative_uri(f.file, root));
    out += R"(},"region":{"startLine":)";
    out += std::to_string(f.line > 0 ? f.line : 1);
    out += R"(,"startColumn":)";
    out += std::to_string(f.col > 0 ? f.col : 1);
    out += "}}}]}";
  }
  out += "\n]}]}\n";
  return out;
}

}  // namespace cloudlb_analyzer

// Phase 1 of the whole-program analyzer: per-TU effect-summary
// extraction (`cloudlb-analyzer --emit-summary=<dir>`). The emitter
// walks one translation unit's AST and fills a TuSummary (summary.h)
// with the local call graph and per-function effect facts; the driver
// (cloudlb_analyzer.cc) hashes the dep files and serializes. Everything
// clang-specific about the whole-program analysis lives here — the link
// step (linker.h) never sees an AST.
#pragma once

#include "clang/Tooling/Tooling.h"

#include <memory>

#include "summary.h"

namespace cloudlb_analyzer {

/// Creates frontend actions that append the processed TU's functions
/// and dep file paths into *out (dep hashes and the content hash are
/// the driver's job — they need the compile command, which the action
/// does not see). `out` must outlive the returned factory's use.
std::unique_ptr<clang::tooling::FrontendActionFactory>
make_summary_action_factory(TuSummary* out);

}  // namespace cloudlb_analyzer

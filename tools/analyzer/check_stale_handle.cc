// analyzer-stale-handle: an EventHandle names a {slot, generation} pair
// inside the event engine; cancel() retires the generation, so the
// handle is dead the moment cancel returns. Reading it afterwards
// (valid(), another cancel, passing it on) acts on a slot that may have
// been recycled for an unrelated event — the classic source of
// "cancelled the wrong timer" heisenbugs.
//
// The engine family has three cancelling classes (Simulator is the
// EngineCore legacy facade; ShardedSimulator retires its shard-stamped
// ShardEventHandle the same way), all tracked identically.
//
// The check walks each function body in source order, per handle
// variable (locals and members): after a cancel(h), any use of h before
// a reassignment is flagged. Uses inside the cancel call itself (e.g.
// CLB_CHECK(sim.cancel(h))) are part of the cancel and exempt. Lambda
// bodies are opaque: they run at a different time, so no ordering fact
// about the enclosing body applies to them.
#include "analyzer.h"

#include <algorithm>
#include <map>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-stale-handle";

bool is_event_handle(clang::QualType type) {
  type = type.getNonReferenceType().getCanonicalType();
  const auto* record = type->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  const llvm::StringRef name = record->getName();
  return name == "EventHandle" || name == "ShardEventHandle";
}

// The variable or field an lvalue expression names, when it is a plain
// EventHandle; nullptr for anything fancier (array elements, calls).
const clang::Decl* handle_target(const clang::Expr* expr) {
  expr = expr->IgnoreParenImpCasts();
  if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(expr))
    return is_event_handle(ref->getType()) ? ref->getDecl() : nullptr;
  if (const auto* member = llvm::dyn_cast<clang::MemberExpr>(expr))
    return is_event_handle(member->getType()) ? member->getMemberDecl()
                                              : nullptr;
  return nullptr;
}

struct Event {
  enum Kind { kAssign = 0, kUse = 1, kCancel = 2 };  // tie-break order
  unsigned offset;
  Kind kind;
  const clang::Decl* handle;
  clang::SourceLocation loc;
  unsigned cancel_end = 0;  // one past the cancel call, for kCancel
};

class HandleEventCollector
    : public clang::RecursiveASTVisitor<HandleEventCollector> {
 public:
  explicit HandleEventCollector(const clang::SourceManager& sm) : sm_{sm} {}

  std::vector<Event> events;

  // Lambda bodies execute later (or never); their uses carry no ordering
  // relation to the enclosing statements.
  bool TraverseLambdaExpr(clang::LambdaExpr*) { return true; }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr || method->getName() != "cancel" ||
        call->getNumArgs() < 1)
      return true;
    const clang::CXXRecordDecl* cls = method->getParent();
    if (cls == nullptr) return true;
    // Simulator inherits cancel() from EngineCore, so getParent() names
    // the declaring class, not the callee's static type.
    const llvm::StringRef owner = cls->getName();
    if (owner != "Simulator" && owner != "EngineCore" &&
        owner != "ShardedSimulator")
      return true;
    const clang::Decl* handle = handle_target(call->getArg(0));
    if (handle == nullptr) return true;
    add(Event::kCancel, call->getBeginLoc(), handle,
        offset_of(call->getEndLoc()) + 1);
    return true;
  }

  // Plain assignment through the implicit operator= of the handle
  // struct surfaces as an operator call; `h = ...` revives the handle.
  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* call) {
    if (call->getOperator() != clang::OO_Equal || call->getNumArgs() < 1)
      return true;
    if (const clang::Decl* handle = handle_target(call->getArg(0)))
      add(Event::kAssign, call->getArg(0)->getBeginLoc(), handle);
    return true;
  }

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isAssignmentOp()) return true;
    if (const clang::Decl* handle = handle_target(op->getLHS()))
      add(Event::kAssign, op->getLHS()->getBeginLoc(), handle);
    return true;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* ref) {
    if (is_event_handle(ref->getType()))
      add(Event::kUse, ref->getLocation(), ref->getDecl());
    return true;
  }

  bool VisitMemberExpr(clang::MemberExpr* member) {
    if (is_event_handle(member->getType()))
      add(Event::kUse, member->getMemberLoc(), member->getMemberDecl());
    return true;
  }

 private:
  unsigned offset_of(clang::SourceLocation loc) const {
    return sm_.getFileOffset(sm_.getFileLoc(loc));
  }

  void add(Event::Kind kind, clang::SourceLocation loc,
           const clang::Decl* handle, unsigned cancel_end = 0) {
    events.push_back(
        Event{offset_of(loc), kind, handle, loc, cancel_end});
  }

  const clang::SourceManager& sm_;
};

class StaleHandleCallback : public MatchFinder::MatchCallback {
 public:
  explicit StaleHandleCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    HandleEventCollector collector{result.Context->getSourceManager()};
    collector.TraverseStmt(fn->getBody());
    std::stable_sort(collector.events.begin(), collector.events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.offset != b.offset) return a.offset < b.offset;
                       return a.kind < b.kind;
                     });
    // handle -> end offset of the cancel that retired it
    std::map<const clang::Decl*, unsigned> cancelled;
    for (const Event& e : collector.events) {
      switch (e.kind) {
        case Event::kCancel: {
          // A second cancel of an already-retired handle is itself a
          // stale use (its argument read is exempt as part of the call,
          // so catch it here).
          const auto it = cancelled.find(e.handle);
          if (it != cancelled.end() && e.offset >= it->second)
            ctx_.report(*result.Context, e.loc, kCheck,
                        "event handle is cancelled again after cancel() "
                        "already retired it; reassign the handle between "
                        "cancels");
          cancelled[e.handle] = e.cancel_end;
          break;
        }
        case Event::kAssign:
          cancelled.erase(e.handle);
          break;
        case Event::kUse: {
          const auto it = cancelled.find(e.handle);
          if (it == cancelled.end() || e.offset < it->second) break;
          ctx_.report(*result.Context, e.loc, kCheck,
                      "event handle is read after cancel() retired it; "
                      "reassign the handle (e.g. a fresh {} or a new "
                      "schedule) before reuse");
          cancelled.erase(it);  // one report per stale window
          break;
        }
      }
    }
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_stale_handle(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new StaleHandleCallback{ctx};
  finder.addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt())).bind("fn"),
      callback);
}

}  // namespace cloudlb_analyzer

// analyzer-stale-handle: an EventHandle names a {slot, generation} pair
// inside the event engine; cancel() retires the generation, so the
// handle is dead the moment cancel returns. Reading it afterwards
// (valid(), another cancel, passing it on) acts on a slot that may have
// been recycled for an unrelated event — the classic source of
// "cancelled the wrong timer" heisenbugs.
//
// The engine family has three cancelling classes (Simulator is the
// EngineCore legacy facade; ShardedSimulator retires its shard-stamped
// ShardEventHandle the same way), all tracked identically.
//
// The check walks each function body in source order, per handle
// variable (locals and members): after a cancel(h), any use of h before
// a reassignment is flagged. Uses inside the cancel call itself (e.g.
// CLB_CHECK(sim.cancel(h))) are part of the cancel and exempt. Lambda
// bodies are opaque: they run at a different time, so no ordering fact
// about the enclosing body applies to them.
//
// ShardedRuntimeHost adds a second defect shape: a plain EventHandle
// returned by one shard engine's schedule (host.engine_of_shard(i).
// schedule_at(...)) carries no shard stamp, so cancelling it through a
// DIFFERENT shard's engine silently acts on that engine's unrelated
// slot. When both the scheduling and the cancelling accessor take
// integer-literal arguments the mismatch is statically certain and is
// flagged; anything less certain (variables, computed shards) is left
// alone — the conservative direction for a zero-FP tool.
#include "analyzer.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallString.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-stale-handle";

bool is_event_handle(clang::QualType type) {
  type = type.getNonReferenceType().getCanonicalType();
  const auto* record = type->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  const llvm::StringRef name = record->getName();
  return name == "EventHandle" || name == "ShardEventHandle";
}

// The variable or field an lvalue expression names, when it is a plain
// EventHandle; nullptr for anything fancier (array elements, calls).
const clang::Decl* handle_target(const clang::Expr* expr) {
  expr = expr->IgnoreParenImpCasts();
  if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(expr))
    return is_event_handle(ref->getType()) ? ref->getDecl() : nullptr;
  if (const auto* member = llvm::dyn_cast<clang::MemberExpr>(expr))
    return is_event_handle(member->getType()) ? member->getMemberDecl()
                                              : nullptr;
  return nullptr;
}

struct Event {
  enum Kind { kAssign = 0, kUse = 1, kCancel = 2 };  // tie-break order
  unsigned offset;
  Kind kind;
  const clang::Decl* handle;
  clang::SourceLocation loc;
  unsigned cancel_end = 0;  // one past the cancel call, for kCancel
  // Shard-engine origin, e.g. "engine_of_shard(0)", when statically
  // known: the engine the handle was scheduled on
  // (kAssign) or the engine the cancel goes through (kCancel). Empty
  // when unknown.
  std::string engine_key;
};

// "engine_of_shard(0)"-style key for a ShardedRuntimeHost per-shard
// engine accessor call with a literal argument; "" for anything else.
std::string engine_accessor_key(const clang::Expr* expr) {
  if (expr == nullptr) return {};
  const auto* call =
      llvm::dyn_cast<clang::CXXMemberCallExpr>(expr->IgnoreParenImpCasts());
  if (call == nullptr || call->getNumArgs() != 1) return {};
  const clang::CXXMethodDecl* method = call->getMethodDecl();
  if (method == nullptr) return {};
  const llvm::StringRef name = method->getName();
  if (name != "engine_of_shard" && name != "engine_of_pe" &&
      name != "engine_of_node" && name != "engine_of_core")
    return {};
  const clang::CXXRecordDecl* cls = method->getParent();
  if (cls == nullptr || cls->getName() != "ShardedRuntimeHost") return {};
  const auto* literal = llvm::dyn_cast<clang::IntegerLiteral>(
      call->getArg(0)->IgnoreParenImpCasts());
  if (literal == nullptr) return {};
  llvm::SmallString<16> value;
  literal->getValue().toStringUnsigned(value);
  return name.str() + "(" + std::string(value.str()) + ")";
}

// The accessor part of a key ("engine_of_shard(0)" -> "engine_of_shard").
std::string accessor_name(const std::string& key) {
  return key.substr(0, key.find('('));
}

// When `expr` is (modulo temporaries) a schedule call on a per-shard
// engine accessor, the accessor's key; "" otherwise.
std::string schedule_origin_key(const clang::Expr* expr) {
  if (expr == nullptr) return {};
  expr = expr->IgnoreParenImpCasts();
  for (;;) {
    if (const auto* cleanups =
            llvm::dyn_cast<clang::ExprWithCleanups>(expr)) {
      expr = cleanups->getSubExpr()->IgnoreParenImpCasts();
      continue;
    }
    if (const auto* bind =
            llvm::dyn_cast<clang::CXXBindTemporaryExpr>(expr)) {
      expr = bind->getSubExpr()->IgnoreParenImpCasts();
      continue;
    }
    if (const auto* mat =
            llvm::dyn_cast<clang::MaterializeTemporaryExpr>(expr)) {
      expr = mat->getSubExpr()->IgnoreParenImpCasts();
      continue;
    }
    if (const auto* construct =
            llvm::dyn_cast<clang::CXXConstructExpr>(expr)) {
      if (construct->getNumArgs() != 1) break;
      expr = construct->getArg(0)->IgnoreParenImpCasts();
      continue;
    }
    break;
  }
  const auto* call = llvm::dyn_cast<clang::CXXMemberCallExpr>(expr);
  if (call == nullptr) return {};
  const clang::CXXMethodDecl* method = call->getMethodDecl();
  if (method == nullptr) return {};
  const llvm::StringRef name = method->getName();
  if (name != "schedule_at" && name != "schedule_after" &&
      name != "schedule_at_ranked" && name != "schedule_at_stamped")
    return {};
  return engine_accessor_key(call->getImplicitObjectArgument());
}

class HandleEventCollector
    : public clang::RecursiveASTVisitor<HandleEventCollector> {
 public:
  explicit HandleEventCollector(const clang::SourceManager& sm) : sm_{sm} {}

  std::vector<Event> events;

  // Lambda bodies execute later (or never); their uses carry no ordering
  // relation to the enclosing statements.
  bool TraverseLambdaExpr(clang::LambdaExpr*) { return true; }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr || method->getName() != "cancel" ||
        call->getNumArgs() < 1)
      return true;
    const clang::CXXRecordDecl* cls = method->getParent();
    if (cls == nullptr) return true;
    // Simulator inherits cancel() from EngineCore, so getParent() names
    // the declaring class, not the callee's static type.
    const llvm::StringRef owner = cls->getName();
    if (owner != "Simulator" && owner != "EngineCore" &&
        owner != "ShardedSimulator")
      return true;
    const clang::Decl* handle = handle_target(call->getArg(0));
    if (handle == nullptr) return true;
    add(Event::kCancel, call->getBeginLoc(), handle,
        offset_of(call->getEndLoc()) + 1,
        engine_accessor_key(call->getImplicitObjectArgument()));
    return true;
  }

  // Plain assignment through the implicit operator= of the handle
  // struct surfaces as an operator call; `h = ...` revives the handle.
  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* call) {
    if (call->getOperator() != clang::OO_Equal || call->getNumArgs() < 2)
      return true;
    if (const clang::Decl* handle = handle_target(call->getArg(0)))
      add(Event::kAssign, call->getArg(0)->getBeginLoc(), handle, 0,
          schedule_origin_key(call->getArg(1)));
    return true;
  }

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isAssignmentOp()) return true;
    if (const clang::Decl* handle = handle_target(op->getLHS()))
      add(Event::kAssign, op->getLHS()->getBeginLoc(), handle, 0,
          op->getOpcode() == clang::BO_Assign
              ? schedule_origin_key(op->getRHS())
              : std::string{});
    return true;
  }

  // `EventHandle h = host.engine_of_shard(0).schedule_at(...)` — the
  // initializing declaration is the handle's first assignment and fixes
  // its scheduling engine.
  bool VisitVarDecl(clang::VarDecl* var) {
    if (!var->hasInit() || !is_event_handle(var->getType())) return true;
    add(Event::kAssign, var->getLocation(), var->getCanonicalDecl(), 0,
        schedule_origin_key(var->getInit()));
    return true;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* ref) {
    if (is_event_handle(ref->getType()))
      add(Event::kUse, ref->getLocation(), ref->getDecl());
    return true;
  }

  bool VisitMemberExpr(clang::MemberExpr* member) {
    if (is_event_handle(member->getType()))
      add(Event::kUse, member->getMemberLoc(), member->getMemberDecl());
    return true;
  }

 private:
  unsigned offset_of(clang::SourceLocation loc) const {
    return sm_.getFileOffset(sm_.getFileLoc(loc));
  }

  void add(Event::Kind kind, clang::SourceLocation loc,
           const clang::Decl* handle, unsigned cancel_end = 0,
           std::string engine_key = {}) {
    events.push_back(Event{offset_of(loc), kind, handle, loc, cancel_end,
                           std::move(engine_key)});
  }

  const clang::SourceManager& sm_;
};

class StaleHandleCallback : public MatchFinder::MatchCallback {
 public:
  explicit StaleHandleCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    HandleEventCollector collector{result.Context->getSourceManager()};
    collector.TraverseStmt(fn->getBody());
    std::stable_sort(collector.events.begin(), collector.events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.offset != b.offset) return a.offset < b.offset;
                       return a.kind < b.kind;
                     });
    // handle -> end offset of the cancel that retired it
    std::map<const clang::Decl*, unsigned> cancelled;
    // handle -> shard-engine accessor it was last scheduled through
    // (only when statically known from a literal-argument accessor)
    std::map<const clang::Decl*, std::string> origin;
    for (const Event& e : collector.events) {
      switch (e.kind) {
        case Event::kCancel: {
          // Cross-shard cancel: the handle's scheduling engine and the
          // cancelling engine are both statically known and differ.
          // Only same-accessor keys compare (engine_of_pe(0) vs
          // engine_of_node(0) may legitimately be one engine; only
          // engine_of_X(a) vs engine_of_X(b), a != b, is certain).
          const auto from = origin.find(e.handle);
          if (from != origin.end() && !e.engine_key.empty() &&
              from->second != e.engine_key &&
              accessor_name(from->second) == accessor_name(e.engine_key))
            ctx_.report(*result.Context, e.loc, kCheck,
                        "event handle scheduled via " + from->second +
                            " is cancelled through " + e.engine_key +
                            "; a plain EventHandle carries no shard "
                            "stamp, so a foreign engine's cancel acts "
                            "on an unrelated slot — cancel through the "
                            "scheduling shard's engine");
          // A second cancel of an already-retired handle is itself a
          // stale use (its argument read is exempt as part of the call,
          // so catch it here).
          const auto it = cancelled.find(e.handle);
          if (it != cancelled.end() && e.offset >= it->second)
            ctx_.report(*result.Context, e.loc, kCheck,
                        "event handle is cancelled again after cancel() "
                        "already retired it; reassign the handle between "
                        "cancels");
          cancelled[e.handle] = e.cancel_end;
          break;
        }
        case Event::kAssign:
          cancelled.erase(e.handle);
          if (e.engine_key.empty())
            origin.erase(e.handle);
          else
            origin[e.handle] = e.engine_key;
          break;
        case Event::kUse: {
          const auto it = cancelled.find(e.handle);
          if (it == cancelled.end() || e.offset < it->second) break;
          ctx_.report(*result.Context, e.loc, kCheck,
                      "event handle is read after cancel() retired it; "
                      "reassign the handle (e.g. a fresh {} or a new "
                      "schedule) before reuse");
          cancelled.erase(it);  // one report per stale window
          break;
        }
      }
    }
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_stale_handle(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new StaleHandleCallback{ctx};
  finder.addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt())).bind("fn"),
      callback);
}

}  // namespace cloudlb_analyzer

// cloudlb-analyzer — flow-aware determinism and handle-safety checks.
//
// A Clang LibTooling binary that runs over the exported compile database
// (build/compile_commands.json) and reports CloudLB-specific defect
// patterns the regex linter (tools/lint/) cannot see because they need
// types, overload resolution, or statement ordering:
//
//   analyzer-stale-handle      EventHandle used after Simulator::cancel
//                              without reassignment
//   analyzer-unordered-accum   range-for over std::unordered_{map,set}
//                              feeding a float accumulator or appending
//                              to a result container (hash-order output)
//   analyzer-discarded-status  ignored results of status-returning APIs
//   analyzer-sim-time          SimTime arithmetic against bare numeric
//                              literals that bypasses the sim_time.h
//                              factories
//   analyzer-ambient-state     std::random_device / wall-clock calls,
//                              type-checked (no false hits in strings)
//
// plus the shard-safety effect system (src/util/shard_annotations.h):
//
//   analyzer-shard-confined    CLB_SHARD_CONFINED member touched outside
//                              the annotated window-execution entry
//                              points (one level of calls followed)
//   analyzer-barrier-phase     CLB_BARRIER_PHASE function called from
//                              shard-window or worker-team task context
//   analyzer-float-merge       float/double accumulation over per-shard
//                              data outside a CLB_CANONICAL_COMBINE
//                              helper
//   analyzer-unranked-fanout   bare EngineCore::schedule_at/_after in a
//                              fan-out loop of a CLB_RANKED_FANOUT
//                              function
//
// Suppression: `// NOLINT-CLOUDLB(analyzer-<check>)` on the offending
// line, the same syntax the Python linter uses (which in turn treats
// `analyzer-*` names as owned by this tool and never reports them as
// stale). Output format is one finding per line:
//
//   path:line:col: warning: <message> [analyzer-<check>]
//
// Exit codes: 0 clean, 1 findings, 2 tool/compile error.
#pragma once

#include <set>
#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/raw_ostream.h"

namespace cloudlb_analyzer {

struct Finding {
  std::string file;
  unsigned line = 0;
  unsigned col = 0;
  std::string check;    // full name, e.g. "analyzer-stale-handle"
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (col != o.col) return col < o.col;
    if (check != o.check) return check < o.check;
    return message < o.message;
  }
};

// Shared sink for every check. Findings are deduplicated (headers are
// revisited once per including TU) and sorted before printing.
class AnalyzerContext {
 public:
  // Record a finding at `loc` unless the location is invalid, sits in a
  // system header, or its line carries a NOLINT-CLOUDLB(<check>)
  // suppression. Macro locations resolve to their expansion point.
  void report(const clang::ASTContext& ast, clang::SourceLocation loc,
              llvm::StringRef check, llvm::StringRef message);

  // Print all findings to `os`; returns how many there were.
  std::size_t flush(llvm::raw_ostream& os) const;

 private:
  std::set<Finding> findings_;
};

// Each check registers its matchers against the shared finder; `ctx`
// must outlive the finder.
void register_ambient_state(clang::ast_matchers::MatchFinder& finder,
                            AnalyzerContext& ctx);
void register_discarded_status(clang::ast_matchers::MatchFinder& finder,
                               AnalyzerContext& ctx);
void register_sim_time(clang::ast_matchers::MatchFinder& finder,
                       AnalyzerContext& ctx);
void register_unordered_accum(clang::ast_matchers::MatchFinder& finder,
                              AnalyzerContext& ctx);
void register_stale_handle(clang::ast_matchers::MatchFinder& finder,
                           AnalyzerContext& ctx);
void register_shard_confined(clang::ast_matchers::MatchFinder& finder,
                             AnalyzerContext& ctx);
void register_barrier_phase(clang::ast_matchers::MatchFinder& finder,
                            AnalyzerContext& ctx);
void register_float_merge(clang::ast_matchers::MatchFinder& finder,
                          AnalyzerContext& ctx);
void register_unranked_fanout(clang::ast_matchers::MatchFinder& finder,
                              AnalyzerContext& ctx);

}  // namespace cloudlb_analyzer

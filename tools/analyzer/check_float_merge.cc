// analyzer-float-merge: floating-point accumulation across per-shard
// data must flow through a CLB_CANONICAL_COMBINE helper — the static
// twin of the sharded engine's (shard, seq) combine rule. Float addition
// is not associative, so a `double += ...` folded per shard (or per
// element of shard-confined state) in an arbitrary loop reproduces the
// legacy engine's sums only if the iteration order is pinned; the
// canonical combiners (ShardPartition::reduction_sum, chare_cpu,
// shard_summaries_from_stats, ...) are written and audited for exactly
// that, ad-hoc folds are not.
//
// Scope: loops (for / range-for / while / do) inside functions NOT
// annotated CLB_CANONICAL_COMBINE whose body touches per-shard data —
// a CLB_SHARD_CONFINED member access or a call to a canonical combiner,
// with one level of helper calls followed as in analyzer-unordered-accum.
// Inside such a loop, a floating compound assignment whose target
// outlives the loop body is flagged, as is a call to a visible helper
// that performs one. Integer accumulation is order-independent and
// allowed; accumulators declared inside the loop body reset every
// iteration and are allowed.
#include "analyzer.h"
#include "annotations.h"

#include <vector>

#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-float-merge";

bool is_floating(clang::QualType type) {
  return type.getNonReferenceType()->isFloatingType();
}

bool declared_within(const clang::Decl* decl, const clang::SourceManager& sm,
                     clang::SourceLocation begin, clang::SourceLocation end) {
  if (decl == nullptr || begin.isInvalid()) return false;
  const clang::SourceLocation loc = sm.getFileLoc(decl->getLocation());
  return sm.getFileID(loc) == sm.getFileID(begin) &&
         sm.getFileOffset(loc) >= sm.getFileOffset(begin) &&
         sm.getFileOffset(loc) < sm.getFileOffset(end);
}

// Does this statement tree touch per-shard data: a shard-confined member
// access, a call to a canonical combiner, or (one level down) a call to
// a visible helper that does either?
class ShardTouchScanner
    : public clang::RecursiveASTVisitor<ShardTouchScanner> {
 public:
  explicit ShardTouchScanner(int helper_depth)
      : helper_depth_{helper_depth} {}

  bool touched = false;

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const auto* field =
        llvm::dyn_cast<clang::FieldDecl>(member->getMemberDecl());
    if (field_is_shard_confined(field)) touched = true;
    return !touched;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    if (has_clb_annotation(callee, kCanonicalCombineAnnot)) {
      touched = true;
      return false;
    }
    if (helper_depth_ <= 0) return true;
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def->getBody() == nullptr) return true;
    ShardTouchScanner inner{helper_depth_ - 1};
    inner.TraverseStmt(def->getBody());
    if (inner.touched) touched = true;
    return !touched;
  }

 private:
  int helper_depth_;
};

// Flags order-dependent floating folds inside one triggered loop body.
class FloatFoldScanner
    : public clang::RecursiveASTVisitor<FloatFoldScanner> {
 public:
  FloatFoldScanner(AnalyzerContext* ctx, clang::ASTContext& ast,
                   clang::SourceLocation body_begin,
                   clang::SourceLocation body_end, int helper_depth)
      : ctx_{ctx},
        ast_{ast},
        body_begin_{body_begin},
        body_end_{body_end},
        helper_depth_{helper_depth} {}

  bool found = false;

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isCompoundAssignmentOp()) return true;
    const clang::Expr* lhs = op->getLHS()->IgnoreParenImpCasts();
    if (!is_floating(lhs->getType())) return true;
    if (target_is_loop_local(lhs)) return true;
    record(op->getBeginLoc(),
           "floating-point accumulation over per-shard data outside a "
           "CLB_CANONICAL_COMBINE helper; float addition is not "
           "associative — fold through a canonical combiner (or mark "
           "this function CLB_CANONICAL_COMBINE and pin its order)");
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    if (helper_depth_ <= 0) return true;
    if (llvm::isa<clang::CXXMemberCallExpr>(call)) return true;
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr ||
        has_clb_annotation(callee, kCanonicalCombineAnnot))
      return true;
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def->getBody() == nullptr) return true;
    FloatFoldScanner inner{nullptr, ast_, clang::SourceLocation{},
                           clang::SourceLocation{}, helper_depth_ - 1};
    inner.TraverseStmt(def->getBody());
    if (inner.found)
      record(call->getBeginLoc(),
             "call to '" + callee->getNameAsString() +
                 "' accumulates floating-point state (see its "
                 "definition) over per-shard data outside a "
                 "CLB_CANONICAL_COMBINE helper");
    return true;
  }

 private:
  void record(clang::SourceLocation loc, const std::string& message) {
    found = true;
    if (ctx_ != nullptr) ctx_->report(ast_, loc, kCheck, message);
  }

  bool target_is_loop_local(const clang::Expr* target) const {
    if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(target))
      return declared_within(ref->getDecl(), ast_.getSourceManager(),
                             body_begin_, body_end_);
    return false;  // members and array elements outlive the iteration
  }

  AnalyzerContext* ctx_;  // null: probe mode (helper bodies)
  clang::ASTContext& ast_;
  clang::SourceLocation body_begin_;
  clang::SourceLocation body_end_;
  int helper_depth_;
};

// Collects every loop statement in a function body (lambdas included).
class LoopCollector : public clang::RecursiveASTVisitor<LoopCollector> {
 public:
  std::vector<const clang::Stmt*> bodies;

  bool VisitForStmt(clang::ForStmt* s) { return add(s->getBody()); }
  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    return add(s->getBody());
  }
  bool VisitWhileStmt(clang::WhileStmt* s) { return add(s->getBody()); }
  bool VisitDoStmt(clang::DoStmt* s) { return add(s->getBody()); }

 private:
  bool add(const clang::Stmt* body) {
    if (body != nullptr) bodies.push_back(body);
    return true;
  }
};

class FloatMergeCallback : public MatchFinder::MatchCallback {
 public:
  explicit FloatMergeCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    if (has_clb_annotation(fn, kCanonicalCombineAnnot)) return;
    LoopCollector loops;
    loops.TraverseStmt(fn->getBody());
    const clang::SourceManager& sm = result.Context->getSourceManager();
    for (const clang::Stmt* body : loops.bodies) {
      ShardTouchScanner touch{/*helper_depth=*/1};
      touch.TraverseStmt(const_cast<clang::Stmt*>(body));
      if (!touch.touched) continue;
      FloatFoldScanner scanner{&ctx_, *result.Context,
                               sm.getFileLoc(body->getBeginLoc()),
                               sm.getFileLoc(body->getEndLoc()),
                               /*helper_depth=*/1};
      scanner.TraverseStmt(const_cast<clang::Stmt*>(body));
    }
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_float_merge(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new FloatMergeCallback{ctx};
  finder.addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt())).bind("fn"),
      callback);
}

}  // namespace cloudlb_analyzer

#include "analyzer.h"

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace cloudlb_analyzer {

namespace {

// True when `line_text` carries a NOLINT-CLOUDLB(...) whose name list
// contains `check` — the same comma-separated syntax the Python linter
// parses, so one suppression comment serves both tools.
bool line_suppresses(llvm::StringRef line_text, llvm::StringRef check) {
  static constexpr llvm::StringLiteral kMarker{"NOLINT-CLOUDLB("};
  const std::size_t at = line_text.find(kMarker);
  if (at == llvm::StringRef::npos) return false;
  llvm::StringRef names = line_text.substr(at + kMarker.size());
  const std::size_t close = names.find(')');
  if (close == llvm::StringRef::npos) return false;
  names = names.substr(0, close);
  llvm::SmallVector<llvm::StringRef, 4> parts;
  names.split(parts, ',');
  for (llvm::StringRef part : parts)
    if (part.trim() == check) return true;
  return false;
}

// The raw text of `line` (1-based) in the file that owns `fid`.
llvm::StringRef line_text(const clang::SourceManager& sm, clang::FileID fid,
                          unsigned line) {
  bool invalid = false;
  const llvm::StringRef buffer = sm.getBufferData(fid, &invalid);
  if (invalid) return {};
  std::size_t begin = 0;
  for (unsigned i = 1; i < line; ++i) {
    begin = buffer.find('\n', begin);
    if (begin == llvm::StringRef::npos) return {};
    ++begin;
  }
  const std::size_t end = buffer.find('\n', begin);
  return buffer.slice(begin,
                      end == llvm::StringRef::npos ? buffer.size() : end);
}

}  // namespace

void AnalyzerContext::report(const clang::ASTContext& ast,
                             clang::SourceLocation loc,
                             llvm::StringRef check, llvm::StringRef message) {
  const clang::SourceManager& sm = ast.getSourceManager();
  if (loc.isInvalid()) return;
  // Findings inside macro bodies anchor at the expansion point so the
  // reported line is one the user can edit (and suppress).
  loc = sm.getFileLoc(loc);
  if (sm.isInSystemHeader(loc)) return;
  const clang::PresumedLoc pl = sm.getPresumedLoc(loc);
  if (pl.isInvalid()) return;
  if (line_suppresses(line_text(sm, sm.getFileID(loc), pl.getLine()), check))
    return;
  findings_.insert(Finding{pl.getFilename(), pl.getLine(), pl.getColumn(),
                           check.str(), message.str()});
}

std::size_t AnalyzerContext::flush(llvm::raw_ostream& os) const {
  for (const Finding& f : findings_)
    os << f.file << ':' << f.line << ':' << f.col << ": warning: "
       << f.message << " [" << f.check << "]\n";
  return findings_.size();
}

}  // namespace cloudlb_analyzer

#include "summary.h"

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>

namespace cloudlb_analyzer {

namespace {

// --- JSON writing -----------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters never appear in paths/names the emitter
          // produces; escape defensively so the output stays valid JSON.
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_call(std::string& out, const CallEdge& e) {
  out += R"({"usr":)";
  append_escaped(out, e.usr);
  out += R"(,"name":)";
  append_escaped(out, e.name);
  out += R"(,"line":)";
  out += std::to_string(e.line);
  out += R"(,"col":)";
  out += std::to_string(e.col);
  out += R"(,"in_loop":)";
  out += e.in_loop ? "true" : "false";
  out += R"(,"guarded":)";
  out += e.guarded ? "true" : "false";
  out += R"(,"cold":)";
  out += e.cold ? "true" : "false";
  out += R"(,"in_lambda":)";
  out += e.in_lambda ? "true" : "false";
  out += "}";
}

void append_fact(std::string& out, const Fact& f) {
  out += R"({"kind":)";
  append_escaped(out, f.kind);
  out += R"(,"detail":)";
  append_escaped(out, f.detail);
  out += R"(,"line":)";
  out += std::to_string(f.line);
  out += R"(,"col":)";
  out += std::to_string(f.col);
  out += R"(,"in_loop":)";
  out += f.in_loop ? "true" : "false";
  out += R"(,"cold":)";
  out += f.cold ? "true" : "false";
  out += R"(,"amortized":)";
  out += f.amortized ? "true" : "false";
  out += "}";
}

// --- JSON parsing -----------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  bool parse(JsonValue* out, std::string* error) {
    if (!parse_value(out)) {
      if (error != nullptr) *error = error_at();
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON document");
      if (error != nullptr) *error = error_at();
      return false;
    }
    return true;
  }

 private:
  void fail(std::string message) {
    if (message_.empty()) message_ = std::move(message);
  }

  [[nodiscard]] std::string error_at() const {
    return message_ + " (at byte " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expect) {
    if (pos_ < text_.size() && text_[pos_] == expect) {
      ++pos_;
      return true;
    }
    fail(std::string{"expected '"} + expect + "'");
    return false;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("unrecognized literal");
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          default:
            fail("unsupported string escape");
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_int(std::int64_t* out) {
    const std::size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    std::uint64_t magnitude = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      // Summary hashes are full 64-bit values serialized unsigned; fold
      // with wraparound and reinterpret below, which round-trips every
      // value to_json can produce.
      magnitude =
          magnitude * 10 +
          static_cast<std::uint64_t>(text_[pos_] - '0');
      any = true;
      ++pos_;
    }
    if (!any) {
      pos_ = start;
      fail("expected a number");
      return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                text_[pos_] == 'E')) {
      fail("floating-point numbers are not part of the schema");
      return false;
    }
    *out = negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return parse_literal("null");
    }
    out->kind = JsonValue::Kind::kInt;
    return parse_int(&out->int_value);
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(&item)) return false;
      out->array.push_back(std::move(item));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

// --- Typed field extraction (loud on any shape deviation) -------------

bool get_string(const JsonValue& obj, std::string_view key, std::string* out,
                std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    *error = "missing or mistyped string field \"" + std::string{key} + '"';
    return false;
  }
  *out = v->string_value;
  return true;
}

bool get_int(const JsonValue& obj, std::string_view key, std::int64_t* out,
             std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kInt) {
    *error = "missing or mistyped integer field \"" + std::string{key} + '"';
    return false;
  }
  *out = v->int_value;
  return true;
}

bool get_bool(const JsonValue& obj, std::string_view key, bool* out,
              std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) {
    *error = "missing or mistyped boolean field \"" + std::string{key} + '"';
    return false;
  }
  *out = v->bool_value;
  return true;
}

bool get_array(const JsonValue& obj, std::string_view key,
               const JsonValue** out, std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kArray) {
    *error = "missing or mistyped array field \"" + std::string{key} + '"';
    return false;
  }
  *out = v;
  return true;
}

bool parse_call(const JsonValue& obj, CallEdge* out, std::string* error) {
  if (obj.kind != JsonValue::Kind::kObject) {
    *error = "call edge is not an object";
    return false;
  }
  std::int64_t line = 0;
  std::int64_t col = 0;
  if (!get_string(obj, "usr", &out->usr, error) ||
      !get_string(obj, "name", &out->name, error) ||
      !get_int(obj, "line", &line, error) ||
      !get_int(obj, "col", &col, error) ||
      !get_bool(obj, "in_loop", &out->in_loop, error) ||
      !get_bool(obj, "guarded", &out->guarded, error) ||
      !get_bool(obj, "cold", &out->cold, error) ||
      !get_bool(obj, "in_lambda", &out->in_lambda, error))
    return false;
  out->line = static_cast<int>(line);
  out->col = static_cast<int>(col);
  return true;
}

bool parse_fact(const JsonValue& obj, Fact* out, std::string* error) {
  if (obj.kind != JsonValue::Kind::kObject) {
    *error = "fact is not an object";
    return false;
  }
  std::int64_t line = 0;
  std::int64_t col = 0;
  if (!get_string(obj, "kind", &out->kind, error) ||
      !get_string(obj, "detail", &out->detail, error) ||
      !get_int(obj, "line", &line, error) ||
      !get_int(obj, "col", &col, error) ||
      !get_bool(obj, "in_loop", &out->in_loop, error) ||
      !get_bool(obj, "cold", &out->cold, error) ||
      !get_bool(obj, "amortized", &out->amortized, error))
    return false;
  out->line = static_cast<int>(line);
  out->col = static_cast<int>(col);
  return true;
}

bool parse_function(const JsonValue& obj, FunctionSummary* out,
                    std::string* error) {
  if (obj.kind != JsonValue::Kind::kObject) {
    *error = "function summary is not an object";
    return false;
  }
  std::int64_t line = 0;
  const JsonValue* annotations = nullptr;
  const JsonValue* calls = nullptr;
  const JsonValue* facts = nullptr;
  if (!get_string(obj, "usr", &out->usr, error) ||
      !get_string(obj, "name", &out->name, error) ||
      !get_string(obj, "file", &out->file, error) ||
      !get_int(obj, "line", &line, error) ||
      !get_array(obj, "annotations", &annotations, error) ||
      !get_array(obj, "calls", &calls, error) ||
      !get_array(obj, "facts", &facts, error))
    return false;
  out->line = static_cast<int>(line);
  for (const JsonValue& a : annotations->array) {
    if (a.kind != JsonValue::Kind::kString) {
      *error = "annotation entry is not a string";
      return false;
    }
    out->annotations.push_back(a.string_value);
  }
  for (const JsonValue& c : calls->array) {
    CallEdge edge;
    if (!parse_call(c, &edge, error)) return false;
    out->calls.push_back(std::move(edge));
  }
  for (const JsonValue& f : facts->array) {
    Fact fact;
    if (!parse_fact(f, &fact, error)) return false;
    out->facts.push_back(std::move(fact));
  }
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser{text};
  return parser.parse(out, error);
}

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool hash_file(const std::string& path, std::uint64_t* out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = fnv1a(buffer.str());
  return true;
}

std::uint64_t summary_content_hash(std::string_view compile_command,
                                   const std::vector<DepHash>& deps) {
  std::uint64_t h = fnv1a(compile_command);
  for (const DepHash& dep : deps) {
    h = fnv1a(dep.file, h);
    h = fnv1a(std::to_string(dep.hash), h);
  }
  return h;
}

bool summary_is_fresh(const TuSummary& summary,
                      std::string_view compile_command) {
  if (summary.schema_version != kSummarySchemaVersion) return false;
  std::vector<DepHash> current;
  current.reserve(summary.deps.size());
  for (const DepHash& dep : summary.deps) {
    std::uint64_t h = 0;
    if (!hash_file(dep.file, &h) || h != dep.hash) return false;
    current.push_back(DepHash{dep.file, h});
  }
  return summary_content_hash(compile_command, current) ==
         summary.content_hash;
}

std::string to_json(const TuSummary& summary) {
  std::string out;
  out += "{\n";
  out += R"("schema_version":)";
  out += std::to_string(summary.schema_version);
  out += ",\n";
  out += R"("tool":)";
  append_escaped(out, summary.tool);
  out += ",\n";
  out += R"("tu":)";
  append_escaped(out, summary.tu);
  out += ",\n";
  out += R"("content_hash":)";
  append_u64(out, summary.content_hash);
  out += ",\n";
  out += R"("deps":[)";
  for (std::size_t i = 0; i < summary.deps.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n";
    out += R"({"file":)";
    append_escaped(out, summary.deps[i].file);
    out += R"(,"hash":)";
    append_u64(out, summary.deps[i].hash);
    out += "}";
  }
  out += "],\n";
  out += R"("functions":[)";
  for (std::size_t i = 0; i < summary.functions.size(); ++i) {
    const FunctionSummary& fn = summary.functions[i];
    if (i != 0) out += ",";
    out += "\n";
    out += R"({"usr":)";
    append_escaped(out, fn.usr);
    out += R"(,"name":)";
    append_escaped(out, fn.name);
    out += R"(,"file":)";
    append_escaped(out, fn.file);
    out += R"(,"line":)";
    out += std::to_string(fn.line);
    out += R"(,"annotations":[)";
    for (std::size_t a = 0; a < fn.annotations.size(); ++a) {
      if (a != 0) out += ",";
      append_escaped(out, fn.annotations[a]);
    }
    out += R"(],"calls":[)";
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      if (c != 0) out += ",";
      append_call(out, fn.calls[c]);
    }
    out += R"(],"facts":[)";
    for (std::size_t f = 0; f < fn.facts.size(); ++f) {
      if (f != 0) out += ",";
      append_fact(out, fn.facts[f]);
    }
    out += "]}";
  }
  out += "]\n}\n";
  return out;
}

bool from_json(std::string_view json, TuSummary* out, std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  JsonValue root;
  if (!parse_json(json, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    *error = "summary root is not an object";
    return false;
  }
  std::int64_t version = 0;
  if (!get_int(root, "schema_version", &version, error)) return false;
  if (version != kSummarySchemaVersion) {
    *error = "unsupported schema_version " + std::to_string(version) +
             " (this tool reads version " +
             std::to_string(kSummarySchemaVersion) + ")";
    return false;
  }
  out->schema_version = static_cast<int>(version);
  const JsonValue* hash = root.find("content_hash");
  if (hash == nullptr || hash->kind != JsonValue::Kind::kInt) {
    *error = "missing or mistyped integer field \"content_hash\"";
    return false;
  }
  out->content_hash = static_cast<std::uint64_t>(hash->int_value);
  const JsonValue* deps = nullptr;
  const JsonValue* functions = nullptr;
  if (!get_string(root, "tool", &out->tool, error) ||
      !get_string(root, "tu", &out->tu, error) ||
      !get_array(root, "deps", &deps, error) ||
      !get_array(root, "functions", &functions, error))
    return false;
  for (const JsonValue& d : deps->array) {
    if (d.kind != JsonValue::Kind::kObject) {
      *error = "dep entry is not an object";
      return false;
    }
    DepHash dep;
    std::int64_t h = 0;
    if (!get_string(d, "file", &dep.file, error) ||
        !get_int(d, "hash", &h, error))
      return false;
    dep.hash = static_cast<std::uint64_t>(h);
    out->deps.push_back(std::move(dep));
  }
  for (const JsonValue& f : functions->array) {
    FunctionSummary fn;
    if (!parse_function(f, &fn, error)) return false;
    out->functions.push_back(std::move(fn));
  }
  return true;
}

bool write_summary_file(const std::string& path, const TuSummary& summary,
                        std::string* error) {
  std::ofstream outf{path, std::ios::binary | std::ios::trunc};
  if (!outf) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  outf << to_json(summary);
  outf.flush();
  if (!outf) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

bool read_summary_file(const std::string& path, TuSummary* out,
                       std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) *error = "read failed for " + path;
    return false;
  }
  std::string parse_error;
  if (!from_json(buffer.str(), out, &parse_error)) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return false;
  }
  return true;
}

std::string summary_file_name(std::string_view tu_path) {
  std::string name;
  name.reserve(tu_path.size() + 5);
  for (const char c : tu_path) {
    if (c == '/' || c == '\\' || c == ':') {
      name.push_back('_');
    } else {
      name.push_back(c);
    }
  }
  return name + ".json";
}

}  // namespace cloudlb_analyzer

#include "emit_summary.h"

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "annotations.h"
#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Index/USRGeneration.h"
#include "clang/Lex/Lexer.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"

namespace cloudlb_analyzer {

namespace {

bool name_starts_with(llvm::StringRef name, llvm::StringRef prefix) {
  // StringRef::startswith was removed in newer LLVM; substr+== parses
  // identically from 14 through 18.
  return name.size() >= prefix.size() &&
         name.substr(0, prefix.size()) == prefix;
}

std::string absolute_path(llvm::StringRef path) {
  llvm::SmallString<256> abs{path};
  llvm::sys::fs::make_absolute(abs);
  llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
  return std::string{abs.str()};
}

bool in_clb_macro(clang::SourceLocation loc, const clang::SourceManager& sm,
                  const clang::LangOptions& lang) {
  while (loc.isMacroID()) {
    const llvm::StringRef name =
        clang::Lexer::getImmediateMacroName(loc, sm, lang);
    if (name_starts_with(name, "CLB_")) return true;
    loc = sm.getImmediateMacroCallerLoc(loc);
  }
  return false;
}

/// Mirrors check_barrier_phase.cc's WindowProbeFinder: does the
/// expression mention the window-regime probe?
class WindowProbeFinder
    : public clang::RecursiveASTVisitor<WindowProbeFinder> {
 public:
  bool found = false;

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee != nullptr && callee->getDeclName().isIdentifier() &&
        callee->getName() == "in_window")
      found = true;
    return !found;
  }

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const clang::NamedDecl* decl = member->getMemberDecl();
    if (decl->getDeclName().isIdentifier()) {
      const llvm::StringRef name = decl->getName();
      if (name == "in_window" || name == "in_window_") found = true;
    }
    return !found;
  }
};

bool mentions_name(const clang::Expr* cond, llvm::StringRef name) {
  if (cond == nullptr) return false;
  class Finder : public clang::RecursiveASTVisitor<Finder> {
   public:
    explicit Finder(llvm::StringRef n) : name_{n} {}
    bool found = false;
    bool VisitCallExpr(clang::CallExpr* call) {
      const clang::FunctionDecl* callee = call->getDirectCallee();
      if (callee != nullptr && callee->getDeclName().isIdentifier() &&
          callee->getName() == name_)
        found = true;
      return !found;
    }

   private:
    llvm::StringRef name_;
  };
  Finder finder{name};
  finder.TraverseStmt(const_cast<clang::Expr*>(cond));
  return finder.found;
}

bool mentions_in_window(const clang::Expr* cond) {
  if (cond == nullptr) return false;
  WindowProbeFinder finder;
  finder.TraverseStmt(const_cast<clang::Expr*>(cond));
  return finder.found;
}

/// Lambda bodies handed to WorkerTeam::run_round execute as shard
/// worker tasks — their contents keep the enclosing function's context
/// instead of being treated as deferred closures.
class WorkerBodyCollector
    : public clang::RecursiveASTVisitor<WorkerBodyCollector> {
 public:
  std::set<const clang::Stmt*> bodies;

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier() ||
        callee->getName() != "run_round")
      return true;
    for (const clang::Expr* arg : call->arguments()) {
      LambdaCollector lambdas{bodies};
      lambdas.TraverseStmt(const_cast<clang::Expr*>(arg));
    }
    return true;
  }

 private:
  class LambdaCollector
      : public clang::RecursiveASTVisitor<LambdaCollector> {
   public:
    explicit LambdaCollector(std::set<const clang::Stmt*>& out)
        : out_{out} {}
    bool VisitLambdaExpr(clang::LambdaExpr* lambda) {
      if (lambda->getBody() != nullptr) out_.insert(lambda->getBody());
      return true;
    }

   private:
    std::set<const clang::Stmt*>& out_;
  };
};

const clang::CXXRecordDecl* receiver_record(
    const clang::CXXMemberCallExpr* call) {
  const clang::Expr* object = call->getImplicitObjectArgument();
  if (object == nullptr) return nullptr;
  clang::QualType type =
      object->IgnoreParenImpCasts()->getType().getNonReferenceType();
  if (type->isPointerType()) type = type->getPointeeType();
  return type->getAsCXXRecordDecl();
}

bool record_named(const clang::CXXRecordDecl* record, llvm::StringRef name) {
  return record != nullptr && record->getDeclName().isIdentifier() &&
         record->getName() == name;
}

bool is_blocking_receiver(const clang::CXXRecordDecl* record) {
  if (record == nullptr || !record->getDeclName().isIdentifier())
    return false;
  const llvm::StringRef name = record->getName();
  return name == "mutex" || name == "timed_mutex" ||
         name == "recursive_mutex" || name == "shared_mutex" ||
         name == "condition_variable" || name == "condition_variable_any" ||
         name == "thread";
}

/// Container growth entry points. Vector/string growth over reserved
/// capacity is amortized (the engine's reserve() contract); node-based
/// containers allocate per element, unconditionally.
bool is_container_grow(llvm::StringRef method, llvm::StringRef record,
                       bool* amortized) {
  const bool grows = method == "push_back" || method == "emplace_back" ||
                     method == "insert" || method == "emplace" ||
                     method == "resize" || method == "reserve" ||
                     method == "push_front" || method == "emplace_front" ||
                     method == "push";
  if (!grows) return false;
  if (record == "vector" || record == "basic_string") {
    *amortized = true;
    return true;
  }
  if (record == "map" || record == "set" || record == "multimap" ||
      record == "multiset" || record == "unordered_map" ||
      record == "unordered_set" || record == "unordered_multimap" ||
      record == "unordered_multiset" || record == "deque" ||
      record == "list" || record == "forward_list" ||
      record == "priority_queue" || record == "queue" ||
      record == "stack") {
    *amortized = false;
    return true;
  }
  return false;
}

bool is_blocking_free_function(llvm::StringRef name) {
  return name == "sleep_for" || name == "sleep_until" ||
         name == "fopen" || name == "fread" || name == "fwrite" ||
         name == "fclose" || name == "printf" || name == "fprintf" ||
         name == "fflush" || name == "getline";
}

bool is_alloc_free_function(llvm::StringRef name) {
  return name == "malloc" || name == "calloc" || name == "realloc" ||
         name == "strdup" || name == "make_unique" || name == "make_shared" ||
         name == "allocate_shared";
}

bool is_lock_type(llvm::StringRef name) {
  return name == "lock_guard" || name == "unique_lock" ||
         name == "scoped_lock" || name == "shared_lock";
}

// --- One function body's scan -----------------------------------------

class BodyScanner : public clang::RecursiveASTVisitor<BodyScanner> {
 public:
  BodyScanner(clang::ASTContext& ast, FunctionSummary* out,
              const clang::FunctionDecl* fn,
              const std::set<const clang::Stmt*>& worker_bodies)
      : ast_{ast}, out_{out}, fn_{fn}, worker_bodies_{worker_bodies} {}

  bool shouldVisitImplicitCode() const { return false; }

  bool TraverseForStmt(clang::ForStmt* s) { return loop(s); }
  bool TraverseCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    return loop(s);
  }
  bool TraverseWhileStmt(clang::WhileStmt* s) { return loop(s); }
  bool TraverseDoStmt(clang::DoStmt* s) { return loop(s); }

  bool TraverseIfStmt(clang::IfStmt* stmt) {
    const bool guards = mentions_in_window(stmt->getCond());
    const bool cold = mentions_name(stmt->getCond(), "validation_enabled");
    if (guards) ++guard_depth_;
    if (cold) ++cold_depth_;
    const bool keep =
        clang::RecursiveASTVisitor<BodyScanner>::TraverseIfStmt(stmt);
    if (cold) --cold_depth_;
    if (guards) --guard_depth_;
    return keep;
  }

  bool TraverseLambdaExpr(clang::LambdaExpr* lambda) {
    const bool worker = worker_bodies_.count(lambda->getBody()) != 0;
    if (!worker) ++lambda_depth_;
    const bool keep =
        clang::RecursiveASTVisitor<BodyScanner>::TraverseLambdaExpr(lambda);
    if (!worker) --lambda_depth_;
    return keep;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    const clang::SourceManager& sm = ast_.getSourceManager();

    // Bare fan-out schedules: member calls on a static-type EngineCore
    // receiver (the Simulator facade is exempt — single-engine heap
    // order IS the canonical order there).
    if (const auto* member = llvm::dyn_cast<clang::CXXMemberCallExpr>(call)) {
      const clang::CXXMethodDecl* method = member->getMethodDecl();
      if (method != nullptr && method->getDeclName().isIdentifier()) {
        const llvm::StringRef name = method->getName();
        const clang::CXXRecordDecl* receiver = receiver_record(member);
        if ((name == "schedule_at" || name == "schedule_after") &&
            record_named(receiver, "EngineCore"))
          add_fact(fact_kind::kBareSchedule, ("EngineCore::" + name).str(),
                   call->getBeginLoc(), false);
        if (is_blocking_receiver(receiver) &&
            (name == "lock" || name == "try_lock" || name == "wait" ||
             name == "wait_for" || name == "wait_until" || name == "join"))
          add_fact(fact_kind::kBlock,
                   (receiver->getName() + "::" + name).str(),
                   call->getBeginLoc(), false);
        bool amortized = false;
        if (receiver != nullptr && receiver->getDeclName().isIdentifier() &&
            is_container_grow(name, receiver->getName(), &amortized) &&
            sm.isInSystemHeader(receiver->getLocation()))
          add_fact(fact_kind::kAlloc,
                   (receiver->getName() + "::" + name).str(),
                   call->getBeginLoc(), amortized);
      }
    }

    if (callee->getDeclName().isIdentifier()) {
      const llvm::StringRef name = callee->getName();
      if (is_blocking_free_function(name))
        add_fact(fact_kind::kBlock, name.str(), call->getBeginLoc(), false);
      if (is_alloc_free_function(name))
        add_fact(fact_kind::kAlloc, name.str(), call->getBeginLoc(), false);
    }

    add_edge(callee, call->getBeginLoc());
    return true;
  }

  bool VisitCXXNewExpr(clang::CXXNewExpr* expr) {
    add_fact(fact_kind::kAlloc, "operator new", expr->getBeginLoc(), false);
    return true;
  }

  bool VisitCXXConstructExpr(clang::CXXConstructExpr* expr) {
    const clang::CXXConstructorDecl* ctor = expr->getConstructor();
    if (ctor == nullptr) return true;
    const clang::CXXRecordDecl* record = ctor->getParent();
    if (record == nullptr || !record->getDeclName().isIdentifier())
      return true;
    const llvm::StringRef name = record->getName();
    const clang::SourceManager& sm = ast_.getSourceManager();
    if (name == "function" && sm.isInSystemHeader(record->getLocation()) &&
        expr->getNumArgs() >= 1 &&
        !expr->getArg(0)->getType()->isDependentType()) {
      // Copy/move of another std::function moves the SBO buffer; only
      // converting construction from a fresh callable can heap-allocate.
      const clang::QualType arg =
          expr->getArg(0)->getType().getNonReferenceType();
      const auto* arg_record = arg->getAsCXXRecordDecl();
      if (!record_named(arg_record, "function"))
        add_fact(fact_kind::kAlloc, "std::function construction",
                 expr->getBeginLoc(), false);
    }
    if (is_lock_type(name) && sm.isInSystemHeader(record->getLocation()))
      add_fact(fact_kind::kBlock, ("lock acquisition (" + name + ")").str(),
               expr->getBeginLoc(), false);
    scan_small_function_construction(expr, record);
    return true;
  }

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const auto* field =
        llvm::dyn_cast<clang::FieldDecl>(member->getMemberDecl());
    bool via_record = false;
    if (!field_is_shard_confined(field, &via_record)) return true;
    // A confined record's own methods operate on their own shard copy
    // (mirrors check_shard_confined.cc).
    if (via_record) {
      const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(fn_);
      if (method != nullptr && field->getParent() != nullptr &&
          method->getParent()->getCanonicalDecl() ==
              field->getParent()->getCanonicalDecl())
        return true;
    }
    add_fact(fact_kind::kConfinedTouch, field->getNameAsString(),
             member->getMemberLoc(), false);
    return true;
  }

 private:
  template <typename Loop>
  bool loop(Loop* s) {
    ++loop_depth_;
    const bool keep = s->getBody() == nullptr || TraverseStmt(s->getBody());
    --loop_depth_;
    return keep;
  }

  void scan_small_function_construction(const clang::CXXConstructExpr* expr,
                                        const clang::CXXRecordDecl* record) {
    if (!record_named(record, "SmallFunction")) return;
    const auto* spec =
        llvm::dyn_cast<clang::ClassTemplateSpecializationDecl>(record);
    if (spec == nullptr || expr->getNumArgs() != 1) return;
    const clang::TemplateArgumentList& args = spec->getTemplateArgs();
    if (args.size() < 2 ||
        args[1].getKind() != clang::TemplateArgument::Integral)
      return;
    const std::uint64_t inline_bytes =
        args[1].getAsIntegral().getZExtValue();
    const clang::QualType arg =
        expr->getArg(0)->getType().getNonReferenceType();
    if (arg->isDependentType() || arg->isIncompleteType()) return;
    if (arg->getAsCXXRecordDecl() == record) return;  // move/copy
    const std::uint64_t size =
        static_cast<std::uint64_t>(ast_.getTypeSizeInChars(arg).getQuantity());
    const std::uint64_t align = static_cast<std::uint64_t>(
        ast_.getTypeAlignInChars(arg).getQuantity());
    const std::uint64_t max_align =
        ast_.getTargetInfo().getSuitableAlign() / 8;
    if (size > inline_bytes || align > max_align)
      add_fact(fact_kind::kOverSbo,
               "capture of " + std::to_string(size) + " bytes exceeds the " +
                   std::to_string(inline_bytes) + "-byte SmallFunction budget",
               expr->getBeginLoc(), false);
  }

  void add_fact(const char* kind, std::string detail,
                clang::SourceLocation loc, bool amortized) {
    const clang::SourceManager& sm = ast_.getSourceManager();
    const bool macro_cold = in_clb_macro(loc, sm, ast_.getLangOpts());
    const clang::PresumedLoc pl = sm.getPresumedLoc(sm.getFileLoc(loc));
    if (pl.isInvalid()) return;
    Fact fact;
    fact.kind = kind;
    fact.detail = std::move(detail);
    fact.line = static_cast<int>(pl.getLine());
    fact.col = static_cast<int>(pl.getColumn());
    fact.in_loop = loop_depth_ > 0;
    fact.cold = cold_depth_ > 0 || macro_cold;
    fact.amortized = amortized;
    out_->facts.push_back(std::move(fact));
  }

  void add_edge(const clang::FunctionDecl* callee,
                clang::SourceLocation loc) {
    const clang::SourceManager& sm = ast_.getSourceManager();
    // Unresolvable or uninteresting targets: system headers and
    // templates never get stable cross-TU summaries — their recognized
    // effects were converted to facts above.
    if (callee->getBuiltinID() != 0) return;
    if (sm.isInSystemHeader(callee->getLocation())) return;
    if (callee->isTemplated() || callee->isTemplateInstantiation() ||
        callee->getPrimaryTemplate() != nullptr)
      return;
    if (const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(callee))
      if (method->getParent()->isLambda()) return;
    llvm::SmallString<128> usr;
    if (clang::index::generateUSRForDecl(callee->getCanonicalDecl(), usr))
      return;
    const bool macro_cold = in_clb_macro(loc, sm, ast_.getLangOpts());
    const clang::PresumedLoc pl = sm.getPresumedLoc(sm.getFileLoc(loc));
    if (pl.isInvalid()) return;
    CallEdge edge;
    edge.usr = std::string{usr.str()};
    edge.name = callee->getQualifiedNameAsString();
    edge.line = static_cast<int>(pl.getLine());
    edge.col = static_cast<int>(pl.getColumn());
    edge.in_loop = loop_depth_ > 0;
    edge.guarded = guard_depth_ > 0;
    edge.cold = cold_depth_ > 0 || macro_cold;
    edge.in_lambda = lambda_depth_ > 0;
    out_->calls.push_back(std::move(edge));
  }

  clang::ASTContext& ast_;
  FunctionSummary* out_;
  const clang::FunctionDecl* fn_;
  const std::set<const clang::Stmt*>& worker_bodies_;
  int loop_depth_ = 0;
  int guard_depth_ = 0;
  int cold_depth_ = 0;
  int lambda_depth_ = 0;
};

// --- Float-fold facts (mirrors check_float_merge.cc, minus the
// combine-annotation bless — the linker blesses transitively) ----------

bool is_floating(clang::QualType type) {
  return type.getNonReferenceType()->isFloatingType();
}

bool declared_within(const clang::Decl* decl, const clang::SourceManager& sm,
                     clang::SourceLocation begin, clang::SourceLocation end) {
  if (decl == nullptr || begin.isInvalid()) return false;
  const clang::SourceLocation loc = sm.getFileLoc(decl->getLocation());
  return sm.getFileID(loc) == sm.getFileID(begin) &&
         sm.getFileOffset(loc) >= sm.getFileOffset(begin) &&
         sm.getFileOffset(loc) < sm.getFileOffset(end);
}

class ShardTouchScanner
    : public clang::RecursiveASTVisitor<ShardTouchScanner> {
 public:
  explicit ShardTouchScanner(int helper_depth)
      : helper_depth_{helper_depth} {}

  bool touched = false;

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const auto* field =
        llvm::dyn_cast<clang::FieldDecl>(member->getMemberDecl());
    if (field_is_shard_confined(field)) touched = true;
    return !touched;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    if (has_clb_annotation(callee, kCanonicalCombineAnnot)) {
      touched = true;
      return false;
    }
    if (helper_depth_ <= 0) return true;
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def->getBody() == nullptr) return true;
    ShardTouchScanner inner{helper_depth_ - 1};
    inner.TraverseStmt(def->getBody());
    if (inner.touched) touched = true;
    return !touched;
  }

 private:
  int helper_depth_;
};

class FloatFoldScanner
    : public clang::RecursiveASTVisitor<FloatFoldScanner> {
 public:
  FloatFoldScanner(clang::ASTContext& ast, FunctionSummary* out,
                   clang::SourceLocation body_begin,
                   clang::SourceLocation body_end, int helper_depth)
      : ast_{ast},
        out_{out},
        body_begin_{body_begin},
        body_end_{body_end},
        helper_depth_{helper_depth} {}

  bool found = false;

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isCompoundAssignmentOp()) return true;
    const clang::Expr* lhs = op->getLHS()->IgnoreParenImpCasts();
    if (!is_floating(lhs->getType())) return true;
    if (target_is_loop_local(lhs)) return true;
    record("compound assignment", op->getBeginLoc());
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    if (helper_depth_ <= 0) return true;
    if (llvm::isa<clang::CXXMemberCallExpr>(call)) return true;
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr ||
        has_clb_annotation(callee, kCanonicalCombineAnnot))
      return true;
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def->getBody() == nullptr) return true;
    FloatFoldScanner inner{ast_, nullptr, clang::SourceLocation{},
                           clang::SourceLocation{}, helper_depth_ - 1};
    inner.TraverseStmt(def->getBody());
    if (inner.found)
      record("call to '" + callee->getNameAsString() + "'",
             call->getBeginLoc());
    return true;
  }

 private:
  void record(std::string detail, clang::SourceLocation loc) {
    found = true;
    if (out_ == nullptr) return;  // probe mode (helper bodies)
    const clang::SourceManager& sm = ast_.getSourceManager();
    const clang::PresumedLoc pl = sm.getPresumedLoc(sm.getFileLoc(loc));
    if (pl.isInvalid()) return;
    Fact fact;
    fact.kind = fact_kind::kFloatFold;
    fact.detail = std::move(detail);
    fact.line = static_cast<int>(pl.getLine());
    fact.col = static_cast<int>(pl.getColumn());
    fact.in_loop = true;
    out_->facts.push_back(std::move(fact));
  }

  bool target_is_loop_local(const clang::Expr* target) const {
    if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(target))
      return declared_within(ref->getDecl(), ast_.getSourceManager(),
                             body_begin_, body_end_);
    return false;
  }

  clang::ASTContext& ast_;
  FunctionSummary* out_;
  clang::SourceLocation body_begin_;
  clang::SourceLocation body_end_;
  int helper_depth_;
};

class LoopCollector : public clang::RecursiveASTVisitor<LoopCollector> {
 public:
  std::vector<const clang::Stmt*> bodies;

  bool VisitForStmt(clang::ForStmt* s) { return add(s->getBody()); }
  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    return add(s->getBody());
  }
  bool VisitWhileStmt(clang::WhileStmt* s) { return add(s->getBody()); }
  bool VisitDoStmt(clang::DoStmt* s) { return add(s->getBody()); }

 private:
  bool add(const clang::Stmt* body) {
    if (body != nullptr) bodies.push_back(body);
    return true;
  }
};

void emit_float_folds(clang::ASTContext& ast, const clang::FunctionDecl* fn,
                      FunctionSummary* out) {
  LoopCollector loops;
  loops.TraverseStmt(fn->getBody());
  const clang::SourceManager& sm = ast.getSourceManager();
  for (const clang::Stmt* body : loops.bodies) {
    ShardTouchScanner touch{/*helper_depth=*/1};
    touch.TraverseStmt(const_cast<clang::Stmt*>(body));
    if (!touch.touched) continue;
    FloatFoldScanner scanner{ast, out, sm.getFileLoc(body->getBeginLoc()),
                             sm.getFileLoc(body->getEndLoc()),
                             /*helper_depth=*/1};
    scanner.TraverseStmt(const_cast<clang::Stmt*>(body));
  }
}

// --- TU walk ----------------------------------------------------------

class SummaryVisitor : public clang::RecursiveASTVisitor<SummaryVisitor> {
 public:
  SummaryVisitor(clang::ASTContext& ast, TuSummary* out)
      : ast_{ast}, out_{out} {}

  bool VisitFunctionDecl(clang::FunctionDecl* fn) {
    if (!fn->doesThisDeclarationHaveABody() || fn->getBody() == nullptr)
      return true;
    if (fn->isImplicit()) return true;
    const clang::SourceManager& sm = ast_.getSourceManager();
    if (sm.isInSystemHeader(fn->getLocation())) return true;
    // Templates (and members of class templates) have no stable single
    // identity across TUs; their recognized effects surface as facts at
    // the instantiation sites that call them.
    if (fn->isTemplated() || fn->isTemplateInstantiation() ||
        fn->getPrimaryTemplate() != nullptr)
      return true;
    if (const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(fn)) {
      if (method->getParent()->isLambda()) return true;  // inlined below
      if (method->getParent()->getDescribedClassTemplate() != nullptr)
        return true;
    }
    llvm::SmallString<128> usr;
    if (clang::index::generateUSRForDecl(fn->getCanonicalDecl(), usr))
      return true;
    const clang::PresumedLoc pl =
        sm.getPresumedLoc(sm.getFileLoc(fn->getLocation()));
    if (pl.isInvalid()) return true;

    FunctionSummary summary;
    summary.usr = std::string{usr.str()};
    summary.name = fn->getQualifiedNameAsString();
    summary.file = absolute_path(pl.getFilename());
    summary.line = static_cast<int>(pl.getLine());
    if (has_clb_annotation(fn, kShardConfinedAnnot))
      summary.annotations.emplace_back(annot::kShardConfined);
    if (has_clb_annotation(fn, kBarrierPhaseAnnot))
      summary.annotations.emplace_back(annot::kBarrierPhase);
    if (has_clb_annotation(fn, kCanonicalCombineAnnot))
      summary.annotations.emplace_back(annot::kCanonicalCombine);
    if (has_clb_annotation(fn, kRankedFanoutAnnot))
      summary.annotations.emplace_back(annot::kRankedFanout);
    if (has_clb_annotation(fn, kWarmPathAnnot))
      summary.annotations.emplace_back(annot::kWarmPath);

    WorkerBodyCollector workers;
    workers.TraverseStmt(fn->getBody());
    BodyScanner scanner{ast_, &summary, fn, workers.bodies};
    scanner.TraverseStmt(fn->getBody());
    emit_float_folds(ast_, fn, &summary);

    dedupe(&summary);
    out_->functions.push_back(std::move(summary));
    return true;
  }

 private:
  static void dedupe(FunctionSummary* summary) {
    // Macro expansions can visit one spelled call several times; keep
    // the first occurrence of each identical edge/fact.
    std::set<std::tuple<std::string, int, int, bool, bool, bool, bool>>
        seen_edges;
    std::vector<CallEdge> calls;
    for (CallEdge& edge : summary->calls)
      if (seen_edges
              .emplace(edge.usr, edge.line, edge.col, edge.in_loop,
                       edge.guarded, edge.cold, edge.in_lambda)
              .second)
        calls.push_back(std::move(edge));
    summary->calls = std::move(calls);
    std::set<std::tuple<std::string, std::string, int, int>> seen_facts;
    std::vector<Fact> facts;
    for (Fact& fact : summary->facts)
      if (seen_facts.emplace(fact.kind, fact.detail, fact.line, fact.col)
              .second)
        facts.push_back(std::move(fact));
    summary->facts = std::move(facts);
  }

  clang::ASTContext& ast_;
  TuSummary* out_;
};

/// Records every non-system file the preprocessor enters — the dep list
/// whose content hashes decide summary freshness.
class DepCollector : public clang::PPCallbacks {
 public:
  DepCollector(const clang::SourceManager& sm, TuSummary* out)
      : sm_{sm}, out_{out} {}

  void FileChanged(clang::SourceLocation loc, FileChangeReason reason,
                   clang::SrcMgr::CharacteristicKind kind,
                   clang::FileID) override {
    if (reason != EnterFile) return;
    if (kind != clang::SrcMgr::C_User) return;
    const clang::FileID fid = sm_.getFileID(loc);
    const clang::FileEntry* entry = sm_.getFileEntryForID(fid);
    if (entry == nullptr) return;
    const std::string path = absolute_path(entry->getName());
    for (const DepHash& dep : out_->deps)
      if (dep.file == path) return;
    out_->deps.push_back(DepHash{path, 0});
  }

 private:
  const clang::SourceManager& sm_;
  TuSummary* out_;
};

class SummaryConsumer : public clang::ASTConsumer {
 public:
  explicit SummaryConsumer(TuSummary* out) : out_{out} {}

  void HandleTranslationUnit(clang::ASTContext& ast) override {
    SummaryVisitor visitor{ast, out_};
    visitor.TraverseDecl(ast.getTranslationUnitDecl());
  }

 private:
  TuSummary* out_;
};

class SummaryAction : public clang::ASTFrontendAction {
 public:
  explicit SummaryAction(TuSummary* out) : out_{out} {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& compiler, llvm::StringRef file) override {
    out_->tool = "cloudlb-analyzer";
    out_->tu = absolute_path(file);
    compiler.getPreprocessor().addPPCallbacks(std::make_unique<DepCollector>(
        compiler.getSourceManager(), out_));
    return std::make_unique<SummaryConsumer>(out_);
  }

 private:
  TuSummary* out_;
};

class SummaryActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit SummaryActionFactory(TuSummary* out) : out_{out} {}

  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<SummaryAction>(out_);
  }

 private:
  TuSummary* out_;
};

}  // namespace

std::unique_ptr<clang::tooling::FrontendActionFactory>
make_summary_action_factory(TuSummary* out) {
  return std::make_unique<SummaryActionFactory>(out);
}

}  // namespace cloudlb_analyzer

// Per-TU effect-summary model for the whole-program link step
// (docs/static-analysis.md, "whole-program propagation").
//
// Phase 1 (`cloudlb-analyzer --emit-summary=<dir>`) serializes one
// TuSummary per translation unit: the local call graph plus per-function
// effect facts. Phase 2 (`--link <dir>`) loads them all and propagates
// effects over the whole-program call graph (linker.h). This header and
// its .cc are deliberately LLVM-free — the model, the JSON codec and the
// content hashing build and unit-test everywhere, even when the clang
// frontend libraries (needed only by the emitter) are absent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloudlb_analyzer {

/// Bump on any incompatible change to the serialized shape. The link
/// step refuses summaries whose version does not match exactly — a stale
/// cache directory must fail loudly (exit 2, naming the file), never
/// degrade into silently weaker analysis.
inline constexpr int kSummarySchemaVersion = 1;

/// One file that contributed to a TU's analysis (the main file or a
/// non-system header it included), with the FNV-1a hash of its bytes at
/// emit time. The freshness check re-hashes every dep: any drift means
/// the summary must be re-emitted.
struct DepHash {
  std::string file;
  std::uint64_t hash = 0;

  friend bool operator==(const DepHash&, const DepHash&) = default;
};

/// One resolved call site inside a function body. Edges carry the
/// context flags the propagation needs to decide whether an effect flows
/// across them; unresolved targets (templates, system headers) are not
/// edges — the emitter converts recognized system calls into facts.
struct CallEdge {
  std::string usr;   ///< callee identity (clang USR), stable across TUs
  std::string name;  ///< callee spelling, for human-readable chains
  int line = 0;
  int col = 0;
  bool in_loop = false;   ///< lexically inside a loop body
  bool guarded = false;   ///< under an `in_window()` conditional
  bool cold = false;      ///< validation_enabled()-gated or CLB_* macro
  bool in_lambda = false; ///< deferred: inside a lambda body (except
                          ///< worker bodies handed to run_round)

  friend bool operator==(const CallEdge&, const CallEdge&) = default;
};

/// Effect-fact kinds, serialized as strings so the schema stays
/// readable and diffable in CI logs.
namespace fact_kind {
inline constexpr const char* kConfinedTouch = "confined_touch";
inline constexpr const char* kFloatFold = "float_fold";
inline constexpr const char* kBareSchedule = "bare_schedule";
inline constexpr const char* kAlloc = "alloc";
inline constexpr const char* kBlock = "block";
inline constexpr const char* kOverSbo = "over_sbo";
}  // namespace fact_kind

/// One local effect observation: a confined-state touch, a float fold, a
/// bare schedule_at, a heap allocation, a blocking call or an over-SBO
/// SmallFunction construction. The link step decides which facts become
/// findings once whole-program context is known.
struct Fact {
  std::string kind;    ///< one of fact_kind::*
  std::string detail;  ///< human detail: field, callee or type name
  int line = 0;
  int col = 0;
  bool in_loop = false;
  bool cold = false;       ///< CLB_CHECK*/validation paths: exempt
  bool amortized = false;  ///< alloc only: growth of a reserved vector

  friend bool operator==(const Fact&, const Fact&) = default;
};

/// Annotation names as serialized (macro names minus the CLB_ prefix,
/// lowercase): "shard_confined", "barrier_phase", "canonical_combine",
/// "ranked_fanout", "warm_path".
namespace annot {
inline constexpr const char* kShardConfined = "shard_confined";
inline constexpr const char* kBarrierPhase = "barrier_phase";
inline constexpr const char* kCanonicalCombine = "canonical_combine";
inline constexpr const char* kRankedFanout = "ranked_fanout";
inline constexpr const char* kWarmPath = "warm_path";
}  // namespace annot

/// Everything the link step needs to know about one function with a
/// visible body.
struct FunctionSummary {
  std::string usr;   ///< clang USR: cross-TU identity
  std::string name;  ///< qualified name, for messages
  std::string file;  ///< definition location
  int line = 0;
  std::vector<std::string> annotations;  ///< annot::* names
  std::vector<CallEdge> calls;
  std::vector<Fact> facts;

  friend bool operator==(const FunctionSummary&,
                         const FunctionSummary&) = default;
};

/// One translation unit's effect summary — the unit of caching: the
/// summary file for a TU whose content_hash still matches the tree is
/// reused without re-parsing the TU.
struct TuSummary {
  int schema_version = kSummarySchemaVersion;
  std::string tool;  ///< "cloudlb-analyzer"
  std::string tu;    ///< main source path
  /// Combined hash of the compile command and every dep file's bytes,
  /// folded in deps order (see summary_content_hash).
  std::uint64_t content_hash = 0;
  std::vector<DepHash> deps;
  std::vector<FunctionSummary> functions;

  friend bool operator==(const TuSummary&, const TuSummary&) = default;
};

/// FNV-1a over `data`, continuing from `seed` so hashes chain.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a(std::string_view data,
                                  std::uint64_t seed = kFnvOffset);

/// FNV-1a of a file's bytes. Returns false (leaving *out untouched) when
/// the file cannot be read.
[[nodiscard]] bool hash_file(const std::string& path, std::uint64_t* out);

/// The combined content hash stored in TuSummary::content_hash: the
/// compile command chained with every dep hash in deps order.
[[nodiscard]] std::uint64_t summary_content_hash(
    std::string_view compile_command, const std::vector<DepHash>& deps);

/// Re-hashes every dep file on disk and recomputes the combined hash:
/// true iff every dep is readable, unchanged, and the stored
/// content_hash matches `compile_command` + deps. A fresh summary's TU
/// never needs re-parsing.
[[nodiscard]] bool summary_is_fresh(const TuSummary& summary,
                                    std::string_view compile_command);

/// Serializes to the versioned JSON schema (stable field order, one
/// object per line for functions — diffable in CI logs).
[[nodiscard]] std::string to_json(const TuSummary& summary);

/// Parses a summary. Returns false with a human-readable *error (what
/// was malformed or which field was missing/mistyped) on any deviation —
/// truncation, bit flips, wrong types and unknown schema versions are
/// all loud failures, never best-effort recoveries.
[[nodiscard]] bool from_json(std::string_view json, TuSummary* out,
                             std::string* error);

/// File-level wrappers. Both return false with *error naming the path.
[[nodiscard]] bool write_summary_file(const std::string& path,
                                      const TuSummary& summary,
                                      std::string* error);
[[nodiscard]] bool read_summary_file(const std::string& path, TuSummary* out,
                                     std::string* error);

/// Maps a TU path to its summary file name inside the summary dir:
/// every path separator becomes '_', with a trailing ".json" (flat
/// directory, stable and filesystem-safe).
[[nodiscard]] std::string summary_file_name(std::string_view tu_path);

// --- Minimal JSON value model, exposed for the baseline file parser
// (linker.cc) and the robustness tests. Parses the subset the schema
// uses: objects, arrays, strings (with \uXXXX escapes rejected — the
// emitter never produces them), integers and booleans.

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  std::int64_t int_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (rejecting trailing garbage). Returns false
/// with *error describing the first deviation and its byte offset.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue* out,
                              std::string* error);

}  // namespace cloudlb_analyzer

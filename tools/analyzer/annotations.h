// Shared helpers for the shard-safety effect-system checks
// (analyzer-shard-confined, analyzer-barrier-phase, analyzer-float-merge,
// analyzer-unranked-fanout). The annotations are attached in source via
// the no-op macros of src/util/shard_annotations.h, which expand to
// __attribute__((annotate("clb::..."))) under clang — the only compiler
// this tool parses with — and to nothing elsewhere.
#pragma once

#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "llvm/ADT/StringRef.h"

namespace cloudlb_analyzer {

// Annotation strings, kept in sync with src/util/shard_annotations.h.
inline constexpr llvm::StringLiteral kShardConfinedAnnot{
    "clb::shard_confined"};
inline constexpr llvm::StringLiteral kBarrierPhaseAnnot{
    "clb::barrier_phase"};
inline constexpr llvm::StringLiteral kCanonicalCombineAnnot{
    "clb::canonical_combine"};
inline constexpr llvm::StringLiteral kRankedFanoutAnnot{"clb::ranked_fanout"};
inline constexpr llvm::StringLiteral kWarmPathAnnot{"clb::warm_path"};

// True when any redeclaration of `decl` carries annotate("name").
// Annotations live on the header declaration while the analyzer usually
// holds the .cc definition, so the whole redeclaration chain is walked.
inline bool has_clb_annotation(const clang::Decl* decl,
                               llvm::StringRef name) {
  if (decl == nullptr) return false;
  for (const clang::Decl* redecl : decl->redecls())
    for (const auto* attr : redecl->specific_attrs<clang::AnnotateAttr>())
      if (attr->getAnnotation() == name) return true;
  return false;
}

// The annotated record a confined member access lands in: the field's
// own annotation or its parent record's CLB_SHARD_CONFINED marking.
inline bool field_is_shard_confined(const clang::FieldDecl* field,
                                    bool* via_record = nullptr) {
  if (field == nullptr) return false;
  if (has_clb_annotation(field, kShardConfinedAnnot)) {
    if (via_record != nullptr) *via_record = false;
    return true;
  }
  const auto* record =
      llvm::dyn_cast_or_null<clang::CXXRecordDecl>(field->getParent());
  if (record != nullptr && has_clb_annotation(record, kShardConfinedAnnot)) {
    if (via_record != nullptr) *via_record = true;
    return true;
  }
  return false;
}

}  // namespace cloudlb_analyzer

// Whole-program effect propagation over per-TU summaries — the `--link`
// half of cloudlb-analyzer (docs/static-analysis.md, "whole-program
// propagation"). LLVM-free by design: the linker consumes only the
// serialized model in summary.h, so it builds and unit-tests everywhere.
//
// The pipeline: merge every TU's functions by USR into one program-wide
// call graph, condense it with Tarjan's SCC algorithm, then run five
// monotone propagations to fixpoint over the condensation:
//
//   analyzer-shard-confined  confined-state touches must be reachable
//                            from a shard-annotated entry point
//   analyzer-barrier-phase   CLB_BARRIER_PHASE calls reached from
//                            confined context through any helper depth
//                            must be in_window()-guarded at some hop
//   analyzer-float-merge     float folds over shard data must be
//                            reachable from a CLB_CANONICAL_COMBINE
//   analyzer-unranked-fanout bare schedule_at loops in (or called in a
//                            loop from) CLB_RANKED_FANOUT functions
//   analyzer-warm-path       no allocation/blocking fact transitively
//                            reachable from a CLB_WARM_PATH function
//
// Findings honor the shared NOLINT-CLOUDLB(...) suppression syntax (the
// linker re-reads the flagged source line) and a reviewed baseline file,
// and can be rendered as plain text or SARIF 2.1.0.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "summary.h"

namespace cloudlb_analyzer {

/// One whole-program finding, already anchored at an editable source
/// line (the relevant call site or fact location).
struct LinkFinding {
  std::string check;  ///< "analyzer-barrier-phase", ...
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;  ///< includes the root→…→sink chain

  friend bool operator==(const LinkFinding&, const LinkFinding&) = default;
};

/// One reviewed suppression from tools/analyzer/baseline.json. A
/// finding matches when the check names agree, `file` is a path suffix
/// of the finding's file (so baselines stay repo-relative), and — when
/// `line` is >= 0 — the lines agree.
struct BaselineEntry {
  std::string check;
  std::string file;
  int line = -1;  ///< -1 matches any line

  friend bool operator==(const BaselineEntry&, const BaselineEntry&) = default;
};

/// Parses the baseline file's `{"schema_version":1,"findings":[...]}`
/// shape; false with *error on any deviation.
[[nodiscard]] bool parse_baseline(std::string_view json,
                                  std::vector<BaselineEntry>* out,
                                  std::string* error);

struct LinkOptions {
  std::vector<BaselineEntry> baseline;
  /// Reads line `line` (1-based) of `path` for NOLINT matching; the
  /// default reads from disk. Injectable so unit tests can link
  /// synthetic graphs without touching the filesystem.
  std::function<bool(const std::string& path, int line, std::string* text)>
      read_line;
};

struct LinkStats {
  std::size_t tus = 0;
  std::size_t functions = 0;
  std::size_t sccs = 0;
  std::size_t suppressed = 0;  ///< dropped by NOLINT comments
  std::size_t baselined = 0;   ///< dropped by baseline entries
};

struct LinkResult {
  /// Findings that survived NOLINT and baseline filtering, sorted by
  /// (file, line, col, check) for deterministic output.
  std::vector<LinkFinding> findings;
  /// Baseline entries that matched nothing — stale suppressions the
  /// report calls out so the file shrinks as fixes land.
  std::vector<BaselineEntry> unmatched_baseline;
  LinkStats stats;
};

/// Accumulates TU summaries and links them.
class Linker {
 public:
  void add_summary(const TuSummary& summary);

  /// Runs all five propagations and filters the findings.
  [[nodiscard]] LinkResult link(const LinkOptions& options) const;

 private:
  std::vector<TuSummary> tus_;
};

/// Renders findings in the analyzer's one-line format
/// (`path:line:col: warning: msg [check]`) plus stats and stale-baseline
/// notes; returns the number of findings.
std::size_t print_link_result(const LinkResult& result, std::string* out);

/// Renders a SARIF 2.1.0 document. Paths under `root` (when non-empty)
/// become root-relative URIs so GitHub code scanning can anchor them.
[[nodiscard]] std::string to_sarif(const LinkResult& result,
                                   const std::string& root);

}  // namespace cloudlb_analyzer

// analyzer-ambient-state: type-checked detection of entropy and
// wall-clock sources that make a simulation run irreproducible. The
// regex linter catches the spelled-out forms; this check resolves the
// actual callee, so aliased or using-declared calls are caught and
// mentions inside strings or comments are not.
#include "analyzer.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-ambient-state";

class AmbientCallback : public MatchFinder::MatchCallback {
 public:
  explicit AmbientCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    if (const auto* construct =
            result.Nodes.getNodeAs<clang::CXXConstructExpr>("rng"))
      ctx_.report(*result.Context, construct->getBeginLoc(), kCheck,
                  "std::random_device draws ambient entropy; seed a "
                  "deterministic engine (util/rng.h) from the scenario "
                  "config instead");
    if (const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("clock"))
      ctx_.report(*result.Context, call->getBeginLoc(), kCheck,
                  "wall-clock/ambient call leaks host state into the "
                  "simulation; use Simulator::now() for time and seeded "
                  "RNG for randomness");
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_ambient_state(MatchFinder& finder, AnalyzerContext& ctx) {
  // MatchFinder keeps a non-owning pointer; the callback lives for the
  // duration of the process, as in every check in this tool.
  auto* callback = new AmbientCallback{ctx};

  finder.addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasName("::std::random_device")))))
          .bind("rng"),
      callback);

  // C-library entropy/clock entry points, resolved through the callee
  // declaration (typedefs and `using` do not hide them).
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::gettimeofday", "::clock_gettime", "::clock",
                   "::rand", "::srand", "::random", "::srandom", "::rand_r",
                   "::getentropy"))))
          .bind("clock"),
      callback);

  // std::chrono clock reads (high_resolution_clock is an alias of one of
  // these in both mainstream standard libraries).
  finder.addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::steady_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("clock"),
      callback);
}

}  // namespace cloudlb_analyzer

// Entry point for cloudlb-analyzer (see analyzer.h for the check list).
//
//   cloudlb-analyzer -p build src/sim/simulator.cc [more files...]
//   cloudlb-analyzer fixture.cc -- -std=c++17 -nostdinc -Imocks
//   cloudlb-analyzer --list-checks
//
// tools/analyzer/run_analyzer.py wraps the first form over the whole
// compile database; tests/analyzer/run_selftest.py uses the second for
// the hermetic fixture corpus.
#include "analyzer.h"

#include <cstring>

#include "clang/Basic/Diagnostic.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory g_category{"cloudlb-analyzer options"};

constexpr const char* kChecks[] = {
    "analyzer-ambient-state",  "analyzer-barrier-phase",
    "analyzer-discarded-status", "analyzer-float-merge",
    "analyzer-shard-confined", "analyzer-sim-time",
    "analyzer-stale-handle",   "analyzer-unordered-accum",
    "analyzer-unranked-fanout",
};

}  // namespace

int main(int argc, const char** argv) {
  // Handled before CommonOptionsParser, which insists on source paths.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-checks") == 0) {
      for (const char* check : kChecks) llvm::outs() << check << '\n';
      return 0;
    }
  }

  auto expected_parser =
      clang::tooling::CommonOptionsParser::create(argc, argv, g_category);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError());
    return 2;
  }
  clang::tooling::CommonOptionsParser& options = expected_parser.get();
  clang::tooling::ClangTool tool{options.getCompilations(),
                                 options.getSourcePathList()};
  // The analyzer's findings are the output; compiler diagnostics (e.g.
  // -Wunused-result triggered by the very patterns being analyzed) would
  // interleave and break machine parsing.
  clang::IgnoringDiagConsumer silent;
  tool.setDiagnosticConsumer(&silent);

  cloudlb_analyzer::AnalyzerContext ctx;
  clang::ast_matchers::MatchFinder finder;
  cloudlb_analyzer::register_ambient_state(finder, ctx);
  cloudlb_analyzer::register_discarded_status(finder, ctx);
  cloudlb_analyzer::register_sim_time(finder, ctx);
  cloudlb_analyzer::register_unordered_accum(finder, ctx);
  cloudlb_analyzer::register_stale_handle(finder, ctx);
  cloudlb_analyzer::register_shard_confined(finder, ctx);
  cloudlb_analyzer::register_barrier_phase(finder, ctx);
  cloudlb_analyzer::register_float_merge(finder, ctx);
  cloudlb_analyzer::register_unranked_fanout(finder, ctx);

  const int rc =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (rc != 0) {
    llvm::errs() << "cloudlb-analyzer: clang reported errors while "
                    "parsing the inputs (wrong -p dir or missing "
                    "-resource-dir?)\n";
    return 2;
  }
  return ctx.flush(llvm::outs()) > 0 ? 1 : 0;
}

// Entry point for cloudlb-analyzer (see analyzer.h for the check list).
//
//   cloudlb-analyzer -p build src/sim/simulator.cc [more files...]
//   cloudlb-analyzer fixture.cc -- -std=c++17 -nostdinc -Imocks
//   cloudlb-analyzer --list-checks
//
// Whole-program mode (docs/static-analysis.md, "whole-program
// propagation") runs in two phases:
//
//   cloudlb-analyzer --emit-summary=dir -p build src/... [files]
//   cloudlb-analyzer --link=dir [--baseline=f] [--sarif=f] [--root=d]
//
// --emit-summary parses each TU and writes one JSON effect summary per
// file, reusing any existing summary whose content hash still matches
// (unchanged TUs are never re-parsed). --link needs no clang at all: it
// loads the summaries, builds the merged call graph, and propagates
// effects to fixpoint (linker.h).
//
// tools/analyzer/run_analyzer.py wraps the per-TU form over the whole
// compile database; tests/analyzer/run_selftest.py uses the `--` form
// for the hermetic fixture corpus.
#include "analyzer.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "clang/Basic/Diagnostic.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "emit_summary.h"
#include "linker.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"
#include "summary.h"

namespace {

llvm::cl::OptionCategory g_category{"cloudlb-analyzer options"};

constexpr const char* kChecks[] = {
    "analyzer-ambient-state",  "analyzer-barrier-phase",
    "analyzer-discarded-status", "analyzer-float-merge",
    "analyzer-shard-confined", "analyzer-sim-time",
    "analyzer-stale-handle",   "analyzer-unordered-accum",
    "analyzer-unranked-fanout", "analyzer-warm-path",
};

/// Pulls `--name=value` out of argv (removing it) so the remaining
/// arguments stay digestible for CommonOptionsParser, which rejects
/// flags it does not know.
bool take_flag(int& argc, const char** argv, const char* name,
               std::string* value) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=')
      continue;
    *value = argv[i] + len + 1;
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    return true;
  }
  return false;
}

std::string join_command(const std::vector<std::string>& parts) {
  std::string joined;
  for (const std::string& part : parts) {
    if (!joined.empty()) joined += ' ';
    joined += part;
  }
  return joined;
}

[[nodiscard]] bool read_file(const std::string& path, std::string* out,
                             std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int run_emit(clang::tooling::CommonOptionsParser& options,
             const std::string& dir) {
  std::error_code ec = llvm::sys::fs::create_directories(dir);
  if (ec) {
    llvm::errs() << "cloudlb-analyzer: cannot create summary dir '" << dir
                 << "': " << ec.message() << '\n';
    return 2;
  }

  std::size_t reused = 0;
  std::size_t parsed = 0;
  for (const std::string& source : options.getSourcePathList()) {
    llvm::SmallString<256> abs{source};
    llvm::sys::fs::make_absolute(abs);
    llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
    const std::string abs_source{abs.str()};

    std::vector<clang::tooling::CompileCommand> commands =
        options.getCompilations().getCompileCommands(abs_source);
    if (commands.empty()) {
      llvm::errs() << "cloudlb-analyzer: no compile command for '"
                   << source << "'\n";
      return 2;
    }
    const std::string command = join_command(commands.front().CommandLine);

    const std::string out_path =
        dir + "/" + cloudlb_analyzer::summary_file_name(abs_source);
    {
      cloudlb_analyzer::TuSummary existing;
      std::string error;
      if (cloudlb_analyzer::read_summary_file(out_path, &existing, &error) &&
          cloudlb_analyzer::summary_is_fresh(existing, command)) {
        ++reused;
        continue;
      }
    }

    cloudlb_analyzer::TuSummary summary;
    summary.schema_version = cloudlb_analyzer::kSummarySchemaVersion;
    clang::tooling::ClangTool tool{options.getCompilations(), {abs_source}};
    clang::IgnoringDiagConsumer silent;
    tool.setDiagnosticConsumer(&silent);
    const int rc =
        tool.run(cloudlb_analyzer::make_summary_action_factory(&summary)
                     .get());
    if (rc != 0) {
      llvm::errs() << "cloudlb-analyzer: clang reported errors while "
                      "parsing '" << source << "'\n";
      return 2;
    }
    ++parsed;

    // The action recorded dep paths; the hashes and the overall content
    // hash happen here, where the compile command is known.
    bool dep_error = false;
    for (cloudlb_analyzer::DepHash& dep : summary.deps) {
      if (!cloudlb_analyzer::hash_file(dep.file, &dep.hash)) {
        llvm::errs() << "cloudlb-analyzer: cannot hash dep '" << dep.file
                     << "' of '" << source << "'\n";
        dep_error = true;
      }
    }
    if (dep_error) return 2;
    summary.content_hash =
        cloudlb_analyzer::summary_content_hash(command, summary.deps);

    std::string error;
    if (!cloudlb_analyzer::write_summary_file(out_path, summary, &error)) {
      llvm::errs() << "cloudlb-analyzer: " << error << '\n';
      return 2;
    }
  }
  llvm::outs() << "cloudlb-analyzer --emit-summary: re-parsed " << parsed
               << "/" << (parsed + reused) << " TUs (" << reused
               << " reused)\n";
  return 0;
}

int run_link(const std::string& dir, const std::string& baseline_path,
             const std::string& sarif_path, const std::string& root) {
  cloudlb_analyzer::Linker linker;
  std::error_code ec;
  std::size_t loaded = 0;
  for (llvm::sys::fs::directory_iterator it{dir, ec}, end; !ec && it != end;
       it.increment(ec)) {
    const std::string path = it->path();
    if (path.size() < 5 || path.substr(path.size() - 5) != ".json") continue;
    cloudlb_analyzer::TuSummary summary;
    std::string error;
    if (!cloudlb_analyzer::read_summary_file(path, &summary, &error)) {
      // Stale or corrupt summaries are refused loudly: silently linking
      // a partial program would report "clean" without meaning it.
      llvm::errs() << "cloudlb-analyzer: " << error << '\n';
      return 2;
    }
    linker.add_summary(summary);
    ++loaded;
  }
  if (ec) {
    llvm::errs() << "cloudlb-analyzer: cannot read summary dir '" << dir
                 << "': " << ec.message() << '\n';
    return 2;
  }
  if (loaded == 0) {
    llvm::errs() << "cloudlb-analyzer: no summaries found in '" << dir
                 << "' (run --emit-summary first)\n";
    return 2;
  }

  cloudlb_analyzer::LinkOptions link_options;
  if (!baseline_path.empty()) {
    std::string json;
    std::string error;
    if (!read_file(baseline_path, &json, &error)) {
      llvm::errs() << "cloudlb-analyzer: " << error << '\n';
      return 2;
    }
    if (!cloudlb_analyzer::parse_baseline(json, &link_options.baseline,
                                          &error)) {
      llvm::errs() << "cloudlb-analyzer: " << baseline_path << ": " << error
                   << '\n';
      return 2;
    }
  }

  const cloudlb_analyzer::LinkResult result = linker.link(link_options);

  if (!sarif_path.empty()) {
    std::ofstream out{sarif_path, std::ios::binary};
    if (!out) {
      llvm::errs() << "cloudlb-analyzer: cannot write SARIF to '"
                   << sarif_path << "'\n";
      return 2;
    }
    out << cloudlb_analyzer::to_sarif(result, root);
  }

  std::string text;
  const std::size_t findings =
      cloudlb_analyzer::print_link_result(result, &text);
  llvm::outs() << text;
  return findings > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, const char** argv) {
  // Handled before CommonOptionsParser, which insists on source paths.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-checks") == 0) {
      for (const char* check : kChecks) llvm::outs() << check << '\n';
      return 0;
    }
  }

  std::string summary_dir;
  std::string link_dir;
  std::string baseline_path;
  std::string sarif_path;
  std::string root;
  const bool emit_mode =
      take_flag(argc, argv, "--emit-summary", &summary_dir);
  const bool link_mode = take_flag(argc, argv, "--link", &link_dir);
  take_flag(argc, argv, "--baseline", &baseline_path);
  take_flag(argc, argv, "--sarif", &sarif_path);
  take_flag(argc, argv, "--root", &root);
  if (emit_mode && link_mode) {
    llvm::errs() << "cloudlb-analyzer: --emit-summary and --link are "
                    "separate phases; pass one at a time\n";
    return 2;
  }
  if (link_mode) return run_link(link_dir, baseline_path, sarif_path, root);

  auto expected_parser =
      clang::tooling::CommonOptionsParser::create(argc, argv, g_category);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError());
    return 2;
  }
  clang::tooling::CommonOptionsParser& options = expected_parser.get();
  if (emit_mode) return run_emit(options, summary_dir);

  clang::tooling::ClangTool tool{options.getCompilations(),
                                 options.getSourcePathList()};
  // The analyzer's findings are the output; compiler diagnostics (e.g.
  // -Wunused-result triggered by the very patterns being analyzed) would
  // interleave and break machine parsing.
  clang::IgnoringDiagConsumer silent;
  tool.setDiagnosticConsumer(&silent);

  cloudlb_analyzer::AnalyzerContext ctx;
  clang::ast_matchers::MatchFinder finder;
  cloudlb_analyzer::register_ambient_state(finder, ctx);
  cloudlb_analyzer::register_discarded_status(finder, ctx);
  cloudlb_analyzer::register_sim_time(finder, ctx);
  cloudlb_analyzer::register_unordered_accum(finder, ctx);
  cloudlb_analyzer::register_stale_handle(finder, ctx);
  cloudlb_analyzer::register_shard_confined(finder, ctx);
  cloudlb_analyzer::register_barrier_phase(finder, ctx);
  cloudlb_analyzer::register_float_merge(finder, ctx);
  cloudlb_analyzer::register_unranked_fanout(finder, ctx);

  const int rc =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (rc != 0) {
    llvm::errs() << "cloudlb-analyzer: clang reported errors while "
                    "parsing the inputs (wrong -p dir or missing "
                    "-resource-dir?)\n";
    return 2;
  }
  return ctx.flush(llvm::outs()) > 0 ? 1 : 0;
}

// analyzer-barrier-phase: CLB_BARRIER_PHASE functions (LB steps, window
// merges, partition totals, cross-shard audits) may only run between
// windows, on the coordinating thread, where every shard's state is
// quiescent and cross-shard reads are exact. Calling one from shard-
// window execution context — a CLB_SHARD_CONFINED function, or the task
// closure handed to WorkerTeam::run_round — reads other shards' private
// state mid-window, racing their engines.
//
// Guarded calls are exempt: a call dominated by an `in_window()` test
// (either branch — the runtime's idiom is `if (!host_->in_window())
// maybe_complete_...(t)`, which proves the caller checked the regime
// before crossing into barrier work) is the sanctioned crossover, and
// the test in the condition itself (`!in_window() && finished_total()
// == n`) is part of that guard. Lambdas created inside a confined
// function do NOT inherit its context unless handed to run_round: a
// scheduled closure runs whenever its engine executes it, so no context
// fact about the creating body applies (same reasoning as
// analyzer-stale-handle's treatment of lambda bodies). Calls from
// CLB_BARRIER_PHASE or unannotated functions are never flagged.
#include "analyzer.h"
#include "annotations.h"

#include <set>

#include "clang/AST/RecursiveASTVisitor.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-barrier-phase";

// Does this expression subtree mention the window-regime probe
// (`in_window()` or the backing flag)?
class WindowProbeFinder
    : public clang::RecursiveASTVisitor<WindowProbeFinder> {
 public:
  bool found = false;

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee != nullptr && callee->getName() == "in_window") found = true;
    return !found;
  }

  bool VisitMemberExpr(clang::MemberExpr* member) {
    const llvm::StringRef name = member->getMemberDecl()->getName();
    if (name == "in_window" || name == "in_window_") found = true;
    return !found;
  }
};

bool mentions_in_window(const clang::Expr* cond) {
  if (cond == nullptr) return false;
  WindowProbeFinder finder;
  finder.TraverseStmt(
      const_cast<clang::Expr*>(cond));
  return finder.found;
}

// Collects the bodies of lambdas handed to WorkerTeam::run_round — the
// one entry that runs its closure as a shard-window task on every
// worker. parallel_for / parallel_map are deliberately NOT included:
// their grid cells own a private Simulator/Machine each, so driving a
// whole run (start/drive, both barrier-phase) inside a cell is the
// intended design, not a regime violation.
class WorkerBodyCollector
    : public clang::RecursiveASTVisitor<WorkerBodyCollector> {
 public:
  std::set<const clang::Stmt*> bodies;

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || callee->getName() != "run_round") return true;
    for (const clang::Expr* arg : call->arguments()) {
      LambdaCollector lambdas{bodies};
      lambdas.TraverseStmt(const_cast<clang::Expr*>(arg));
    }
    return true;
  }

 private:
  class LambdaCollector
      : public clang::RecursiveASTVisitor<LambdaCollector> {
   public:
    explicit LambdaCollector(std::set<const clang::Stmt*>& out)
        : out_{out} {}
    bool VisitLambdaExpr(clang::LambdaExpr* lambda) {
      if (lambda->getBody() != nullptr) out_.insert(lambda->getBody());
      return true;
    }

   private:
    std::set<const clang::Stmt*>& out_;
  };
};

class BarrierCallScanner
    : public clang::RecursiveASTVisitor<BarrierCallScanner> {
 public:
  BarrierCallScanner(AnalyzerContext& ctx, clang::ASTContext& ast,
                     bool confined,
                     const std::set<const clang::Stmt*>& worker_bodies)
      : ctx_{ctx},
        ast_{ast},
        confined_{confined},
        worker_bodies_{worker_bodies} {}

  bool TraverseIfStmt(clang::IfStmt* stmt) {
    const bool guards = mentions_in_window(stmt->getCond());
    if (guards) ++guard_depth_;
    const bool keep =
        clang::RecursiveASTVisitor<BarrierCallScanner>::TraverseIfStmt(
            stmt);
    if (guards) --guard_depth_;
    return keep;
  }

  bool TraverseLambdaExpr(clang::LambdaExpr* lambda) {
    const bool saved = confined_;
    confined_ = worker_bodies_.count(lambda->getBody()) != 0;
    const bool keep =
        clang::RecursiveASTVisitor<BarrierCallScanner>::TraverseLambdaExpr(
            lambda);
    confined_ = saved;
    return keep;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    if (!confined_ || guard_depth_ > 0) return true;
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr ||
        !has_clb_annotation(callee, kBarrierPhaseAnnot))
      return true;
    ctx_.report(ast_, call->getBeginLoc(), kCheck,
                "'" + callee->getNameAsString() +
                    "' is barrier-phase (CLB_BARRIER_PHASE) but is "
                    "called from shard-window execution context; run it "
                    "between windows on the coordinating thread, or gate "
                    "the crossover on in_window()");
    return true;
  }

 private:
  AnalyzerContext& ctx_;
  clang::ASTContext& ast_;
  bool confined_;
  int guard_depth_ = 0;
  const std::set<const clang::Stmt*>& worker_bodies_;
};

class BarrierPhaseCallback : public MatchFinder::MatchCallback {
 public:
  explicit BarrierPhaseCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    WorkerBodyCollector workers;
    workers.TraverseStmt(fn->getBody());
    const bool confined = has_clb_annotation(fn, kShardConfinedAnnot);
    if (!confined && workers.bodies.empty()) return;
    BarrierCallScanner scanner{ctx_, *result.Context, confined,
                               workers.bodies};
    scanner.TraverseStmt(fn->getBody());
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_barrier_phase(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new BarrierPhaseCallback{ctx};
  finder.addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt())).bind("fn"),
      callback);
}

}  // namespace cloudlb_analyzer

// analyzer-unordered-accum: a range-for over std::unordered_{map,set}
// whose body folds values in iteration order. Hash order is libc++-vs-
// libstdc++ (and pointer-salt) dependent, so two defect shapes break
// bit-reproducibility:
//
//   * a floating accumulator updated per element (float addition is not
//     associative — the sum depends on visit order), and
//   * results appended to a sequence container (the output order IS the
//     hash order).
//
// Integer accumulation is order-independent and allowed, as is any
// accumulator declared inside the loop body (reset every iteration).
// One level of helper calls is scanned: a body that calls a function
// whose visible definition does the accumulation through a by-reference
// parameter or a member is flagged at the call site.
#include "analyzer.h"

#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-unordered-accum";

bool is_unordered_container(clang::QualType type) {
  type = type.getNonReferenceType().getCanonicalType();
  const auto* record = type->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  const llvm::StringRef name = record->getName();
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

bool is_floating(clang::QualType type) {
  return type.getNonReferenceType()->isFloatingType();
}

// Does `decl` live inside the source range [begin, end) of the loop
// body? Locals of the loop restart every iteration, so order cannot
// leak through them.
bool declared_within(const clang::Decl* decl, const clang::SourceManager& sm,
                     clang::SourceLocation begin, clang::SourceLocation end) {
  if (decl == nullptr) return false;
  const clang::SourceLocation loc = sm.getFileLoc(decl->getLocation());
  return sm.getFileID(loc) == sm.getFileID(begin) &&
         sm.getFileOffset(loc) >= sm.getFileOffset(begin) &&
         sm.getFileOffset(loc) < sm.getFileOffset(end);
}

// Scans one statement tree for order-dependent accumulation. With
// `helper_depth` > 0, calls into functions with visible bodies are
// scanned too (against their params/members only).
class AccumScanner : public clang::RecursiveASTVisitor<AccumScanner> {
 public:
  AccumScanner(clang::ASTContext& ast, clang::SourceLocation body_begin,
               clang::SourceLocation body_end, int helper_depth)
      : ast_{ast},
        body_begin_{body_begin},
        body_end_{body_end},
        helper_depth_{helper_depth} {}

  // First offending site (invalid when clean) and its message.
  clang::SourceLocation hit_loc;
  std::string hit_message;

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isCompoundAssignmentOp()) return true;
    const clang::Expr* lhs = op->getLHS()->IgnoreParenImpCasts();
    if (!is_floating(lhs->getType())) return true;
    if (target_is_loop_local(lhs)) return true;
    record(op->getBeginLoc(),
           "floating-point accumulator updated in unordered (hash) "
           "iteration order; float addition is not associative — iterate "
           "a sorted view or accumulate into an exact/integer form");
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr) return true;
    const llvm::StringRef name = method->getName();
    if (name != "push_back" && name != "emplace_back") return true;
    const clang::Expr* object =
        call->getImplicitObjectArgument()->IgnoreParenImpCasts();
    if (target_is_loop_local(object)) return true;
    record(call->getBeginLoc(),
           "results appended to a sequence container in unordered (hash) "
           "iteration order; collect then sort, or iterate a sorted view");
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    if (helper_depth_ <= 0) return true;
    if (llvm::isa<clang::CXXMemberCallExpr>(call)) return true;
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def->getBody() == nullptr) return true;
    // Scan the helper against its own params/members: passing loop state
    // by reference and accumulating inside is the same defect one frame
    // down. Loop-local exemption does not apply there (locations lie in
    // a different function), so use an empty range.
    AccumScanner inner{ast_, clang::SourceLocation{},
                       clang::SourceLocation{}, helper_depth_ - 1};
    inner.TraverseStmt(def->getBody());
    if (inner.hit_loc.isValid())
      record(call->getBeginLoc(),
             "call to '" + callee->getNameAsString() +
                 "' accumulates order-dependent state (see its "
                 "definition) while iterating an unordered container");
    return true;
  }

 private:
  void record(clang::SourceLocation loc, std::string message) {
    if (hit_loc.isInvalid()) {
      hit_loc = loc;
      hit_message = std::move(message);
    }
  }

  // The written-to entity, when it is a plain variable declared inside
  // the loop body (then order cannot escape one iteration).
  bool target_is_loop_local(const clang::Expr* target) const {
    if (body_begin_.isInvalid()) return false;
    if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(target))
      return declared_within(ref->getDecl(), ast_.getSourceManager(),
                             body_begin_, body_end_);
    return false;  // members and everything else outlive the iteration
  }

  clang::ASTContext& ast_;
  clang::SourceLocation body_begin_;
  clang::SourceLocation body_end_;
  int helper_depth_;
};

class UnorderedForCallback : public MatchFinder::MatchCallback {
 public:
  explicit UnorderedForCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* loop =
        result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop");
    if (loop == nullptr || loop->getBody() == nullptr) return;
    const clang::Expr* range = loop->getRangeInit();
    if (range == nullptr || !is_unordered_container(range->getType()))
      return;
    const clang::SourceManager& sm = result.Context->getSourceManager();
    AccumScanner scanner{*result.Context,
                         sm.getFileLoc(loop->getBody()->getBeginLoc()),
                         sm.getFileLoc(loop->getBody()->getEndLoc()),
                         /*helper_depth=*/1};
    scanner.TraverseStmt(const_cast<clang::Stmt*>(loop->getBody()));
    if (scanner.hit_loc.isValid())
      ctx_.report(*result.Context, scanner.hit_loc, kCheck,
                  scanner.hit_message);
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_unordered_accum(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new UnorderedForCallback{ctx};
  finder.addMatcher(cxxForRangeStmt().bind("loop"), callback);
}

}  // namespace cloudlb_analyzer

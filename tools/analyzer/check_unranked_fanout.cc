// analyzer-unranked-fanout: a CLB_RANKED_FANOUT function schedules a
// synchronized per-chare (or per-shard) burst — many events at the same
// instant whose downstream sends can tie on (time, stamp) at a common
// destination. Bit-identity with the legacy single-engine execution
// then rests on every event carrying an explicit rank: schedule_at_ranked
// pins one, schedule_at_stamped inherits the scheduling context's, but
// bare EngineCore::schedule_at / schedule_after stamp the current heap
// order, which varies with shard count. Inside a loop in a ranked-fanout
// function, a bare schedule on an EngineCore is therefore a determinism
// bug, not a style nit.
//
// The receiver's *static* type decides: the legacy facade (Simulator)
// inherits these methods from EngineCore but runs single-engine, where
// heap order IS the canonical order — `sim_->schedule_after(...)` in the
// legacy branch of a fan-out is correct and exempt.
#include "analyzer.h"
#include "annotations.h"

#include "clang/AST/RecursiveASTVisitor.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-unranked-fanout";

class FanoutScanner : public clang::RecursiveASTVisitor<FanoutScanner> {
 public:
  FanoutScanner(AnalyzerContext& ctx, clang::ASTContext& ast)
      : ctx_{ctx}, ast_{ast} {}

  bool TraverseForStmt(clang::ForStmt* s) { return loop(s); }
  bool TraverseCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    return loop(s);
  }
  bool TraverseWhileStmt(clang::WhileStmt* s) { return loop(s); }
  bool TraverseDoStmt(clang::DoStmt* s) { return loop(s); }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    if (loop_depth_ == 0) return true;
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr) return true;
    const llvm::StringRef name = method->getName();
    if (name != "schedule_at" && name != "schedule_after") return true;
    const clang::Expr* object = call->getImplicitObjectArgument();
    if (object == nullptr) return true;
    clang::QualType type =
        object->IgnoreParenImpCasts()->getType().getNonReferenceType();
    if (type->isPointerType()) type = type->getPointeeType();
    const auto* record = type->getAsCXXRecordDecl();
    if (record == nullptr || record->getName() != "EngineCore")
      return true;
    ctx_.report(ast_, call->getBeginLoc(), kCheck,
                "bare EngineCore::" + name.str() +
                    " in a fan-out loop of a CLB_RANKED_FANOUT function "
                    "stamps heap order, which varies with the shard "
                    "count; use schedule_at_ranked (pin the legacy rank) "
                    "or schedule_at_stamped (inherit it)");
    return true;
  }

 private:
  // Only the body schedules per-element events; the init / condition /
  // increment run outside the burst and are not scanned.
  template <typename Loop>
  bool loop(Loop* s) {
    ++loop_depth_;
    const bool keep = s->getBody() == nullptr || TraverseStmt(s->getBody());
    --loop_depth_;
    return keep;
  }

  AnalyzerContext& ctx_;
  clang::ASTContext& ast_;
  int loop_depth_ = 0;
};

class RankedFanoutCallback : public MatchFinder::MatchCallback {
 public:
  explicit RankedFanoutCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody()) return;
    if (!has_clb_annotation(fn, kRankedFanoutAnnot)) return;
    FanoutScanner scanner{ctx_, *result.Context};
    scanner.TraverseStmt(fn->getBody());
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_unranked_fanout(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new RankedFanoutCallback{ctx};
  finder.addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt())).bind("fn"),
      callback);
}

}  // namespace cloudlb_analyzer

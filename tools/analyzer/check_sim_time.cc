// analyzer-sim-time: SimTime is the strong type that keeps virtual time
// exact (int64 nanoseconds, constexpr factories). Two idioms quietly
// bypass that discipline and are flagged here:
//
//   t * 1.5            a bare floating literal scales a duration through
//                      the double round-trip; name the factor or build
//                      the duration with a SimTime factory
//   t.ns() == 500      comparing the raw nanosecond count against a bare
//                      nonzero literal; compare SimTime values instead
//                      (SimTime::nanos(500) == t). Zero is exempt: the
//                      `.ns() == 0` emptiness probe is unambiguous.
#include "analyzer.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-sim-time";

class SimTimeCallback : public MatchFinder::MatchCallback {
 public:
  explicit SimTimeCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    if (const auto* scale =
            result.Nodes.getNodeAs<clang::CXXOperatorCallExpr>("scale"))
      ctx_.report(*result.Context, scale->getBeginLoc(), kCheck,
                  "bare floating literal scales a SimTime; hoist the "
                  "factor into a named constant or construct the duration "
                  "with a SimTime factory (from_seconds/millis/nanos)");
    if (const auto* cmp =
            result.Nodes.getNodeAs<clang::BinaryOperator>("rawcmp"))
      ctx_.report(*result.Context, cmp->getBeginLoc(), kCheck,
                  "raw .ns() count compared against a bare literal; "
                  "compare SimTime values directly, e.g. "
                  "t == SimTime::nanos(N)");
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_sim_time(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new SimTimeCallback{ctx};

  const auto sim_time_type = hasType(hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasName("::cloudlb::SimTime"))))));
  const auto float_literal = ignoringParenImpCasts(
      anyOf(floatLiteral(),
            unaryOperator(hasOperatorName("-"),
                          hasUnaryOperand(
                              ignoringParenImpCasts(floatLiteral())))));

  // t * 1.5 / 1.5 * t — the result is a SimTime, one operand is a bare
  // floating literal. Named constants and variables are fine.
  finder.addMatcher(cxxOperatorCallExpr(hasAnyOperatorName("*", "/"),
                                        sim_time_type,
                                        hasEitherOperand(float_literal))
                        .bind("scale"),
                    callback);

  // t.ns() <op> <nonzero integer literal> in either operand order.
  const auto raw_ns = ignoringParenImpCasts(cxxMemberCallExpr(callee(
      cxxMethodDecl(hasName("ns"), ofClass(hasName("::cloudlb::SimTime"))))));
  const auto nonzero_literal =
      ignoringParenImpCasts(integerLiteral(unless(equals(0))));
  finder.addMatcher(
      binaryOperator(isComparisonOperator(),
                     hasOperands(raw_ns, nonzero_literal))
          .bind("rawcmp"),
      callback);
}

}  // namespace cloudlb_analyzer

// analyzer-discarded-status: a status-returning CloudLB API called in
// statement position with the result thrown away. Complements compiler
// -Wunused-result in two ways: it also covers a named list of APIs that
// may lack [[nodiscard]] in older checkouts or third-party forks, and it
// reports in the analyzer's unified format with NOLINT-CLOUDLB
// suppression. An explicit cast (static_cast<void>) is the blessed way
// to discard on purpose and is never flagged.
#include "analyzer.h"

#include "clang/AST/ParentMapContext.h"

namespace cloudlb_analyzer {

namespace {

using namespace clang::ast_matchers;

constexpr char kCheck[] = "analyzer-discarded-status";

// Walks up through value-preserving wrappers; true when the expression's
// value reaches statement position unused.
bool is_discarded(const clang::Expr* e, clang::ASTContext& ast) {
  const clang::Stmt* cur = e;
  for (;;) {
    const auto parents = ast.getParents(*cur);
    if (parents.size() != 1) return false;
    const clang::Stmt* parent = parents[0].get<clang::Stmt>();
    if (parent == nullptr) return false;  // decl initializer etc. — used
    if (llvm::isa<clang::ExplicitCastExpr>(parent))
      return false;  // includes static_cast<void>: an intentional discard
    if (llvm::isa<clang::ImplicitCastExpr>(parent) ||
        llvm::isa<clang::ParenExpr>(parent) ||
        llvm::isa<clang::ExprWithCleanups>(parent) ||
        llvm::isa<clang::ConstantExpr>(parent)) {
      cur = parent;
      continue;
    }
    if (llvm::isa<clang::CompoundStmt>(parent)) return true;
    if (const auto* s = llvm::dyn_cast<clang::IfStmt>(parent))
      return cur == s->getThen() || cur == s->getElse();
    if (const auto* s = llvm::dyn_cast<clang::WhileStmt>(parent))
      return cur == s->getBody();
    if (const auto* s = llvm::dyn_cast<clang::DoStmt>(parent))
      return cur == s->getBody();
    if (const auto* s = llvm::dyn_cast<clang::ForStmt>(parent))
      return cur == s->getBody() || cur == s->getInc() || cur == s->getInit();
    if (const auto* s = llvm::dyn_cast<clang::CXXForRangeStmt>(parent))
      return cur == s->getBody();
    if (const auto* s = llvm::dyn_cast<clang::SwitchCase>(parent))
      return cur == s->getSubStmt();
    if (const auto* s = llvm::dyn_cast<clang::LabelStmt>(parent))
      return cur == s->getSubStmt();
    if (const auto* s = llvm::dyn_cast<clang::BinaryOperator>(parent))
      return s->getOpcode() == clang::BO_Comma && cur == s->getLHS();
    return false;
  }
}

class DiscardCallback : public MatchFinder::MatchCallback {
 public:
  explicit DiscardCallback(AnalyzerContext& ctx) : ctx_{ctx} {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("call");
    if (call == nullptr || !is_discarded(call, *result.Context)) return;
    const clang::FunctionDecl* callee = call->getDirectCallee();
    const std::string name =
        callee != nullptr ? callee->getQualifiedNameAsString() : "call";
    ctx_.report(*result.Context, call->getBeginLoc(), kCheck,
                "result of '" + name +
                    "' is discarded; act on the status or make the "
                    "discard explicit with static_cast<void>(...)");
  }

 private:
  AnalyzerContext& ctx_;
};

}  // namespace

void register_discarded_status(MatchFinder& finder, AnalyzerContext& ctx) {
  auto* callback = new DiscardCallback{ctx};
  // Anything annotated [[nodiscard]] plus the named status APIs, so the
  // check still bites on checkouts where the annotations are missing.
  finder.addMatcher(
      callExpr(callee(functionDecl(
                   unless(returns(voidType())),
                   anyOf(hasAttr(clang::attr::WarnUnusedResult),
                         hasAnyName("::cloudlb::Simulator::cancel",
                                    "::cloudlb::Simulator::step",
                                    "::cloudlb::FaultPlan::parse",
                                    "::cloudlb::RuntimeJob::add_chare",
                                    "::cloudlb::parallel_map",
                                    "attempt_migration",
                                    "retry_or_abandon")))))
          .bind("call"),
      callback);
}

}  // namespace cloudlb_analyzer

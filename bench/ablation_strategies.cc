// Ablation: every strategy in the library on the paper's core scenario
// (Jacobi2D on 8 cores, 2-core Wave2D interference).
//
// Expected ordering: ia-refine ≈ gain-gated < greedy < null ≈ refine
// (classic RefineLB is blind to the background load and does nothing;
// greedy balances but thrashes chares and also ignores O_p; random is the
// chaos baseline).

#include <iostream>

#include "bench_common.h"
#include "core/balancer_factory.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: strategy comparison (Jacobi2D, 8 cores)\n\n";
  const std::vector<std::string> names = balancer_names();
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      names.size(), parse_jobs(argc, argv), [&](std::size_t i) {
        return run_penalty_experiment(grid_config("jacobi2d", names[i], 8));
      });
  Table table({"balancer", "app penalty %", "BG penalty %",
               "energy overhead %", "migrations"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const PenaltyResult& r = results[i];
    table.add_row({names[i], Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   Table::num(r.energy_overhead_pct, 1),
                   std::to_string(r.combined.lb_migrations)});
  }
  emit(table, "strategy comparison");
  return 0;
}

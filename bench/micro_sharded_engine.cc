// Microbenchmark: sharded parallel event engine vs the legacy serial
// engine (docs/sharded-engine.md). Drives a synthetic message-passing
// workload — self-timed entities firing cross-entity messages — at
// 1k/10k/100k-entity shapes, and reports events/sec per shard count in
// serial and parallel window execution, plus a window-width sensitivity
// sweep (same workload, varying lookahead).
//
// --jobs N sets the worker-team size for the parallel rows (default 1;
// 0 = all hardware threads). Results are deterministic for every value;
// only the wall-clock changes.

#include <chrono>
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "util/sim_time.h"

namespace {

using namespace cloudlb;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Shape {
  const char* name;
  int entities;
  int ticks;
};

constexpr Shape kShapes[] = {
    {"1k", 1'000, 200},
    {"10k", 10'000, 50},
    {"100k", 100'000, 10},
};

/// Message latency floor — fixed across every run (including the window
/// sweep) so all configurations execute the identical event population.
constexpr SimTime kLatency = SimTime::micros(400);

struct Measured {
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  double wall_seconds = 0.0;
  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

/// The workload on the sharded engine. Entities are block-partitioned
/// over shards; every tick posts to a hashed peer (cross-shard when the
/// peer lives elsewhere) and reschedules itself a hashed few us later.
struct ShardedWorkload {
  ShardedSimulator& sim;
  int entities;
  int ticks;

  int shard_of(int e) const { return e * sim.shards() / entities; }

  void tick(int e, int k) {
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(e) << 20) ^
              static_cast<std::uint64_t>(k));
    const int peer =
        static_cast<int>(h % static_cast<std::uint64_t>(entities));
    if (peer != e) {
      sim.post(shard_of(e), shard_of(peer),
               kLatency + SimTime::nanos(static_cast<std::int64_t>(h % 2000)),
               [] {});
    }
    if (k + 1 < ticks) {
      sim.schedule_after(
          shard_of(e),
          SimTime::nanos(2000 + static_cast<std::int64_t>(h % 8000)),
          [this, e, k] { tick(e, k + 1); });
    }
  }

  void start() {
    for (int e = 0; e < entities; ++e)
      sim.schedule_at(shard_of(e), SimTime::nanos(100 + 13 * e),
                      [this, e] { tick(e, 0); });
  }
};

Measured run_sharded(const Shape& shape, int shards, bool parallel,
                     int workers, SimTime lookahead) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = lookahead;
  cfg.parallel = parallel;
  cfg.workers = workers;
  ShardedSimulator sim{cfg};
  sim.reserve(static_cast<std::size_t>(shape.entities / shards + 64),
              static_cast<std::size_t>(shape.entities / shards + 64));
  ShardedWorkload w{sim, shape.entities, shape.ticks};
  w.start();
  const auto begin = std::chrono::steady_clock::now();
  sim.run();
  const auto end = std::chrono::steady_clock::now();
  Measured m;
  m.events = sim.executed();
  m.windows = sim.windows_run();
  m.wall_seconds = std::chrono::duration<double>(end - begin).count();
  return m;
}

/// Same workload on the legacy engine — the no-shard reference.
struct LegacyWorkload {
  Simulator& sim;
  int entities;
  int ticks;

  void tick(int e, int k) {
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(e) << 20) ^
              static_cast<std::uint64_t>(k));
    const int peer =
        static_cast<int>(h % static_cast<std::uint64_t>(entities));
    if (peer != e) {
      sim.schedule_after(
          kLatency + SimTime::nanos(static_cast<std::int64_t>(h % 2000)),
          [] {});
    }
    if (k + 1 < ticks) {
      sim.schedule_after(
          SimTime::nanos(2000 + static_cast<std::int64_t>(h % 8000)),
          [this, e, k] { tick(e, k + 1); });
    }
  }
};

Measured run_legacy(const Shape& shape) {
  Simulator sim;
  sim.reserve(static_cast<std::size_t>(shape.entities + 64),
              static_cast<std::size_t>(shape.entities + 64));
  LegacyWorkload w{sim, shape.entities, shape.ticks};
  for (int e = 0; e < shape.entities; ++e)
    sim.schedule_at(SimTime::nanos(100 + 13 * e), [&w, e] { w.tick(e, 0); });
  const auto begin = std::chrono::steady_clock::now();
  sim.run();
  const auto end = std::chrono::steady_clock::now();
  Measured m;
  m.events = sim.executed();
  m.wall_seconds = std::chrono::duration<double>(end - begin).count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  const int jobs = parse_jobs(argc, argv);
  const SimTime lookahead = SimTime::micros(50);
  std::cout << "Sharded engine microbenchmark (lookahead "
            << lookahead.to_string() << ", --jobs " << jobs << ")\n\n";

  Table table({"shape", "config", "events", "windows", "wall ms",
               "events/sec", "vs legacy"});
  for (const Shape& shape : kShapes) {
    const Measured legacy = run_legacy(shape);
    table.add_row({shape.name, "legacy serial engine",
                   std::to_string(legacy.events), "-",
                   Table::num(legacy.wall_seconds * 1e3, 1),
                   Table::num(legacy.events_per_sec() / 1e6, 2) + "M",
                   Table::num(1.0, 2)});
    for (const int shards : {1, 2, 4, 8}) {
      const Measured m =
          run_sharded(shape, shards, /*parallel=*/false, 1, lookahead);
      table.add_row(
          {shape.name, std::to_string(shards) + " shard(s), serial",
           std::to_string(m.events), std::to_string(m.windows),
           Table::num(m.wall_seconds * 1e3, 1),
           Table::num(m.events_per_sec() / 1e6, 2) + "M",
           Table::num(m.events_per_sec() / legacy.events_per_sec(), 2)});
    }
    for (const int shards : {4, 8}) {
      const Measured m =
          run_sharded(shape, shards, /*parallel=*/true, jobs, lookahead);
      table.add_row(
          {shape.name,
           std::to_string(shards) + " shard(s), parallel x" +
               std::to_string(jobs),
           std::to_string(m.events), std::to_string(m.windows),
           Table::num(m.wall_seconds * 1e3, 1),
           Table::num(m.events_per_sec() / 1e6, 2) + "M",
           Table::num(m.events_per_sec() / legacy.events_per_sec(), 2)});
    }
  }
  emit(table, "events/sec by shard count");

  // Window-width sensitivity: identical workload (the message latency
  // floor stays at kLatency), only the barrier cadence varies. Narrow
  // windows buy nothing here but barrier overhead; the sweet spot is the
  // largest width the latency floor admits.
  Table sweep({"shape", "shards", "lookahead (us)", "windows",
               "events/window", "wall ms", "events/sec"});
  const Shape& shape = kShapes[1];  // 10k
  for (const std::int64_t mult : {1, 2, 4, 8}) {
    const SimTime width = lookahead * mult;
    const Measured m =
        run_sharded(shape, 4, /*parallel=*/false, 1, width);
    sweep.add_row(
        {shape.name, "4", std::to_string(width.ns() / 1000),
         std::to_string(m.windows),
         std::to_string(m.windows > 0 ? m.events / m.windows : 0),
         Table::num(m.wall_seconds * 1e3, 1),
         Table::num(m.events_per_sec() / 1e6, 2) + "M"});
  }
  emit(sweep, "window-width sensitivity (10k entities, 4 shards)");

  std::cout << "On a single-core host the parallel rows measure window "
               "overhead, not speedup;\nsee bench/RESULTS_sharded.md for "
               "the full reading.\n";
  return 0;
}

#pragma once

#include <map>
#include <string>

#include "core/scenario.h"
#include "util/table.h"

namespace cloudlb::bench {

/// Evaluation-grid defaults shared by the figure harnesses. They mirror
/// the paper's setup: quad-core nodes, a 2-core Wave2D background job
/// started together with the application, LB every 5 iterations.
///
/// Mol3D runs with `bg_weight` > 1 and a long-lived background job to
/// reproduce the OS preference toward the interfering job the paper
/// reports for that application (see DESIGN.md).
ScenarioConfig grid_config(const std::string& app, const std::string& balancer,
                           int cores);

/// Runs penalty experiments, memoizing the expensive interference-free
/// baseline and BG-solo runs per (app, cores) so noLB/LB rows share them.
class PenaltyGrid {
 public:
  const PenaltyResult& run(const std::string& app, const std::string& balancer,
                           int cores);

 private:
  struct Baseline {
    RunResult base;
    SimTime bg_solo;
  };
  std::map<std::string, PenaltyResult> cache_;
  std::map<std::string, Baseline> baselines_;
};

/// Core counts of the paper's Figure 2 / Figure 4 sweeps.
inline constexpr int kCoreSweep[] = {4, 8, 16, 32};

/// Prints `table` plus an empty line, and the same rows as CSV when the
/// CLOUDLB_BENCH_CSV environment variable is set.
void emit(const Table& table, const std::string& title);

}  // namespace cloudlb::bench

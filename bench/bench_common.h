#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cloudlb::bench {

/// Evaluation-grid defaults shared by the figure harnesses. They mirror
/// the paper's setup: quad-core nodes, a 2-core Wave2D background job
/// started together with the application, LB every 5 iterations.
///
/// Mol3D runs with `bg_weight` > 1 and a long-lived background job to
/// reproduce the OS preference toward the interfering job the paper
/// reports for that application (see DESIGN.md).
ScenarioConfig grid_config(const std::string& app, const std::string& balancer,
                           int cores);

/// Runs penalty experiments, memoizing the expensive interference-free
/// baseline and BG-solo runs per (app, cores) so noLB/LB rows share them.
///
/// Thread-safe: every memoized cell is latched behind a std::once_flag,
/// so concurrent callers of the same (or an overlapping) cell compute it
/// exactly once and the rest block until the value is ready. Returned
/// references stay valid for the grid's lifetime. Results are a pure
/// function of the key, so which thread wins the latch never shows in
/// the numbers.
class PenaltyGrid {
 public:
  const PenaltyResult& run(const std::string& app, const std::string& balancer,
                           int cores);

 private:
  struct Baseline {
    RunResult base;
    SimTime bg_solo;
  };
  template <typename T>
  struct Latched {
    std::once_flag once;
    T value;
  };

  template <typename T>
  Latched<T>& entry(std::map<std::string, std::unique_ptr<Latched<T>>>& map,
                    const std::string& key) {
    std::lock_guard<std::mutex> lock{mu_};
    auto& slot = map[key];
    if (slot == nullptr) slot = std::make_unique<Latched<T>>();
    return *slot;
  }

  std::mutex mu_;  ///< guards map shape only; values latch independently
  std::map<std::string, std::unique_ptr<Latched<PenaltyResult>>> cache_;
  std::map<std::string, std::unique_ptr<Latched<Baseline>>> baselines_;
};

/// Runs a grid of independent (app, balancer, cores) penalty cells across
/// worker threads, then serves the memoized results. Usage:
///
///   ParallelGrid grid{parse_jobs(argc, argv)};
///   for (...) grid.add(app, balancer, cores);   // declare the grid
///   grid.run_queued();                          // compute, in parallel
///   ... grid.run(app, balancer, cores) ...      // emit, in print order
///
/// Emission happens on the caller's thread in the caller's order, so the
/// printed tables are bit-identical for every --jobs value; only the
/// wall-clock changes. run() on a cell that was never queued computes it
/// on the spot (serially), so harnesses degrade gracefully.
class ParallelGrid {
 public:
  explicit ParallelGrid(int jobs = 1) : jobs_{jobs} {}

  /// Queues one cell for the next run_queued(). Duplicates are fine (the
  /// grid memoizes); queueing both balancers of a figure also shares the
  /// per-(app, cores) baseline runs.
  void add(const std::string& app, const std::string& balancer, int cores) {
    cells_.push_back(Cell{app, balancer, cores});
  }

  /// Computes every queued cell, `jobs` at a time, then clears the queue.
  void run_queued();

  /// Returns the memoized cell (computing it serially if never queued).
  const PenaltyResult& run(const std::string& app, const std::string& balancer,
                           int cores) {
    return grid_.run(app, balancer, cores);
  }

  int jobs() const { return jobs_; }

 private:
  struct Cell {
    std::string app;
    std::string balancer;
    int cores;
  };
  int jobs_;
  std::vector<Cell> cells_;
  PenaltyGrid grid_;
};

/// Core counts of the paper's Figure 2 / Figure 4 sweeps.
inline constexpr int kCoreSweep[] = {4, 8, 16, 32};

/// Parses the harness-wide `--jobs N` / `--jobs=N` flag (0 = all hardware
/// threads) from argv, falling back to the CLOUDLB_BENCH_JOBS environment
/// variable, then to 1. Unknown arguments are ignored so harnesses stay
/// forward-compatible.
int parse_jobs(int argc, char** argv);

/// Prints `table` plus an empty line, and the same rows as CSV when the
/// CLOUDLB_BENCH_CSV environment variable is set.
void emit(const Table& table, const std::string& title);

}  // namespace cloudlb::bench

// Figure 2 (a,b,c): timing penalty (%) of the parallel job and of the
// 2-core background job, with (LB = ia-refine) and without (noLB) load
// balancing, for Jacobi2D, Wave2D and Mol3D on 4..32 cores.
//
// Expected shape (matching the paper): noLB penalties stay high across
// core counts (Mol3D far higher, because the background job is favoured
// by the scheduler there); LB penalties fall as cores grow, since the
// interfered cores' work spreads over more underloaded cores; the BG
// penalty drops under LB for Jacobi2D/Wave2D, while for Mol3D the noLB
// run is the kinder one to the BG job.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Figure 2: effect of load balancing on execution time\n\n";
  ParallelGrid grid{parse_jobs(argc, argv)};
  for (const char* app : {"jacobi2d", "wave2d", "mol3d"})
    for (const int cores : kCoreSweep)
      for (const char* balancer : {"null", "ia-refine"})
        grid.add(app, balancer, cores);
  grid.run_queued();
  for (const char* app : {"jacobi2d", "wave2d", "mol3d"}) {
    Table table({"cores", "noLB %", "LB %", "BG noLB %", "BG LB %",
                 "LB migrations"});
    for (const int cores : kCoreSweep) {
      const PenaltyResult& no_lb = grid.run(app, "null", cores);
      const PenaltyResult& lb = grid.run(app, "ia-refine", cores);
      table.add_row({std::to_string(cores),
                     Table::num(no_lb.app_penalty_pct, 1),
                     Table::num(lb.app_penalty_pct, 1),
                     Table::num(no_lb.bg_penalty_pct, 1),
                     Table::num(lb.bg_penalty_pct, 1),
                     std::to_string(lb.combined.lb_migrations)});
    }
    emit(table, std::string("Fig 2 — timing penalty, ") + app);
  }
  return 0;
}

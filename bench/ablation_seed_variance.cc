// Ablation: seed sensitivity. The paper averages three physical runs; our
// simulator is deterministic per seed, so instead we quantify how much
// the stochastic elements (Mol3D's particle placement, tenant timing)
// move the headline numbers across seeds.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: variability across seeds\n\n";

  {
    Table table({"balancer", "mean penalty %", "stddev", "min", "max"});
    for (const char* balancer : {"null", "ia-refine"}) {
      StatAccumulator acc;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ScenarioConfig config = grid_config("mol3d", balancer, 8);
        config.app.seed = seed;
        acc.add(run_penalty_experiment(config).app_penalty_pct);
      }
      table.add_row({balancer, Table::num(acc.mean(), 1),
                     Table::num(acc.stddev(), 1), Table::num(acc.min(), 1),
                     Table::num(acc.max(), 1)});
    }
    emit(table, "Mol3D penalty across 5 particle-placement seeds (8 cores)");
  }

  {
    Table table({"balancer", "mean slowdown %", "stddev", "min", "max"});
    for (const char* balancer : {"null", "ia-refine"}) {
      StatAccumulator acc;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ScenarioConfig config = grid_config("wave2d", balancer, 8);
        config.with_background = false;
        config.tenants = 4;
        config.tenant_config.seed = seed;
        ScenarioConfig solo = config;
        solo.tenants = 0;
        const double base = run_scenario(solo).app_elapsed.to_seconds();
        const double with =
            run_scenario(config).app_elapsed.to_seconds();
        acc.add(percent_increase(with, base));
      }
      table.add_row({balancer, Table::num(acc.mean(), 1),
                     Table::num(acc.stddev(), 1), Table::num(acc.min(), 1),
                     Table::num(acc.max(), 1)});
    }
    emit(table,
         "Wave2D slowdown across 5 tenant-timing seeds (8 cores, 4 tenants)");
  }
  return 0;
}

// Ablation: seed sensitivity. The paper averages three physical runs; our
// simulator is deterministic per seed, so instead we quantify how much
// the stochastic elements (Mol3D's particle placement, tenant timing)
// move the headline numbers across seeds.

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: variability across seeds\n\n";

  const int jobs = parse_jobs(argc, argv);
  const char* const balancers[] = {"null", "ia-refine"};
  constexpr std::uint64_t kSeeds = 5;

  {
    // Flat cells: balancer-major, seed-minor. Each cell is an independent
    // scenario with its own seeded RNG, so any --jobs value is identical.
    const std::vector<double> penalties = parallel_map<double>(
        2 * kSeeds, jobs, [&](std::size_t i) {
          ScenarioConfig config = grid_config("mol3d", balancers[i / kSeeds], 8);
          config.app.seed = 1 + i % kSeeds;
          return run_penalty_experiment(config).app_penalty_pct;
        });
    Table table({"balancer", "mean penalty %", "stddev", "min", "max"});
    for (std::size_t b = 0; b < 2; ++b) {
      StatAccumulator acc;
      for (std::uint64_t s = 0; s < kSeeds; ++s) acc.add(penalties[b * kSeeds + s]);
      table.add_row({balancers[b], Table::num(acc.mean(), 1),
                     Table::num(acc.stddev(), 1), Table::num(acc.min(), 1),
                     Table::num(acc.max(), 1)});
    }
    emit(table, "Mol3D penalty across 5 particle-placement seeds (8 cores)");
  }

  {
    const std::vector<double> slowdowns = parallel_map<double>(
        2 * kSeeds, jobs, [&](std::size_t i) {
          ScenarioConfig config = grid_config("wave2d", balancers[i / kSeeds], 8);
          config.with_background = false;
          config.tenants = 4;
          config.tenant_config.seed = 1 + i % kSeeds;
          ScenarioConfig solo = config;
          solo.tenants = 0;
          const double base = run_scenario(solo).app_elapsed.to_seconds();
          const double with = run_scenario(config).app_elapsed.to_seconds();
          return percent_increase(with, base);
        });
    Table table({"balancer", "mean slowdown %", "stddev", "min", "max"});
    for (std::size_t b = 0; b < 2; ++b) {
      StatAccumulator acc;
      for (std::uint64_t s = 0; s < kSeeds; ++s) acc.add(slowdowns[b * kSeeds + s]);
      table.add_row({balancers[b], Table::num(acc.mean(), 1),
                     Table::num(acc.stddev(), 1), Table::num(acc.min(), 1),
                     Table::num(acc.max(), 1)});
    }
    emit(table,
         "Wave2D slowdown across 5 tenant-timing seeds (8 cores, 4 tenants)");
  }
  return 0;
}

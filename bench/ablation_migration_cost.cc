// Ablation: migration cost vs. the paper's §VI future work. Cloud
// networks can be slow enough that migrating chare state erases the
// balancing gain; the gain-gated strategy performs the same decision but
// migrates only when the projected gain offsets the cost.
//
// We scale the network/pack cost of migration up and compare plain
// ia-refine (always migrates) against gain-gated.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: migration cost scaling (Jacobi2D, 8 cores)\n\n";
  Table table({"cost scale", "ia-refine penalty %", "gated penalty %",
               "ia migrations", "gated migrations"});
  for (const double scale : {1.0, 100.0, 1000.0, 10000.0, 50000.0}) {
    auto configure = [&](const char* balancer) {
      ScenarioConfig config = grid_config("jacobi2d", balancer, 8);
      config.job.pack_sec_per_byte = 1e-9 * scale;
      config.job.unpack_sec_per_byte = 1e-9 * scale;
      config.job.network.inter_node_bandwidth = 1.0e9 / scale;
      config.job.network.intra_node_bandwidth = 4.0e9 / scale;
      // Tell the gated strategy what migration actually costs now.
      config.lb_options.migration_sec_per_byte_hint = 3e-9 * scale;
      return config;
    };
    const PenaltyResult aware =
        run_penalty_experiment(configure("ia-refine"));
    const PenaltyResult gated =
        run_penalty_experiment(configure("gain-gated"));
    table.add_row({Table::num(scale, 0),
                   Table::num(aware.app_penalty_pct, 1),
                   Table::num(gated.app_penalty_pct, 1),
                   std::to_string(aware.combined.lb_migrations),
                   std::to_string(gated.combined.lb_migrations)});
  }
  emit(table, "migration cost sweep");
  std::cout << "as migration gets expensive, unconditional migration "
               "backfires while the gate holds the line (paper §VI).\n";
  return 0;
}

// Ablation: migration cost vs. the paper's §VI future work. Cloud
// networks can be slow enough that migrating chare state erases the
// balancing gain; the gain-gated strategy performs the same decision but
// migrates only when the projected gain offsets the cost.
//
// We scale the network/pack cost of migration up and compare plain
// ia-refine (always migrates) against gain-gated.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: migration cost scaling (Jacobi2D, 8 cores)\n\n";
  const std::vector<double> scales = {1.0, 100.0, 1000.0, 10000.0, 50000.0};
  const auto configure = [](const char* balancer, double scale) {
    ScenarioConfig config = grid_config("jacobi2d", balancer, 8);
    config.job.pack_sec_per_byte = 1e-9 * scale;
    config.job.unpack_sec_per_byte = 1e-9 * scale;
    config.job.network.inter_node_bandwidth = 1.0e9 / scale;
    config.job.network.intra_node_bandwidth = 4.0e9 / scale;
    // Tell the gated strategy what migration actually costs now.
    config.lb_options.migration_sec_per_byte_hint = 3e-9 * scale;
    return config;
  };
  // Two cells per scale: even index = ia-refine, odd = gain-gated.
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      scales.size() * 2, parse_jobs(argc, argv), [&](std::size_t i) {
        const char* balancer = i % 2 == 0 ? "ia-refine" : "gain-gated";
        return run_penalty_experiment(configure(balancer, scales[i / 2]));
      });
  Table table({"cost scale", "ia-refine penalty %", "gated penalty %",
               "ia migrations", "gated migrations"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const PenaltyResult& aware = results[2 * i];
    const PenaltyResult& gated = results[2 * i + 1];
    table.add_row({Table::num(scales[i], 0),
                   Table::num(aware.app_penalty_pct, 1),
                   Table::num(gated.app_penalty_pct, 1),
                   std::to_string(aware.combined.lb_migrations),
                   std::to_string(gated.combined.lb_migrations)});
  }
  emit(table, "migration cost sweep");
  std::cout << "as migration gets expensive, unconditional migration "
               "backfires while the gate holds the line (paper §VI).\n";
  return 0;
}

// Ablation: the paper's §VI future-work setting — a public cloud where
// several tenant VMs come and go on random cores with random busy/idle
// episodes, instead of one fixed 2-core interferer.
//
// Expected shape: noLB degrades steadily with tenant count; the
// interference-aware balancers track the moving interference and keep the
// slowdown well under half of noLB's. The EWMA variant trades a little
// reaction speed for fewer migrations under this bursty load.

#include <iostream>
#include <numeric>

#include "apps/wave2d.h"
#include "bench_common.h"
#include "core/balancer_factory.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "vm/tenant.h"
#include "vm/virtual_machine.h"

namespace {

using namespace cloudlb;

struct TenantRun {
  double elapsed_sec = 0.0;
  int migrations = 0;
};

TenantRun run_once(const std::string& balancer, int tenants) {
  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 4, .cores_per_node = 4}};
  std::vector<CoreId> cores(16);
  std::iota(cores.begin(), cores.end(), 0);
  VirtualMachine vm{machine, "wave2d", cores};

  JobConfig jc;
  jc.name = "wave2d";
  jc.lb_period = 3;
  RuntimeJob job{sim, vm, jc, make_balancer(balancer)};
  Wave2dConfig wc;
  wc.layout.iterations = 80;
  populate_wave2d(job, wc);

  TenantFieldConfig tc;
  tc.num_tenants = tenants;
  tc.mean_on_seconds = 1.0;
  tc.mean_off_seconds = 1.0;
  TenantField field{sim, machine, tc};

  job.start();
  if (tenants > 0) field.start();
  while (!job.finished()) sim.step();
  field.stop();
  return TenantRun{job.elapsed().to_seconds(), job.counters().migrations};
}

}  // namespace

int main() {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: multi-tenant cloud (Wave2D, 16 cores, tenants "
               "with ~1s on/off episodes on random cores)\n\n";

  const double solo = run_once("null", 0).elapsed_sec;

  Table table({"tenants", "noLB slowdown %", "ia-refine %", "ewma %",
               "ia migrations", "ewma migrations"});
  for (const int tenants : {1, 2, 4, 8}) {
    const TenantRun no_lb = run_once("null", tenants);
    const TenantRun aware = run_once("ia-refine", tenants);
    const TenantRun ewma = run_once("ia-refine-ewma", tenants);
    table.add_row({std::to_string(tenants),
                   Table::num((no_lb.elapsed_sec / solo - 1) * 100, 1),
                   Table::num((aware.elapsed_sec / solo - 1) * 100, 1),
                   Table::num((ewma.elapsed_sec / solo - 1) * 100, 1),
                   std::to_string(aware.migrations),
                   std::to_string(ewma.migrations)});
  }
  emit(table, "multi-tenant sweep (slowdown vs. tenant-free run)");
  return 0;
}

// Ablation: the paper's §VI future-work setting — a public cloud where
// several tenant VMs come and go on random cores with random busy/idle
// episodes, instead of one fixed 2-core interferer.
//
// Expected shape: noLB degrades steadily with tenant count; the
// interference-aware balancers track the moving interference and keep the
// slowdown well under half of noLB's. The EWMA variant trades a little
// reaction speed for fewer migrations under this bursty load.

#include <iostream>
#include <numeric>

#include "apps/wave2d.h"
#include "bench_common.h"
#include "core/balancer_factory.h"
#include "machine/machine.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/tenant.h"
#include "vm/virtual_machine.h"

namespace {

using namespace cloudlb;

struct TenantRun {
  double elapsed_sec = 0.0;
  int migrations = 0;
};

TenantRun run_once(const std::string& balancer, int tenants) {
  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 4, .cores_per_node = 4, .core_speed_overrides = {}}};
  std::vector<CoreId> cores(16);
  std::iota(cores.begin(), cores.end(), 0);
  VirtualMachine vm{machine, "wave2d", cores};

  JobConfig jc;
  jc.name = "wave2d";
  jc.lb_period = 3;
  RuntimeJob job{sim, vm, jc, make_balancer(balancer)};
  Wave2dConfig wc;
  wc.layout.iterations = 80;
  populate_wave2d(job, wc);

  TenantFieldConfig tc;
  tc.num_tenants = tenants;
  tc.mean_on_seconds = 1.0;
  tc.mean_off_seconds = 1.0;
  TenantField field{sim, machine, tc};

  job.start();
  if (tenants > 0) field.start();
  while (!job.finished()) CLB_CHECK(sim.step());
  field.stop();
  return TenantRun{job.elapsed().to_seconds(), job.counters().migrations};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: multi-tenant cloud (Wave2D, 16 cores, tenants "
               "with ~1s on/off episodes on random cores)\n\n";

  // Cell 0 is the tenant-free normalization run; then three balancers per
  // tenant count. Each cell owns its Simulator and tenant RNG (seeded by
  // the cell's config), so results are identical for every --jobs value.
  const std::vector<int> tenant_counts = {1, 2, 4, 8};
  const char* const balancers[] = {"null", "ia-refine", "ia-refine-ewma"};
  const std::vector<TenantRun> results = parallel_map<TenantRun>(
      1 + tenant_counts.size() * 3, parse_jobs(argc, argv),
      [&](std::size_t i) {
        if (i == 0) return run_once("null", 0);
        const std::size_t cell = i - 1;
        return run_once(balancers[cell % 3], tenant_counts[cell / 3]);
      });
  const double solo = results[0].elapsed_sec;

  Table table({"tenants", "noLB slowdown %", "ia-refine %", "ewma %",
               "ia migrations", "ewma migrations"});
  for (std::size_t t = 0; t < tenant_counts.size(); ++t) {
    const TenantRun& no_lb = results[1 + 3 * t];
    const TenantRun& aware = results[1 + 3 * t + 1];
    const TenantRun& ewma = results[1 + 3 * t + 2];
    table.add_row({std::to_string(tenant_counts[t]),
                   Table::num((no_lb.elapsed_sec / solo - 1) * 100, 1),
                   Table::num((aware.elapsed_sec / solo - 1) * 100, 1),
                   Table::num((ewma.elapsed_sec / solo - 1) * 100, 1),
                   std::to_string(aware.migrations),
                   std::to_string(ewma.migrations)});
  }
  emit(table, "multi-tenant sweep (slowdown vs. tenant-free run)");
  return 0;
}

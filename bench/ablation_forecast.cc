// Ablation: reactive vs forecasting background estimators.
//
// The paper's principle of persistence — balance the next window against
// the last window's O_p — is exactly one window late under dynamic
// interference: by the time refinement reacts to a spike, the spike has
// already taxed a full window, and when it ends the balancer migrates
// again to unwind a correction the world no longer needs. The
// forecasting estimators (docs/estimators.md) follow the *trend* of the
// clamped O_p series instead, so refinement balances against where the
// interference is going, not where it was.
//
// This harness sweeps estimator modes (persist = the paper's reactive
// scheme, ewma, trend, regress) across the three fault-plan interference
// waveforms (a ramping spike staircase, a square wave, Pareto bursts)
// and reports, per cell: wall-clock slowdown vs the interference-free
// run, the migration bill, and the forecaster's own error accounting
// (mispredicted windows and the migrations commanded on their back).
//
// Expected shape: on the ramp (stacked spikes) the trend/regress modes
// anticipate the staircase and shave the slowdown of persist; on the
// square wave the smoothing modes stop the balancer whipsawing at every
// edge (fewer migrations, lower slowdown); on Pareto bursts — bursts
// with no characteristic length — forecasting wins less and the
// mispredict columns show why.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/forecasting_estimator.h"
#include "core/interference_aware_lb.h"
#include "core/scenario.h"

namespace {

using namespace cloudlb;

struct Waveform {
  const char* name;
  const char* spec;
};

// Interference worth anticipating, sized against the ~0.12 s LB window
// of the scenario below (jacobi2d, 8 cores, LB every 3 of 60 iterations,
// ~2.5 s clean run).
const std::vector<Waveform> kWaveforms = {
    // A staircase ramp: four stacked quarter-duty hogs on core 2, each
    // step one LB window after the previous — the dynamic-arrival
    // pattern persistence always chases from behind.
    {"spike",
     "spike(core=2,start=0.30,duration=1.80,duty=0.25);"
     "spike(core=2,start=0.45,duration=1.65,duty=0.25);"
     "spike(core=2,start=0.60,duration=1.50,duty=0.25);"
     "spike(core=2,start=0.75,duration=1.35,duty=0.25);"
     "seed(value=7)"},
    // A square wave with a period of ~4 LB windows: reactive refinement
    // re-balances at every edge, twice per period, forever.
    {"square",
     "square(core=2,start=0.30,period=0.50,on=0.25,duty=0.9);"
     "seed(value=7)"},
    // Heavy-tailed bursts on two seeded-random cores: the adversarial
    // case for any trend follower.
    {"pareto",
     "pareto(cores=2,alpha=1.5,min_on=0.10,mean_off=0.35,duty=0.9);"
     "seed(value=7)"},
};

const std::vector<EstimatorMode> kModes = {
    EstimatorMode::kPersist,
    EstimatorMode::kEwma,
    EstimatorMode::kTrend,
    EstimatorMode::kRegress,
};

ScenarioConfig scenario_for(const char* fault_spec, EstimatorMode mode) {
  ScenarioConfig config;
  config.app.name = "jacobi2d";
  config.app.iterations = 60;
  config.app_cores = 8;
  config.lb_period = 3;
  config.with_background = false;  // the waveform IS the interference
  config.faults = fault_spec;
  // Clamp first, forecast on the clamped series (docs/estimators.md);
  // the clamp window matches the hardened ablation_faults configuration.
  config.lb_options.robustness.estimator_window = 5;
  config.lb_options.robustness.estimator_mode = mode;
  config.lb_options.robustness.forecast_horizon = 1.0;
  config.lb_options.robustness.forecast_margin = 0.5;
  return config;
}

struct ForecastRun {
  double elapsed_sec = 0.0;
  int migrations = 0;
  int mispredicted = 0;
  int mispredict_churn = 0;
};

ForecastRun run_once(const char* fault_spec, EstimatorMode mode) {
  ScenarioConfig config = scenario_for(fault_spec, mode);
  // Borrowing overload: the balancer outlives the run so its forecast
  // accounting is still readable after the job tears down.
  InterferenceAwareRefineLb balancer{config.lb_options};
  const RunResult r = run_scenario_with(config, balancer);
  ForecastRun out;
  out.elapsed_sec = r.app_elapsed.to_seconds();
  out.migrations = r.app_counters.migrations;
  out.mispredicted = balancer.mispredicted_windows();
  out.mispredict_churn = balancer.mispredict_churn();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: reactive vs forecasting estimators (Jacobi2D, "
               "8 cores, spike/square/pareto interference waveforms)\n\n";

  // The interference-free reference: same scenario, no faults. Estimator
  // modes are indistinguishable on a quiet machine, so one run serves
  // every row.
  const ForecastRun clean = run_once("", EstimatorMode::kPersist);

  // Each cell owns its Simulator and fault RNG (seeded by the spec), so
  // the table is byte-identical for every --jobs value.
  const std::size_t n_cells = kWaveforms.size() * kModes.size();
  const std::vector<ForecastRun> results = parallel_map<ForecastRun>(
      n_cells, parse_jobs(argc, argv), [&](std::size_t i) {
        return run_once(kWaveforms[i / kModes.size()].spec,
                        kModes[i % kModes.size()]);
      });

  Table table({"waveform", "estimator", "elapsed s", "slowdown %",
               "migrations", "mispredicted", "mispredict churn"});
  for (std::size_t i = 0; i < n_cells; ++i) {
    const ForecastRun& r = results[i];
    table.add_row(
        {kWaveforms[i / kModes.size()].name,
         estimator_mode_name(kModes[i % kModes.size()]),
         Table::num(r.elapsed_sec, 3),
         Table::num((r.elapsed_sec / clean.elapsed_sec - 1.0) * 100.0, 1),
         std::to_string(r.migrations), std::to_string(r.mispredicted),
         std::to_string(r.mispredict_churn)});
  }
  emit(table, "estimator-mode sweep (slowdown vs the interference-free "
              "run)");

  // The headline comparison: per waveform, the best forecasting mode
  // against the paper's reactive persistence.
  Table best({"waveform", "reactive slowdown %", "best forecast",
              "forecast slowdown %"});
  for (std::size_t w = 0; w < kWaveforms.size(); ++w) {
    const ForecastRun& reactive = results[w * kModes.size()];
    std::size_t best_m = 1;
    for (std::size_t m = 2; m < kModes.size(); ++m)
      if (results[w * kModes.size() + m].elapsed_sec <
          results[w * kModes.size() + best_m].elapsed_sec)
        best_m = m;
    const ForecastRun& fore = results[w * kModes.size() + best_m];
    best.add_row(
        {kWaveforms[w].name,
         Table::num((reactive.elapsed_sec / clean.elapsed_sec - 1.0) * 100.0,
                    1),
         estimator_mode_name(kModes[best_m]),
         Table::num((fore.elapsed_sec / clean.elapsed_sec - 1.0) * 100.0,
                    1)});
  }
  emit(best, "best forecasting mode vs reactive, per waveform");
  return 0;
}

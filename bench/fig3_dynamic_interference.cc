// Figure 3 (a-e): a 4-core Wave2D run under the interference-aware
// balancer while the interference MOVES: a 1-core background job runs on
// core 1, ends, and a second one later starts on core 3.
//
// Expected shape (matching the paper):
//   (a) BG on core 1 → long iterations (imbalance);
//   (b) after the next LB step, chares leave core 1 → iterations shrink;
//   (c) BG ends → core 1 underloaded, the balancer migrates work back;
//   (d) BG appears on core 3 → long iterations again;
//   (e) the balancer drains core 3 → iterations shrink again.

#include <iostream>

#include "apps/wave2d.h"
#include "bench_common.h"
#include "core/balancer_factory.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "metrics/timeline.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/virtual_machine.h"

namespace {

cloudlb::Wave2dConfig one_core_bg(int iterations) {
  cloudlb::Wave2dConfig wc;
  wc.layout.grid_x = 128;
  wc.layout.grid_y = 128;
  wc.layout.blocks_x = 2;
  wc.layout.blocks_y = 2;
  wc.layout.iterations = iterations;
  return wc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  // One scenario, one timeline: --jobs is accepted for grid-harness
  // uniformity but there is nothing here to parallelize.
  (void)parse_jobs(argc, argv);

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};

  VirtualMachine app_vm{machine, "wave2d", {0, 1, 2, 3}};
  JobConfig app_config;
  app_config.name = "wave2d";
  app_config.lb_period = 3;
  RuntimeJob app{sim, app_vm, app_config,
                 make_balancer("ia-refine", LbOptions{})};
  Wave2dConfig wc;
  wc.layout.iterations = 60;
  populate_wave2d(app, wc);

  // Episode 1: a 1-core job on core 1 that finishes on its own (~2 s).
  VirtualMachine bg1_vm{machine, "bg1-on-core1", {1}};
  JobConfig bg_config;
  bg_config.lb_period = 0;
  bg_config.name = "bg1-on-core1";
  RuntimeJob bg1{sim, bg1_vm, bg_config, std::make_unique<NullLb>()};
  populate_wave2d(bg1, one_core_bg(25));

  // Episode 2: a second 1-core job on core 3, starting later.
  VirtualMachine bg3_vm{machine, "cg3-on-core3", {3}};
  bg_config.name = "cg3-on-core3";  // distinct first letter for the render
  RuntimeJob bg3{sim, bg3_vm, bg_config, std::make_unique<NullLb>()};
  populate_wave2d(bg3, one_core_bg(25));

  TimelineTracer tracer;
  app.set_observer(&tracer);
  bg1.set_observer(&tracer);
  bg3.set_observer(&tracer);

  app.start();
  bg1.start();
  sim.schedule_at(SimTime::from_seconds(4.0), [&] { bg3.start(); });
  while (!app.finished() || !bg3.finished()) CLB_CHECK(sim.step());

  std::cout << "Figure 3: balancer chasing interference that moves from "
               "core 1 to core 3\n\n";

  Table durations({"iteration", "duration (ms)"});
  SimTime prev = app.start_time();
  for (std::size_t i = 0; i < app.iteration_times().size(); ++i) {
    durations.add_row(
        {std::to_string(i),
         Table::num((app.iteration_times()[i] - prev).to_millis(), 1)});
    prev = app.iteration_times()[i];
  }
  emit(durations,
       "iteration durations (spikes at interference arrival, recovery "
       "after each LB step)");

  Table lb({"LB step", "time (s)", "migrations"});
  for (const LbMark& mark : tracer.lb_marks())
    lb.add_row({std::to_string(mark.step),
                Table::num(mark.time.to_seconds(), 2),
                std::to_string(mark.migrations)});
  emit(lb, "LB steps (non-zero migrations when interference moved)");

  std::cout << "-- full-run timeline (W = wave2d, B = bg on core 1, "
               "C = bg on core 3, . = idle; L marks = LB with migrations)\n";
  tracer.render_ascii(std::cout, 4, SimTime::zero(), app.finish_time(), 100);
  std::cout << "\nphases: [B on core1 | balanced | B gone, work returns | "
               "C on core3 | balanced again]\n";
  return 0;
}

// Ablation: the ε tolerance of Eq. 3. Small ε chases balance aggressively
// (more migrations, tighter balance); large ε tolerates imbalance and
// eventually stops reacting to the interference at all.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: epsilon tolerance (Jacobi2D, 8 cores, ia-refine)\n\n";
  const std::vector<double> epsilons = {0.01, 0.02, 0.05, 0.10,
                                        0.20, 0.40, 0.80};
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      epsilons.size(), parse_jobs(argc, argv), [&](std::size_t i) {
        ScenarioConfig config = grid_config("jacobi2d", "ia-refine", 8);
        config.lb_options.epsilon_fraction = epsilons[i];
        return run_penalty_experiment(config);
      });
  Table table({"epsilon (frac of T_avg)", "app penalty %", "BG penalty %",
               "migrations", "LB steps"});
  for (std::size_t i = 0; i < epsilons.size(); ++i) {
    const PenaltyResult& r = results[i];
    table.add_row({Table::num(epsilons[i], 2),
                   Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   std::to_string(r.combined.lb_migrations),
                   std::to_string(r.combined.app_counters.lb_steps)});
  }
  emit(table, "epsilon sweep");
  std::cout << "small ε: tight balance, extra migrations; huge ε: the "
               "balancer stops seeing the interference.\n";
  return 0;
}

// Ablation: overdecomposition. The paper's §III: "the number of objects
// needs to be more than the number of available processors". Refinement
// moves whole chares, so its achievable balance is quantized by chare
// size: with few chares per PE, an interfered core's surplus cannot be
// carved into pieces small enough for the other cores' headroom, and the
// balancer stalls.
//
// Setup: Jacobi2D on 16 cores with the 2-core interferer; the 256x256
// grid is split into 16..1024 chares.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: overdecomposition (Jacobi2D, 16 cores, ia-refine)\n\n";
  struct Grid { int x, y; };
  const std::vector<Grid> grids = {Grid{4, 4}, Grid{8, 4}, Grid{8, 8},
                                   Grid{16, 8}, Grid{32, 16}, Grid{32, 32}};
  // Two cells per grid size: even index = ia-refine, odd = null.
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      grids.size() * 2, parse_jobs(argc, argv), [&](std::size_t i) {
        ScenarioConfig config = grid_config(
            "jacobi2d", i % 2 == 0 ? "ia-refine" : "null", 16);
        config.app.blocks_x = grids[i / 2].x;
        config.app.blocks_y = grids[i / 2].y;
        return run_penalty_experiment(config);
      });
  Table table({"chares", "chares/PE", "LB penalty %", "noLB penalty %",
               "migrations"});
  for (std::size_t g = 0; g < grids.size(); ++g) {
    const PenaltyResult& lb = results[2 * g];
    const PenaltyResult& no_lb = results[2 * g + 1];
    const int chares = grids[g].x * grids[g].y;
    table.add_row({std::to_string(chares), std::to_string(chares / 16),
                   Table::num(lb.app_penalty_pct, 1),
                   Table::num(no_lb.app_penalty_pct, 1),
                   std::to_string(lb.combined.lb_migrations)});
  }
  emit(table, "chare-count sweep");
  std::cout << "too few chares per PE and the refinement cannot place the "
               "interfered cores' surplus anywhere (paper SIII).\n";
  return 0;
}

// Ablation: the load-balancing period. Frequent balancing reacts quickly
// to interference (lower penalty) at the price of more barriers and more
// migrations; rare balancing leaves the run unbalanced for longer.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: LB period (Jacobi2D, 8 cores, ia-refine, 60 "
               "iterations)\n\n";
  const std::vector<int> periods = {2, 3, 5, 10, 20, 30};
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      periods.size(), parse_jobs(argc, argv), [&](std::size_t i) {
        ScenarioConfig config = grid_config("jacobi2d", "ia-refine", 8);
        config.lb_period = periods[i];
        return run_penalty_experiment(config);
      });
  Table table({"period (iterations)", "app penalty %", "BG penalty %",
               "migrations", "LB steps"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const PenaltyResult& r = results[i];
    table.add_row({std::to_string(periods[i]),
                   Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   std::to_string(r.combined.lb_migrations),
                   std::to_string(r.combined.app_counters.lb_steps)});
  }
  emit(table, "LB period sweep");
  return 0;
}

// Ablation: the load-balancing period. Frequent balancing reacts quickly
// to interference (lower penalty) at the price of more barriers and more
// migrations; rare balancing leaves the run unbalanced for longer.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: LB period (Jacobi2D, 8 cores, ia-refine, 60 "
               "iterations)\n\n";
  Table table({"period (iterations)", "app penalty %", "BG penalty %",
               "migrations", "LB steps"});
  for (const int period : {2, 3, 5, 10, 20, 30}) {
    ScenarioConfig config = grid_config("jacobi2d", "ia-refine", 8);
    config.lb_period = period;
    const PenaltyResult r = run_penalty_experiment(config);
    table.add_row({std::to_string(period), Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   std::to_string(r.combined.lb_migrations),
                   std::to_string(r.combined.app_counters.lb_steps)});
  }
  emit(table, "LB period sweep");
  return 0;
}

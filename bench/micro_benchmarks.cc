// Microbenchmarks (google-benchmark) for the substrate hot paths: event
// queue throughput, processor-sharing core updates, the LB strategies'
// decision cost at various problem sizes, and a small end-to-end scenario.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/background_estimator.h"
#include "core/interference_aware_lb.h"
#include "core/scenario.h"
#include "lb/greedy_lb.h"
#include "lb/refinement.h"
#include "machine/core.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace cloudlb {
namespace {

// ---------------------------------------------------------- simulator

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < events; ++i)
      sim.schedule_at(SimTime::nanos((i * 2654435761u) % 1'000'000),
                      [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventHandle> handles;
    handles.reserve(10'000);
    for (int i = 0; i < 10'000; ++i)
      handles.push_back(
          sim.schedule_at(SimTime::nanos(i), [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2)
      benchmark::DoNotOptimize(sim.cancel(handles[i]));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorCancelHeavy);

// --------------------------------------------------- event-engine core
//
// The three access patterns the runtime actually generates, measured in
// steady state (the Simulator lives across iterations, so slot/queue
// storage is warm and the schedule→fire cycle is the only cost):
//   - SteadyState: K self-re-arming timers, small captures;
//   - SteadyStateFatCapture: same, but captures too big for libstdc++'s
//     std::function SSO (exercises the callback-storage allocation path);
//   - ScheduleCancelChurn: re-armed timeout that almost never fires;
//   - TimerWheelRearm: cancel + push-back of rotating timeouts
//     interleaved with real event delivery.

constexpr int kEngineBatch = 4096;

// Deterministic delay stream (no <random>, identical across runs).
inline std::uint64_t mix_delay(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return 1 + ((state >> 33) % 1000);
}

void BM_EventEngineSteadyState(benchmark::State& state) {
  const auto timers = static_cast<int>(state.range(0));
  struct Wheel {
    Simulator sim;
    std::uint64_t delays = 0x9e3779b97f4a7c15ull;
    void arm(int slot) {
      sim.schedule_after(SimTime::nanos(mix_delay(delays)),
                         [this, slot] { arm(slot); });
    }
  };
  Wheel w;
  for (int i = 0; i < timers; ++i) w.arm(i);
  for (auto _ : state) {
    for (int i = 0; i < kEngineBatch; ++i)
      benchmark::DoNotOptimize(w.sim.step());
  }
  state.SetItemsProcessed(state.iterations() * kEngineBatch);
}
BENCHMARK(BM_EventEngineSteadyState)->Arg(16)->Arg(1024);

void BM_EventEngineSteadyStateFatCapture(benchmark::State& state) {
  struct Wheel {
    Simulator sim;
    std::uint64_t delays = 0x9e3779b97f4a7c15ull;
    std::uint64_t sink = 0;
    void arm(int slot) {
      // 40 payload bytes + this + slot: past std::function's 16-byte SSO,
      // within the engine's inline-callback budget.
      std::uint64_t payload[5] = {delays, delays + 1, delays + 2,
                                  delays + 3, delays + 4};
      sim.schedule_after(
          SimTime::nanos(mix_delay(delays)), [this, slot, payload] {
            sink += payload[static_cast<std::size_t>(slot) % 5];
            arm(slot);
          });
    }
  };
  Wheel w;
  for (int i = 0; i < 64; ++i) w.arm(i);
  for (auto _ : state) {
    for (int i = 0; i < kEngineBatch; ++i)
      benchmark::DoNotOptimize(w.sim.step());
  }
  benchmark::DoNotOptimize(w.sink);
  state.SetItemsProcessed(state.iterations() * kEngineBatch);
}
BENCHMARK(BM_EventEngineSteadyStateFatCapture);

void BM_EventEngineScheduleCancelChurn(benchmark::State& state) {
  Simulator sim;
  std::uint64_t delays = 0x9e3779b97f4a7c15ull;
  EventHandle armed;
  for (auto _ : state) {
    for (int i = 0; i < kEngineBatch; ++i) {
      if (armed.valid()) benchmark::DoNotOptimize(sim.cancel(armed));
      armed = sim.schedule_after(SimTime::seconds(3600) +
                                     SimTime::nanos(mix_delay(delays)),
                                 [] {});
    }
  }
  state.SetItemsProcessed(state.iterations() * kEngineBatch);
}
BENCHMARK(BM_EventEngineScheduleCancelChurn);

void BM_EventEngineTimerWheelRearm(benchmark::State& state) {
  // kTimers rotating timeouts, each pushed back on every "message"; one in
  // kTimers operations also delivers a real event (the pattern of a NIC
  // model guarding transfers with a timeout that rarely expires).
  constexpr int kTimers = 256;
  Simulator sim;
  std::uint64_t delays = 0x9e3779b97f4a7c15ull;
  std::vector<EventHandle> timeout(kTimers);
  int next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEngineBatch; ++i) {
      auto& h = timeout[static_cast<std::size_t>(next)];
      if (h.valid()) benchmark::DoNotOptimize(sim.cancel(h));
      h = sim.schedule_after(SimTime::millis(10), [] {});
      if (++next == kTimers) {
        next = 0;
        sim.schedule_after(SimTime::nanos(mix_delay(delays)), [] {});
        benchmark::DoNotOptimize(sim.step());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kEngineBatch);
}
BENCHMARK(BM_EventEngineTimerWheelRearm);

// ---------------------------------------------------------- PS core

void BM_CoreProcessorSharing(benchmark::State& state) {
  const auto contexts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Core core{sim, 0};
    std::vector<ContextId> ids;
    for (int c = 0; c < contexts; ++c)
      ids.push_back(core.register_context("ctx" + std::to_string(c)));
    int completions = 0;
    // Each context issues 20 chained demands; the active set churns.
    std::vector<int> remaining(ids.size(), 20);
    std::function<void(std::size_t)> pump = [&](std::size_t i) {
      ++completions;
      if (--remaining[i] > 0)
        core.demand(ids[i], SimTime::micros(50), [&pump, i] { pump(i); });
    };
    for (std::size_t i = 0; i < ids.size(); ++i)
      core.demand(ids[i], SimTime::micros(50), [&pump, i] { pump(i); });
    sim.run();
    benchmark::DoNotOptimize(completions);
  }
  state.SetItemsProcessed(state.iterations() * contexts * 20);
}
BENCHMARK(BM_CoreProcessorSharing)->Arg(2)->Arg(8)->Arg(32);

// ---------------------------------------------------------- LB decisions

LbStats synthetic_stats(int pes, int chares, std::uint64_t seed) {
  Rng rng{seed};
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(pes));
  for (int p = 0; p < pes; ++p) {
    auto& pe = stats.pes[static_cast<std::size_t>(p)];
    pe.pe = p;
    pe.core = p;
    pe.wall_sec = 10.0;
  }
  stats.chares.resize(static_cast<std::size_t>(chares));
  for (int c = 0; c < chares; ++c) {
    auto& ch = stats.chares[static_cast<std::size_t>(c)];
    ch.chare = c;
    ch.pe = static_cast<PeId>(rng.uniform_int(0, pes - 1));
    ch.cpu_sec = rng.uniform(0.01, 0.5);
    ch.bytes = 65536;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  for (auto& pe : stats.pes) {
    const double bg = rng.next_double() < 0.25 ? rng.uniform(0.0, 5.0) : 0.0;
    pe.core_idle_sec = std::max(0.0, pe.wall_sec - pe.task_cpu_sec - bg);
  }
  return stats;
}

void BM_RefinementAlgorithm(benchmark::State& state) {
  const auto pes = static_cast<int>(state.range(0));
  const auto chares = static_cast<int>(state.range(1));
  const LbStats stats = synthetic_stats(pes, chares, 42);
  const auto background = estimate_background_load(stats);
  for (auto _ : state) {
    auto result = refine_assignment(stats, background, 0.05);
    benchmark::DoNotOptimize(result.migrations);
  }
  state.SetItemsProcessed(state.iterations() * chares);
}
BENCHMARK(BM_RefinementAlgorithm)
    ->Args({8, 64})
    ->Args({32, 256})
    ->Args({128, 1024})
    ->Args({512, 4096});

// The retained naive kernel at the same sizes, for a quick indexed-vs-naive
// ratio without the full bench/micro_refinement_sweep run.
void BM_RefinementAlgorithmNaive(benchmark::State& state) {
  const auto pes = static_cast<int>(state.range(0));
  const auto chares = static_cast<int>(state.range(1));
  const LbStats stats = synthetic_stats(pes, chares, 42);
  const auto background = estimate_background_load(stats);
  const RefinementOptions options{.epsilon_fraction = 0.05};
  for (auto _ : state) {
    auto result = refine_assignment_naive(stats, background, options);
    benchmark::DoNotOptimize(result.migrations);
  }
  state.SetItemsProcessed(state.iterations() * chares);
}
BENCHMARK(BM_RefinementAlgorithmNaive)
    ->Args({8, 64})
    ->Args({32, 256})
    ->Args({128, 1024})
    ->Args({512, 4096});

void BM_GreedyAlgorithm(benchmark::State& state) {
  const auto pes = static_cast<int>(state.range(0));
  const auto chares = static_cast<int>(state.range(1));
  const LbStats stats = synthetic_stats(pes, chares, 42);
  GreedyLb lb;
  for (auto _ : state) {
    auto result = lb.assign(stats);
    benchmark::DoNotOptimize(result.data());
  }
  state.SetItemsProcessed(state.iterations() * chares);
}
BENCHMARK(BM_GreedyAlgorithm)->Args({32, 256})->Args({512, 4096});

void BM_BackgroundEstimator(benchmark::State& state) {
  const LbStats stats = synthetic_stats(512, 4096, 7);
  for (auto _ : state) {
    auto bg = estimate_background_load(stats);
    benchmark::DoNotOptimize(bg.data());
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_BackgroundEstimator);

// ---------------------------------------------------------- end to end

void BM_SmallScenarioEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig config;
    config.app.name = "jacobi2d";
    config.app.iterations = 10;
    config.app_cores = 4;
    config.balancer = "ia-refine";
    config.bg_iterations = 20;
    const RunResult r = run_scenario(config);
    benchmark::DoNotOptimize(r.energy_joules);
  }
}
BENCHMARK(BM_SmallScenarioEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cloudlb

BENCHMARK_MAIN();

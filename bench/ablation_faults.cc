// Ablation: graceful degradation under injected faults.
//
// Sweeps a composite fault intensity — dropped load-DB rows, corrupted
// idle counters, clock jitter, failing migrations, all scaled together —
// against the paper's vanilla ia-refine and a hardened variant (garbage
// fallback + median-of-window estimator clamp + migration retries).
//
// Expected shape: at intensity 0 the two are identical (the hardening is
// inert by construction). As intensity rises, vanilla ia-refine balances
// on garbage — a migration storm chasing phantom interference (watch its
// migration count explode) — while the hardened variant holds migrations
// near the clean run's level. The sweep also exposes the cost of the
// all-or-nothing sanity gate: once most windows have at least one
// corrupted PE, frequent fallbacks starve the balancer of the windows it
// needs to dodge the *real* 2-core interferer, so hardened wall-clock can
// exceed vanilla's at the high end even as its migration bill stays flat.

#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "core/interference_aware_lb.h"
#include "core/scenario.h"

namespace {

using namespace cloudlb;

struct FaultRun {
  double elapsed_sec = 0.0;
  int migrations = 0;
  int retries = 0;
  int failed = 0;
  int fallbacks = 0;
};

std::string spec_for(double intensity) {
  if (intensity <= 0.0) return {};
  std::ostringstream spec;
  spec << "drop(prob=" << intensity << ");corrupt(prob=" << intensity
       << ");failmig(prob=" << intensity << ",partial=0.5)"
       << ";jitter(sigma=" << intensity * 0.01 << ");seed(value=7)";
  return spec.str();
}

FaultRun run_once(double intensity, bool hardened) {
  ScenarioConfig config;
  config.app.name = "jacobi2d";
  config.app.iterations = 60;
  config.app_cores = 8;
  config.lb_period = 3;
  config.faults = spec_for(intensity);
  if (hardened) {
    config.job.migration_max_retries = 3;
    config.lb_options.robustness.fallback_on_insane_stats = true;
    config.lb_options.robustness.estimator_window = 5;
  }

  // Borrowing overload: the balancer outlives the run, so its fallback
  // counter is still readable after the job tears down.
  InterferenceAwareRefineLb balancer{config.lb_options};
  const RunResult r = run_scenario_with(config, balancer);

  FaultRun out;
  out.elapsed_sec = r.app_elapsed.to_seconds();
  out.migrations = r.app_counters.migrations;
  out.retries = r.app_counters.migration_retries;
  out.failed = r.app_counters.migrations_failed;
  out.fallbacks = balancer.garbage_fallbacks();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: fault injection (Jacobi2D, 8 cores, 2-core BG "
               "job, composite drop+corrupt+failmig+jitter faults)\n\n";

  // Each cell owns its Simulator and fault RNG (seeded by the spec), so
  // results are identical for every --jobs value.
  const std::vector<double> intensities = {0.0, 0.05, 0.15, 0.3};
  const std::vector<FaultRun> results = parallel_map<FaultRun>(
      intensities.size() * 2, parse_jobs(argc, argv), [&](std::size_t i) {
        return run_once(intensities[i / 2], i % 2 == 1);
      });
  const double clean = results[0].elapsed_sec;

  Table table({"fault prob", "vanilla slowdown %", "hardened slowdown %",
               "vanilla migr", "hardened migr", "retries", "abandoned",
               "LB fallbacks"});
  for (std::size_t t = 0; t < intensities.size(); ++t) {
    const FaultRun& vanilla = results[2 * t];
    const FaultRun& hard = results[2 * t + 1];
    table.add_row({Table::num(intensities[t], 2),
                   Table::num((vanilla.elapsed_sec / clean - 1) * 100, 1),
                   Table::num((hard.elapsed_sec / clean - 1) * 100, 1),
                   std::to_string(vanilla.migrations),
                   std::to_string(hard.migrations),
                   std::to_string(hard.retries), std::to_string(hard.failed),
                   std::to_string(hard.fallbacks)});
  }
  emit(table, "fault-intensity sweep (slowdown vs. the fault-free run)");
  return 0;
}

// Refinement-engine scaling sweep: wall time per LB invocation for the
// indexed O((T+M)·log P) engine vs the retained naive
// O(donors·T·|underset|) reference, over P ∈ {32, 256, 2048, 16384} ×
// chares ∈ {1k, 10k, 100k} (8×+ overdecomposition territory from the
// ROADMAP). The naive kernel is skipped where its quadratic blowup would
// take minutes; the indexed engine runs everywhere. Results are committed
// as bench/RESULTS_refinement_sweep.md.
//
// Usage: micro_refinement_sweep [--with-slow-naive]
//   --with-slow-naive also times the naive kernel on the largest grid
//   points instead of skipping them.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "core/background_estimator.h"
#include "lb/refinement.h"
#include "util/rng.h"
#include "util/table.h"

namespace cloudlb {
namespace {

/// Interference-shaped instance mirroring the paper's scenario: ~25% of
/// PEs share their core with an interfering VM whose appetite is
/// comparable to the per-PE application load (0.5–2×), so the balancer
/// must drain most of the app work off the interfered PEs. Chare costs
/// vary 50× with a sprinkle of exact ties; the wall clock is sized per PE
/// so the /proc/stat-style estimator recovers the background exactly.
LbStats synthetic_stats(int pes, int chares, std::uint64_t seed) {
  Rng rng{seed};
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(pes));
  for (int p = 0; p < pes; ++p) {
    auto& pe = stats.pes[static_cast<std::size_t>(p)];
    pe.pe = p;
    pe.core = p;
  }
  stats.chares.resize(static_cast<std::size_t>(chares));
  double total_app = 0.0;
  for (int c = 0; c < chares; ++c) {
    auto& ch = stats.chares[static_cast<std::size_t>(c)];
    ch.chare = c;
    ch.pe = static_cast<PeId>(rng.uniform_int(0, pes - 1));
    ch.cpu_sec = rng.next_double() < 0.1 ? 0.1 : rng.uniform(0.01, 0.5);
    ch.bytes = 65536;
    total_app += ch.cpu_sec;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  const double per_pe_app = total_app / static_cast<double>(pes);
  for (auto& pe : stats.pes) {
    const double bg = rng.next_double() < 0.25
                          ? rng.uniform(0.5, 2.0) * per_pe_app
                          : 0.0;
    pe.core_idle_sec = 0.1 * per_pe_app;  // a little headroom
    pe.wall_sec = pe.task_cpu_sec + bg + pe.core_idle_sec;
  }
  return stats;
}

template <typename Fn>
double time_ms(Fn&& fn, int reps) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace
}  // namespace cloudlb

int main(int argc, char** argv) {
  using namespace cloudlb;

  bool with_slow_naive = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--with-slow-naive") == 0) with_slow_naive = true;

  constexpr int kPes[] = {32, 256, 2048, 16384};
  constexpr int kChares[] = {1'000, 10'000, 100'000};

  Table table({"P", "chares", "migrations", "indexed ms/invoc",
               "naive ms/invoc", "speedup"});

  for (const int pes : kPes) {
    for (const int chares : kChares) {
      const LbStats stats = synthetic_stats(pes, chares, 42);
      const auto background = estimate_background_load(stats);
      RefinementOptions options;
      options.epsilon_fraction = 0.05;

      int migrations = 0;
      const double indexed_ms = time_ms(
          [&] {
            migrations =
                refine_assignment(stats, background, options).migrations;
          },
          chares >= 100'000 ? 3 : 5);

      // The naive kernel is O(donors·T·|underset|); past ~2e8 scan steps a
      // grid point takes minutes, which defeats a quick sweep.
      const double naive_scan_estimate =
          static_cast<double>(pes) * static_cast<double>(chares);
      const bool run_naive =
          with_slow_naive || naive_scan_estimate <= 2048.0 * 100'000.0;

      double naive_ms = 0.0;
      if (run_naive) {
        naive_ms = time_ms(
            [&] {
              refine_assignment_naive(stats, background, options);
            },
            naive_scan_estimate >= 256.0 * 100'000.0 ? 1 : 3);
      }

      table.add_row(
          {std::to_string(pes), std::to_string(chares),
           std::to_string(migrations), Table::num(indexed_ms, 3),
           run_naive ? Table::num(naive_ms, 3) : "(skipped)",
           run_naive ? Table::num(naive_ms / indexed_ms, 1) + "x" : "-"});
      std::cerr << "done P=" << pes << " chares=" << chares << "\n";
    }
  }

  std::cout << "# refinement engine sweep: indexed vs naive kernel\n\n";
  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);
  return 0;
}

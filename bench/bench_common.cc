#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cloudlb::bench {

ScenarioConfig grid_config(const std::string& app, const std::string& balancer,
                           int cores) {
  ScenarioConfig config;
  config.app.name = app;
  config.app.iterations = 60;
  config.app_cores = cores;
  config.balancer = balancer;
  config.lb_period = 5;
  config.bg_iterations = 150;
  if (app == "mol3d") {
    // The paper observed the OS strongly favouring the background job for
    // Mol3D; model it as a 4× scheduler share, with enough BG work to
    // outlast even the heavily slowed noLB run.
    config.bg_weight = 4.0;
    config.bg_iterations = 900;
  }
  return config;
}

const PenaltyResult& PenaltyGrid::run(const std::string& app,
                                      const std::string& balancer,
                                      int cores) {
  std::ostringstream key;
  key << app << '/' << balancer << '/' << cores;
  auto it = cache_.find(key.str());
  if (it != cache_.end()) return it->second;

  // The interference-free baseline and the BG-solo run do not depend on
  // the balancer (there is nothing to migrate away from); share them
  // across the noLB/LB rows of a figure.
  std::ostringstream base_key;
  base_key << app << '/' << cores;
  auto base_it = baselines_.find(base_key.str());
  if (base_it == baselines_.end()) {
    ScenarioConfig solo = grid_config(app, "null", cores);
    solo.with_background = false;
    Baseline baseline;
    baseline.base = run_scenario(solo);
    baseline.bg_solo = run_background_solo(grid_config(app, "null", cores));
    base_it = baselines_.emplace(base_key.str(), baseline).first;
  }

  PenaltyResult result;
  result.base = base_it->second.base;
  result.bg_solo = base_it->second.bg_solo;
  result.combined = run_scenario(grid_config(app, balancer, cores));
  result.app_penalty_pct =
      percent_increase(result.combined.app_elapsed.to_seconds(),
                       result.base.app_elapsed.to_seconds());
  result.bg_penalty_pct = percent_increase(
      result.combined.bg_elapsed->to_seconds(), result.bg_solo.to_seconds());
  result.energy_overhead_pct =
      percent_increase(result.combined.energy_joules,
                       result.base.energy_joules);
  cache_.emplace(key.str(), result);
  return cache_.at(key.str());
}

void emit(const Table& table, const std::string& title) {
  std::cout << "== " << title << "\n\n";
  table.print(std::cout);
  if (std::getenv("CLOUDLB_BENCH_CSV") != nullptr) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << '\n';
}

}  // namespace cloudlb::bench

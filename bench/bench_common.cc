#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cloudlb::bench {

ScenarioConfig grid_config(const std::string& app, const std::string& balancer,
                           int cores) {
  ScenarioConfig config;
  config.app.name = app;
  config.app.iterations = 60;
  config.app_cores = cores;
  config.balancer = balancer;
  config.lb_period = 5;
  config.bg_iterations = 150;
  if (app == "mol3d") {
    // The paper observed the OS strongly favouring the background job for
    // Mol3D; model it as a 4× scheduler share, with enough BG work to
    // outlast even the heavily slowed noLB run.
    config.bg_weight = 4.0;
    config.bg_iterations = 900;
  }
  return config;
}

const PenaltyResult& PenaltyGrid::run(const std::string& app,
                                      const std::string& balancer,
                                      int cores) {
  std::ostringstream key;
  key << app << '/' << balancer << '/' << cores;
  Latched<PenaltyResult>& cell = entry(cache_, key.str());
  std::call_once(cell.once, [&] {
    // The interference-free baseline and the BG-solo run do not depend on
    // the balancer (there is nothing to migrate away from); share them
    // across the noLB/LB rows of a figure. The nested latch means the
    // first cell of an (app, cores) pair computes the baseline while
    // sibling cells wait on it, then reuse it.
    std::ostringstream base_key;
    base_key << app << '/' << cores;
    Latched<Baseline>& base = entry(baselines_, base_key.str());
    std::call_once(base.once, [&] {
      ScenarioConfig solo = grid_config(app, "null", cores);
      solo.with_background = false;
      base.value.base = run_scenario(solo);
      base.value.bg_solo = run_background_solo(grid_config(app, "null", cores));
    });

    PenaltyResult& result = cell.value;
    result.base = base.value.base;
    result.bg_solo = base.value.bg_solo;
    result.combined = run_scenario(grid_config(app, balancer, cores));
    result.app_penalty_pct =
        percent_increase(result.combined.app_elapsed.to_seconds(),
                         result.base.app_elapsed.to_seconds());
    result.bg_penalty_pct = percent_increase(
        result.combined.bg_elapsed->to_seconds(), result.bg_solo.to_seconds());
    result.energy_overhead_pct = percent_increase(
        result.combined.energy_joules, result.base.energy_joules);
  });
  return cell.value;
}

void ParallelGrid::run_queued() {
  parallel_for(cells_.size(), jobs_, [this](std::size_t i) {
    const Cell& cell = cells_[i];
    grid_.run(cell.app, cell.balancer, cell.cores);
  });
  cells_.clear();
}

int parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--jobs" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      continue;
    }
    const int jobs = std::atoi(value.c_str());
    return jobs <= 0 ? hardware_jobs() : jobs;
  }
  if (const char* env = std::getenv("CLOUDLB_BENCH_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
    if (jobs == 0 && env[0] == '0') return hardware_jobs();
  }
  return 1;
}

void emit(const Table& table, const std::string& title) {
  std::cout << "== " << title << "\n\n";
  table.print(std::cout);
  if (std::getenv("CLOUDLB_BENCH_CSV") != nullptr) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << '\n';
}

}  // namespace cloudlb::bench

// Ablation: offline strategy scoring. Record the measurement windows of
// ONE interfered run, then score every strategy against the identical
// recorded loads — the record/replay workflow LB researchers use to
// compare strategies without re-running applications.
//
// Expected: the interference-aware strategies cut the recorded max load
// per window; the blind ones leave it (refine/null) or even worsen it
// (greedy piles application load back onto the interfered cores).

#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "core/balancer_factory.h"
#include "core/replay.h"
#include "lb/stats_io.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  // Record one noLB run so every window shows the raw imbalance.
  std::stringstream trace;
  ScenarioConfig config = grid_config("jacobi2d", "null", 8);
  auto recorder =
      std::make_unique<RecordingLb>(make_balancer("null"), &trace);
  run_scenario_with(config, std::move(recorder));
  const std::vector<LbStats> windows = read_stats(trace);

  std::cout << "Ablation: offline replay of " << windows.size()
            << " recorded LB windows (Jacobi2D, 8 cores, noLB trace)\n\n";

  // One recording, scored by every strategy in parallel. Each replay
  // builds its own balancer instance, so the cells share only the
  // immutable recorded windows.
  struct Score {
    double before = 0.0, after = 0.0;
    int migrations = 0;
  };
  const std::vector<std::string> names = balancer_names();
  const std::vector<Score> scores = parallel_map<Score>(
      names.size(), parse_jobs(argc, argv), [&](std::size_t i) {
        const auto balancer = make_balancer(names[i]);
        Score score;
        for (const ReplayRow& row : replay_stats(windows, *balancer)) {
          score.before += row.max_load_before;
          score.after += row.max_load_after;
          score.migrations += row.migrations;
        }
        return score;
      });

  Table table({"balancer", "mean max-load before (s)",
               "mean max-load after (s)", "total migrations"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto n = static_cast<double>(windows.size());
    table.add_row({names[i], Table::num(scores[i].before / n, 3),
                   Table::num(scores[i].after / n, 3),
                   std::to_string(scores[i].migrations)});
  }
  emit(table, "per-strategy offline score");
  return 0;
}

// Figure 4 (a,b,c): average power draw (W) and normalized energy overhead
// (%) of the interfered runs, with and without load balancing.
//
// Expected shape (matching the paper): load-balanced runs draw MORE power
// (idle gaps disappear, dynamic power ∝ utilization) yet consume LESS
// energy, because the shorter runtime on top of the 40 W/node base power
// dominates. Energy overhead is normalized against the same application
// running with no interference at all.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Figure 4: effect of load balancing on power and energy\n"
            << "(base 40 W/node, 32.5 W per busy core, quad-core nodes)\n\n";
  ParallelGrid grid{parse_jobs(argc, argv)};
  for (const char* app : {"jacobi2d", "wave2d", "mol3d"})
    for (const int cores : kCoreSweep)
      for (const char* balancer : {"null", "ia-refine"})
        grid.add(app, balancer, cores);
  grid.run_queued();
  for (const char* app : {"jacobi2d", "wave2d", "mol3d"}) {
    Table table({"cores", "noLB power W", "LB power W", "noLB energy ovh %",
                 "LB energy ovh %", "base power W"});
    for (const int cores : kCoreSweep) {
      const PenaltyResult& no_lb = grid.run(app, "null", cores);
      const PenaltyResult& lb = grid.run(app, "ia-refine", cores);
      table.add_row({std::to_string(cores),
                     Table::num(no_lb.combined.avg_power_watts, 1),
                     Table::num(lb.combined.avg_power_watts, 1),
                     Table::num(no_lb.energy_overhead_pct, 1),
                     Table::num(lb.energy_overhead_pct, 1),
                     Table::num(no_lb.base.avg_power_watts, 1)});
    }
    emit(table, std::string("Fig 4 — power and energy, ") + app);
  }
  return 0;
}

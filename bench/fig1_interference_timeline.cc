// Figure 1 (a,b): per-core timelines of a 4-core Wave2D run on one node,
// before and after a 1-core job of the same application starts on the
// last core. No load balancing — this is the motivating pathology.
//
// Expected shape (matching the paper): the clean iteration is short and
// dense on all four cores; once the background task starts, core 3's
// bars stretch (it time-shares with the interferer) and cores 0-2 show
// idle gaps while they wait — and the whole iteration roughly doubles.

#include <iostream>

#include "apps/wave2d.h"
#include "bench_common.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "metrics/timeline.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/virtual_machine.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  // One scenario, one timeline: --jobs is accepted for grid-harness
  // uniformity but there is nothing here to parallelize.
  (void)parse_jobs(argc, argv);

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};

  VirtualMachine app_vm{machine, "wave2d", {0, 1, 2, 3}};
  JobConfig app_config;
  app_config.name = "wave2d";
  app_config.lb_period = 0;  // noLB: show the raw pathology
  RuntimeJob app{sim, app_vm, app_config, std::make_unique<NullLb>()};
  Wave2dConfig wc;
  wc.layout.iterations = 8;
  populate_wave2d(app, wc);

  // 1-core background job of the same application on core 3, as in the
  // paper's experiment, started after the first iteration completes.
  VirtualMachine bg_vm{machine, "background", {3}};
  JobConfig bg_config;
  bg_config.name = "background";
  bg_config.lb_period = 0;
  RuntimeJob bg{sim, bg_vm, bg_config, std::make_unique<NullLb>()};
  Wave2dConfig bg_wc;
  bg_wc.layout.grid_x = 128;
  bg_wc.layout.grid_y = 128;
  bg_wc.layout.blocks_x = 2;
  bg_wc.layout.blocks_y = 2;
  bg_wc.layout.iterations = 200;
  populate_wave2d(bg, bg_wc);

  TimelineTracer tracer;
  app.set_observer(&tracer);
  bg.set_observer(&tracer);

  app.start();
  // iteration_times()[0] is stamped when the last chare finishes
  // iteration 0 (it stays zero while the slot merely exists).
  while (app.iteration_times().empty() || app.iteration_times()[0].is_zero())
    CLB_CHECK(sim.step());
  const SimTime first_iteration = sim.now();
  bg.start();
  while (!app.finished()) CLB_CHECK(sim.step());

  std::cout << "Figure 1: background task on core 3 disturbing a 4-core "
               "Wave2D run (noLB)\n\n";
  Table durations({"iteration", "duration (ms)", "interfered"});
  SimTime prev = app.start_time();
  const auto& times = app.iteration_times();
  for (std::size_t i = 0; i < times.size(); ++i) {
    durations.add_row({std::to_string(i),
                       Table::num((times[i] - prev).to_millis(), 1),
                       times[i] > first_iteration ? "yes" : "no"});
    prev = times[i];
  }
  emit(durations, "iteration durations (BG starts after iteration 0)");

  std::cout << "-- Fig 1(a): clean iteration (W = wave2d busy, . = idle)\n";
  tracer.render_ascii(std::cout, 4, SimTime::zero(), first_iteration, 80);
  std::cout << "\n-- Fig 1(b): interfered iterations (B = background job; "
               "core 3 shared, cores 0-2 waiting)\n";
  tracer.render_ascii(std::cout, 4, times[2], times[4], 80);

  const double clean = (times[0] - app.start_time()).to_seconds();
  const double dirty = (times[4] - times[3]).to_seconds();
  std::cout << "\ninterfered iteration is " << Table::num(dirty / clean, 2)
            << "x the clean one (paper: roughly 2x under fair sharing)\n";
  return 0;
}

// Ablation: heterogeneous instances. Clouds mix fast and slow cores; the
// paper's Eq. 2 has a pleasant emergent property here. A slow core that
// is 100% busy on application work still shows wall > task-CPU + idle, so
// the estimator attributes the deficit to "background load" — and the
// refinement correctly right-sizes the slow core's share, with no
// heterogeneity-specific code at all.
//
// Setup: Jacobi2D on 8 cores, no interfering job; cores 0 and 1 run at a
// reduced speed. Slowdown is measured against the all-fast machine.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: heterogeneous core speeds (Jacobi2D, 8 cores, "
               "cores 0-1 slowed, no interfering job)\n\n";

  auto run_with = [](const char* balancer, double slow_speed) {
    ScenarioConfig config = grid_config("jacobi2d", balancer, 8);
    config.with_background = false;
    if (slow_speed < 1.0) {
      config.machine.core_speed_overrides = {{0, slow_speed},
                                             {1, slow_speed}};
    }
    return run_scenario(config);
  };

  // Cell 0 is the all-fast baseline; then two cells (noLB, ia-refine) per
  // slowed speed, each an independent deterministic scenario.
  const std::vector<double> speeds = {0.8, 0.5, 0.25};
  const std::vector<RunResult> results = parallel_map<RunResult>(
      1 + speeds.size() * 2, parse_jobs(argc, argv), [&](std::size_t i) {
        if (i == 0) return run_with("null", 1.0);
        const std::size_t cell = i - 1;
        return run_with(cell % 2 == 0 ? "null" : "ia-refine",
                        speeds[cell / 2]);
      });

  Table table({"slow-core speed", "noLB slowdown %", "ia-refine slowdown %",
               "ia migrations"});
  const double fast = results[0].app_elapsed.to_seconds();
  for (std::size_t s = 0; s < speeds.size(); ++s) {
    const RunResult& no_lb = results[1 + 2 * s];
    const RunResult& lb = results[1 + 2 * s + 1];
    table.add_row(
        {Table::num(speeds[s], 2),
         Table::num((no_lb.app_elapsed.to_seconds() / fast - 1) * 100, 1),
         Table::num((lb.app_elapsed.to_seconds() / fast - 1) * 100, 1),
         std::to_string(lb.lb_migrations)});
  }
  emit(table, "heterogeneity sweep (slowdown vs. all-fast machine)");
  std::cout << "the estimator cannot tell 'slow core' from 'core busy "
               "serving another VM' — and does not need to.\n";
  return 0;
}

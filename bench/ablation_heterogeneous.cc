// Ablation: heterogeneous instances. Clouds mix fast and slow cores; the
// paper's Eq. 2 has a pleasant emergent property here. A slow core that
// is 100% busy on application work still shows wall > task-CPU + idle, so
// the estimator attributes the deficit to "background load" — and the
// refinement correctly right-sizes the slow core's share, with no
// heterogeneity-specific code at all.
//
// Setup: Jacobi2D on 8 cores, no interfering job; cores 0 and 1 run at a
// reduced speed. Slowdown is measured against the all-fast machine.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cloudlb;
  using namespace cloudlb::bench;

  std::cout << "Ablation: heterogeneous core speeds (Jacobi2D, 8 cores, "
               "cores 0-1 slowed, no interfering job)\n\n";

  auto run_with = [](const char* balancer, double slow_speed) {
    ScenarioConfig config = grid_config("jacobi2d", balancer, 8);
    config.with_background = false;
    if (slow_speed < 1.0) {
      config.machine.core_speed_overrides = {{0, slow_speed},
                                             {1, slow_speed}};
    }
    return run_scenario(config);
  };

  Table table({"slow-core speed", "noLB slowdown %", "ia-refine slowdown %",
               "ia migrations"});
  const double fast = run_with("null", 1.0).app_elapsed.to_seconds();
  for (const double speed : {0.8, 0.5, 0.25}) {
    const RunResult no_lb = run_with("null", speed);
    const RunResult lb = run_with("ia-refine", speed);
    table.add_row(
        {Table::num(speed, 2),
         Table::num((no_lb.app_elapsed.to_seconds() / fast - 1) * 100, 1),
         Table::num((lb.app_elapsed.to_seconds() / fast - 1) * 100, 1),
         std::to_string(lb.lb_migrations)});
  }
  emit(table, "heterogeneity sweep (slowdown vs. all-fast machine)");
  std::cout << "the estimator cannot tell 'slow core' from 'core busy "
               "serving another VM' — and does not need to.\n";
  return 0;
}

#!/usr/bin/env python3
"""Plot the paper's figures from the bench harness output.

Usage:
    CLOUDLB_BENCH_CSV=1 build/bench/fig2_timing_penalty > fig2.txt
    CLOUDLB_BENCH_CSV=1 build/bench/fig4_power_energy  > fig4.txt
    python3 scripts/plot_figures.py fig2.txt fig4.txt -o plots/

Parses the "[csv]" blocks the benches emit when CLOUDLB_BENCH_CSV is set
and renders one grouped-bar chart per table, mirroring the paper's
Figure 2 / Figure 4 layout. Requires matplotlib (only this script does;
the C++ build has no Python dependency).
"""

import argparse
import csv
import io
import os
import re
import sys


def parse_bench_output(text):
    """Yields (title, header, rows) per CSV block in a bench's output."""
    blocks = re.split(r"^== ", text, flags=re.M)[1:]
    for block in blocks:
        title = block.splitlines()[0].strip()
        m = re.search(r"^\[csv\]$(.*?)(?=^\S|\Z)", block, flags=re.M | re.S)
        if not m:
            continue
        reader = csv.reader(io.StringIO(m.group(1).strip()))
        table = [row for row in reader if row]
        if len(table) < 2:
            continue
        yield title, table[0], table[1:]


def slug(title):
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")


def plot_table(title, header, rows, outdir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    x_label = header[0]
    numeric_cols = []
    for c in range(1, len(header)):
        try:
            [float(r[c]) for r in rows]
            numeric_cols.append(c)
        except ValueError:
            continue
    if not numeric_cols:
        return None

    xs = [r[0] for r in rows]
    width = 0.8 / len(numeric_cols)
    fig, ax = plt.subplots(figsize=(8, 4.5))
    for i, c in enumerate(numeric_cols):
        offsets = [j + i * width for j in range(len(xs))]
        ax.bar(offsets, [float(r[c]) for r in rows], width, label=header[c])
    ax.set_xticks([j + 0.4 - width / 2 for j in range(len(xs))])
    ax.set_xticklabels(xs)
    ax.set_xlabel(x_label)
    ax.set_title(title)
    ax.legend(fontsize=8)
    ax.grid(axis="y", alpha=0.3)
    path = os.path.join(outdir, slug(title) + ".png")
    fig.tight_layout()
    fig.savefig(path, dpi=140)
    plt.close(fig)
    return path


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="bench output files")
    parser.add_argument("-o", "--outdir", default="plots")
    args = parser.parse_args()

    os.makedirs(args.outdir, exist_ok=True)
    produced = []
    for path in args.inputs:
        with open(path) as f:
            text = f.read()
        found = False
        for title, header, rows in parse_bench_output(text):
            found = True
            png = plot_table(title, header, rows, args.outdir)
            if png:
                produced.append(png)
        if not found:
            print(
                f"warning: no [csv] blocks in {path} — rerun the bench "
                "with CLOUDLB_BENCH_CSV=1",
                file=sys.stderr,
            )
    for png in produced:
        print(png)


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Runs the cloudlb determinism linter (tools/lint/cloudlb_lint.py) over the
# real tree: src/, tests/, bench/, tools/. Exits nonzero on any finding.
#
#   scripts/lint.sh                 lint the whole tree
#   scripts/lint.sh src/sim/*.cc    lint specific files
#   scripts/lint.sh --selftest tests/lint/fixtures
#                                   check the fixture expectations
#
# Also available as the CMake `lint` target and `ctest -L lint`.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
exec python3 "${root}/tools/lint/cloudlb_lint.py" --root "${root}" "$@"

#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ source under src/, tests/,
# bench/, examples/, and tools/ with the repo's .clang-format.
#
#   scripts/format.sh           rewrite files in place
#   scripts/format.sh --check   exit 1 if anything would change (CI mode)
#
# Exits 0 with a notice when clang-format is not installed: formatting is
# verified by the CI format job, and a developer box without the tool must
# not fail unrelated workflows. tests/lint/fixtures is skipped — the lint
# fixtures are frozen byte-for-byte so their EXPECT-LINT line numbers and
# deliberately bad layout stay put.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-fix}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping (CI enforces formatting)" >&2
  exit 0
fi

mapfile -t files < <(
  find "${root}/src" "${root}/tests" "${root}/bench" "${root}/examples" \
       "${root}/tools" \
       -path "${root}/tests/lint/fixtures" -prune -o \
       -path "${root}/tests/analyzer/fixtures" -prune -o \
       -type f \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) -print |
    sort)

if [[ "${mode}" == "--check" ]]; then
  clang-format --style=file --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  clang-format --style=file -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi

#include "faults/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "machine/machine.h"
#include "util/check.h"
#include "util/log.h"

namespace cloudlb {

namespace {

bool inert(const SpikeFaultSpec& f) {
  return f.duty <= 0.0 || f.duration <= SimTime::zero();
}
bool inert(const SquareWaveFaultSpec& f) {
  return f.duty <= 0.0 || f.on <= SimTime::zero();
}
bool inert(const ParetoFaultSpec& f) {
  return f.duty <= 0.0 || f.cores <= 0 || f.min_on <= SimTime::zero();
}
bool inert(const DropSampleFaultSpec& f) { return f.prob <= 0.0; }
bool inert(const StaleSampleFaultSpec& f) { return f.prob <= 0.0; }
bool inert(const CorruptEstimatorFaultSpec& f) { return f.prob <= 0.0; }
bool inert(const ClockJitterFaultSpec& f) { return f.sigma_sec <= 0.0; }
bool inert(const MigrationFaultSpec& f) { return f.prob <= 0.0; }

template <typename T>
void prune(std::vector<T>& models) {
  std::erase_if(models, [](const T& f) { return inert(f); });
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_{std::move(plan)} {
  // Prune zero-intensity models up front: what remains is exactly the set
  // of models that can perturb the run, so inert() == "bit-identical".
  prune(plan_.spikes);
  prune(plan_.squares);
  prune(plan_.paretos);
  prune(plan_.drops);
  prune(plan_.stales);
  prune(plan_.corruptions);
  prune(plan_.jitters);
  prune(plan_.migration_faults);

  Rng master{plan_.seed};
  stats_rng_ = master.split();
  migration_rng_ = master.split();
  interference_rng_ = master.split();
}

bool FaultInjector::inert() const { return plan_.empty(); }

void FaultInjector::install_interference(Simulator& sim, Machine& machine) {
  install_interference(machine,
                       [&sim](CoreId) -> EngineCore& { return sim; });
}

void FaultInjector::install_interference(
    Machine& machine, const std::function<EngineCore&(CoreId)>& engine_of_core) {
  CLB_CHECK_MSG(!installed_, "install_interference called twice");
  installed_ = true;
  for (const SpikeFaultSpec& f : plan_.spikes)
    install_spike(engine_of_core, machine, f);
  for (const SquareWaveFaultSpec& f : plan_.squares)
    install_square(engine_of_core, machine, f);
  for (const ParetoFaultSpec& f : plan_.paretos)
    install_pareto(engine_of_core, machine, f);
}

void FaultInjector::install_spike(const EngineResolver& engine_of_core,
                                  Machine& machine, const SpikeFaultSpec& f) {
  CLB_CHECK_MSG(f.core >= 0, "spike fault: negative core id");
  const CoreId core = f.core % machine.num_cores();
  EngineCore& sim = engine_of_core(core);
  SyntheticInterferer::Config hc;
  hc.duty_cycle = f.duty;
  hc.weight = f.weight;
  hogs_.push_back(std::make_unique<SyntheticInterferer>(
      sim, machine, std::vector<CoreId>{core}, hc));
  ++counters_.interferers;
  SyntheticInterferer* hog = hogs_.back().get();
  sim.schedule_at(f.start, [hog] { hog->start(); });
  sim.schedule_at(f.start + f.duration, [hog] { hog->stop(); });
}

void FaultInjector::install_square(const EngineResolver& engine_of_core,
                                   Machine& machine,
                                   const SquareWaveFaultSpec& f) {
  CLB_CHECK_MSG(f.core >= 0, "square fault: negative core id");
  SquareWaveFaultSpec local = f;
  local.core = f.core % machine.num_cores();
  EngineCore& sim = engine_of_core(local.core);
  SyntheticInterferer::Config hc;
  hc.duty_cycle = f.duty;
  hc.weight = f.weight;
  hogs_.push_back(std::make_unique<SyntheticInterferer>(
      sim, machine, std::vector<CoreId>{local.core}, hc));
  ++counters_.interferers;
  pulse_square(sim, hogs_.back().get(), local, local.start);
}

void FaultInjector::pulse_square(EngineCore& sim, SyntheticInterferer* hog,
                                 SquareWaveFaultSpec f, SimTime t0) {
  // One pulse per period, forever: the wave outlives the jobs and the
  // scenario drive loop simply stops stepping once they finish.
  sim.schedule_at(t0, [this, &sim, hog, f, t0] {
    hog->start();
    sim.schedule_at(t0 + f.on, [hog] { hog->stop(); });
    pulse_square(sim, hog, f, t0 + f.period);
  });
}

void FaultInjector::install_pareto(const EngineResolver& engine_of_core,
                                   Machine& machine,
                                   const ParetoFaultSpec& f) {
  for (int i = 0; i < f.cores; ++i) {
    const CoreId core = static_cast<CoreId>(
        interference_rng_.uniform_int(0, machine.num_cores() - 1));
    EngineCore& sim = engine_of_core(core);
    SyntheticInterferer::Config hc;
    hc.duty_cycle = f.duty;
    hc.weight = f.weight;
    hogs_.push_back(std::make_unique<SyntheticInterferer>(
        sim, machine, std::vector<CoreId>{core}, hc));
    ++counters_.interferers;
    episode_rngs_.push_back(std::make_unique<Rng>(interference_rng_.split()));
    pulse_pareto(sim, hogs_.back().get(), f, episode_rngs_.back().get());
  }
}

void FaultInjector::pulse_pareto(EngineCore& sim, SyntheticInterferer* hog,
                                 const ParetoFaultSpec& f, Rng* rng) {
  // Quiet for an exponential draw, then busy for a Pareto(alpha, min_on)
  // draw — the inverse-CDF transform x_m · (1 − u)^(−1/α) has no finite
  // variance for α <= 2, so occasional episodes are pathologically long.
  const SimTime off = SimTime::from_seconds(rng->exponential(f.mean_off_sec));
  const double u = rng->next_double();
  const SimTime on = f.min_on * std::pow(1.0 - u, -1.0 / f.alpha);
  sim.schedule_after(off, [this, &sim, hog, f, rng, on] {
    hog->start();
    sim.schedule_after(on, [this, &sim, hog, f, rng] {
      hog->stop();
      pulse_pareto(sim, hog, f, rng);
    });
  });
}

void FaultInjector::corrupt_pe(PeSample& pe,
                               const CorruptEstimatorFaultSpec& f) {
  CorruptMode mode = f.mode;
  if (mode == CorruptMode::kMixed) {
    switch (stats_rng_.uniform_int(0, 2)) {
      case 0: mode = CorruptMode::kNegative; break;
      case 1: mode = CorruptMode::kNan; break;
      default: mode = CorruptMode::kOverflow; break;
    }
  }
  // All three corrupt the host idle counter — the reading the paper takes
  // from /proc/stat, and the one a real deployment trusts least.
  switch (mode) {
    case CorruptMode::kNegative:
      // Idle inflated past the window: Eq. 2 goes finite-but-negative.
      pe.core_idle_sec = 2.0 * std::max(pe.wall_sec, 1.0);
      break;
    case CorruptMode::kNan:
      pe.core_idle_sec = std::numeric_limits<double>::quiet_NaN();
      break;
    case CorruptMode::kOverflow:
      // Idle underflows to a huge negative value: Eq. 2 explodes upward.
      pe.core_idle_sec = -1e300;
      break;
    case CorruptMode::kMixed:
      break;  // unreachable
  }
  ++counters_.pes_corrupted;
}

void FaultInjector::perturb_stats(LbStats& stats) {
  // Snapshot the true per-chare CPU before any model touches it: the
  // stale model replays *true* previous-window values (a DB row that
  // missed one update), not previously-corrupted ones.
  std::vector<double> true_cpu;
  true_cpu.reserve(stats.chares.size());
  for (const ChareSample& ch : stats.chares) true_cpu.push_back(ch.cpu_sec);

  for (const ClockJitterFaultSpec& f : plan_.jitters) {
    for (PeSample& pe : stats.pes) {
      pe.wall_sec =
          std::max(0.0, pe.wall_sec + stats_rng_.normal(0.0, f.sigma_sec));
      pe.core_idle_sec = std::max(
          0.0, pe.core_idle_sec + stats_rng_.normal(0.0, f.sigma_sec));
      ++counters_.pes_jittered;
    }
  }

  bool chares_touched = false;
  for (const StaleSampleFaultSpec& f : plan_.stales) {
    for (ChareSample& ch : stats.chares) {
      const bool hit = stats_rng_.next_double() < f.prob;
      if (!hit || prev_chare_cpu_.empty()) continue;
      const auto c = static_cast<std::size_t>(ch.chare);
      if (c >= prev_chare_cpu_.size()) continue;
      ch.cpu_sec = prev_chare_cpu_[c];
      chares_touched = true;
      ++counters_.samples_staled;
    }
  }
  for (const DropSampleFaultSpec& f : plan_.drops) {
    for (ChareSample& ch : stats.chares) {
      if (stats_rng_.next_double() >= f.prob) continue;
      ch.cpu_sec = 0.0;
      chares_touched = true;
      ++counters_.samples_dropped;
    }
  }
  if (chares_touched) {
    // The per-PE task sums come from the same database as the per-chare
    // rows, so a lost or stale row distorts both consistently.
    for (PeSample& pe : stats.pes) pe.task_cpu_sec = 0.0;
    for (const ChareSample& ch : stats.chares)
      stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }

  for (const CorruptEstimatorFaultSpec& f : plan_.corruptions) {
    for (PeSample& pe : stats.pes) {
      if (stats_rng_.next_double() < f.prob) corrupt_pe(pe, f);
    }
  }

  prev_chare_cpu_ = std::move(true_cpu);
}

MigrationFault FaultInjector::on_migration(const MigrationAttempt& attempt) {
  (void)attempt;
  MigrationFault verdict = MigrationFault::kNone;
  for (const MigrationFaultSpec& f : plan_.migration_faults) {
    // Fixed two draws per model per attempt, so one model's verdict never
    // shifts another model's stream.
    const bool fail = migration_rng_.next_double() < f.prob;
    const bool partial = migration_rng_.next_double() < f.partial;
    if (fail && verdict == MigrationFault::kNone) {
      verdict = partial ? MigrationFault::kFailAtDest
                        : MigrationFault::kFailAtSource;
      ++counters_.migration_faults;
    }
  }
  return verdict;
}

}  // namespace cloudlb

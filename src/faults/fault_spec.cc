#include "faults/fault_spec.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>

#include "util/check.h"

namespace cloudlb {

namespace {

/// One parsed `name(k=v,...)` clause. Tracks which keys were consumed so
/// a typo'd key is an error, not a silently-inert fault.
class Clause {
 public:
  Clause(std::string name, std::map<std::string, std::string> kv)
      : name_{std::move(name)}, kv_{std::move(kv)} {}

  const std::string& name() const { return name_; }

  double number(const std::string& key, double fallback) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.insert(key);
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    CLB_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
                  "fault spec: " << name_ << "." << key << "="
                                 << it->second << " is not a number");
    return v;
  }

  SimTime seconds(const std::string& key, SimTime fallback) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return SimTime::from_seconds(number(key, 0.0));
  }

  std::string text(const std::string& key, const std::string& fallback) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    used_.insert(key);
    return it->second;
  }

  void check_all_used() const {
    for (const auto& [key, value] : kv_) {
      CLB_CHECK_MSG(used_.count(key) != 0, "fault spec: model '"
                                               << name_
                                               << "' has no key named '"
                                               << key << "'");
    }
  }

 private:
  std::string name_;
  std::map<std::string, std::string> kv_;
  std::set<std::string> used_;
};

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Clause parse_clause(const std::string& raw) {
  const std::string clause = trimmed(raw);
  const auto open = clause.find('(');
  if (open == std::string::npos) {
    CLB_CHECK_MSG(!clause.empty(), "fault spec: empty model clause");
    return Clause{clause, {}};
  }
  CLB_CHECK_MSG(clause.back() == ')',
                "fault spec: missing ')' in '" << clause << "'");
  const std::string name = trimmed(clause.substr(0, open));
  CLB_CHECK_MSG(!name.empty(), "fault spec: model with no name in '"
                                   << clause << "'");
  std::map<std::string, std::string> kv;
  const std::string body = clause.substr(open + 1,
                                         clause.size() - open - 2);
  std::size_t pos = 0;
  while (pos <= body.size() && !trimmed(body).empty()) {
    const auto comma = body.find(',', pos);
    const std::string pair =
        trimmed(body.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos));
    const auto eq = pair.find('=');
    CLB_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < pair.size(),
                  "fault spec: expected key=value, got '" << pair << "' in '"
                                                          << clause << "'");
    const std::string key = trimmed(pair.substr(0, eq));
    CLB_CHECK_MSG(kv.emplace(key, trimmed(pair.substr(eq + 1))).second,
                  "fault spec: duplicate key '" << key << "' in '" << clause
                                                << "'");
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return Clause{name, std::move(kv)};
}

CorruptMode parse_corrupt_mode(const std::string& mode) {
  if (mode == "negative") return CorruptMode::kNegative;
  if (mode == "nan") return CorruptMode::kNan;
  if (mode == "overflow") return CorruptMode::kOverflow;
  if (mode == "mixed") return CorruptMode::kMixed;
  CLB_CHECK_MSG(false, "fault spec: unknown corrupt mode '" << mode << "'");
  return CorruptMode::kMixed;  // unreachable
}

double probability(Clause& c, const std::string& key, double fallback = 0.0) {
  const double p = c.number(key, fallback);
  CLB_CHECK_MSG(p >= 0.0 && p <= 1.0, "fault spec: " << c.name() << "."
                                                     << key << "=" << p
                                                     << " not in [0, 1]");
  return p;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    const std::string raw = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    if (!trimmed(raw).empty()) {
      Clause c = parse_clause(raw);
      if (c.name() == "seed") {
        const double v = c.number("value", 1.0);
        CLB_CHECK_MSG(v >= 0.0, "fault spec: seed must be non-negative");
        plan.seed = static_cast<std::uint64_t>(v);
      } else if (c.name() == "spike") {
        SpikeFaultSpec f;
        f.core = static_cast<int>(c.number("core", 0.0));
        f.start = c.seconds("start", f.start);
        f.duration = c.seconds("duration", f.duration);
        f.duty = probability(c, "duty", 1.0);
        f.weight = c.number("weight", 1.0);
        CLB_CHECK_MSG(f.start >= SimTime::zero(),
                      "fault spec: spike start < 0");
        CLB_CHECK_MSG(f.duration >= SimTime::zero(),
                      "fault spec: spike duration < 0");
        plan.spikes.push_back(f);
      } else if (c.name() == "square") {
        SquareWaveFaultSpec f;
        f.core = static_cast<int>(c.number("core", 0.0));
        f.start = c.seconds("start", f.start);
        f.period = c.seconds("period", f.period);
        f.on = c.seconds("on", f.on);
        f.duty = probability(c, "duty", 1.0);
        f.weight = c.number("weight", 1.0);
        CLB_CHECK_MSG(f.start >= SimTime::zero(),
                      "fault spec: square start < 0");
        CLB_CHECK_MSG(f.period > SimTime::zero(),
                      "fault spec: square period must be > 0");
        CLB_CHECK_MSG(f.on >= SimTime::zero(),
                      "fault spec: square on-time < 0");
        CLB_CHECK_MSG(f.on <= f.period,
                      "fault spec: square on-time exceeds its period");
        plan.squares.push_back(f);
      } else if (c.name() == "pareto") {
        ParetoFaultSpec f;
        f.cores = static_cast<int>(c.number("cores", 1.0));
        f.alpha = c.number("alpha", 1.5);
        f.min_on = c.seconds("min_on", f.min_on);
        f.mean_off_sec = c.number("mean_off", 1.0);
        f.duty = probability(c, "duty", 1.0);
        f.weight = c.number("weight", 1.0);
        CLB_CHECK_MSG(f.cores >= 0, "fault spec: pareto cores < 0");
        CLB_CHECK_MSG(f.alpha > 0.0, "fault spec: pareto alpha must be > 0");
        CLB_CHECK_MSG(f.min_on >= SimTime::zero(),
                      "fault spec: pareto min_on < 0");
        CLB_CHECK_MSG(f.mean_off_sec > 0.0,
                      "fault spec: pareto mean_off must be > 0");
        plan.paretos.push_back(f);
      } else if (c.name() == "drop") {
        plan.drops.push_back(DropSampleFaultSpec{probability(c, "prob")});
      } else if (c.name() == "stale") {
        plan.stales.push_back(StaleSampleFaultSpec{probability(c, "prob")});
      } else if (c.name() == "corrupt") {
        CorruptEstimatorFaultSpec f;
        f.prob = probability(c, "prob");
        f.mode = parse_corrupt_mode(c.text("mode", "mixed"));
        plan.corruptions.push_back(f);
      } else if (c.name() == "jitter") {
        ClockJitterFaultSpec f;
        f.sigma_sec = c.number("sigma", 0.0);
        CLB_CHECK_MSG(f.sigma_sec >= 0.0, "fault spec: jitter sigma < 0");
        plan.jitters.push_back(f);
      } else if (c.name() == "failmig") {
        MigrationFaultSpec f;
        f.prob = probability(c, "prob");
        f.partial = probability(c, "partial", 0.5);
        plan.migration_faults.push_back(f);
      } else {
        CLB_CHECK_MSG(false,
                      "fault spec: unknown model '" << c.name() << "'");
      }
      c.check_all_used();
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return plan;
}

}  // namespace cloudlb

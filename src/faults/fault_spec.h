#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace cloudlb {

/// A one-shot step of synthetic interference: a CPU hog on one core from
/// `start` for `duration`, at the given duty cycle. duty = 0 or
/// duration = 0 is inert (the model is pruned).
struct SpikeFaultSpec {
  int core = 0;
  SimTime start;
  SimTime duration = SimTime::seconds(1);
  double duty = 1.0;    ///< CPU appetite while on, in [0, 1]
  double weight = 1.0;  ///< scheduler share of the hog's VM
};

/// A square-wave interferer: from `start`, repeats "on for `on`, off for
/// the rest of `period`" forever. duty = 0 or on = 0 is inert.
struct SquareWaveFaultSpec {
  int core = 0;
  SimTime start;
  SimTime period = SimTime::seconds(2);
  SimTime on = SimTime::seconds(1);
  double duty = 1.0;
  double weight = 1.0;
};

/// Heavy-tailed bursty interference: `cores` single-core hogs on seeded
/// random cores, each alternating Pareto(alpha, min_on) busy episodes with
/// exponential(mean_off) quiet ones. Models the occasional pathological
/// neighbour whose bursts have no characteristic length. cores = 0 or
/// duty = 0 is inert.
struct ParetoFaultSpec {
  int cores = 1;
  double alpha = 1.5;   ///< Pareto shape; smaller = heavier tail (> 0)
  SimTime min_on = SimTime::millis(50);  ///< Pareto scale x_m
  double mean_off_sec = 1.0;
  double duty = 1.0;
  double weight = 1.0;
};

/// Each chare's load-DB record is independently lost with `prob`: the LB
/// sees cpu_sec = 0 for that chare and the owning PE's task sum shrinks to
/// match (the DB genuinely lost the row). prob = 0 is inert.
struct DropSampleFaultSpec {
  double prob = 0.0;
};

/// Each chare's load-DB record is independently replaced by the previous
/// window's value with `prob` (a stale read that missed the last update).
/// No-op on the first window. prob = 0 is inert.
struct StaleSampleFaultSpec {
  double prob = 0.0;
};

/// How a corrupted background-estimator reading manifests.
enum class CorruptMode {
  kNegative,  ///< idle inflated past wall: Eq. 2 yields a negative O_p
  kNan,       ///< idle reads NaN (failed /proc/stat style parse)
  kOverflow,  ///< idle reads a huge negative number: O_p overflows upward
  kMixed,     ///< one of the above, drawn per corruption
};

/// Each PE's host idle counter is independently corrupted with `prob`,
/// producing the garbage O_p values the estimator and LB must survive.
/// prob = 0 is inert.
struct CorruptEstimatorFaultSpec {
  double prob = 0.0;
  CorruptMode mode = CorruptMode::kMixed;
};

/// Per-PE clock jitter: wall and idle readings of every PE sample are
/// perturbed by independent N(0, sigma) seconds, clamped at 0. Models
/// unsynchronized per-core clocks and jiffy-resolution reads; makes the
/// Eq. 2 subtraction go slightly negative or inconsistent. sigma = 0 is
/// inert.
struct ClockJitterFaultSpec {
  double sigma_sec = 0.0;
};

/// Each migration attempt independently fails with `prob`; a failing
/// attempt fails after the transfer (a partial migration — state arrived
/// but could not be installed) with conditional probability `partial`,
/// otherwise at the source before anything left. prob = 0 is inert.
struct MigrationFaultSpec {
  double prob = 0.0;
  double partial = 0.5;
};

/// A parsed, validated fault plan: any number of each model, plus the
/// master seed every stochastic model derives its stream from.
///
/// Spec grammar (see docs/fault-injection.md):
///
///   spec   := model (';' model)*
///   model  := name [ '(' kv (',' kv)* ')' ]
///   kv     := key '=' value
///
/// e.g. "spike(core=2,start=0.5,duration=1);drop(prob=0.1);seed(value=42)"
/// Durations are plain seconds. Unknown models or keys throw CheckFailure
/// (like Options::check_unused, typos must not silently disable a fault).
/// parse() keeps zero-intensity models (so a spec sweep can include the
/// zero point); FaultInjector prunes them from its copy at construction,
/// so the injector's plan() reflects only the models that can fire.
struct FaultPlan {
  std::vector<SpikeFaultSpec> spikes;
  std::vector<SquareWaveFaultSpec> squares;
  std::vector<ParetoFaultSpec> paretos;
  std::vector<DropSampleFaultSpec> drops;
  std::vector<StaleSampleFaultSpec> stales;
  std::vector<CorruptEstimatorFaultSpec> corruptions;
  std::vector<ClockJitterFaultSpec> jitters;
  std::vector<MigrationFaultSpec> migration_faults;
  std::uint64_t seed = 1;

  /// Parses the grammar above; throws CheckFailure on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  [[nodiscard]] bool empty() const {
    return spikes.empty() && squares.empty() && paretos.empty() &&
           drops.empty() && stales.empty() && corruptions.empty() &&
           jitters.empty() && migration_faults.empty();
  }
};

}  // namespace cloudlb

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "faults/fault_spec.h"
#include "runtime/fault_hooks.h"
#include "util/rng.h"
#include "vm/interferer.h"

namespace cloudlb {

/// Deterministically-seeded composition of fault models, wired into a
/// scenario through the two runtime hooks (FaultHooks) plus an explicit
/// interference installer. One injector serves one simulated world; build
/// a fresh one per run (the parallel-grid rule: one cell, one world).
///
/// Every model draws from its own Rng stream split off the plan seed at
/// construction, so adding or re-ordering models in a spec never perturbs
/// the draws of the others, and a given (plan, scenario) pair reproduces
/// the exact same fault schedule on every run and thread count.
///
/// Zero-intensity models are pruned at construction: an injector built
/// from an all-zero plan schedules no events, never touches a stats
/// snapshot, and fails no migrations — a scenario wrapped with it is
/// bit-identical to an unwrapped one (pinned by determinism_test.cc).
class FaultInjector final : public FaultHooks {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// True when every model was pruned (nothing can ever perturb anything).
  [[nodiscard]] bool inert() const;

  /// The plan the injector acts on: the parsed plan minus the
  /// zero-intensity models pruned at construction, so it lists exactly
  /// the models that can fire. The full parsed plan (sweep zero points
  /// included) only exists before it is handed to the injector.
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Creates and schedules the plan's interference sources (spikes,
  /// square waves, Pareto bursts) against `machine`. Call once, before
  /// the jobs start; the injector owns the hog VMs for the run's lifetime.
  void install_interference(Simulator& sim, Machine& machine);

  /// Sharded-runtime overload: every hog binds to the engine the resolver
  /// names for its core, so each interferer's pulse chain is shard-local
  /// and runs safely inside parallel windows. All Rng draws happen at
  /// install time in spec order, so the fault schedule is independent of
  /// the resolver — identical timestamps for every shard count.
  void install_interference(
      Machine& machine,
      const std::function<EngineCore&(CoreId)>& engine_of_core);

  // --- FaultHooks ---
  void perturb_stats(LbStats& stats) override;
  MigrationFault on_migration(const MigrationAttempt& attempt) override;

  /// Everything the injector actually did (tests, degradation reports).
  struct Counters {
    int samples_dropped = 0;
    int samples_staled = 0;
    int pes_corrupted = 0;
    int pes_jittered = 0;
    int migration_faults = 0;
    int interferers = 0;  ///< hog VMs installed
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  using EngineResolver = std::function<EngineCore&(CoreId)>;

  void install_spike(const EngineResolver& engine_of_core, Machine& machine,
                     const SpikeFaultSpec& f);
  void install_square(const EngineResolver& engine_of_core, Machine& machine,
                      const SquareWaveFaultSpec& f);
  void install_pareto(const EngineResolver& engine_of_core, Machine& machine,
                      const ParetoFaultSpec& f);
  void pulse_square(EngineCore& sim, SyntheticInterferer* hog,
                    SquareWaveFaultSpec f, SimTime t0);
  void pulse_pareto(EngineCore& sim, SyntheticInterferer* hog,
                    const ParetoFaultSpec& f, Rng* rng);
  void corrupt_pe(PeSample& pe, const CorruptEstimatorFaultSpec& f);

  FaultPlan plan_;
  Rng stats_rng_;
  Rng migration_rng_;
  Rng interference_rng_;
  /// Per-Pareto-hog episode streams (index-aligned with its hogs).
  std::vector<std::unique_ptr<Rng>> episode_rngs_;
  std::vector<std::unique_ptr<SyntheticInterferer>> hogs_;
  std::vector<double> prev_chare_cpu_;  ///< last window's true per-chare CPU
  bool installed_ = false;
  Counters counters_;
};

}  // namespace cloudlb

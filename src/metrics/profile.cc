#include "metrics/profile.h"

#include <algorithm>
#include <set>

#include "runtime/job.h"
#include "util/check.h"

namespace cloudlb {

std::vector<CoreProfile> profile_cores(const TimelineTracer& tracer,
                                       int num_cores, SimTime from,
                                       SimTime to) {
  CLB_CHECK(num_cores > 0);
  CLB_CHECK(to > from);
  const double window = (to - from).to_seconds();

  std::vector<CoreProfile> out(static_cast<std::size_t>(num_cores));
  // Clipped intervals per core for the union computation.
  std::vector<std::vector<std::pair<SimTime, SimTime>>> clipped(
      static_cast<std::size_t>(num_cores));

  for (const TaskInterval& ti : tracer.intervals()) {
    if (ti.core < 0 || ti.core >= num_cores) continue;
    const SimTime lo = std::max(ti.start, from);
    const SimTime hi = std::min(ti.end, to);
    if (hi <= lo) continue;
    auto& profile = out[static_cast<std::size_t>(ti.core)];
    profile.by_job[ti.job] += (hi - lo).to_seconds() / window;
    clipped[static_cast<std::size_t>(ti.core)].emplace_back(lo, hi);
  }

  for (int c = 0; c < num_cores; ++c) {
    auto& profile = out[static_cast<std::size_t>(c)];
    profile.core = static_cast<CoreId>(c);
    auto& intervals = clipped[static_cast<std::size_t>(c)];
    std::sort(intervals.begin(), intervals.end());
    double covered = 0.0;
    SimTime cursor = from;
    for (const auto& [lo, hi] : intervals) {
      const SimTime start = std::max(lo, cursor);
      if (hi > start) {
        covered += (hi - start).to_seconds();
        cursor = hi;
      }
    }
    profile.busy_fraction = covered / window;
  }
  return out;
}

Table profile_table(const std::vector<CoreProfile>& profiles) {
  std::set<std::string> jobs;
  for (const CoreProfile& p : profiles)
    for (const auto& [job, frac] : p.by_job) jobs.insert(job);

  std::vector<std::string> headers{"core", "busy %", "idle %"};
  for (const auto& job : jobs) headers.push_back(job + " %");
  Table table{headers};
  for (const CoreProfile& p : profiles) {
    std::vector<std::string> row{std::to_string(p.core),
                                 Table::num(p.busy_fraction * 100, 1),
                                 Table::num((1 - p.busy_fraction) * 100, 1)};
    for (const auto& job : jobs) {
      const auto it = p.by_job.find(job);
      row.push_back(Table::num(
          (it == p.by_job.end() ? 0.0 : it->second) * 100, 1));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Histogram task_duration_histogram(const TimelineTracer& tracer,
                                  const std::string& job, int buckets) {
  double max_ms = 0.0;
  for (const TaskInterval& ti : tracer.intervals())
    if (ti.job == job)
      max_ms = std::max(max_ms, (ti.end - ti.start).to_millis());
  Histogram histogram{0.0, std::max(max_ms, 1e-6) * 1.0001, buckets};
  for (const TaskInterval& ti : tracer.intervals())
    if (ti.job == job) histogram.add((ti.end - ti.start).to_millis());
  return histogram;
}

SampleSet iteration_durations(const RuntimeJob& job) {
  SampleSet out;
  SimTime prev = job.start_time();
  for (const SimTime t : job.iteration_times()) {
    if (t.is_zero()) continue;  // iteration not (yet) complete
    out.add((t - prev).to_seconds());
    prev = t;
  }
  return out;
}

}  // namespace cloudlb

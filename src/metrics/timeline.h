#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "runtime/observer.h"

namespace cloudlb {

/// One executed task on a physical core.
struct TaskInterval {
  std::string job;
  CoreId core = 0;
  PeId pe = 0;
  ChareId chare = 0;
  int tag = 0;
  SimTime start;
  SimTime end;
};

/// A load-balancing step marker.
struct LbMark {
  std::string job;
  int step = 0;
  SimTime time;
  int migrations = 0;
};

/// Captures per-core execution timelines — the stand-in for the paper's
/// Projections tool, whose screenshots are Figures 1 and 3.
///
/// Attach it to one or more jobs (`job.set_observer(&tracer)`); every
/// executed task becomes a TaskInterval keyed by *physical core*, so tasks
/// of an application and of the interfering job sharing a core appear on
/// the same row, exactly as the paper's timelines do (including the
/// "cannot identify when the OS switches context" caveat, which our core
/// accounting sidesteps by drawing both jobs distinctly).
class TimelineTracer : public ExecutionObserver {
 public:
  void on_task_executed(const RuntimeJob& job, PeId pe, CoreId core,
                        ChareId chare, int tag, SimTime start,
                        SimTime end) override;
  void on_lb_step(const RuntimeJob& job, int step, SimTime time,
                  int migrations) override;

  const std::vector<TaskInterval>& intervals() const { return intervals_; }
  const std::vector<LbMark>& lb_marks() const { return lb_marks_; }
  void clear();

  /// Renders an ASCII timeline for cores [0, num_cores) over [from, to):
  /// one row per core, `width` buckets; a bucket shows the first letter of
  /// the job that executed there (uppercase when > half the bucket is
  /// busy), '.' when idle. LB steps are tick-marked on a footer row.
  void render_ascii(std::ostream& os, int num_cores, SimTime from, SimTime to,
                    int width = 96) const;

  /// Per-core busy fraction of [from, to) attributable to each traced job.
  double busy_fraction(CoreId core, const std::string& job, SimTime from,
                       SimTime to) const;

  /// CSV export: job,core,pe,chare,tag,start_sec,end_sec.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TaskInterval> intervals_;
  std::vector<LbMark> lb_marks_;
};

}  // namespace cloudlb

#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/timeline.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"

namespace cloudlb {

class RuntimeJob;

/// Utilization summary of one physical core over a window.
///
/// `by_job` uses *wall-interval* semantics, like the paper's Projections
/// tool: a task's interval covers the whole time between its start and
/// completion, including any stretch where the core was actually serving
/// a co-located VM. Consequently the per-job fractions of a contended
/// core can sum past 1.0 — exactly the "long bars" artifact the paper
/// describes in Figure 1. `busy_fraction` is the union of all intervals.
struct CoreProfile {
  CoreId core = 0;
  double busy_fraction = 0.0;               ///< union of task intervals
  std::map<std::string, double> by_job;     ///< job -> interval fraction
};

/// Profiles cores [0, num_cores) over [from, to) from a tracer's records.
std::vector<CoreProfile> profile_cores(const TimelineTracer& tracer,
                                       int num_cores, SimTime from,
                                       SimTime to);

/// Renders profiles as an aligned table (one row per core, one column per
/// job seen in the trace, plus busy/idle).
Table profile_table(const std::vector<CoreProfile>& profiles);

/// Per-iteration durations of a finished job (seconds) — spikes mark
/// interference episodes, recoveries mark LB steps.
SampleSet iteration_durations(const RuntimeJob& job);

/// Histogram of task wall durations (milliseconds) for one job's tasks in
/// the trace — interference shows up as a long tail of stretched tasks,
/// the paper's Figure 1 "longer bars".
Histogram task_duration_histogram(const TimelineTracer& tracer,
                                  const std::string& job, int buckets = 20);

}  // namespace cloudlb

#include "metrics/timeline.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "runtime/job.h"
#include "util/check.h"
#include "util/table.h"
#include "util/validate.h"

namespace cloudlb {

void TimelineTracer::on_task_executed(const RuntimeJob& job, PeId pe,
                                      CoreId core, ChareId chare, int tag,
                                      SimTime start, SimTime end) {
  if (validation_enabled()) {
    CLB_CHECK_MSG(end >= start, "task interval ends ("
                                    << end.to_string()
                                    << ") before it starts ("
                                    << start.to_string() << ")");
    CLB_CHECK(core >= 0 && pe >= 0 && chare >= 0);
    // Observer callbacks arrive in simulation order: a task can never be
    // reported as finishing before one already recorded ended its report.
    CLB_CHECK_MSG(intervals_.empty() || end >= intervals_.back().end,
                  "trace not monotone: task completion at "
                      << end.to_string() << " reported after "
                      << intervals_.back().end.to_string());
  }
  intervals_.push_back(
      TaskInterval{job.name(), core, pe, chare, tag, start, end});
}

void TimelineTracer::on_lb_step(const RuntimeJob& job, int step, SimTime time,
                                int migrations) {
  if (validation_enabled()) {
    CLB_CHECK(step >= 1 && migrations >= 0);
    for (auto it = lb_marks_.rbegin(); it != lb_marks_.rend(); ++it) {
      if (it->job != job.name()) continue;
      CLB_CHECK_MSG(step == it->step + 1 && time >= it->time,
                    "LB marks not monotone for job '"
                        << job.name() << "': step " << step << " at "
                        << time.to_string() << " follows step " << it->step
                        << " at " << it->time.to_string());
      break;
    }
  }
  lb_marks_.push_back(LbMark{job.name(), step, time, migrations});
}

void TimelineTracer::clear() {
  intervals_.clear();
  lb_marks_.clear();
}

namespace {
double overlap_sec(SimTime a0, SimTime a1, SimTime b0, SimTime b1) {
  const SimTime lo = std::max(a0, b0);
  const SimTime hi = std::min(a1, b1);
  return hi > lo ? (hi - lo).to_seconds() : 0.0;
}
}  // namespace

double TimelineTracer::busy_fraction(CoreId core, const std::string& job,
                                     SimTime from, SimTime to) const {
  CLB_CHECK(to > from);
  double busy = 0.0;
  for (const TaskInterval& ti : intervals_) {
    if (ti.core != core || ti.job != job) continue;
    busy += overlap_sec(ti.start, ti.end, from, to);
  }
  return busy / (to - from).to_seconds();
}

void TimelineTracer::render_ascii(std::ostream& os, int num_cores,
                                  SimTime from, SimTime to, int width) const {
  CLB_CHECK(to > from);
  CLB_CHECK(width > 0);
  const double span = (to - from).to_seconds();
  const double bucket_sec = span / width;

  os << "timeline " << from.to_string() << " .. " << to.to_string() << "  ("
     << Table::num(bucket_sec * 1e3, 2) << " ms/char)\n";
  for (CoreId core = 0; core < num_cores; ++core) {
    std::string row(static_cast<std::size_t>(width), '.');
    // Per-bucket per-job busy seconds.
    std::vector<std::map<std::string, double>> buckets(
        static_cast<std::size_t>(width));
    for (const TaskInterval& ti : intervals_) {
      if (ti.core != core) continue;
      const double s = (ti.start - from).to_seconds();
      const double e = (ti.end - from).to_seconds();
      const int b0 = std::max(0, static_cast<int>(s / bucket_sec));
      const int b1 = std::min(width - 1, static_cast<int>(e / bucket_sec));
      for (int b = b0; b <= b1; ++b) {
        const SimTime t0 = from + SimTime::from_seconds(b * bucket_sec);
        const SimTime t1 = from + SimTime::from_seconds((b + 1) * bucket_sec);
        const double ov = overlap_sec(ti.start, ti.end, t0, t1);
        if (ov > 0.0) buckets[static_cast<std::size_t>(b)][ti.job] += ov;
      }
    }
    for (int b = 0; b < width; ++b) {
      const auto& m = buckets[static_cast<std::size_t>(b)];
      if (m.empty()) continue;
      auto best = m.begin();
      for (auto it = m.begin(); it != m.end(); ++it)
        if (it->second > best->second) best = it;
      const char c = best->first.empty() ? '?' : best->first[0];
      const double frac = best->second / bucket_sec;
      row[static_cast<std::size_t>(b)] =
          frac > 0.5 ? static_cast<char>(std::toupper(c))
                     : static_cast<char>(std::tolower(c));
    }
    os << "core" << (core < 10 ? " " : "") << core << " |" << row << "|\n";
  }

  // LB step footer.
  std::string footer(static_cast<std::size_t>(width), ' ');
  for (const LbMark& mark : lb_marks_) {
    if (mark.time < from || mark.time >= to) continue;
    const int b = std::min(
        width - 1,
        static_cast<int>((mark.time - from).to_seconds() / bucket_sec));
    footer[static_cast<std::size_t>(b)] = mark.migrations > 0 ? 'L' : 'l';
  }
  if (footer.find_first_not_of(' ') != std::string::npos)
    os << "LB     |" << footer << "|  (L = step with migrations)\n";
}

void TimelineTracer::write_csv(std::ostream& os) const {
  os << "job,core,pe,chare,tag,start_sec,end_sec\n";
  for (const TaskInterval& ti : intervals_) {
    os << ti.job << ',' << ti.core << ',' << ti.pe << ',' << ti.chare << ','
       << ti.tag << ',' << ti.start.to_seconds() << ',' << ti.end.to_seconds()
       << '\n';
  }
}

}  // namespace cloudlb

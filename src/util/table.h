#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cloudlb {

/// Column-aligned plain-text table, used by benches and examples to print
/// paper-style result rows. Also exports CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Writes an aligned table with a header separator line.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cloudlb

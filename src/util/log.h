#pragma once

#include <sstream>
#include <string>

namespace cloudlb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold; messages below it are discarded.
/// Defaults to kWarn so tests and benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace cloudlb

#define CLB_LOG(level, expr)                                   \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::cloudlb::log_level())) {            \
      std::ostringstream os_;                                  \
      os_ << expr;                                             \
      ::cloudlb::detail::log_emit(level, os_.str());           \
    }                                                          \
  } while (0)

#define CLB_DEBUG(expr) CLB_LOG(::cloudlb::LogLevel::kDebug, expr)
#define CLB_INFO(expr) CLB_LOG(::cloudlb::LogLevel::kInfo, expr)
#define CLB_WARN(expr) CLB_LOG(::cloudlb::LogLevel::kWarn, expr)
#define CLB_ERROR(expr) CLB_LOG(::cloudlb::LogLevel::kError, expr)

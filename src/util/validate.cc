#include "util/validate.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cloudlb {

namespace {

bool initial_state() {
#ifdef CLOUDLB_VALIDATE
  bool enabled = true;
#else
  bool enabled = false;
#endif
  // Environment override so CI tiers can turn validators on without a
  // separate build: CLOUDLB_VALIDATE=1 enables, =0 disables.
  if (const char* env = std::getenv("CLOUDLB_VALIDATE"))
    enabled = std::strcmp(env, "0") != 0;
  return enabled;
}

std::atomic<bool>& state() {
  static std::atomic<bool> enabled{initial_state()};
  return enabled;
}

}  // namespace

bool validation_enabled() {
  return state().load(std::memory_order_relaxed);
}

bool set_validation_enabled(bool enabled) {
  return state().exchange(enabled, std::memory_order_relaxed);
}

}  // namespace cloudlb

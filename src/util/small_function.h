#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/shard_annotations.h"

namespace cloudlb {

/// Move-only callable wrapper with small-buffer optimization.
///
/// Callables whose state fits `InlineBytes` (and is nothrow
/// move-constructible, so moves can be noexcept) live inside the wrapper:
/// constructing, moving and invoking them never touches the heap. Larger
/// callables fall back to one heap allocation, like std::function.
///
/// Differences from std::function that the event engine relies on:
///   - move-only, so captures may hold move-only state (a Message's
///     payload vector moves straight through without a copy);
///   - the inline budget is a template knob, not an implementation
///     secret, so "this capture is allocation-free" is a checkable
///     contract (see is_inline());
///   - moves are unconditionally noexcept, so containers of wrappers
///     relocate instead of copying.
template <typename Signature, std::size_t InlineBytes = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFunction<R(Args...), InlineBytes> {
 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      D* heap = new D(std::forward<F>(f));
      std::memcpy(buffer_, &heap, sizeof(heap));
      ops_ = &HeapModel<D>::ops;
    }
  }

  // The move ops, reset and operator() are warm-path: for inline
  // callables (the engine's contract for every runtime callback) they
  // never touch the heap. Only the converting constructor's over-budget
  // fallback allocates, and the whole-program warm check flags any
  // over-SBO construction it can see on an annotated path.
  CLB_WARM_PATH SmallFunction(SmallFunction&& other) noexcept
      : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  CLB_WARM_PATH SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buffer_, buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  /// Destroys the held callable, if any.
  CLB_WARM_PATH void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const SmallFunction& f, std::nullptr_t) noexcept {
    return !static_cast<bool>(f);
  }

  CLB_WARM_PATH R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

  /// Whether the callable (if any) is stored inline, i.e. this wrapper
  /// owns no heap memory. The engine's allocation-free contract is
  /// `is_inline()` for every runtime callback (see docs/event-engine.md).
  bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_storage;
  }

  /// Compile-time query: would callable type `F` be stored inline?
  template <typename F>
  static constexpr bool fits_inline() noexcept {
    return kFitsInline<std::decay_t<F>>;
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    void (*relocate)(void* from, void* to) noexcept;  ///< move to, destroy from
    void (*destroy)(void* self) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineModel {
    static D* self(void* s) noexcept {
      return std::launder(reinterpret_cast<D*>(s));
    }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) noexcept {
      D* f = self(from);
      ::new (to) D(std::move(*f));
      f->~D();
    }
    static void destroy(void* s) noexcept { self(s)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename D>
  struct HeapModel {
    static D* self(void* s) noexcept {
      D* p;
      std::memcpy(&p, s, sizeof(p));
      return p;
    }
    static R invoke(void* s, Args&&... args) {
      return (*self(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) noexcept {
      std::memcpy(to, from, sizeof(D*));
    }
    static void destroy(void* s) noexcept { delete self(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must at least hold the heap fallback pointer");

  alignas(std::max_align_t) std::byte buffer_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cloudlb

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace cloudlb {

void StatAccumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = n_ + o.n_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) /
          static_cast<double>(n);
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  n_ = n;
}

double StatAccumulator::mean() const { return n_ ? mean_ : 0.0; }

double StatAccumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double StatAccumulator::min() const {
  CLB_CHECK(n_ > 0);
  return min_;
}

double StatAccumulator::max() const {
  CLB_CHECK(n_ > 0);
  return max_;
}

void SampleSet::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::mean() const {
  CLB_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double SampleSet::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double SampleSet::min() const {
  ensure_sorted();
  CLB_CHECK(!sorted_.empty());
  return sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  CLB_CHECK(!sorted_.empty());
  return sorted_.back();
}

double SampleSet::percentile(double p) const {
  ensure_sorted();
  CLB_CHECK(!sorted_.empty());
  CLB_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double load_imbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double mean = total / static_cast<double>(loads.size());
  const double mx = *std::max_element(loads.begin(), loads.end());
  return mx / mean - 1.0;
}

}  // namespace cloudlb

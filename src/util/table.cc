#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace cloudlb {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  CLB_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CLB_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cloudlb {

/// Minimal command-line option parser for the tools and benches.
///
/// Accepts `--key=value`, `--key value` and bare boolean `--flag` forms;
/// everything that does not start with `--` is a positional argument.
/// Typed getters consume defaults; `check_unused()` reports any option
/// the tool never asked about (catching typos like `--epsilan`).
class Options {
 public:
  /// Parses argv[1..argc). Throws CheckFailure on malformed input.
  Options(int argc, const char* const* argv);

  /// Convenience for tests.
  explicit Options(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback = "");
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0);
  double get_double(const std::string& key, double fallback = 0.0);
  /// Bare `--flag` and `--flag=true/1` are true; `--flag=false/0` false.
  bool get_bool(const std::string& key, bool fallback = false);
  /// Comma-separated integer list, e.g. `--cores=4,8,16`.
  std::vector<int> get_int_list(const std::string& key,
                                std::vector<int> fallback = {});

  /// Throws CheckFailure listing any provided option never queried.
  void check_unused() const;

 private:
  void parse(const std::vector<std::string>& args);
  const std::string* lookup(const std::string& key);

  std::map<std::string, std::string> values_;
  std::set<std::string> queried_;
  std::vector<std::string> positional_;
};

}  // namespace cloudlb

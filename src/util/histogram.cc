#include "util/histogram.h"

#include <algorithm>

#include "util/check.h"
#include "util/table.h"

namespace cloudlb {

Histogram::Histogram(double lo, double hi, int buckets) : lo_{lo}, hi_{hi} {
  CLB_CHECK(hi > lo);
  CLB_CHECK(buckets > 0);
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const auto b = static_cast<std::size_t>(
      (value - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(b, counts_.size() - 1)];
}

double Histogram::bucket_lo(int b) const {
  CLB_CHECK(b >= 0 && static_cast<std::size_t>(b) <= counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

void Histogram::print(std::ostream& os, const std::string& unit,
                      int width) const {
  CLB_CHECK(width > 0);
  const std::int64_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (int b = 0; b < static_cast<int>(counts_.size()); ++b) {
    const auto n = counts_[static_cast<std::size_t>(b)];
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(n) * width /
                                     static_cast<double>(peak));
    os << '[' << Table::num(bucket_lo(b), 3) << ", "
       << Table::num(bucket_lo(b + 1), 3) << ')' << unit << "  " << n << "  "
       << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  if (underflow_ > 0 || overflow_ > 0)
    os << "(clamped: " << underflow_ << " below, " << overflow_
       << " above)\n";
}

}  // namespace cloudlb

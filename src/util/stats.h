#pragma once

#include <cstddef>
#include <vector>

namespace cloudlb {

/// Streaming accumulator for count / mean / variance / extrema
/// (Welford's algorithm; numerically stable).
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample container with percentile queries (holds all values).
class SampleSet {
 public:
  void add(double x);
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Coefficient-of-imbalance for a load vector: max/mean - 1.
/// Zero means perfectly balanced; 1 means the worst core carries twice
/// the average. Returns 0 for empty or all-zero input.
double load_imbalance(const std::vector<double>& loads);

}  // namespace cloudlb

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/function_ref.h"
#include "util/shard_annotations.h"

namespace cloudlb {

/// Number of concurrent hardware threads, at least 1.
[[nodiscard]] int hardware_jobs();

/// RAII group of worker threads.
///
/// Shutdown hardening: the destructor always joins every spawned worker —
/// including when the scope unwinds because a task threw (CheckFailure
/// from a CLB_CHECK inside a parallel region) or because spawn() itself
/// failed partway through launching a fleet. Without this, an exception
/// between thread creation and the explicit join would destroy a joinable
/// std::thread and terminate the process.
class ThreadPool {
 public:
  ThreadPool() = default;
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool() { join_all(); }

  /// Launches one worker running `body`. Exceptions escaping `body` are
  /// the caller's contract to prevent (parallel_for routes them through
  /// its error latch); std::system_error from thread creation propagates
  /// to the caller, with already-running workers still joined on unwind.
  template <typename F>
  void spawn(F&& body) {
    threads_.emplace_back(std::forward<F>(body));
  }

  /// Joins every worker spawned so far. Idempotent; also run on
  /// destruction.
  void join_all() noexcept {
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
    threads_.clear();
  }

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for every i in [0, n) across up to `jobs` OS threads
/// (jobs <= 0 means hardware_jobs(); jobs == 1 runs inline).
///
/// Scheduling is deliberately minimal — no work stealing, no per-worker
/// deques, no persistent pool: workers claim `chunk` consecutive indices
/// at a time from one shared atomic cursor and exit when it runs past n.
/// The intended workload is a grid of independent scenario cells, where
/// each index is milliseconds-to-seconds of simulation: a single
/// fetch_add per chunk is already invisible next to the work, and the
/// flat structure keeps the execution order irrelevant to the results
/// (every cell owns its private Simulator/Machine/RNG, seeded from the
/// cell's own configuration — see DESIGN.md on seeding discipline).
///
/// Worker threads are spawned per call and joined before returning; the
/// calling thread participates as a worker. If any invocation throws, the
/// first exception (in completion order) is rethrown on the caller after
/// all workers have drained, and remaining unclaimed indices are skipped.
CLB_SHARD_CONFINED void parallel_for(std::size_t n, int jobs,
                                     const std::function<void(std::size_t)>& fn,
                                     std::size_t chunk = 1);

/// A persistent team of workers advancing in caller-driven lock-step
/// rounds — the barrier primitive under the sharded engine's conservative
/// time windows (docs/sharded-engine.md). Where parallel_for spawns and
/// joins threads per call (fine for millisecond-scale grid cells, fatal
/// for a window loop that runs thousands of rounds), a WorkerTeam spawns
/// its workers once and reuses them: each run_round(fn) runs fn(worker)
/// on every worker concurrently and returns once all have finished.
///
/// Memory ordering: the barrier is a full happens-before edge in both
/// directions — a round's closure sees everything the caller wrote before
/// run_round(), and the caller (and every later round) sees everything
/// the round wrote. Exceptions thrown inside fn are captured per worker
/// and the first (by worker index, a deterministic choice) is rethrown on
/// the caller after the whole round has drained, so workers are never
/// abandoned mid-round.
class WorkerTeam {
 public:
  /// Spawns `workers` (>= 1) threads, idle until the first round.
  explicit WorkerTeam(int workers);
  ~WorkerTeam();  ///< signals shutdown and joins every worker

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size());
  }

  /// Runs fn(w) for every worker index w in [0, workers()) concurrently;
  /// blocks until all invocations return. Not reentrant: only the owning
  /// thread drives rounds, one at a time. The closure is borrowed, not
  /// owned (FunctionRef): it lives on the caller's frame for the whole
  /// round, so handing a round to the team never allocates — this runs
  /// once per conservative window and is warm-path (its own mutex and
  /// condition-variable waits ARE the round barrier, the audited
  /// exemption CLB_WARM_PATH's contract carves out for annotated
  /// bodies).
  CLB_SHARD_CONFINED CLB_WARM_PATH void run_round(FunctionRef<void(int)> fn);

 private:
  void worker_main(int index);

  std::mutex mu_;
  std::condition_variable start_cv_;  ///< workers wait for a new round
  std::condition_variable done_cv_;   ///< the caller waits for completion
  std::optional<FunctionRef<void(int)>> task_;  ///< borrowed for one round
  std::uint64_t round_ = 0;  ///< bumped per round; workers chase it
  int running_ = 0;          ///< workers still inside the current round
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  ///< one slot per worker
  std::vector<std::thread> threads_;
};

/// parallel_for that collects `fn(i)` into a vector in index order —
/// results are positioned by index, never by completion, so the output
/// is bit-identical for every `jobs` value. T must be default- and
/// move-constructible.
template <typename T>
[[nodiscard]] CLB_SHARD_CONFINED std::vector<T> parallel_map(
    std::size_t n, int jobs, const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  parallel_for(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace cloudlb

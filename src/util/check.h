#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cloudlb {

/// Thrown on violated internal invariants and misuse of public APIs.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace cloudlb

/// Always-on invariant check; throws CheckFailure (never aborts) so tests
/// can assert on misuse and the simulator can fail loudly but cleanly.
#define CLB_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond))                                                       \
      ::cloudlb::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CLB_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream os_;                                        \
      os_ << msg;                                                    \
      ::cloudlb::detail::check_failed(#cond, __FILE__, __LINE__,     \
                                      os_.str());                    \
    }                                                                \
  } while (0)

#pragma once

#include <cstdint>
#include <concepts>
#include <cstdio>
#include <compare>
#include <limits>
#include <string>

namespace cloudlb {

/// Virtual simulation time with nanosecond resolution.
///
/// A strong type so that times, durations and plain integers cannot be
/// mixed up silently. All simulator, machine and runtime interfaces deal
/// in SimTime; conversion to floating-point seconds happens only at the
/// reporting boundary.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime min_value() {
    return SimTime{std::numeric_limits<std::int64_t>::min()};
  }

  static constexpr SimTime nanos(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime micros(std::int64_t us) {
    return SimTime{us * 1'000};
  }
  static constexpr SimTime millis(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }
  /// Converts a floating-point second count, rounding to the nearest ns.
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  template <std::integral I>
  friend constexpr SimTime operator*(SimTime a, I k) {
    return SimTime{a.ns_ * static_cast<std::int64_t>(k)};
  }
  template <std::integral I>
  friend constexpr SimTime operator*(I k, SimTime a) {
    return a * k;
  }
  template <std::floating_point F>
  friend constexpr SimTime operator*(SimTime a, F k) {
    return SimTime::from_seconds(a.to_seconds() * static_cast<double>(k));
  }
  template <std::floating_point F>
  friend constexpr SimTime operator*(F k, SimTime a) {
    return a * k;
  }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ / k};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Human-readable rendering with an adaptive unit, e.g. "12.5ms".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

inline std::string SimTime::to_string() const {
  const double s = to_seconds();
  char buf[48];
  if (ns_ == 0) return "0s";
  const double abs = s < 0 ? -s : s;
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", s);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fms", s * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3fus", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace cloudlb

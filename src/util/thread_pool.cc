#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace cloudlb {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  CLB_CHECK(fn != nullptr);
  CLB_CHECK(chunk >= 1);
  if (jobs <= 0) jobs = hardware_jobs();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs),
                            (n + chunk - 1) / std::max<std::size_t>(chunk, 1));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto body = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mu};
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  ThreadPool pool;
  for (std::size_t w = 1; w < workers; ++w) pool.spawn(body);
  body();
  pool.join_all();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace cloudlb

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace cloudlb {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  CLB_CHECK(fn != nullptr);
  CLB_CHECK(chunk >= 1);
  if (jobs <= 0) jobs = hardware_jobs();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs),
                            (n + chunk - 1) / std::max<std::size_t>(chunk, 1));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto body = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mu};
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  ThreadPool pool;
  for (std::size_t w = 1; w < workers; ++w) pool.spawn(body);
  body();
  pool.join_all();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

WorkerTeam::WorkerTeam(int workers) {
  CLB_CHECK(workers >= 1);
  errors_.resize(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  try {
    for (int w = 0; w < workers; ++w)
      threads_.emplace_back([this, w] { worker_main(w); });
  } catch (...) {
    // Thread creation failed partway: release the workers already spawned
    // before rethrowing, or their joinable threads would terminate().
    {
      std::lock_guard<std::mutex> lock{mu_};
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
    throw;
  }
}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
}

void WorkerTeam::run_round(FunctionRef<void(int)> fn) {
  std::unique_lock<std::mutex> lock{mu_};
  CLB_CHECK_MSG(running_ == 0 && !task_.has_value(),
                "run_round is not reentrant");
  task_ = fn;
  running_ = workers();
  std::fill(errors_.begin(), errors_.end(), nullptr);
  ++round_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return running_ == 0; });
  task_.reset();
  for (std::exception_ptr& err : errors_)
    if (err != nullptr) std::rethrow_exception(err);
}

void WorkerTeam::worker_main(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::optional<FunctionRef<void(int)>> task;
    {
      std::unique_lock<std::mutex> lock{mu_};
      start_cv_.wait(lock, [&] { return stop_ || round_ > seen; });
      if (stop_) return;
      seen = round_;
      task = task_;
    }
    try {
      (*task)(index);
    } catch (...) {
      // Written without the lock, but strictly before this worker's
      // decrement below and read only after the caller observes
      // running_ == 0 — the mutex hand-off orders both.
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock{mu_};
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cloudlb

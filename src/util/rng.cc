#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace cloudlb {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 as the xoshiro authors recommend.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CLB_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) {
  CLB_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  have_spare_normal_ = true;
  return mean + stddev * u * m;
}

double Rng::exponential(double mean) {
  CLB_CHECK(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace cloudlb

#include "util/options.h"

#include <cstdlib>

#include "util/check.h"

namespace cloudlb {

Options::Options(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Options::Options(const std::vector<std::string>& args) { parse(args); }

void Options::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    CLB_CHECK_MSG(!body.empty(), "stray '--'");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option;
    // otherwise a bare boolean flag.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Options::has(const std::string& key) const {
  return values_.contains(key);
}

const std::string* Options::lookup(const std::string& key) {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) {
  const std::string* v = lookup(key);
  return v != nullptr ? *v : fallback;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) {
  const std::string* v = lookup(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  CLB_CHECK_MSG(end != nullptr && *end == '\0' && !v->empty(),
                "--" << key << " expects an integer, got '" << *v << "'");
  return parsed;
}

double Options::get_double(const std::string& key, double fallback) {
  const std::string* v = lookup(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  CLB_CHECK_MSG(end != nullptr && *end == '\0' && !v->empty(),
                "--" << key << " expects a number, got '" << *v << "'");
  return parsed;
}

bool Options::get_bool(const std::string& key, bool fallback) {
  const std::string* v = lookup(key);
  if (v == nullptr) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  CLB_CHECK_MSG(false, "--" << key << " expects a boolean, got '" << *v << "'");
  return fallback;
}

std::vector<int> Options::get_int_list(const std::string& key,
                                       std::vector<int> fallback) {
  const std::string* v = lookup(key);
  if (v == nullptr) return fallback;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    const std::string item =
        v->substr(pos, comma == std::string::npos ? std::string::npos
                                                  : comma - pos);
    char* end = nullptr;
    const long parsed = std::strtol(item.c_str(), &end, 10);
    CLB_CHECK_MSG(!item.empty() && end != nullptr && *end == '\0',
                  "--" << key << " expects integers, got '" << item << "'");
    out.push_back(static_cast<int>(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void Options::check_unused() const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (!queried_.contains(key)) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + key;
    }
  }
  CLB_CHECK_MSG(unknown.empty(), "unknown option(s): " << unknown);
}

}  // namespace cloudlb

#pragma once

#include <type_traits>
#include <utility>

namespace cloudlb {

/// Non-owning reference to a callable — the parameter-passing complement
/// of SmallFunction (util/small_function.h). Where SmallFunction owns its
/// callable (inline up to a budget, heap beyond it), a FunctionRef is two
/// words pointing at a callable that outlives the call: constructing,
/// copying and invoking one can never allocate, which makes it the right
/// signature for warm-path entry points that run a caller-provided
/// closure synchronously and must not type-erase it through std::function
/// (whose construction heap-allocates for captures past its small-buffer
/// size). WorkerTeam::run_round is the motivating site: one closure per
/// window round, invoked before run_round returns, previously forced
/// through a std::function materialized at every call.
///
/// The referenced callable must outlive every invocation; binding a
/// temporary lambda as a function argument is the intended use (the
/// temporary lives until the full expression — and the call — ends).
/// Never store a FunctionRef beyond the call that received it.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, std::remove_reference_t<F>&,
                                      Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : target_{const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))},
        invoke_{&invoke_impl<std::remove_reference_t<F>>} {}

  R operator()(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R invoke_impl(void* target, Args... args) {
    return (*static_cast<F*>(target))(std::forward<Args>(args)...);
  }

  void* target_;
  R (*invoke_)(void*, Args...);
};

}  // namespace cloudlb

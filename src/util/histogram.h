#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cloudlb {

/// Fixed-range linear histogram with ASCII rendering, used for task-
/// duration and message-size distributions in profiles and tools.
class Histogram {
 public:
  /// Buckets span [lo, hi) evenly; values outside clamp into the first /
  /// last bucket (and are counted separately as underflow/overflow).
  Histogram(double lo, double hi, int buckets);

  void add(double value);

  std::size_t count() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  const std::vector<std::int64_t>& buckets() const { return counts_; }

  /// Lower edge of bucket `b`.
  double bucket_lo(int b) const;

  /// Renders rows of "[lo, hi)  count  ####…" scaled to `width` chars.
  /// `unit` annotates the edges (e.g. "ms").
  void print(std::ostream& os, const std::string& unit = "",
             int width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cloudlb

#pragma once

namespace cloudlb {

/// Deep structural invariant validation (see docs/static-analysis.md §4).
///
/// When enabled, subsystems run expensive integrity checks at their
/// mutation boundaries — heap/arena audits after simulator batches,
/// assignment audits after every LB step, Eq. 1 conservation after
/// refinement, monotone trace sequencing — all failing through CLB_CHECK
/// so a violation throws CheckFailure instead of corrupting results.
///
/// The default is off; a build with -DCLOUDLB_VALIDATE=ON (which defines
/// the CLOUDLB_VALIDATE macro) defaults it on, and the CLOUDLB_VALIDATE
/// environment variable ("0"/"1") overrides the compiled default at
/// process start. ScenarioConfig::validate scopes it to a single run.
bool validation_enabled();

/// Toggles validation process-wide; returns the previous value.
bool set_validation_enabled(bool enabled);

/// RAII scope: enables (or disables) validation for its lifetime and
/// restores the previous setting on destruction.
class ValidationScope {
 public:
  explicit ValidationScope(bool enabled)
      : previous_{set_validation_enabled(enabled)} {}
  ~ValidationScope() { set_validation_enabled(previous_); }
  ValidationScope(const ValidationScope&) = delete;
  ValidationScope& operator=(const ValidationScope&) = delete;

 private:
  bool previous_;
};

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <vector>

namespace cloudlb {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic element of a scenario (particle positions, interference
/// jitter, random balancers) draws from an Rng seeded from the scenario
/// seed, making whole experiments bit-reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-subsystem streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cloudlb

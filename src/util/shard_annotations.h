#pragma once

// Shard-safety effect annotations for the partitioned runtime.
//
// PR 8's bit-identity guarantees rest on concurrency conventions that
// the type system cannot express: shard-confined state is touched only
// by its owner shard's window execution, the global LB database and
// reduction results mutate only in serialized barrier phases, floating
// point merges across shards flow through the canonical (shard, seq)
// combiners, and synchronized fan-outs propagate ordering ranks. These
// macros encode the conventions as source annotations — in the lineage
// of Clang's thread-safety attributes — so `cloudlb-analyzer`
// (tools/analyzer/, docs/static-analysis.md) can enforce them at
// analysis time instead of hoping a TSan seed trips over a violation.
//
// The macros are strictly zero-cost: under Clang they expand to
// `__attribute__((annotate(...)))`, which affects neither layout nor
// codegen (tests/annotation_test.cc pins layout/trait equivalence and
// the golden trace digest covers behavior); under any other compiler
// they expand to nothing. Apply them at declarations:
//
//   struct CLB_SHARD_CONFINED ShardSegment { ... };   // type-level
//   CLB_SHARD_CONFINED std::vector<Pe> pes_;          // field-level
//   CLB_BARRIER_PHASE void merge_window_state();      // function-level
//
// Semantics (enforced by the analyzer checks named in brackets):
//
// - CLB_SHARD_CONFINED on a field or type: the data belongs to one
//   shard's window execution; only functions themselves carrying a
//   shard-context annotation (or called directly from one) may touch
//   it. On a function: the function *is* window-execution context —
//   it runs inside a shard's conservative window (or inside a context
//   some annotated creator arranged) and is licensed to touch confined
//   data. [analyzer-shard-confined]
// - CLB_BARRIER_PHASE on a function: runs only between windows, on the
//   coordinating thread, while every shard is quiescent. Calling one
//   from window-execution or worker-team task context is flagged
//   unless the call is guarded by an `in_window()` check.
//   [analyzer-barrier-phase]
// - CLB_CANONICAL_COMBINE on a function: a blessed floating-point
//   merge helper that folds per-shard partials in a fixed canonical
//   order (shard index, PE index, (shard, seq)). FP accumulation over
//   per-shard data anywhere else is flagged. [analyzer-float-merge]
// - CLB_RANKED_FANOUT on a function: it schedules a synchronized
//   per-chare burst whose continuations need explicit ordering ranks;
//   inside it, a loop scheduling on an `EngineCore` must use
//   `schedule_at_ranked`/`schedule_at_stamped`, never bare
//   `schedule_at`/`schedule_after`. [analyzer-unranked-fanout]
// - CLB_WARM_PATH on a function: it sits on the steady-state
//   schedule→fire cycle (PR 2's zero-allocation contract, pinned
//   dynamically by tests/sim_alloc_test.cc) and must not transitively
//   reach a heap allocation or a blocking call through any depth of
//   helpers. Amortized vector growth (push_back onto reserved
//   capacity), CLB_CHECK* failure paths and validation_enabled()-gated
//   audits are cold and exempt; blocking primitives in the annotated
//   function's own body are its audited mechanism (a worker-team round
//   barrier IS a condition-variable wait) and exempt too. Enforced by
//   the whole-program link step, not per TU. [analyzer-warm-path]

#if defined(__clang__)
#define CLB_SHARD_ANNOTATE(text) __attribute__((annotate(text)))
#else
#define CLB_SHARD_ANNOTATE(text)
#endif

#define CLB_SHARD_CONFINED CLB_SHARD_ANNOTATE("clb::shard_confined")
#define CLB_BARRIER_PHASE CLB_SHARD_ANNOTATE("clb::barrier_phase")
#define CLB_CANONICAL_COMBINE CLB_SHARD_ANNOTATE("clb::canonical_combine")
#define CLB_RANKED_FANOUT CLB_SHARD_ANNOTATE("clb::ranked_fanout")
#define CLB_WARM_PATH CLB_SHARD_ANNOTATE("clb::warm_path")

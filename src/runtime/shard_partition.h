#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/lb_database.h"
#include "util/check.h"
#include "util/shard_annotations.h"
#include "util/sim_time.h"

namespace cloudlb {

/// One shard's slice of a RuntimeJob's mutable window state. During a
/// conservative window the shard's worker writes *only* its own segment —
/// that is the whole point of the partition: the LB database, the barrier
/// counters and the iteration tallies all become shard-local, so parallel
/// windows never touch shared runtime state. The segments are combined at
/// window barriers (cheap totals) and at global phases (full merges) by
/// the driving thread, always in shard-index order, so the reduction tree
/// over segments is the same for every worker count.
///
/// Cache-line aligned so two shards' hot counters never share a line.
struct alignas(64) CLB_SHARD_CONFINED ShardSegment {
  /// Shard-local LB database slice: records tasks of chares hosted on
  /// this shard's PEs. Sized to the full chare count — a chare's row is
  /// nonzero in at most one segment per window (migrations happen only at
  /// global barriers), so the merged per-chare CPU is a sum of one
  /// nonzero value and zeros: bit-identical to the legacy single
  /// database.
  LbDatabase db;

  /// Running duplicate of db's window total, maintained so the barrier
  /// bookkeeping can refresh per-shard load summaries in O(shards)
  /// without walking the databases.
  double window_cpu_sec = 0.0;

  // Window-local counters (merged into Counters on demand).
  std::int64_t tasks_executed = 0;
  std::int64_t messages_sent = 0;

  // Barrier bookkeeping: how many of this shard's chares are waiting at
  // an AtSync barrier / have contributed to the open reduction / have
  // finished, and when the last of each happened. The host's window
  // merge sums the counts across shards to detect quiescence and takes
  // the max of the times to recover the exact completion instant.
  std::size_t sync_count = 0;
  SimTime last_sync_time;
  std::size_t red_count = 0;
  /// (time, value) per contribution, in this shard's execution order —
  /// replayed in canonical shard-then-time order by the global merge so
  /// the reduction sum is independent of worker count.
  std::vector<std::pair<SimTime, double>> contributions;
  std::size_t finished_chares = 0;
  SimTime last_finish_time;

  /// Per-iteration completion counts and the shard-local last completion
  /// time (index = iteration number).
  std::vector<int> iteration_reports;
  std::vector<SimTime> iteration_last_times;

  void reset(std::size_t num_chares) {
    db.reset(num_chares);
    window_cpu_sec = 0.0;
    tasks_executed = 0;
    messages_sent = 0;
    sync_count = 0;
    last_sync_time = SimTime::zero();
    red_count = 0;
    contributions.clear();
    finished_chares = 0;
    last_finish_time = SimTime::zero();
    iteration_reports.clear();
    iteration_last_times.clear();
  }
};

/// The full partition: one segment per shard plus the canonical-order
/// reduction helpers the barrier bookkeeping and the global phases use.
/// All merged reads run on the driving thread between windows.
class ShardPartition {
 public:
  ShardPartition(int shards, std::size_t num_chares) {
    CLB_CHECK(shards >= 1);
    segs_.resize(static_cast<std::size_t>(shards));
    reset(num_chares);
  }

  CLB_BARRIER_PHASE void reset(std::size_t num_chares) {
    for (auto& s : segs_) s.reset(num_chares);
  }

  [[nodiscard]] int shards() const { return static_cast<int>(segs_.size()); }
  [[nodiscard]] ShardSegment& seg(int s) {
    return segs_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const ShardSegment& seg(int s) const {
    return segs_[static_cast<std::size_t>(s)];
  }

  // --- Shard-local reduction subtrees, combined in shard-index order ---

  [[nodiscard]] CLB_BARRIER_PHASE std::size_t sync_total() const {
    std::size_t n = 0;
    for (const auto& s : segs_) n += s.sync_count;
    return n;
  }
  [[nodiscard]] CLB_BARRIER_PHASE std::size_t red_total() const {
    std::size_t n = 0;
    for (const auto& s : segs_) n += s.red_count;
    return n;
  }
  [[nodiscard]] CLB_BARRIER_PHASE std::size_t finished_total() const {
    std::size_t n = 0;
    for (const auto& s : segs_) n += s.finished_chares;
    return n;
  }
  [[nodiscard]] CLB_BARRIER_PHASE std::int64_t tasks_total() const {
    std::int64_t n = 0;
    for (const auto& s : segs_) n += s.tasks_executed;
    return n;
  }
  [[nodiscard]] CLB_BARRIER_PHASE std::int64_t messages_total() const {
    std::int64_t n = 0;
    for (const auto& s : segs_) n += s.messages_sent;
    return n;
  }

  [[nodiscard]] CLB_BARRIER_PHASE SimTime max_sync_time() const {
    SimTime t = SimTime::zero();
    for (const auto& s : segs_)
      if (s.sync_count > 0 && s.last_sync_time > t) t = s.last_sync_time;
    return t;
  }
  [[nodiscard]] CLB_BARRIER_PHASE SimTime max_contribution_time() const {
    SimTime t = SimTime::zero();
    for (const auto& s : segs_)
      for (const auto& [ct, value] : s.contributions)
        if (ct > t) t = ct;
    return t;
  }
  [[nodiscard]] CLB_BARRIER_PHASE SimTime max_finish_time() const {
    SimTime t = SimTime::zero();
    for (const auto& s : segs_)
      if (s.finished_chares > 0 && s.last_finish_time > t)
        t = s.last_finish_time;
    return t;
  }

  /// Merged reduction sum in canonical order: shard-local partial sums
  /// (each in that shard's execution order) combined shard 0..S-1. The
  /// per-shard subtrees make the result independent of worker count;
  /// it is bit-identical to the legacy arrival-order sum exactly when no
  /// two cross-shard contributions are concurrent (see
  /// docs/sharded-engine.md for the caveat).
  [[nodiscard]] CLB_CANONICAL_COMBINE double reduction_sum() const {
    double total = 0.0;
    for (const auto& s : segs_) {
      double partial = 0.0;
      for (const auto& [t, value] : s.contributions) partial += value;
      total += partial;
    }
    return total;
  }

  /// Merged per-chare window CPU: the chare's row summed across segments
  /// (at most one nonzero, so this is exact).
  [[nodiscard]] CLB_CANONICAL_COMBINE double chare_cpu(ChareId chare) const {
    double total = 0.0;
    for (const auto& s : segs_) total += s.db.chare_cpu(chare);
    return total;
  }

  CLB_BARRIER_PHASE void clear_windows() {
    for (auto& s : segs_) {
      s.db.clear_window();
      s.window_cpu_sec = 0.0;
    }
  }

  /// Clears the barrier-wave state after an AtSync wave completes.
  CLB_BARRIER_PHASE void clear_sync() {
    for (auto& s : segs_) {
      s.sync_count = 0;
      s.last_sync_time = SimTime::zero();
    }
  }

  /// Clears the open reduction after its broadcast is scheduled.
  CLB_BARRIER_PHASE void clear_reduction() {
    for (auto& s : segs_) {
      s.red_count = 0;
      s.contributions.clear();
    }
  }

 private:
  std::vector<ShardSegment> segs_;
};

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"
#include "machine/core.h"
#include "util/sim_time.h"

namespace cloudlb {

class RuntimeJob;

/// Hook interface for tools that watch a job execute (timeline tracers,
/// statistics collectors). All callbacks are optional; default-no-op.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// One task (entry-method execution) finished on a PE.
  virtual void on_task_executed(const RuntimeJob& /*job*/, PeId /*pe*/,
                                CoreId /*core*/, ChareId /*chare*/,
                                int /*tag*/, SimTime /*start*/,
                                SimTime /*end*/) {}

  /// A load-balancing step completed its decision phase.
  virtual void on_lb_step(const RuntimeJob& /*job*/, int /*step*/,
                          SimTime /*time*/, int /*migrations*/) {}

  /// One chare was told to migrate between PEs. Fires at decision time,
  /// before the attempt runs — under migration faults it may still fail.
  virtual void on_migration(const RuntimeJob& /*job*/, ChareId /*chare*/,
                            PeId /*from*/, PeId /*to*/) {}

  /// All chares completed application iteration `iteration`.
  virtual void on_iteration_complete(const RuntimeJob& /*job*/,
                                     int /*iteration*/, SimTime /*time*/) {}
};

}  // namespace cloudlb

#pragma once

#include <cstddef>
#include <vector>

#include "runtime/message.h"
#include "util/sim_time.h"

namespace cloudlb {

class RuntimeJob;

/// A migratable object (Charm++ "chare").
///
/// The application decomposes its work into many chares — more than there
/// are PEs — and the runtime maps and re-maps them to PEs. A chare reacts
/// to messages: for each incoming message the runtime first asks `cost()`
/// (the CPU time the handler will consume, which the simulator charges to
/// the hosting core) and then runs `execute()` (the actual handler logic:
/// real numerics, sends, sync calls).
///
/// Contract around load balancing: a chare participating in periodic LB
/// calls `at_sync()` from `execute()` once per LB period, after which it
/// must go quiet (no sends) until `on_resume_sync()` — this is the AtSync
/// barrier that guarantees no application messages are in flight while
/// objects migrate.
class Chare {
 public:
  Chare() = default;
  Chare(const Chare&) = delete;
  Chare& operator=(const Chare&) = delete;
  virtual ~Chare() = default;

  ChareId id() const { return id_; }

  /// Called once when the job starts; typically sends the first messages.
  virtual void on_start() = 0;

  /// CPU cost the handler for `msg` will consume. Must not mutate state.
  virtual SimTime cost(const Message& msg) const = 0;

  /// Handler body; runs after `cost(msg)` CPU has been consumed.
  virtual void execute(const Message& msg) = 0;

  /// Called after a load-balancing step completes (AtSync release).
  virtual void on_resume_sync() {}

  /// Delivers the result of a reduction this chare contribute()d to.
  /// Must be overridden by chares that contribute.
  virtual void on_reduction_result(double /*result*/);

  /// Serialized size used for migration cost (pack/transfer/unpack).
  virtual std::size_t footprint_bytes() const { return 4096; }

 protected:
  /// The job this chare belongs to. Valid after add_chare().
  RuntimeJob& job() const;

  /// Sends a message to another chare of the same job. `bytes` of zero
  /// means "payload size + envelope".
  void send(ChareId dest, int tag, std::vector<double> data = {},
            std::size_t bytes = 0) const;

  /// Enters the AtSync barrier (see class comment).
  void at_sync() const;

  /// Contributes to a global sum reduction over all live chares; the
  /// result arrives at every contributor via on_reduction_result(). Like
  /// AtSync, a chare must go quiet after contributing until the result
  /// returns (reductions are global synchronization points).
  void contribute(double value) const;

  /// Declares this chare's work complete; the job finishes when all do.
  void finish() const;

  /// Reports that this chare completed application iteration `iteration`
  /// (used for per-iteration timing and the iteration observer hook).
  void report_iteration(int iteration) const;

 private:
  friend class RuntimeJob;
  RuntimeJob* job_ = nullptr;
  ChareId id_ = -1;
};

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// Verdict a fault model returns for one migration attempt.
enum class MigrationFault {
  kNone,          ///< the attempt proceeds normally
  kFailAtSource,  ///< pack fails; nothing ever left the source PE
  kFailAtDest,    ///< pack and transfer happened, but unpack fails — the
                  ///< "partial migration" case (state arrived, could not be
                  ///< installed; the source copy stays authoritative)
};

/// One migration attempt as seen by a fault model. `attempt` is 0 for the
/// first try and counts up across retries of the same chare move.
struct MigrationAttempt {
  ChareId chare = 0;
  PeId from = 0;
  PeId to = 0;
  int attempt = 0;
};

/// Runtime-facing fault-injection surface. The runtime owns the two places
/// where injected faults can enter a job without violating its internal
/// invariants: the LB statistics snapshot (between collect_stats() and the
/// strategy) and the migration pipeline (per attempt). Implemented by
/// faults::FaultInjector; the runtime itself never depends on the faults
/// library, only on this interface.
///
/// Implementations must be deterministic functions of their own seeded
/// state and the call sequence — the runtime calls them at deterministic
/// points of the simulation, so a seeded injector reproduces bit-identical
/// fault schedules across runs.
///
/// Thread-safety note for the shard-partitioned runtime: both hooks are
/// invoked only from serialized global phases (LB barriers), never from
/// inside a conservative window, so a single-threaded implementation is
/// sufficient even when windows run on a worker team. The call sequence
/// in sharded mode matches the legacy engine's (decision order at the
/// barrier instant, retries in chronological order), which is what keeps
/// seeded fault schedules identical across `--shards` values.
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Mutates the stats snapshot the balancer is about to see (dropped or
  /// stale samples, corrupted counters, measurement jitter). Called once
  /// per LB step, before LoadBalancer::assign.
  virtual void perturb_stats(LbStats& stats) = 0;

  /// Decides the fate of one migration attempt. Called once per attempt,
  /// in deterministic (decision-order, then retry-order) sequence.
  [[nodiscard]] virtual MigrationFault on_migration(
      const MigrationAttempt& attempt) = 0;
};

}  // namespace cloudlb

#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <utility>

#include "runtime/job.h"
#include "util/check.h"
#include "util/log.h"
#include "util/shard_annotations.h"

namespace cloudlb {

namespace {

ShardedSimulator::Config sim_config(const MachineConfig& mc,
                                    const ShardedRuntimeHost::Config& config) {
  CLB_CHECK_MSG(config.shards >= 1,
                "sharded runtime needs at least one shard, got "
                    << config.shards);
  CLB_CHECK(config.window > SimTime::zero());
  ShardedSimulator::Config sc;
  sc.shards = std::min(config.shards, mc.nodes);
  sc.lookahead = config.window;
  sc.parallel = config.parallel;
  sc.workers = config.workers;
  return sc;
}

}  // namespace

ShardedRuntimeHost::ShardedRuntimeHost(MachineConfig machine_config,
                                       Config config)
    : sharded_{sim_config(machine_config, config)},
      machine_{machine_config, [this](int node) -> EngineCore& {
                 return engine_of_node(node);
               }} {}

ShardedRuntimeHost::~ShardedRuntimeHost() = default;

int ShardedRuntimeHost::shard_of_node(int node) const {
  const int nodes = machine_.num_nodes();
  CLB_CHECK(node >= 0 && node < nodes);
  // Same contiguous block map as WindowedShardRouter: node n -> n·S/N.
  return static_cast<int>(static_cast<long long>(node) * shards() / nodes);
}

int ShardedRuntimeHost::shard_of_core(CoreId core) const {
  return shard_of_node(core / machine_.cores_per_node());
}

void ShardedRuntimeHost::post(int src_shard, int dst_shard, SimTime latency,
                              EngineCore::Callback cb) {
  sharded_.post(src_shard, dst_shard, latency, std::move(cb));
}

void ShardedRuntimeHost::schedule_action(SimTime t, std::function<void()> fn) {
  CLB_CHECK_MSG(!in_window_, "schedule_action from inside a window");
  CLB_CHECK_MSG(t >= global_now(),
                "timed action in the past: " << t.to_string() << " < "
                                             << global_now().to_string());
  actions_.push_back(TimedAction{t, action_seq_++, std::move(fn)});
}

void ShardedRuntimeHost::set_clock_fault_policy(
    EngineCore::ClockFaultPolicy policy) {
  for (int s = 0; s < shards(); ++s)
    engine_of_shard(s).set_clock_fault_policy(policy);
}

void ShardedRuntimeHost::register_job(RuntimeJob* job) {
  CLB_CHECK(job != nullptr);
  CLB_CHECK_MSG(!driving_, "jobs must register before drive()");
  jobs_.push_back(job);
}

bool ShardedRuntimeHost::all_jobs_finished() const {
  for (const RuntimeJob* j : jobs_)
    if (!j->finished()) return false;
  return true;
}

bool ShardedRuntimeHost::any_job_needs_global() const {
  for (RuntimeJob* j : jobs_)
    if (j->needs_global_phase()) return true;
  return false;
}

int ShardedRuntimeHost::next_action() const {
  int best = -1;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (best < 0 || actions_[i].t < actions_[static_cast<std::size_t>(
                        best)].t ||
        (actions_[i].t == actions_[static_cast<std::size_t>(best)].t &&
         actions_[i].seq < actions_[static_cast<std::size_t>(best)].seq)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void ShardedRuntimeHost::drive(std::uint64_t max_events) {
  CLB_CHECK_MSG(!driving_, "drive() reentered");
  CLB_CHECK_MSG(!jobs_.empty(), "drive() with no registered jobs");
  driving_ = true;

  while (!all_jobs_finished()) {
    const std::optional<SimTime> event_t = sharded_.next_event_time();
    const int act = next_action();

    // Actions run before same-time events: the legacy scenario schedules
    // the background start during setup, whose event sequence number
    // precedes every application event at the same instant.
    if (act >= 0 && (!event_t || actions_[static_cast<std::size_t>(act)].t <=
                                     *event_t)) {
      TimedAction action = std::move(actions_[static_cast<std::size_t>(act)]);
      actions_.erase(actions_.begin() + act);
      action_now_ = action.t;
      action.fn();
      continue;
    }

    CLB_CHECK_MSG(event_t.has_value(),
                  "sharded runtime stalled: unfinished jobs but no pending "
                  "events or actions");
    CLB_CHECK_MSG(sharded_.executed() < max_events,
                  "event-count ceiling (" << max_events
                                          << ") hit; runaway scenario?");

    if (any_job_needs_global()) {
      // Serialized global phase: one event at a time in canonical global
      // order, timestamps exact.
      const std::optional<SimTime> t = sharded_.step_global();
      CLB_CHECK(t.has_value());
      continue;
    }

    // Compute phase: one conservative window, clipped so a due action
    // never lands mid-window.
    const std::optional<SimTime> cap =
        act >= 0 ? std::optional<SimTime>{
                       actions_[static_cast<std::size_t>(act)].t}
                 : std::nullopt;
    in_window_ = true;
    try {
      sharded_.run_one_window(cap);
    } catch (...) {
      in_window_ = false;
      throw;
    }
    in_window_ = false;

    // Barrier bookkeeping: per-shard summaries refresh and in-window
    // cascade completions recover, in job registration order.
    for (RuntimeJob* j : jobs_) j->merge_window_state();
  }

  for (RuntimeJob* j : jobs_) j->finalize_shard_state();
  driving_ = false;
}

void ShardedRuntimeHost::recover_to(SimTime t) {
  CLB_CHECK_MSG(!in_window_, "recover_to from inside a window");
  if (t >= sharded_.now()) return;  // already behind the barrier clock
  // rewind_clocks makes each engine prove nothing ran after t; the
  // failure message below names the actual conflict (see
  // EngineCore::rewind_clock).
  sharded_.rewind_clocks(t);
  ++rewinds_;
}

void ShardedRuntimeHost::note_job_finished(RuntimeJob& job) {
  CLB_INFO(job.name() << " finished at " << job.finish_time().to_string()
                      << " (sharded: " << sharded_.windows_run()
                      << " windows, " << sharded_.global_steps()
                      << " global steps, " << rewinds_ << " rewinds)");
  if (on_job_finished_) on_job_finished_(job);
}

}  // namespace cloudlb

#pragma once

#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Accumulates per-chare CPU time between load-balancing steps — the
/// simulated Charm++ LB database. The runtime records every executed task;
/// the window is cleared after each LB step so measurements always describe
/// the most recent period (the paper's principle of persistence: the last
/// window predicts the next).
class LbDatabase {
 public:
  /// Resets all accumulators and (re)sizes to `num_chares`.
  void reset(std::size_t num_chares);

  /// Clears the current window, keeping the size.
  void clear_window();

  /// Adds `cpu_sec` of measured task time to a chare's window total.
  void record_task(ChareId chare, double cpu_sec);

  /// CPU accumulated by a chare in the current window.
  double chare_cpu(ChareId chare) const;

  std::size_t num_chares() const { return window_cpu_.size(); }

  /// Total task CPU recorded in the current window.
  double window_total() const;

 private:
  std::vector<double> window_cpu_;
};

}  // namespace cloudlb

#pragma once

#include <cstddef>

#include "util/sim_time.h"

namespace cloudlb {

/// Point-to-point network cost model.
///
/// Cloud networks are the weak spot the paper repeatedly flags; the default
/// inter-node figures model a virtualized Ethernet (tens of microseconds of
/// latency, ~1 GB/s), while intra-node transfers go through shared memory.
struct NetworkConfig {
  SimTime intra_node_latency = SimTime::micros(2);
  SimTime inter_node_latency = SimTime::micros(60);
  double intra_node_bandwidth = 4.0e9;  ///< bytes/second
  double inter_node_bandwidth = 1.0e9;  ///< bytes/second

  /// When true, inter-node transfers of one job serialize through the
  /// sending node's NIC (store-and-forward egress): simultaneous sends
  /// queue instead of enjoying infinite parallel links. Off by default —
  /// the paper's workloads are compute-dominated — but useful for
  /// studying the §VI network concerns.
  bool model_nic_contention = false;
};

/// Latency + size/bandwidth delivery delay for one message.
SimTime delivery_delay(const NetworkConfig& net, std::size_t bytes,
                       bool same_node);

/// Lower bound on every inter-node delivery delay — the conservative
/// lookahead the sharded engine's window protocol builds on
/// (docs/sharded-engine.md): a cross-node message costs at least the base
/// inter-node latency, so windows of this width can never be pierced.
[[nodiscard]] SimTime min_internode_delay(const NetworkConfig& net);

/// Window width for the shard-partitioned runtime: just the conservative
/// lookahead above, under its runtime-facing name. Kept as its own entry
/// point so a future width policy (e.g. widening windows when the
/// cross-shard rate is low) changes one function, not every caller.
[[nodiscard]] inline SimTime shard_window_width(const NetworkConfig& net) {
  return min_internode_delay(net);
}

}  // namespace cloudlb

#include "runtime/network.h"

#include "util/check.h"

namespace cloudlb {

SimTime delivery_delay(const NetworkConfig& net, std::size_t bytes,
                       bool same_node) {
  const SimTime latency =
      same_node ? net.intra_node_latency : net.inter_node_latency;
  const double bw =
      same_node ? net.intra_node_bandwidth : net.inter_node_bandwidth;
  CLB_CHECK(bw > 0.0);
  return latency + SimTime::from_seconds(static_cast<double>(bytes) / bw);
}

SimTime min_internode_delay(const NetworkConfig& net) {
  CLB_CHECK_MSG(net.inter_node_latency > SimTime::zero(),
                "window lookahead requires a positive inter-node latency, got "
                    << net.inter_node_latency.to_string());
  return net.inter_node_latency;
}

}  // namespace cloudlb

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "runtime/chare.h"
#include "runtime/job.h"

namespace cloudlb::ampi {

/// A miniature Adaptive-MPI layer on top of the migratable-object runtime.
///
/// The paper's adoption story for MPI codes is AMPI: "user specifies
/// large number of MPI processes implemented as user-level threads by the
/// runtime", which makes ranks migratable and therefore balanceable. This
/// facade provides the same shape in continuation-passing style: each
/// *rank* is a chare (over-decompose by asking for more ranks than
/// cores), and the classic blocking calls become operations that take a
/// continuation:
///
///     rank.compute(SimTime::millis(5), [&rank] {
///       rank.send(right, 0, {x});
///       rank.recv(left, 0, [&rank](std::vector<double> ghost) { ... });
///     });
///
/// Provided operations: point-to-point send/recv with MPI-style matching
/// (by source and tag, FIFO per pair, unexpected-message queue),
/// barrier, allreduce(sum), CPU-consuming compute blocks, and sync() —
/// the AtSync hook that lets the interference-aware balancer migrate
/// ranks.
///
/// The usual MPI collective contract applies: every rank must reach
/// collectives (barrier / allreduce / sync) in the same order.
class Rank final : public Chare {
 public:
  /// `main` runs when the job starts, in this rank's context.
  using Main = std::function<void(Rank&)>;

  Rank(int rank, int world_size, Main main);

  int rank() const { return rank_; }
  int world_size() const { return world_size_; }

  // --- point to point -----------------------------------------------

  /// Sends `data` to `dest` with a user tag (>= 0).
  void send(int dest, int user_tag, std::vector<double> data);

  /// Posts a receive for (src, user_tag); the continuation fires with the
  /// payload once a matching message is (or already was) delivered.
  void recv(int src, int user_tag,
            std::function<void(std::vector<double>)> k);

  // --- compute & collectives ------------------------------------------

  /// Consumes `cpu` of CPU time (it is this, not wall time, that the LB
  /// database records for the rank), then continues.
  void compute(SimTime cpu, std::function<void()> k);

  /// Continues once every rank has entered the barrier.
  void barrier(std::function<void()> k);

  /// Global sum; every rank receives the total.
  void allreduce_sum(double value, std::function<void(double)> k);

  /// Enters the runtime's AtSync barrier: the load balancer may migrate
  /// ranks; the continuation fires on resume.
  void sync(std::function<void()> k);

  /// Declares this rank's program complete.
  void done();

  /// Serialized size for migration cost; adjust to model rank footprint.
  void set_footprint_bytes(std::size_t bytes) { footprint_ = bytes; }

  // --- Chare plumbing (runtime-facing) ---------------------------------

  void on_start() override;
  SimTime cost(const Message& msg) const override;
  void execute(const Message& msg) override;
  void on_resume_sync() override;
  std::size_t footprint_bytes() const override { return footprint_; }

 private:
  struct PendingRecv {
    int src;
    int user_tag;
    std::function<void(std::vector<double>)> k;
  };

  void deliver_user(int src, int user_tag, std::vector<double> payload);
  void root_collect(double value);
  void finish_reduction(double total);

  int rank_;
  int world_size_;
  Main main_;
  std::size_t footprint_ = 16 * 1024;

  std::deque<PendingRecv> pending_recvs_;
  /// Unexpected messages per (src, user_tag), FIFO.
  std::map<std::pair<int, int>, std::deque<std::vector<double>>> unexpected_;

  /// Compute continuations keyed by a local id carried in the message.
  std::map<int, std::function<void()>> compute_conts_;
  int next_compute_id_ = 0;

  /// At most one outstanding collective per rank (MPI ordering).
  std::function<void(double)> reduce_cont_;
  std::function<void()> sync_cont_;

  // Root-side (rank 0) reduction bookkeeping for the current epoch.
  int root_arrivals_ = 0;
  double root_sum_ = 0.0;
};

/// Adds `ranks` Rank chares (ids 0..ranks-1) running `main` to `job`.
/// Over-decompose: pass several ranks per PE so migration has granularity.
void populate_ranks(RuntimeJob& job, int ranks, Rank::Main main);

}  // namespace cloudlb::ampi

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "machine/machine.h"
#include "sim/sharded_simulator.h"
#include "util/shard_annotations.h"
#include "util/sim_time.h"

namespace cloudlb {

class RuntimeJob;

/// The shard-partitioned runtime driver: owns a ShardedSimulator and the
/// Machine whose nodes are block-partitioned across its shards (node n ->
/// shard n·S/N, the WindowedShardRouter mapping), and advances registered
/// RuntimeJobs by alternating two execution regimes
/// (docs/sharded-engine.md):
///
///  * **Windows** — while every job is in its compute phase, shards run
///    conservative lock-step windows (serially or on the worker team).
///    Jobs touch only their shard-local partition segments, so windows
///    are data-race free by construction. After each window the host
///    runs every job's barrier bookkeeping (merge_window_state), which
///    refreshes per-shard load summaries and detects barrier waves.
///
///  * **Global phases** — the moment any job has collective state in
///    motion (an AtSync wave, an open reduction, a pending broadcast, a
///    partial finish), the host switches to ShardedSimulator::step_global
///    and executes events one at a time in canonical (time, shard, seq)
///    order on the driving thread. That regime is exactly a merged
///    single-engine execution: cross-shard reads are safe and every
///    timestamp — and hence every metric — is exact, which is what the
///    differential tier pins against the legacy engine.
///
/// A cascade that starts *and* completes inside one window is recovered
/// by rewinding all shard clocks to the completion instant t* (legal
/// exactly when no shard executed anything after t*; the engines prove
/// it) and continuing from there in global order. When the rewind is
/// impossible — the window outran the cascade, i.e. the LB cadence is
/// shorter than the barrier window and other traffic kept running — the
/// run fails loudly rather than deliver an approximate timestamp.
class ShardedRuntimeHost {
 public:
  struct Config {
    int shards = 1;         ///< clamped to the machine's node count
    /// Window width = cross-shard lookahead; must lower-bound every
    /// cross-shard delivery latency (min_internode_delay of the jobs'
    /// network — see shard_window_width in runtime/network.h).
    SimTime window = SimTime::micros(60);
    bool parallel = false;  ///< run windows on a worker team
    int workers = 0;        ///< team size; <= 0 picks automatically
  };

  ShardedRuntimeHost(MachineConfig machine_config, Config config);
  ~ShardedRuntimeHost();

  ShardedRuntimeHost(const ShardedRuntimeHost&) = delete;
  ShardedRuntimeHost& operator=(const ShardedRuntimeHost&) = delete;

  [[nodiscard]] Machine& machine() { return machine_; }
  [[nodiscard]] ShardedSimulator& sharded() { return sharded_; }
  [[nodiscard]] const ShardedSimulator& sharded() const { return sharded_; }
  [[nodiscard]] int shards() const { return sharded_.shards(); }

  [[nodiscard]] int shard_of_node(int node) const;
  [[nodiscard]] int shard_of_core(CoreId core) const;
  [[nodiscard]] EngineCore& engine_of_shard(int shard) {
    return sharded_.shard_engine(shard);
  }
  [[nodiscard]] EngineCore& engine_of_node(int node) {
    return engine_of_shard(shard_of_node(node));
  }
  [[nodiscard]] EngineCore& engine_of_core(CoreId core) {
    return engine_of_shard(shard_of_core(core));
  }

  /// True while shards execute a conservative window (job callbacks then
  /// read time from their own shard's engine and must not touch foreign
  /// shards). False during global phases, setup and timed actions.
  [[nodiscard]] bool in_window() const { return in_window_; }

  /// The current global instant: the event time during a global phase,
  /// the action time inside a timed action, the last barrier otherwise.
  /// Meaningless as a per-shard clock while in_window().
  [[nodiscard]] SimTime global_now() const {
    return sharded_.now() > action_now_ ? sharded_.now() : action_now_;
  }

  /// Cross-shard send on the windowed channel (delegates to
  /// ShardedSimulator::post): delivery latency must be >= the window
  /// width when src != dst.
  CLB_SHARD_CONFINED void post(int src_shard, int dst_shard, SimTime latency,
                               EngineCore::Callback cb);

  /// Runs `fn` at global time `t` from the driving thread, ordered
  /// *before* any simulation event at the same instant (matching the
  /// legacy convention that setup-scheduled work precedes same-time
  /// application events). This is how scenarios start jobs mid-run.
  CLB_BARRIER_PHASE void schedule_action(SimTime t, std::function<void()> fn);

  /// Applies a clock-fault policy to every shard engine (fault plans).
  CLB_BARRIER_PHASE void set_clock_fault_policy(
      EngineCore::ClockFaultPolicy policy);

  /// Invoked from a global phase the moment a registered job finishes,
  /// with the exact finish instant (scenarios hang the tickless power
  /// meter's stop_at here).
  void set_on_job_finished(std::function<void(RuntimeJob&)> fn) {
    on_job_finished_ = std::move(fn);
  }

  /// Registered automatically by the RuntimeJob sharded constructor.
  CLB_BARRIER_PHASE void register_job(RuntimeJob* job);

  /// Advances all jobs until every registered job has finished, or fails
  /// loudly at `max_events` (runaway guard). Must be called once, after
  /// setup, from the thread that built the host.
  CLB_BARRIER_PHASE void drive(std::uint64_t max_events);

  // --- Called back by RuntimeJob (host-internal protocol). ---

  /// Barrier recovery: make `t` the current global instant even though
  /// the last window ran past it. A no-op when t >= the barrier clock
  /// (the cascade completed in the future relative to the rewound
  /// clocks); otherwise every engine must prove it executed nothing
  /// after `t`, or the run fails loudly (LB cadence shorter than the
  /// window — see class comment).
  CLB_BARRIER_PHASE void recover_to(SimTime t);

  /// Exact-finish notification from a job's global phase.
  CLB_BARRIER_PHASE void note_job_finished(RuntimeJob& job);

  [[nodiscard]] std::uint64_t windows_run() const {
    return sharded_.windows_run();
  }
  [[nodiscard]] std::uint64_t global_steps() const {
    return sharded_.global_steps();
  }
  [[nodiscard]] std::uint64_t rewinds() const { return rewinds_; }

 private:
  struct TimedAction {
    SimTime t;
    std::uint64_t seq;  ///< insertion order breaks time ties
    std::function<void()> fn;
  };

  [[nodiscard]] bool all_jobs_finished() const;
  [[nodiscard]] bool any_job_needs_global() const;
  /// Index of the earliest pending action (t, seq), or -1.
  [[nodiscard]] int next_action() const;

  ShardedSimulator sharded_;
  Machine machine_;
  std::vector<RuntimeJob*> jobs_;
  std::vector<TimedAction> actions_;
  std::uint64_t action_seq_ = 0;
  SimTime action_now_;
  bool in_window_ = false;
  bool driving_ = false;
  std::uint64_t rewinds_ = 0;
  std::function<void(RuntimeJob&)> on_job_finished_;
};

}  // namespace cloudlb

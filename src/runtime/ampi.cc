#include "runtime/ampi.h"

#include "util/check.h"

namespace cloudlb::ampi {

namespace {

// Internal chare tags; user tags are offset past them.
enum AmpiTag : int {
  kCompute = 0,
  kReduceUp = 1,
  kReduceDown = 2,
  kUserBase = 16,
};

// Per-message software overhead and per-value copy cost charged for
// handling deliveries (an MPI stack is not free).
constexpr double kHandlerOverheadSec = 1e-6;
constexpr double kPerValueSec = 1e-8;

}  // namespace

Rank::Rank(int rank, int world_size, Main main)
    : rank_{rank}, world_size_{world_size}, main_{std::move(main)} {
  CLB_CHECK(rank >= 0 && rank < world_size);
  CLB_CHECK(main_ != nullptr);
}

void Rank::on_start() { main_(*this); }

void Rank::send(int dest, int user_tag, std::vector<double> data) {
  CLB_CHECK_MSG(user_tag >= 0, "user tags must be non-negative");
  CLB_CHECK(dest >= 0 && dest < world_size_);
  Chare::send(static_cast<ChareId>(dest), kUserBase + user_tag,
              std::move(data));
}

void Rank::recv(int src, int user_tag,
                std::function<void(std::vector<double>)> k) {
  CLB_CHECK(k != nullptr);
  CLB_CHECK(src >= 0 && src < world_size_);
  auto it = unexpected_.find({src, user_tag});
  if (it != unexpected_.end() && !it->second.empty()) {
    std::vector<double> payload = std::move(it->second.front());
    it->second.pop_front();
    k(std::move(payload));
    return;
  }
  pending_recvs_.push_back(PendingRecv{src, user_tag, std::move(k)});
}

void Rank::compute(SimTime cpu, std::function<void()> k) {
  CLB_CHECK(k != nullptr);
  CLB_CHECK(!cpu.is_negative());
  const int id = next_compute_id_++;
  compute_conts_.emplace(id, std::move(k));
  Chare::send(this->id(), kCompute,
              {static_cast<double>(id), cpu.to_seconds()});
}

void Rank::barrier(std::function<void()> k) {
  allreduce_sum(0.0, [k = std::move(k)](double) { k(); });
}

void Rank::allreduce_sum(double value, std::function<void(double)> k) {
  CLB_CHECK(k != nullptr);
  CLB_CHECK_MSG(reduce_cont_ == nullptr,
                "one collective at a time per rank");
  reduce_cont_ = std::move(k);
  if (rank_ == 0) {
    root_collect(value);
  } else {
    Chare::send(0, kReduceUp, {value});
  }
}

void Rank::root_collect(double value) {
  CLB_CHECK(rank_ == 0);
  root_sum_ += value;
  if (++root_arrivals_ == world_size_) {
    const double total = root_sum_;
    root_arrivals_ = 0;
    root_sum_ = 0.0;
    for (int r = 0; r < world_size_; ++r)
      Chare::send(static_cast<ChareId>(r), kReduceDown, {total});
  }
}

void Rank::finish_reduction(double total) {
  CLB_CHECK_MSG(reduce_cont_ != nullptr,
                "reduction result with no collective outstanding");
  auto k = std::move(reduce_cont_);
  reduce_cont_ = nullptr;
  k(total);
}

void Rank::sync(std::function<void()> k) {
  CLB_CHECK(k != nullptr);
  CLB_CHECK_MSG(sync_cont_ == nullptr, "sync already in progress");
  sync_cont_ = std::move(k);
  at_sync();
}

void Rank::on_resume_sync() {
  CLB_CHECK_MSG(sync_cont_ != nullptr, "resumed without a pending sync");
  auto k = std::move(sync_cont_);
  sync_cont_ = nullptr;
  k();
}

void Rank::done() { finish(); }

SimTime Rank::cost(const Message& msg) const {
  if (msg.tag == kCompute) {
    CLB_CHECK(msg.data.size() == 2);
    return SimTime::from_seconds(msg.data[1]);
  }
  return SimTime::from_seconds(kHandlerOverheadSec +
                               kPerValueSec *
                                   static_cast<double>(msg.data.size()));
}

void Rank::execute(const Message& msg) {
  switch (msg.tag) {
    case kCompute: {
      const int id = static_cast<int>(msg.data[0]);
      auto it = compute_conts_.find(id);
      CLB_CHECK_MSG(it != compute_conts_.end(), "unknown compute block");
      auto k = std::move(it->second);
      compute_conts_.erase(it);
      k();
      return;
    }
    case kReduceUp:
      CLB_CHECK(msg.data.size() == 1);
      root_collect(msg.data[0]);
      return;
    case kReduceDown:
      CLB_CHECK(msg.data.size() == 1);
      finish_reduction(msg.data[0]);
      return;
    default: {
      CLB_CHECK_MSG(msg.tag >= kUserBase, "unknown AMPI message tag");
      deliver_user(static_cast<int>(msg.src), msg.tag - kUserBase, msg.data);
      return;
    }
  }
}

void Rank::deliver_user(int src, int user_tag, std::vector<double> payload) {
  for (auto it = pending_recvs_.begin(); it != pending_recvs_.end(); ++it) {
    if (it->src == src && it->user_tag == user_tag) {
      auto k = std::move(it->k);
      pending_recvs_.erase(it);
      k(std::move(payload));
      return;
    }
  }
  unexpected_[{src, user_tag}].push_back(std::move(payload));
}

void populate_ranks(RuntimeJob& job, int ranks, Rank::Main main) {
  CLB_CHECK(ranks > 0);
  for (int r = 0; r < ranks; ++r) {
    // Rank::send routes user messages with `ChareId == rank`, so the ids
    // add_chare hands back must line up with the rank numbers — which
    // only holds when the job had no chares before populate_ranks. A job
    // seeded with other chares first would silently cross-deliver every
    // AMPI message; fail loudly instead.
    const ChareId id = job.add_chare(std::make_unique<Rank>(r, ranks, main));
    CLB_CHECK_MSG(id == static_cast<ChareId>(r),
                  "populate_ranks requires an empty job: rank "
                      << r << " was assigned chare id " << id
                      << " (AMPI routes messages by rank == chare id)");
  }
}

}  // namespace cloudlb::ampi

#include "runtime/job.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/shard_partition.h"
#include "runtime/sharded_runtime.h"
#include "util/check.h"
#include "util/log.h"
#include "util/shard_annotations.h"
#include "util/validate.h"

namespace cloudlb {

// Burst-continuation rank for chare c (EngineCore::schedule_at_ranked):
// chare index order — the order the legacy engine's broadcast loops insert
// per-chare continuations — offset by one so rank 0 stays the unranked
// default carried by everything outside a burst chain.
static std::uint64_t chare_rank(std::size_t c) {
  return static_cast<std::uint64_t>(c) + 1;
}

RuntimeJob::RuntimeJob(Simulator& sim, VirtualMachine& vm, JobConfig config,
                       std::unique_ptr<LoadBalancer> balancer)
    : sim_{&sim},
      vm_{vm},
      config_{std::move(config)},
      balancer_{std::move(balancer)} {
  CLB_CHECK_MSG(balancer_ != nullptr,
                "a balancer is required; use NullLb for the noLB baseline");
  CLB_CHECK(config_.lb_period >= 0);
  CLB_CHECK(config_.pack_sec_per_byte >= 0.0);
  CLB_CHECK(config_.unpack_sec_per_byte >= 0.0);
}

RuntimeJob::RuntimeJob(ShardedRuntimeHost& host, VirtualMachine& vm,
                       JobConfig config, std::unique_ptr<LoadBalancer> balancer)
    : host_{&host},
      vm_{vm},
      config_{std::move(config)},
      balancer_{std::move(balancer)} {
  CLB_CHECK_MSG(balancer_ != nullptr,
                "a balancer is required; use NullLb for the noLB baseline");
  CLB_CHECK(config_.lb_period >= 0);
  CLB_CHECK(config_.pack_sec_per_byte >= 0.0);
  CLB_CHECK(config_.unpack_sec_per_byte >= 0.0);
  CLB_CHECK_MSG(config_.router == nullptr,
                "JobConfig::router is the legacy single-engine window shim; "
                "the sharded host speaks the window protocol natively");
  host_->register_job(this);
}

RuntimeJob::~RuntimeJob() = default;

Simulator& RuntimeJob::sim() {
  CLB_CHECK_MSG(sim_ != nullptr, "sim() is legacy-mode only");
  return *sim_;
}

ShardedRuntimeHost& RuntimeJob::host() {
  CLB_CHECK_MSG(host_ != nullptr, "host() is sharded-mode only");
  return *host_;
}

EngineCore& RuntimeJob::engine_of_pe(PeId pe) const {
  CLB_CHECK(host_ != nullptr);
  return host_->engine_of_shard(shard_of_pe(pe));
}

SimTime RuntimeJob::ctx_now(PeId pe) const {
  if (sim_ != nullptr) return sim_->now();
  if (host_->in_window()) return engine_of_pe(pe).now();
  return host_->global_now();
}

ChareId RuntimeJob::add_chare(std::unique_ptr<Chare> chare) {
  CLB_CHECK_MSG(!started_, "cannot add chares after start()");
  CLB_CHECK(chare != nullptr);
  const auto id = static_cast<ChareId>(chares_.size());
  chare->job_ = this;
  chare->id_ = id;
  chares_.push_back(std::move(chare));
  return id;
}

void RuntimeJob::start() {
  CLB_CHECK_MSG(!started_, "job already started");
  CLB_CHECK_MSG(!chares_.empty(), "job has no chares");
  started_ = true;
  start_time_ = sharded() ? host_->global_now() : sim_->now();

  const auto num_chares = chares_.size();
  const auto num_pes = static_cast<std::size_t>(vm_.num_vcpus());
  CLB_CHECK_MSG(num_chares >= num_pes,
                "overdecomposition requires at least one chare per PE");

  // Block initial mapping: chare i -> PE i·P/N, the even static
  // decomposition a homogeneous dedicated machine would want.
  assignment_.resize(num_chares);
  for (std::size_t i = 0; i < num_chares; ++i)
    assignment_[i] = static_cast<PeId>(i * num_pes / num_chares);

  pes_.clear();
  pes_.resize(num_pes);
  chare_done_.assign(num_chares, 0);
  // Presized so per-node entries never relocate; each entry is only ever
  // touched by the owning node's shard during windows.
  nic_free_at_.assign(static_cast<std::size_t>(vm_.machine().num_nodes()),
                      SimTime::zero());

  if (sharded()) {
    CLB_CHECK_MSG(observer_ == nullptr,
                  "execution observers are a legacy-engine facility; the "
                  "sharded runtime would invoke them from worker threads");
    shard_of_pe_.resize(num_pes);
    for (std::size_t p = 0; p < num_pes; ++p)
      shard_of_pe_[p] = host_->shard_of_core(vm_.core_of(static_cast<int>(p)));
    part_ = std::make_unique<ShardPartition>(host_->shards(), num_chares);
    shard_summaries_.clear();
  } else {
    db_.reset(num_chares);
  }
  reset_lb_window();

  for (auto& chare : chares_) chare->on_start();
}

SimTime RuntimeJob::finish_time() const {
  CLB_CHECK_MSG(finished_, "job not finished yet");
  return finish_time_;
}

SimTime RuntimeJob::elapsed() const { return finish_time() - start_time_; }

PeId RuntimeJob::pe_of(ChareId chare) const {
  CLB_CHECK(chare >= 0 && static_cast<std::size_t>(chare) < chares_.size());
  CLB_CHECK_MSG(started_, "mapping exists only after start()");
  return assignment_[static_cast<std::size_t>(chare)];
}

Chare& RuntimeJob::chare(ChareId id) {
  CLB_CHECK(id >= 0 && static_cast<std::size_t>(id) < chares_.size());
  return *chares_[static_cast<std::size_t>(id)];
}

SimTime RuntimeJob::cpu_consumed() const {
  SimTime total = SimTime::zero();
  for (int p = 0; p < vm_.num_vcpus(); ++p) total += vm_.vcpu_cpu_time(p);
  return total;
}

RuntimeJob::Counters RuntimeJob::counters() const {
  Counters c = counters_;
  if (sharded() && part_ != nullptr) {
    c.tasks_executed = part_->tasks_total();
    c.messages_sent = part_->messages_total();
  }
  return c;
}

void RuntimeJob::send(ChareId from, ChareId to, int tag,
                      std::vector<double> data, std::size_t bytes) {
  CLB_CHECK_MSG(started_, "send before start()");
  CLB_CHECK_MSG(!lb_in_progress_,
                "AtSync contract violated: send during a LB barrier");
  CLB_CHECK(to >= 0 && static_cast<std::size_t>(to) < chares_.size());

  Message msg;
  msg.src = from;
  msg.dest = to;
  msg.tag = tag;
  msg.data = std::move(data);
  msg.bytes = bytes != 0 ? bytes
                         : msg.data.size() * sizeof(double) +
                               kMessageEnvelopeBytes;
  const PeId from_pe = pe_of(from);
  const PeId to_pe = pe_of(to);
  if (sharded())
    ++part_->seg(shard_of_pe(from_pe)).messages_sent;
  else
    ++counters_.messages_sent;

  const CoreId src_core = core_of_pe(from_pe);
  const CoreId dst_core = core_of_pe(to_pe);
  const SimTime base = ctx_now(from_pe);
  const SimTime delay = network_delay(src_core, dst_core, msg.bytes, base);
  auto deliver_cb = [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  };
  route_to(from_pe, to_pe, base, delay, std::move(deliver_cb));
}

void RuntimeJob::route_to(PeId from_pe, PeId to_pe, SimTime base,
                          SimTime delay, std::function<void()> cb) {
  if (!sharded()) {
    const int src_node = vm_.machine().node_of(core_of_pe(from_pe));
    const int dst_node = vm_.machine().node_of(core_of_pe(to_pe));
    if (config_.router != nullptr &&
        config_.router->crosses_shards(src_node, dst_node)) {
      config_.router->route(src_node, dst_node, base + delay, std::move(cb));
      return;
    }
    sim_->schedule_after(delay, std::move(cb));
    return;
  }
  const int src_shard = shard_of_pe(from_pe);
  const int dst_shard = shard_of_pe(to_pe);
  if (host_->in_window() && src_shard != dst_shard) {
    // Mid-window the caller sits on the source shard whose clock is
    // `base`, so the windowed channel delivers at base + delay; delay is
    // at least the inter-node latency, which lower-bounds the window.
    host_->post(src_shard, dst_shard, delay, std::move(cb));
    return;
  }
  // Global phases, setup and timed actions run serialized on the driving
  // thread (or mid-window within one shard): direct scheduling is
  // deterministic, and the destination clock is at or behind base. The
  // send stamp is `base` — the sender's instant — so same-time arrivals
  // at the destination interleave by send order, as on a single engine.
  host_->engine_of_shard(dst_shard).schedule_at_stamped(base + delay, base,
                                                        std::move(cb));
}

SimTime RuntimeJob::network_delay(CoreId src, CoreId dst, std::size_t bytes,
                                  SimTime now) {
  const bool same_node = vm_.machine().same_node(src, dst);
  if (same_node || !config_.network.model_nic_contention)
    return delivery_delay(config_.network, bytes, same_node);

  // Store-and-forward through the source node's egress NIC: the transfer
  // occupies the link for bytes/bandwidth, queued behind earlier sends.
  const int node = vm_.machine().node_of(src);
  if (nic_free_at_.size() <= static_cast<std::size_t>(node))
    nic_free_at_.resize(static_cast<std::size_t>(node) + 1, SimTime::zero());
  const SimTime transfer = SimTime::from_seconds(
      static_cast<double>(bytes) / config_.network.inter_node_bandwidth);
  const SimTime depart =
      std::max(now, nic_free_at_[static_cast<std::size_t>(node)]);
  nic_free_at_[static_cast<std::size_t>(node)] = depart + transfer;
  return (depart + transfer + config_.network.inter_node_latency) - now;
}

SimTime RuntimeJob::sampled_idle_at(PeId pe, SimTime t) const {
  const SimTime idle = vm_.host_proc_stat_at(static_cast<int>(pe), t).idle;
  const SimTime q = config_.proc_stat_quantum;
  if (q.is_zero()) return idle;
  return SimTime::nanos(idle.ns() / q.ns() * q.ns());  // floor to a jiffy
}

void RuntimeJob::deliver(Message msg) {
  // Route by the *current* mapping: migrations happen only at barriers,
  // when no application messages are in flight, so this never misroutes.
  const PeId pe = pe_of(msg.dest);
  pes_[static_cast<std::size_t>(pe)].queue.push_back(std::move(msg));
  start_next_task(pe);
}

void RuntimeJob::start_next_task(PeId pe) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  if (p.executing || p.queue.empty()) return;
  CLB_CHECK_MSG(!lb_in_progress_,
                "AtSync contract violated: task runnable during LB barrier");

  Message msg = std::move(p.queue.front());
  p.queue.pop_front();
  p.executing = true;

  Chare& target = *chares_[static_cast<std::size_t>(msg.dest)];
  const SimTime cost = target.cost(msg);
  CLB_CHECK(!cost.is_negative());
  const SimTime begin = ctx_now(pe);

  vm_.demand(pe, cost,
             [this, pe, begin, cost, m = std::move(msg)]() mutable {
               if (sharded()) {
                 auto& seg = part_->seg(shard_of_pe(pe));
                 seg.db.record_task(m.dest, cost.to_seconds());
                 seg.window_cpu_sec += cost.to_seconds();
                 ++seg.tasks_executed;
               } else {
                 db_.record_task(m.dest, cost.to_seconds());
                 ++counters_.tasks_executed;
               }
               if (observer_ != nullptr)
                 observer_->on_task_executed(*this, pe, core_of_pe(pe),
                                             m.dest, m.tag, begin,
                                             ctx_now(pe));
               chares_[static_cast<std::size_t>(m.dest)]->execute(m);
               pes_[static_cast<std::size_t>(pe)].executing = false;
               pump_service(pe);
               start_next_task(pe);
             });
}

void RuntimeJob::at_sync(ChareId chare) {
  CLB_CHECK_MSG(config_.lb_period > 0,
                "at_sync called but lb_period is 0 (balancing disabled)");
  CLB_CHECK(!lb_in_progress_);
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  if (!sharded()) {
    ++sync_count_;
    const std::size_t live = chares_.size() - finished_chares_;
    CLB_CHECK(sync_count_ <= live);
    if (sync_count_ == live) {
      sync_count_ = 0;
      lb_in_progress_ = true;
      // The gather/decide/broadcast of the LB framework is real CPU work
      // on the master PE — if that core is interfered, the decision itself
      // slows down, exactly as it would in the paper's setup.
      enqueue_service(0, config_.lb_decision_overhead,
                      [this] { run_lb_step(); });
    }
    return;
  }
  const PeId pe = pe_of(chare);
  auto& seg = part_->seg(shard_of_pe(pe));
  const SimTime t = ctx_now(pe);
  ++seg.sync_count;
  seg.last_sync_time = t;
  // Mid-window only the shard-local subtotal is touched; completion is
  // detected at the barrier (merge_window_state) or, in a global phase,
  // right here with the merged counts.
  if (!host_->in_window()) maybe_complete_sync_wave(t);
}

void RuntimeJob::maybe_complete_sync_wave(SimTime t) {
  const std::size_t live = chares_.size() - part_->finished_total();
  const std::size_t sync = part_->sync_total();
  CLB_CHECK(sync <= live);
  if (sync == live) begin_lb_barrier(t);
}

void RuntimeJob::begin_lb_barrier(SimTime t) {
  (void)t;  // == host_->global_now(): asserted below
  CLB_CHECK(t == host_->global_now());
  part_->clear_sync();
  lb_in_progress_ = true;
  enqueue_service(0, config_.lb_decision_overhead, [this] { run_lb_step(); });
}

void RuntimeJob::contribute(ChareId chare, double value) {
  CLB_CHECK(!lb_in_progress_);
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  if (!sharded()) {
    reduction_sum_ += value;
    ++reduction_count_;
    const std::size_t live = chares_.size() - finished_chares_;
    CLB_CHECK_MSG(reduction_count_ <= live,
                  "more contributions than live chares in one reduction");
    if (reduction_count_ == live) {
      const double result = reduction_sum_;
      reduction_count_ = 0;
      reduction_sum_ = 0.0;
      sim_->schedule_after(config_.reduction_latency, [this, result] {
        for (std::size_t c = 0; c < chares_.size(); ++c) {
          if (chare_done_[c]) continue;
          chares_[c]->on_reduction_result(result);
        }
      });
    }
    return;
  }
  const PeId pe = pe_of(chare);
  auto& seg = part_->seg(shard_of_pe(pe));
  const SimTime t = ctx_now(pe);
  seg.contributions.emplace_back(t, value);
  ++seg.red_count;
  if (!host_->in_window()) maybe_complete_reduction(t);
}

void RuntimeJob::maybe_complete_reduction(SimTime t) {
  const std::size_t live = chares_.size() - part_->finished_total();
  const std::size_t red = part_->red_total();
  CLB_CHECK_MSG(red <= live,
                "more contributions than live chares in one reduction");
  if (red != live) return;
  const double result = part_->reduction_sum();
  part_->clear_reduction();
  complete_reduction(t, result);
}

void RuntimeJob::complete_reduction(SimTime t, double result) {
  CLB_CHECK(t == host_->global_now());
  // One broadcast event per shard at the same instant, each delivering to
  // its own live chares in index order — the shard-local half of the
  // broadcast tree. Executed in (time, shard) order by the global phase,
  // which broadcasts_pending_ keeps active until the last one ran. The
  // legacy broadcast is ONE event delivering in chare index order, so
  // each chare's deliveries are ranked individually: without the
  // override, everything the whole shard schedules would share the
  // broadcast event's rank and same-(time, stamp) sends from different
  // shards would interleave shard-major instead of by chare.
  for (int s = 0; s < part_->shards(); ++s) {
    ++broadcasts_pending_;
    host_->engine_of_shard(s).schedule_at_stamped(
        t + config_.reduction_latency, t, [this, s, result] {
          EngineCore& eng = host_->engine_of_shard(s);
          for (std::size_t c = 0; c < chares_.size(); ++c) {
            if (chare_done_[c]) continue;
            if (shard_of_pe(assignment_[c]) != s) continue;
            eng.set_current_rank(chare_rank(c));
            chares_[c]->on_reduction_result(result);
          }
          --broadcasts_pending_;
        });
  }
}

LbStats RuntimeJob::collect_stats() const {
  LbStats stats;
  const SimTime now = sharded() ? host_->global_now() : sim_->now();
  stats.pes.resize(pes_.size());
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    PeSample& s = stats.pes[p];
    s.pe = static_cast<PeId>(p);
    s.core = core_of_pe(static_cast<PeId>(p));
    s.wall_sec = (now - pes_[p].window_start).to_seconds();
    s.core_idle_sec =
        (sampled_idle_at(static_cast<PeId>(p), now) - pes_[p].idle_anchor)
            .to_seconds();
  }
  stats.chares.resize(chares_.size());
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    ChareSample& s = stats.chares[c];
    s.chare = static_cast<ChareId>(c);
    s.pe = assignment_[c];
    s.cpu_sec = sharded() ? part_->chare_cpu(static_cast<ChareId>(c))
                          : db_.chare_cpu(static_cast<ChareId>(c));
    s.bytes = chares_[c]->footprint_bytes();
    stats.pes[static_cast<std::size_t>(s.pe)].task_cpu_sec += s.cpu_sec;
  }
  return stats;
}

void RuntimeJob::run_lb_step() {
  LbStats stats = collect_stats();
  // The runtime's own measurement must be sane before faults get to
  // perturb it — a violation here is an accounting bug, not an injected
  // one.
  if (validation_enabled()) stats.validate();
  // Faults enter between measurement and decision: the balancer sees what
  // a real LB daemon would read from a degraded host, while the runtime's
  // own bookkeeping stays truthful.
  if (config_.faults != nullptr) config_.faults->perturb_stats(stats);
  // LB-step cadence of the shard summaries: aggregate exactly the
  // snapshot the strategy is about to see.
  if (sharded())
    shard_summaries_ =
        shard_summaries_from_stats(stats, shard_of_pe_, part_->shards());
  std::vector<PeId> new_assignment = balancer_->assign(stats);
  CLB_CHECK_MSG(new_assignment.size() == chares_.size(),
                "balancer returned a mapping of the wrong size");
  int moves = 0;
  for (std::size_t c = 0; c < new_assignment.size(); ++c) {
    CLB_CHECK_MSG(new_assignment[c] >= 0 &&
                      new_assignment[c] < static_cast<PeId>(pes_.size()),
                  "balancer assigned chare " << c << " to invalid PE");
    if (new_assignment[c] != assignment_[c]) ++moves;
  }
  ++counters_.lb_steps;
  if (observer_ != nullptr)
    observer_->on_lb_step(*this, counters_.lb_steps, ctx_now(0), moves);
  CLB_DEBUG(name() << ": LB step " << counters_.lb_steps << " at "
                   << ctx_now(0).to_string() << ", " << moves
                   << " migrations");

  if (moves == 0) {
    resume_all();
    return;
  }
  begin_migrations(new_assignment);
}

void RuntimeJob::begin_migrations(const std::vector<PeId>& new_assignment) {
  migrations_in_flight_ = 0;
  std::vector<std::pair<ChareId, std::pair<PeId, PeId>>> moves;
  for (std::size_t c = 0; c < new_assignment.size(); ++c) {
    if (new_assignment[c] != assignment_[c]) {
      moves.push_back({static_cast<ChareId>(c),
                       {assignment_[c], new_assignment[c]}});
    }
  }
  // Commit the mapping at decision time; no application messages are in
  // flight at the barrier, so routing stays consistent.
  assignment_ = new_assignment;
  migrations_in_flight_ = static_cast<int>(moves.size());
  for (const auto& [chare, fromto] : moves)
    migrate_chare(chare, fromto.first, fromto.second);
}

void RuntimeJob::migrate_chare(ChareId chare, PeId from, PeId to) {
  // Counters and the observer record the balancer's decision, not the
  // outcome: under failmig faults an attempt may die before any state
  // leaves the PE, yet its bytes stay counted (see Counters docs).
  ++counters_.migrations;
  const std::size_t bytes =
      chares_[static_cast<std::size_t>(chare)]->footprint_bytes();
  counters_.migrated_bytes += static_cast<std::int64_t>(bytes);
  if (observer_ != nullptr) observer_->on_migration(*this, chare, from, to);
  attempt_migration(chare, from, to, /*attempt=*/0);
}

void RuntimeJob::attempt_migration(ChareId chare, PeId from, PeId to,
                                   int attempt) {
  // The fault verdict for this attempt is drawn up front: it decides
  // where in the pack -> transfer -> unpack pipeline the attempt dies.
  // Work done before the failure point is genuinely burned — a failed
  // migration still cost its pack CPU, a partial one its transfer too.
  // Drawn here — at decision time for attempt 0, at retry time after a
  // backoff — the call order matches the legacy engine's in both modes,
  // which keeps seeded fault schedules identical across shard counts.
  const MigrationFault fault =
      config_.faults != nullptr
          ? config_.faults->on_migration({chare, from, to, attempt})
          : MigrationFault::kNone;

  const std::size_t bytes =
      chares_[static_cast<std::size_t>(chare)]->footprint_bytes();
  const SimTime pack =
      SimTime::from_seconds(config_.pack_sec_per_byte *
                            static_cast<double>(bytes));
  const SimTime unpack =
      SimTime::from_seconds(config_.unpack_sec_per_byte *
                            static_cast<double>(bytes));
  // The NIC ledger advances here, at the same instant and in the same
  // move order the legacy engine uses.
  const SimTime now = sharded() ? host_->global_now() : sim_->now();
  const SimTime transfer =
      network_delay(core_of_pe(from), core_of_pe(to), bytes, now);

  enqueue_service(
      from, pack, [this, chare, from, to, attempt, unpack, transfer, fault] {
        if (fault == MigrationFault::kFailAtSource) {
          retry_or_abandon(chare, from, to, attempt);
          return;
        }
        auto arrive = [this, chare, from, to, attempt, unpack, fault] {
          if (fault == MigrationFault::kFailAtDest) {
            retry_or_abandon(chare, from, to, attempt);
            return;
          }
          enqueue_service(to, unpack, [this] { migration_done(); });
        };
        if (sharded()) {
          // Migrations run only in global phases, where direct
          // cross-engine scheduling is deterministic.
          const SimTime sent = host_->global_now();
          engine_of_pe(to).schedule_at_stamped(sent + transfer, sent,
                                               std::move(arrive));
          return;
        }
        // Migration state crossing a shard boundary rides the same
        // windowed channel as messages — it is just bigger cargo.
        const int src_node = vm_.machine().node_of(core_of_pe(from));
        const int dst_node = vm_.machine().node_of(core_of_pe(to));
        if (config_.router != nullptr &&
            config_.router->crosses_shards(src_node, dst_node)) {
          config_.router->route(src_node, dst_node, sim_->now() + transfer,
                                std::move(arrive));
        } else {
          sim_->schedule_after(transfer, std::move(arrive));
        }
      });
}

void RuntimeJob::retry_or_abandon(ChareId chare, PeId from, PeId to,
                                  int attempt) {
  if (attempt < config_.migration_max_retries) {
    ++counters_.migration_retries;
    const SimTime backoff =
        config_.migration_retry_backoff *
        (std::int64_t{1} << std::min(attempt, 20));
    CLB_DEBUG(name() << ": migration of chare " << chare << " -> PE " << to
                     << " failed (attempt " << attempt + 1 << "), retrying in "
                     << backoff.to_string());
    auto retry = [this, chare, from, to, attempt] {
      attempt_migration(chare, from, to, attempt + 1);
    };
    if (sharded()) {
      const SimTime sent = host_->global_now();
      engine_of_pe(from).schedule_at_stamped(sent + backoff, sent,
                                             std::move(retry));
    } else {
      sim_->schedule_after(backoff, std::move(retry));
    }
    return;
  }
  // Out of retries: the source copy stays authoritative, so the chare is
  // simply kept where it was — never lost, never duplicated. Roll the
  // committed mapping back for this chare before the barrier lifts (no
  // application messages are in flight at a barrier, so routing stays
  // consistent).
  ++counters_.migrations_failed;
  assignment_[static_cast<std::size_t>(chare)] = from;
  CLB_WARN(name() << ": migration of chare " << chare << " PE " << from
                  << " -> " << to << " abandoned after " << attempt + 1
                  << " attempts; chare stays on PE " << from);
  migration_done();
}

void RuntimeJob::enqueue_service(PeId pe, SimTime cpu,
                                 std::function<void()> done) {
  CLB_CHECK_MSG(lb_in_progress_, "runtime services run only at LB barriers");
  if (!sharded()) {
    push_service(pe, cpu, std::move(done));
    return;
  }
  // Teleport to the PE's own engine: the service demand must anchor on
  // the clock of the engine owning that PE's core, which in a global
  // phase sits exactly at the global instant when the event fires. Same-
  // instant events on one engine run in schedule order, so multiple
  // services pushed to one PE keep their (legacy) enqueue order.
  const SimTime sent = host_->global_now();
  engine_of_pe(pe).schedule_at_stamped(
      sent, sent, [this, pe, cpu, done = std::move(done)]() mutable {
        push_service(pe, cpu, std::move(done));
      });
}

void RuntimeJob::push_service(PeId pe, SimTime cpu,
                              std::function<void()> done) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  p.services.push_back(ServiceItem{cpu, std::move(done)});
  pump_service(pe);
}

void RuntimeJob::pump_service(PeId pe) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  if (p.service_active || p.services.empty()) return;
  // The barrier may complete inside the last chare's execute(): its PE is
  // still unwinding the task, so wait for the flag to clear (the task's
  // completion path re-pumps).
  if (p.executing) return;
  ServiceItem item = std::move(p.services.front());
  p.services.pop_front();
  p.service_active = true;
  vm_.demand(pe, item.cpu, [this, pe, done = std::move(item.done)] {
    pes_[static_cast<std::size_t>(pe)].service_active = false;
    done();
    pump_service(pe);
  });
}

void RuntimeJob::migration_done() {
  CLB_CHECK(migrations_in_flight_ > 0);
  if (--migrations_in_flight_ == 0) resume_all();
}

void RuntimeJob::validate_invariants() const {
  CLB_CHECK_MSG(assignment_.size() == chares_.size(),
                "assignment holds " << assignment_.size() << " entries for "
                                    << chares_.size() << " chares");
  CLB_CHECK(chare_done_.size() == chares_.size());
  CLB_CHECK(pes_.size() == static_cast<std::size_t>(vm_.num_vcpus()));

  // Identity audit: chare i must be exactly the object registered as id i
  // and owned by this job — a swapped, lost or duplicated chare shows up
  // here even though the dense mapping vector cannot express it directly.
  std::size_t done = 0;
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    CLB_CHECK_MSG(chares_[c] != nullptr, "chare " << c << " is null");
    CLB_CHECK_MSG(chares_[c]->id_ == static_cast<ChareId>(c),
                  "chare at index " << c << " carries id "
                                    << chares_[c]->id_);
    CLB_CHECK_MSG(chares_[c]->job_ == this,
                  "chare " << c << " is owned by another job");
    CLB_CHECK_MSG(assignment_[c] >= 0 && static_cast<std::size_t>(
                                             assignment_[c]) < pes_.size(),
                  "chare " << c << " mapped to invalid PE "
                           << assignment_[c]);
    if (chare_done_[c]) ++done;
  }
  const std::size_t finished_count =
      sharded() && part_ != nullptr ? part_->finished_total()
                                    : finished_chares_;
  CLB_CHECK_MSG(done == finished_count,
                "finished-chare counter " << finished_count
                                          << " disagrees with " << done
                                          << " done flags");

  // Queued messages must target chares currently mapped to their queue's
  // PE: migrations commit only at barriers, when no application messages
  // are in flight, so a misrouted queue means the mapping and the queues
  // were mutated out of step.
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    for (const Message& m : pes_[p].queue) {
      CLB_CHECK(m.dest >= 0 &&
                static_cast<std::size_t>(m.dest) < chares_.size());
      CLB_CHECK_MSG(
          assignment_[static_cast<std::size_t>(m.dest)] ==
              static_cast<PeId>(p),
          "message for chare " << m.dest << " queued on PE " << p
                               << " but the chare is mapped to PE "
                               << assignment_[static_cast<std::size_t>(
                                      m.dest)]);
    }
  }

  // Barrier state machine: outside a barrier no migration may be in
  // flight and no runtime service may be queued or active.
  if (!lb_in_progress_) {
    CLB_CHECK(migrations_in_flight_ == 0);
    for (const Pe& pe : pes_) {
      CLB_CHECK(pe.services.empty());
      CLB_CHECK(!pe.service_active);
    }
  }

  // Partition-consistency audit (sharded mode): the per-shard segments
  // must agree with each other and with their own databases.
  if (sharded() && part_ != nullptr) {
    CLB_CHECK_MSG(part_->shards() == host_->shards(),
                  "partition has " << part_->shards() << " segments for "
                                   << host_->shards() << " shards");
    CLB_CHECK_MSG(part_->sync_total() <= chares_.size() - finished_count,
                  "more chares at the barrier than live chares");
    for (int s = 0; s < part_->shards(); ++s) {
      const ShardSegment& seg = part_->seg(s);
      CLB_CHECK_MSG(seg.red_count == seg.contributions.size(),
                    "shard " << s << " reduction counter " << seg.red_count
                             << " disagrees with "
                             << seg.contributions.size()
                             << " logged contributions");
      for (std::size_t i = 1; i < seg.contributions.size(); ++i) {
        CLB_CHECK_MSG(seg.contributions[i - 1].first <=
                          seg.contributions[i].first,
                      "shard " << s
                               << " contribution times out of order at "
                               << i);
      }
      // The running duplicate vs. its database: same additions in a
      // different association order, so compare with a tight relative
      // tolerance rather than bitwise.
      const double total = seg.db.window_total();
      const double tol = 1e-9 * std::max(1.0, std::abs(total));
      CLB_CHECK_MSG(std::abs(total - seg.window_cpu_sec) <= tol,
                    "shard " << s << " load total " << seg.window_cpu_sec
                             << " disagrees with its database ("
                             << total << ")");
    }
  }
}

void RuntimeJob::resume_all() {
  if (validation_enabled()) {
    // The LB step is complete: decision made, migrations done or rolled
    // back. Audit the whole job before the barrier lifts.
    validate_invariants();
  }
  reset_lb_window();
  lb_in_progress_ = false;
  if (!sharded()) {
    for (std::size_t c = 0; c < chares_.size(); ++c) {
      if (chare_done_[c]) continue;
      sim_->schedule_after(SimTime::zero(), [this, c] {
        chares_[c]->on_resume_sync();
      });
    }
    return;
  }
  // Zero-delay resumes on each chare's own engine, scheduled in chare
  // index order. Within one shard that is also execution order, and
  // chares on different shards live on different nodes, so nothing that
  // shares a NIC or core reorders — but the resumes all fire at the same
  // instant with the same stamp, so their downstream sends can tie on
  // (time, stamp) at a common destination. The rank (chare index, as the
  // legacy loop inserts) carries the legacy interleave across shards;
  // every event a resume continuation schedules inherits it.
  const SimTime t = host_->global_now();
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    if (chare_done_[c]) continue;
    engine_of_pe(assignment_[c])
        .schedule_at_ranked(t, t, chare_rank(c), [this, c] {
          chares_[c]->on_resume_sync();
        });
  }
}

void RuntimeJob::reset_lb_window() {
  const SimTime now = sharded() ? host_->global_now() : sim_->now();
  if (sharded())
    part_->clear_windows();
  else
    db_.clear_window();
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    pes_[p].window_start = now;
    pes_[p].idle_anchor = sampled_idle_at(static_cast<PeId>(p), now);
  }
}

void RuntimeJob::report_iteration(ChareId chare, int iteration) {
  CLB_CHECK(iteration >= 0);
  const auto it = static_cast<std::size_t>(iteration);
  if (!sharded()) {
    (void)chare;
    if (iteration_reports_.size() <= it) {
      iteration_reports_.resize(it + 1, 0);
      iteration_times_.resize(it + 1, SimTime::zero());
    }
    if (++iteration_reports_[it] == static_cast<int>(chares_.size())) {
      iteration_times_[it] = sim_->now();
      if (observer_ != nullptr)
        observer_->on_iteration_complete(*this, iteration, sim_->now());
    }
    return;
  }
  const PeId pe = pe_of(chare);
  auto& seg = part_->seg(shard_of_pe(pe));
  if (seg.iteration_reports.size() <= it) {
    seg.iteration_reports.resize(it + 1, 0);
    seg.iteration_last_times.resize(it + 1, SimTime::zero());
  }
  ++seg.iteration_reports[it];
  seg.iteration_last_times[it] = ctx_now(pe);  // monotone within a shard
}

void RuntimeJob::chare_finished(ChareId chare) {
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  chare_done_[static_cast<std::size_t>(chare)] = 1;
  if (!sharded()) {
    ++finished_chares_;
    if (finished_chares_ == chares_.size()) {
      finished_ = true;
      finish_time_ = sim_->now();
      CLB_INFO(name() << " finished at " << finish_time_.to_string());
    }
    return;
  }
  const PeId pe = pe_of(chare);
  auto& seg = part_->seg(shard_of_pe(pe));
  ++seg.finished_chares;
  seg.last_finish_time = ctx_now(pe);
  // A partial finish forces global phases (needs_global_phase), so by
  // the time the *last* chare finishes we are serialized and the finish
  // instant is exact. The only other route is the all-in-one-window case
  // handled by merge_window_state's rewind recovery.
  if (!host_->in_window() && part_->finished_total() == chares_.size()) {
    finished_ = true;
    finish_time_ = ctx_now(pe);
    host_->note_job_finished(*this);
  }
}

bool RuntimeJob::needs_global_phase() const {
  CLB_CHECK(sharded());
  if (!started_ || finished_) return false;
  if (lb_in_progress_ || broadcasts_pending_ > 0) return true;
  return part_->sync_total() > 0 || part_->red_total() > 0 ||
         part_->finished_total() > 0;
}

void RuntimeJob::merge_window_state() {
  CLB_CHECK(sharded());
  CLB_CHECK(!host_->in_window());
  if (!started_ || finished_) return;
  refresh_barrier_summaries();

  const std::size_t fin = part_->finished_total();
  const std::size_t live = chares_.size() - fin;
  const std::size_t sync = part_->sync_total();
  const std::size_t red = part_->red_total();
  CLB_CHECK(sync <= live);
  CLB_CHECK(red <= live);
  if (lb_in_progress_ || broadcasts_pending_ > 0) return;

  // A collective that started *and* completed inside the window just run:
  // recover the exact completion instant t* by rewinding every shard
  // clock to it (each engine proves nothing ran past t*, else the run
  // fails loudly — the window outran the cascade, i.e. the LB cadence is
  // shorter than the barrier window).
  if (live > 0 && sync > 0 && sync == live) {
    CLB_CHECK_MSG(red == 0,
                  "chares simultaneously at an AtSync barrier and inside a "
                  "reduction");
    const SimTime t = part_->max_sync_time();
    CLB_CHECK_MSG(fin == 0 || part_->max_finish_time() <= t,
                  name() << ": a chare finished after the last at_sync in "
                            "the same window; barrier completion is "
                            "ambiguous (the legacy engine would stall here)");
    host_->recover_to(t);
    begin_lb_barrier(t);
  } else if (live > 0 && red > 0 && red == live) {
    const SimTime t = part_->max_contribution_time();
    CLB_CHECK_MSG(fin == 0 || part_->max_finish_time() <= t,
                  name() << ": a chare finished after the last contribute "
                            "in the same window; reduction completion is "
                            "ambiguous (the legacy engine would stall here)");
    const double result = part_->reduction_sum();
    part_->clear_reduction();
    host_->recover_to(t);
    complete_reduction(t, result);
  } else if (fin == chares_.size()) {
    const SimTime t = part_->max_finish_time();
    host_->recover_to(t);
    finished_ = true;
    finish_time_ = t;
    host_->note_job_finished(*this);
  }
}

void RuntimeJob::refresh_barrier_summaries() {
  // All shard clocks sit exactly at the barrier, so the idle counters are
  // readable (and exact) at the global instant.
  const SimTime now = host_->global_now();
  const int shards = part_->shards();
  shard_summaries_.assign(static_cast<std::size_t>(shards),
                          ShardLoadSummary{});
  std::vector<double> pe_task(pes_.size(), 0.0);
  for (std::size_t c = 0; c < chares_.size(); ++c)
    pe_task[static_cast<std::size_t>(assignment_[c])] +=
        part_->chare_cpu(static_cast<ChareId>(c));
  for (int s = 0; s < shards; ++s) {
    ShardLoadSummary& sum = shard_summaries_[static_cast<std::size_t>(s)];
    sum.shard = s;
    sum.load_cpu_sec = part_->seg(s).window_cpu_sec;
    sum.tasks = part_->seg(s).tasks_executed;
  }
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    ShardLoadSummary& sum =
        shard_summaries_[static_cast<std::size_t>(shard_of_pe(
            static_cast<PeId>(p)))];
    ++sum.pes;
    const double wall = (now - pes_[p].window_start).to_seconds();
    const double idle =
        (sampled_idle_at(static_cast<PeId>(p), now) - pes_[p].idle_anchor)
            .to_seconds();
    sum.wall_sec = std::max(sum.wall_sec, wall);
    sum.idle_sec += idle;
    sum.overhead_sec += std::max(0.0, wall - idle - pe_task[p]);
  }
}

void RuntimeJob::finalize_shard_state() {
  if (!sharded() || !started_) return;
  std::size_t max_it = 0;
  for (int s = 0; s < part_->shards(); ++s)
    max_it = std::max(max_it, part_->seg(s).iteration_reports.size());
  iteration_reports_.assign(max_it, 0);
  iteration_times_.assign(max_it, SimTime::zero());
  std::vector<SimTime> last(max_it, SimTime::zero());
  for (int s = 0; s < part_->shards(); ++s) {
    const ShardSegment& seg = part_->seg(s);
    for (std::size_t it = 0; it < seg.iteration_reports.size(); ++it) {
      iteration_reports_[it] += seg.iteration_reports[it];
      last[it] = std::max(last[it], seg.iteration_last_times[it]);
    }
  }
  for (std::size_t it = 0; it < max_it; ++it) {
    // As in legacy mode, only fully-reported iterations get a time.
    if (iteration_reports_[it] == static_cast<int>(chares_.size()))
      iteration_times_[it] = last[it];
  }
}

}  // namespace cloudlb

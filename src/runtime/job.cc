#include "runtime/job.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/log.h"
#include "util/validate.h"

namespace cloudlb {

RuntimeJob::RuntimeJob(Simulator& sim, VirtualMachine& vm, JobConfig config,
                       std::unique_ptr<LoadBalancer> balancer)
    : sim_{sim},
      vm_{vm},
      config_{std::move(config)},
      balancer_{std::move(balancer)} {
  CLB_CHECK_MSG(balancer_ != nullptr,
                "a balancer is required; use NullLb for the noLB baseline");
  CLB_CHECK(config_.lb_period >= 0);
  CLB_CHECK(config_.pack_sec_per_byte >= 0.0);
  CLB_CHECK(config_.unpack_sec_per_byte >= 0.0);
}

RuntimeJob::~RuntimeJob() = default;

ChareId RuntimeJob::add_chare(std::unique_ptr<Chare> chare) {
  CLB_CHECK_MSG(!started_, "cannot add chares after start()");
  CLB_CHECK(chare != nullptr);
  const auto id = static_cast<ChareId>(chares_.size());
  chare->job_ = this;
  chare->id_ = id;
  chares_.push_back(std::move(chare));
  return id;
}

void RuntimeJob::start() {
  CLB_CHECK_MSG(!started_, "job already started");
  CLB_CHECK_MSG(!chares_.empty(), "job has no chares");
  started_ = true;
  start_time_ = sim_.now();

  const auto num_chares = chares_.size();
  const auto num_pes = static_cast<std::size_t>(vm_.num_vcpus());
  CLB_CHECK_MSG(num_chares >= num_pes,
                "overdecomposition requires at least one chare per PE");

  // Block initial mapping: chare i -> PE i·P/N, the even static
  // decomposition a homogeneous dedicated machine would want.
  assignment_.resize(num_chares);
  for (std::size_t i = 0; i < num_chares; ++i)
    assignment_[i] = static_cast<PeId>(i * num_pes / num_chares);

  pes_.clear();
  pes_.resize(num_pes);
  chare_done_.assign(num_chares, false);
  db_.reset(num_chares);
  reset_lb_window();

  for (auto& chare : chares_) chare->on_start();
}

SimTime RuntimeJob::finish_time() const {
  CLB_CHECK_MSG(finished_, "job not finished yet");
  return finish_time_;
}

SimTime RuntimeJob::elapsed() const { return finish_time() - start_time_; }

PeId RuntimeJob::pe_of(ChareId chare) const {
  CLB_CHECK(chare >= 0 && static_cast<std::size_t>(chare) < chares_.size());
  CLB_CHECK_MSG(started_, "mapping exists only after start()");
  return assignment_[static_cast<std::size_t>(chare)];
}

Chare& RuntimeJob::chare(ChareId id) {
  CLB_CHECK(id >= 0 && static_cast<std::size_t>(id) < chares_.size());
  return *chares_[static_cast<std::size_t>(id)];
}

SimTime RuntimeJob::cpu_consumed() const {
  SimTime total = SimTime::zero();
  for (int p = 0; p < vm_.num_vcpus(); ++p) total += vm_.vcpu_cpu_time(p);
  return total;
}

void RuntimeJob::send(ChareId from, ChareId to, int tag,
                      std::vector<double> data, std::size_t bytes) {
  CLB_CHECK_MSG(started_, "send before start()");
  CLB_CHECK_MSG(!lb_in_progress_,
                "AtSync contract violated: send during a LB barrier");
  CLB_CHECK(to >= 0 && static_cast<std::size_t>(to) < chares_.size());

  Message msg;
  msg.src = from;
  msg.dest = to;
  msg.tag = tag;
  msg.data = std::move(data);
  msg.bytes = bytes != 0 ? bytes
                         : msg.data.size() * sizeof(double) +
                               kMessageEnvelopeBytes;
  ++counters_.messages_sent;

  const CoreId src_core = core_of_pe(pe_of(from));
  const CoreId dst_core = core_of_pe(pe_of(to));
  const SimTime delay = network_delay(src_core, dst_core, msg.bytes);
  auto deliver_cb = [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  };
  const int src_node = vm_.machine().node_of(src_core);
  const int dst_node = vm_.machine().node_of(dst_core);
  if (config_.router != nullptr &&
      config_.router->crosses_shards(src_node, dst_node)) {
    config_.router->route(src_node, dst_node, sim_.now() + delay,
                          std::move(deliver_cb));
    return;
  }
  sim_.schedule_after(delay, std::move(deliver_cb));
}

SimTime RuntimeJob::network_delay(CoreId src, CoreId dst, std::size_t bytes) {
  const bool same_node = vm_.machine().same_node(src, dst);
  if (same_node || !config_.network.model_nic_contention)
    return delivery_delay(config_.network, bytes, same_node);

  // Store-and-forward through the source node's egress NIC: the transfer
  // occupies the link for bytes/bandwidth, queued behind earlier sends.
  const int node = vm_.machine().node_of(src);
  if (nic_free_at_.size() <= static_cast<std::size_t>(node))
    nic_free_at_.resize(static_cast<std::size_t>(node) + 1, SimTime::zero());
  const SimTime transfer = SimTime::from_seconds(
      static_cast<double>(bytes) / config_.network.inter_node_bandwidth);
  const SimTime depart =
      std::max(sim_.now(), nic_free_at_[static_cast<std::size_t>(node)]);
  nic_free_at_[static_cast<std::size_t>(node)] = depart + transfer;
  return (depart + transfer + config_.network.inter_node_latency) -
         sim_.now();
}

SimTime RuntimeJob::sampled_idle(PeId pe) const {
  const SimTime idle = vm_.host_proc_stat(static_cast<int>(pe)).idle;
  const SimTime q = config_.proc_stat_quantum;
  if (q.is_zero()) return idle;
  return SimTime::nanos(idle.ns() / q.ns() * q.ns());  // floor to a jiffy
}

void RuntimeJob::deliver(Message msg) {
  // Route by the *current* mapping: migrations happen only at barriers,
  // when no application messages are in flight, so this never misroutes.
  const PeId pe = pe_of(msg.dest);
  pes_[static_cast<std::size_t>(pe)].queue.push_back(std::move(msg));
  start_next_task(pe);
}

void RuntimeJob::start_next_task(PeId pe) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  if (p.executing || p.queue.empty()) return;
  CLB_CHECK_MSG(!lb_in_progress_,
                "AtSync contract violated: task runnable during LB barrier");

  Message msg = std::move(p.queue.front());
  p.queue.pop_front();
  p.executing = true;

  Chare& target = *chares_[static_cast<std::size_t>(msg.dest)];
  const SimTime cost = target.cost(msg);
  CLB_CHECK(!cost.is_negative());
  const SimTime begin = sim_.now();

  vm_.demand(pe, cost,
             [this, pe, begin, cost, m = std::move(msg)]() mutable {
               db_.record_task(m.dest, cost.to_seconds());
               ++counters_.tasks_executed;
               if (observer_ != nullptr)
                 observer_->on_task_executed(*this, pe, core_of_pe(pe),
                                             m.dest, m.tag, begin, sim_.now());
               chares_[static_cast<std::size_t>(m.dest)]->execute(m);
               pes_[static_cast<std::size_t>(pe)].executing = false;
               pump_service(pe);
               start_next_task(pe);
             });
}

void RuntimeJob::at_sync(ChareId chare) {
  CLB_CHECK_MSG(config_.lb_period > 0,
                "at_sync called but lb_period is 0 (balancing disabled)");
  CLB_CHECK(!lb_in_progress_);
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  ++sync_count_;
  const std::size_t live = chares_.size() - finished_chares_;
  CLB_CHECK(sync_count_ <= live);
  if (sync_count_ == live) {
    sync_count_ = 0;
    lb_in_progress_ = true;
    // The gather/decide/broadcast of the LB framework is real CPU work on
    // the master PE — if that core is interfered, the decision itself
    // slows down, exactly as it would in the paper's setup.
    enqueue_service(0, config_.lb_decision_overhead,
                    [this] { run_lb_step(); });
  }
}

void RuntimeJob::contribute(ChareId chare, double value) {
  CLB_CHECK(!lb_in_progress_);
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  reduction_sum_ += value;
  ++reduction_count_;
  const std::size_t live = chares_.size() - finished_chares_;
  CLB_CHECK_MSG(reduction_count_ <= live,
                "more contributions than live chares in one reduction");
  if (reduction_count_ == live) {
    const double result = reduction_sum_;
    reduction_count_ = 0;
    reduction_sum_ = 0.0;
    sim_.schedule_after(config_.reduction_latency, [this, result] {
      for (std::size_t c = 0; c < chares_.size(); ++c) {
        if (chare_done_[c]) continue;
        chares_[c]->on_reduction_result(result);
      }
    });
  }
}

LbStats RuntimeJob::collect_stats() const {
  LbStats stats;
  const SimTime now = sim_.now();
  stats.pes.resize(pes_.size());
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    PeSample& s = stats.pes[p];
    s.pe = static_cast<PeId>(p);
    s.core = core_of_pe(static_cast<PeId>(p));
    s.wall_sec = (now - pes_[p].window_start).to_seconds();
    s.core_idle_sec =
        (sampled_idle(static_cast<PeId>(p)) - pes_[p].idle_anchor)
            .to_seconds();
  }
  stats.chares.resize(chares_.size());
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    ChareSample& s = stats.chares[c];
    s.chare = static_cast<ChareId>(c);
    s.pe = assignment_[c];
    s.cpu_sec = db_.chare_cpu(static_cast<ChareId>(c));
    s.bytes = chares_[c]->footprint_bytes();
    stats.pes[static_cast<std::size_t>(s.pe)].task_cpu_sec += s.cpu_sec;
  }
  return stats;
}

void RuntimeJob::run_lb_step() {
  LbStats stats = collect_stats();
  // The runtime's own measurement must be sane before faults get to
  // perturb it — a violation here is an accounting bug, not an injected
  // one.
  if (validation_enabled()) stats.validate();
  // Faults enter between measurement and decision: the balancer sees what
  // a real LB daemon would read from a degraded host, while the runtime's
  // own bookkeeping stays truthful.
  if (config_.faults != nullptr) config_.faults->perturb_stats(stats);
  std::vector<PeId> new_assignment = balancer_->assign(stats);
  CLB_CHECK_MSG(new_assignment.size() == chares_.size(),
                "balancer returned a mapping of the wrong size");
  int moves = 0;
  for (std::size_t c = 0; c < new_assignment.size(); ++c) {
    CLB_CHECK_MSG(new_assignment[c] >= 0 &&
                      new_assignment[c] < static_cast<PeId>(pes_.size()),
                  "balancer assigned chare " << c << " to invalid PE");
    if (new_assignment[c] != assignment_[c]) ++moves;
  }
  ++counters_.lb_steps;
  if (observer_ != nullptr)
    observer_->on_lb_step(*this, counters_.lb_steps, sim_.now(), moves);
  CLB_DEBUG(name() << ": LB step " << counters_.lb_steps << " at "
                   << sim_.now().to_string() << ", " << moves
                   << " migrations");

  if (moves == 0) {
    resume_all();
    return;
  }
  begin_migrations(new_assignment);
}

void RuntimeJob::begin_migrations(const std::vector<PeId>& new_assignment) {
  migrations_in_flight_ = 0;
  std::vector<std::pair<ChareId, std::pair<PeId, PeId>>> moves;
  for (std::size_t c = 0; c < new_assignment.size(); ++c) {
    if (new_assignment[c] != assignment_[c]) {
      moves.push_back({static_cast<ChareId>(c),
                       {assignment_[c], new_assignment[c]}});
    }
  }
  // Commit the mapping at decision time; no application messages are in
  // flight at the barrier, so routing stays consistent.
  assignment_ = new_assignment;
  migrations_in_flight_ = static_cast<int>(moves.size());
  for (const auto& [chare, fromto] : moves)
    migrate_chare(chare, fromto.first, fromto.second);
}

void RuntimeJob::migrate_chare(ChareId chare, PeId from, PeId to) {
  // Counters and the observer record the balancer's decision, not the
  // outcome: under failmig faults an attempt may die before any state
  // leaves the PE, yet its bytes stay counted (see Counters docs).
  ++counters_.migrations;
  const std::size_t bytes =
      chares_[static_cast<std::size_t>(chare)]->footprint_bytes();
  counters_.migrated_bytes += static_cast<std::int64_t>(bytes);
  if (observer_ != nullptr) observer_->on_migration(*this, chare, from, to);
  attempt_migration(chare, from, to, /*attempt=*/0);
}

void RuntimeJob::attempt_migration(ChareId chare, PeId from, PeId to,
                                   int attempt) {
  // The fault verdict for this attempt is drawn up front: it decides
  // where in the pack -> transfer -> unpack pipeline the attempt dies.
  // Work done before the failure point is genuinely burned — a failed
  // migration still cost its pack CPU, a partial one its transfer too.
  const MigrationFault fault =
      config_.faults != nullptr
          ? config_.faults->on_migration({chare, from, to, attempt})
          : MigrationFault::kNone;

  const std::size_t bytes =
      chares_[static_cast<std::size_t>(chare)]->footprint_bytes();
  const SimTime pack =
      SimTime::from_seconds(config_.pack_sec_per_byte *
                            static_cast<double>(bytes));
  const SimTime unpack =
      SimTime::from_seconds(config_.unpack_sec_per_byte *
                            static_cast<double>(bytes));
  const SimTime transfer =
      network_delay(core_of_pe(from), core_of_pe(to), bytes);

  enqueue_service(
      from, pack, [this, chare, from, to, attempt, unpack, transfer, fault] {
        if (fault == MigrationFault::kFailAtSource) {
          retry_or_abandon(chare, from, to, attempt);
          return;
        }
        auto arrive = [this, chare, from, to, attempt, unpack, fault] {
          if (fault == MigrationFault::kFailAtDest) {
            retry_or_abandon(chare, from, to, attempt);
            return;
          }
          enqueue_service(to, unpack, [this] { migration_done(); });
        };
        // Migration state crossing a shard boundary rides the same
        // windowed channel as messages — it is just bigger cargo.
        const int src_node = vm_.machine().node_of(core_of_pe(from));
        const int dst_node = vm_.machine().node_of(core_of_pe(to));
        if (config_.router != nullptr &&
            config_.router->crosses_shards(src_node, dst_node)) {
          config_.router->route(src_node, dst_node, sim_.now() + transfer,
                                std::move(arrive));
        } else {
          sim_.schedule_after(transfer, std::move(arrive));
        }
      });
}

void RuntimeJob::retry_or_abandon(ChareId chare, PeId from, PeId to,
                                  int attempt) {
  if (attempt < config_.migration_max_retries) {
    ++counters_.migration_retries;
    const SimTime backoff =
        config_.migration_retry_backoff *
        (std::int64_t{1} << std::min(attempt, 20));
    CLB_DEBUG(name() << ": migration of chare " << chare << " -> PE " << to
                     << " failed (attempt " << attempt + 1 << "), retrying in "
                     << backoff.to_string());
    sim_.schedule_after(backoff, [this, chare, from, to, attempt] {
      attempt_migration(chare, from, to, attempt + 1);
    });
    return;
  }
  // Out of retries: the source copy stays authoritative, so the chare is
  // simply kept where it was — never lost, never duplicated. Roll the
  // committed mapping back for this chare before the barrier lifts (no
  // application messages are in flight at a barrier, so routing stays
  // consistent).
  ++counters_.migrations_failed;
  assignment_[static_cast<std::size_t>(chare)] = from;
  CLB_WARN(name() << ": migration of chare " << chare << " PE " << from
                  << " -> " << to << " abandoned after " << attempt + 1
                  << " attempts; chare stays on PE " << from);
  migration_done();
}

void RuntimeJob::enqueue_service(PeId pe, SimTime cpu,
                                 std::function<void()> done) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  CLB_CHECK_MSG(lb_in_progress_, "runtime services run only at LB barriers");
  p.services.push_back(ServiceItem{cpu, std::move(done)});
  pump_service(pe);
}

void RuntimeJob::pump_service(PeId pe) {
  auto& p = pes_[static_cast<std::size_t>(pe)];
  if (p.service_active || p.services.empty()) return;
  // The barrier may complete inside the last chare's execute(): its PE is
  // still unwinding the task, so wait for the flag to clear (the task's
  // completion path re-pumps).
  if (p.executing) return;
  ServiceItem item = std::move(p.services.front());
  p.services.pop_front();
  p.service_active = true;
  vm_.demand(pe, item.cpu, [this, pe, done = std::move(item.done)] {
    pes_[static_cast<std::size_t>(pe)].service_active = false;
    done();
    pump_service(pe);
  });
}

void RuntimeJob::migration_done() {
  CLB_CHECK(migrations_in_flight_ > 0);
  if (--migrations_in_flight_ == 0) resume_all();
}

void RuntimeJob::validate_invariants() const {
  CLB_CHECK_MSG(assignment_.size() == chares_.size(),
                "assignment holds " << assignment_.size() << " entries for "
                                    << chares_.size() << " chares");
  CLB_CHECK(chare_done_.size() == chares_.size());
  CLB_CHECK(pes_.size() == static_cast<std::size_t>(vm_.num_vcpus()));

  // Identity audit: chare i must be exactly the object registered as id i
  // and owned by this job — a swapped, lost or duplicated chare shows up
  // here even though the dense mapping vector cannot express it directly.
  std::size_t done = 0;
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    CLB_CHECK_MSG(chares_[c] != nullptr, "chare " << c << " is null");
    CLB_CHECK_MSG(chares_[c]->id_ == static_cast<ChareId>(c),
                  "chare at index " << c << " carries id "
                                    << chares_[c]->id_);
    CLB_CHECK_MSG(chares_[c]->job_ == this,
                  "chare " << c << " is owned by another job");
    CLB_CHECK_MSG(assignment_[c] >= 0 && static_cast<std::size_t>(
                                             assignment_[c]) < pes_.size(),
                  "chare " << c << " mapped to invalid PE "
                           << assignment_[c]);
    if (chare_done_[c]) ++done;
  }
  CLB_CHECK_MSG(done == finished_chares_,
                "finished-chare counter " << finished_chares_
                                          << " disagrees with " << done
                                          << " done flags");

  // Queued messages must target chares currently mapped to their queue's
  // PE: migrations commit only at barriers, when no application messages
  // are in flight, so a misrouted queue means the mapping and the queues
  // were mutated out of step.
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    for (const Message& m : pes_[p].queue) {
      CLB_CHECK(m.dest >= 0 &&
                static_cast<std::size_t>(m.dest) < chares_.size());
      CLB_CHECK_MSG(
          assignment_[static_cast<std::size_t>(m.dest)] ==
              static_cast<PeId>(p),
          "message for chare " << m.dest << " queued on PE " << p
                               << " but the chare is mapped to PE "
                               << assignment_[static_cast<std::size_t>(
                                      m.dest)]);
    }
  }

  // Barrier state machine: outside a barrier no migration may be in
  // flight and no runtime service may be queued or active.
  if (!lb_in_progress_) {
    CLB_CHECK(migrations_in_flight_ == 0);
    for (const Pe& pe : pes_) {
      CLB_CHECK(pe.services.empty());
      CLB_CHECK(!pe.service_active);
    }
  }
}

void RuntimeJob::resume_all() {
  if (validation_enabled()) {
    // The LB step is complete: decision made, migrations done or rolled
    // back. Audit the whole job before the barrier lifts.
    validate_invariants();
  }
  reset_lb_window();
  lb_in_progress_ = false;
  for (std::size_t c = 0; c < chares_.size(); ++c) {
    if (chare_done_[c]) continue;
    sim_.schedule_after(SimTime::zero(), [this, c] {
      chares_[c]->on_resume_sync();
    });
  }
}

void RuntimeJob::reset_lb_window() {
  db_.clear_window();
  const SimTime now = sim_.now();
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    pes_[p].window_start = now;
    pes_[p].idle_anchor = sampled_idle(static_cast<PeId>(p));
  }
}

void RuntimeJob::report_iteration(ChareId chare, int iteration) {
  CLB_CHECK(iteration >= 0);
  (void)chare;
  const auto it = static_cast<std::size_t>(iteration);
  if (iteration_reports_.size() <= it) {
    iteration_reports_.resize(it + 1, 0);
    iteration_times_.resize(it + 1, SimTime::zero());
  }
  if (++iteration_reports_[it] == static_cast<int>(chares_.size())) {
    iteration_times_[it] = sim_.now();
    if (observer_ != nullptr)
      observer_->on_iteration_complete(*this, iteration, sim_.now());
  }
}

void RuntimeJob::chare_finished(ChareId chare) {
  CLB_CHECK(!chare_done_[static_cast<std::size_t>(chare)]);
  chare_done_[static_cast<std::size_t>(chare)] = true;
  ++finished_chares_;
  if (finished_chares_ == chares_.size()) {
    finished_ = true;
    finish_time_ = sim_.now();
    CLB_INFO(name() << " finished at " << finish_time_.to_string());
  }
}

}  // namespace cloudlb

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lb/framework.h"
#include "runtime/chare.h"
#include "runtime/fault_hooks.h"
#include "runtime/lb_database.h"
#include "runtime/message.h"
#include "runtime/network.h"
#include "runtime/observer.h"
#include "sim/shard_router.h"
#include "sim/simulator.h"
#include "vm/virtual_machine.h"

namespace cloudlb {

/// Runtime tuning for one job.
struct JobConfig {
  std::string name = "job";

  /// Iterations between AtSync barriers. Applications read this to decide
  /// when to call at_sync(); 0 disables periodic balancing entirely.
  int lb_period = 10;

  NetworkConfig network;

  /// Migration cost model: CPU to serialize/deserialize one byte of chare
  /// state on the source/destination PE (≈1 GB/s each by default), plus the
  /// network transfer of the serialized bytes.
  double pack_sec_per_byte = 1e-9;
  double unpack_sec_per_byte = 1e-9;

  /// CPU cost of running the LB framework itself (gather + decision +
  /// broadcast), charged to the master PE once per LB step — and thus
  /// stretched by whatever shares the master's core.
  SimTime lb_decision_overhead = SimTime::micros(200);

  /// Wall-clock latency of a full contribute/broadcast reduction cycle
  /// once the last chare has contributed (tree gather + broadcast).
  SimTime reduction_latency = SimTime::micros(250);

  /// Resolution of the host's idle-time counters as sampled for Eq. 2.
  /// Zero reads the exact fluid-model counters; the paper reads
  /// /proc/stat, whose jiffies tick every 10 ms — set that here to study
  /// the estimator under realistic quantization.
  SimTime proc_stat_quantum = SimTime::zero();

  /// Fault-injection hooks (non-owning; see src/faults/). Null — the
  /// default — leaves every fault path untaken and the run bit-identical
  /// to a build without the subsystem.
  FaultHooks* faults = nullptr;

  /// How often a failed migration attempt is retried before the chare is
  /// abandoned in place on its source PE. 0 (the default) abandons on the
  /// first failure; irrelevant without fault injection, since attempts
  /// then never fail.
  int migration_max_retries = 0;

  /// Backoff before the first migration retry; doubles per attempt
  /// (500 us, 1 ms, 2 ms, ... — bounding the barrier stall a flaky
  /// migration path can cause to max_retries doublings).
  SimTime migration_retry_backoff = SimTime::micros(500);

  /// Shard-aware delivery routing (non-owning; see src/sim/shard_router.h
  /// and docs/sharded-engine.md). When set, messages and migration
  /// transfers between machine nodes on different shards are buffered by
  /// the router and released at conservative window barriers in canonical
  /// channel-merge order instead of being scheduled directly. Null — the
  /// default — keeps the legacy direct path bit-identical.
  ShardRouter* router = nullptr;
};

/// A parallel job under the message-driven runtime: a set of chares mapped
/// onto the PEs (one per vCPU of the job's VM), exchanging messages,
/// hitting periodic AtSync barriers at which a LoadBalancer strategy may
/// migrate chares.
///
/// This is the Charm++ substrate the paper's scheme plugs into: it keeps
/// the LB database (per-task CPU times), measures each PE's wall-clock
/// window and its host core's idle counter, and hands all of it to the
/// strategy as LbStats.
class RuntimeJob {
 public:
  /// The job runs one PE per vCPU of `vm`. The balancer may be the NullLb
  /// to reproduce the paper's "noLB" configuration.
  RuntimeJob(Simulator& sim, VirtualMachine& vm, JobConfig config,
             std::unique_ptr<LoadBalancer> balancer);
  ~RuntimeJob();

  RuntimeJob(const RuntimeJob&) = delete;
  RuntimeJob& operator=(const RuntimeJob&) = delete;

  /// Registers a chare before start(); returns its id. Chares are assigned
  /// to PEs block-wise initially (chare i -> PE i·P/N), matching an even
  /// static decomposition.
  [[nodiscard]] ChareId add_chare(std::unique_ptr<Chare> chare);

  /// Starts the job at the current simulation time: anchors measurement
  /// windows and invokes every chare's on_start().
  void start();

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] SimTime start_time() const { return start_time_; }
  /// Valid once finished(): time the last chare called finish().
  [[nodiscard]] SimTime finish_time() const;
  /// Wall-clock makespan (finish − start).
  [[nodiscard]] SimTime elapsed() const;

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const JobConfig& config() const { return config_; }
  [[nodiscard]] int num_pes() const { return vm_.num_vcpus(); }
  [[nodiscard]] std::size_t num_chares() const { return chares_.size(); }
  [[nodiscard]] int lb_period() const { return config_.lb_period; }

  Simulator& sim() { return sim_; }
  VirtualMachine& vm() { return vm_; }

  [[nodiscard]] PeId pe_of(ChareId chare) const;
  [[nodiscard]] CoreId core_of_pe(PeId pe) const { return vm_.core_of(pe); }
  Chare& chare(ChareId id);

  /// Completion times of fully-finished application iterations
  /// (index = iteration number as reported by chares).
  [[nodiscard]] const std::vector<SimTime>& iteration_times() const {
    return iteration_times_;
  }

  void set_observer(ExecutionObserver* observer) { observer_ = observer; }

  /// Aggregate counters, cumulative over the job's lifetime.
  struct Counters {
    std::int64_t tasks_executed = 0;
    std::int64_t messages_sent = 0;
    int lb_steps = 0;
    int migrations = 0;  ///< migrations decided by the balancer
    /// Bytes of those migrations, also counted at decision time: an
    /// attempt that later fails — even at the source, where nothing left
    /// the PE — keeps its bytes here. The retry/failure counters below
    /// say what became of the attempts; this is decided volume, not
    /// wire traffic.
    std::int64_t migrated_bytes = 0;
    int migration_retries = 0;   ///< failed attempts that were retried
    int migrations_failed = 0;   ///< abandoned after exhausting retries
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Total CPU consumed by the job's PEs (from core accounting).
  [[nodiscard]] SimTime cpu_consumed() const;

  // --- Chare-facing API (called from Chare protected helpers). ---

  void send(ChareId from, ChareId to, int tag, std::vector<double> data,
            std::size_t bytes);
  void at_sync(ChareId chare);
  void contribute(ChareId chare, double value);
  void chare_finished(ChareId chare);
  void report_iteration(ChareId chare, int iteration);

  /// Deep structural audit of the job (validation_enabled() gates the
  /// automatic call after every LB step; calling it directly is always
  /// allowed): the chare -> PE mapping is dense, in range, and agrees
  /// with every chare's identity (no chare lost, duplicated, or misowned),
  /// per-PE message queues route consistently, and the barrier/migration
  /// state machine is quiescent. Throws CheckFailure on violation.
  void validate_invariants() const;

 private:
  friend struct RuntimeJobTestAccess;  ///< corruption seams for validator tests

  /// Runtime-internal CPU work (migration pack/unpack) serialized per PE.
  struct ServiceItem {
    SimTime cpu;
    std::function<void()> done;
  };

  struct Pe {
    std::deque<Message> queue;
    bool executing = false;
    std::deque<ServiceItem> services;
    bool service_active = false;
    // Measurement-window anchors for LbStats (reset after each LB step).
    SimTime window_start;
    SimTime idle_anchor;
  };

  void deliver(Message msg);
  SimTime sampled_idle(PeId pe) const;
  /// Total delay for `bytes` from src to dst core, including NIC egress
  /// queueing when the network model enables it.
  SimTime network_delay(CoreId src, CoreId dst, std::size_t bytes);
  void start_next_task(PeId pe);
  void enqueue_service(PeId pe, SimTime cpu, std::function<void()> done);
  void pump_service(PeId pe);
  void run_lb_step();
  void begin_migrations(const std::vector<PeId>& new_assignment);
  void migrate_chare(ChareId chare, PeId from, PeId to);
  void attempt_migration(ChareId chare, PeId from, PeId to, int attempt);
  void retry_or_abandon(ChareId chare, PeId from, PeId to, int attempt);
  void migration_done();
  void resume_all();
  LbStats collect_stats() const;
  void reset_lb_window();

  Simulator& sim_;
  VirtualMachine& vm_;
  JobConfig config_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::vector<std::unique_ptr<Chare>> chares_;
  std::vector<bool> chare_done_;
  std::vector<PeId> assignment_;  ///< chare -> PE
  std::vector<Pe> pes_;
  LbDatabase db_;
  ExecutionObserver* observer_ = nullptr;

  bool started_ = false;
  bool finished_ = false;
  SimTime start_time_;
  SimTime finish_time_;
  std::size_t finished_chares_ = 0;

  std::size_t sync_count_ = 0;
  bool lb_in_progress_ = false;
  std::size_t reduction_count_ = 0;
  double reduction_sum_ = 0.0;
  int migrations_in_flight_ = 0;

  /// Per-source-node NIC egress availability (used when the network model
  /// enables contention).
  std::vector<SimTime> nic_free_at_;

  std::vector<int> iteration_reports_;  ///< per-iteration completion counts
  std::vector<SimTime> iteration_times_;

  Counters counters_;
};

}  // namespace cloudlb

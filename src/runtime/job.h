#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lb/framework.h"
#include "lb/shard_summary.h"
#include "runtime/chare.h"
#include "runtime/fault_hooks.h"
#include "runtime/lb_database.h"
#include "runtime/message.h"
#include "runtime/network.h"
#include "runtime/observer.h"
#include "sim/shard_router.h"
#include "sim/simulator.h"
#include "util/shard_annotations.h"
#include "vm/virtual_machine.h"

namespace cloudlb {

class ShardedRuntimeHost;
class ShardPartition;

/// Runtime tuning for one job.
struct JobConfig {
  std::string name = "job";

  /// Iterations between AtSync barriers. Applications read this to decide
  /// when to call at_sync(); 0 disables periodic balancing entirely.
  int lb_period = 10;

  NetworkConfig network;

  /// Migration cost model: CPU to serialize/deserialize one byte of chare
  /// state on the source/destination PE (≈1 GB/s each by default), plus the
  /// network transfer of the serialized bytes.
  double pack_sec_per_byte = 1e-9;
  double unpack_sec_per_byte = 1e-9;

  /// CPU cost of running the LB framework itself (gather + decision +
  /// broadcast), charged to the master PE once per LB step — and thus
  /// stretched by whatever shares the master's core.
  SimTime lb_decision_overhead = SimTime::micros(200);

  /// Wall-clock latency of a full contribute/broadcast reduction cycle
  /// once the last chare has contributed (tree gather + broadcast).
  SimTime reduction_latency = SimTime::micros(250);

  /// Resolution of the host's idle-time counters as sampled for Eq. 2.
  /// Zero reads the exact fluid-model counters; the paper reads
  /// /proc/stat, whose jiffies tick every 10 ms — set that here to study
  /// the estimator under realistic quantization.
  SimTime proc_stat_quantum = SimTime::zero();

  /// Fault-injection hooks (non-owning; see src/faults/). Null — the
  /// default — leaves every fault path untaken and the run bit-identical
  /// to a build without the subsystem.
  FaultHooks* faults = nullptr;

  /// How often a failed migration attempt is retried before the chare is
  /// abandoned in place on its source PE. 0 (the default) abandons on the
  /// first failure; irrelevant without fault injection, since attempts
  /// then never fail.
  int migration_max_retries = 0;

  /// Backoff before the first migration retry; doubles per attempt
  /// (500 us, 1 ms, 2 ms, ... — bounding the barrier stall a flaky
  /// migration path can cause to max_retries doublings).
  SimTime migration_retry_backoff = SimTime::micros(500);

  /// Shard-aware delivery routing on the *legacy* single engine
  /// (non-owning; see src/sim/shard_router.h). When set, messages and
  /// migration transfers between machine nodes on different shards are
  /// buffered by the router and released at conservative window barriers
  /// in canonical channel-merge order instead of being scheduled
  /// directly. Null — the default — keeps the legacy direct path
  /// bit-identical. Must be null under the sharded-host constructor,
  /// which speaks the window protocol natively.
  ShardRouter* router = nullptr;
};

/// A parallel job under the message-driven runtime: a set of chares mapped
/// onto the PEs (one per vCPU of the job's VM), exchanging messages,
/// hitting periodic AtSync barriers at which a LoadBalancer strategy may
/// migrate chares.
///
/// This is the Charm++ substrate the paper's scheme plugs into: it keeps
/// the LB database (per-task CPU times), measures each PE's wall-clock
/// window and its host core's idle counter, and hands all of it to the
/// strategy as LbStats.
///
/// The job runs in one of two modes, fixed at construction:
///
///  * **Legacy** — one Simulator clocks everything; every code path is
///    bit-identical to the pre-sharding runtime (pinned by the golden
///    trace digest).
///  * **Sharded** — a ShardedRuntimeHost drives the job across N shard
///    engines. All window-mutable state (LB database, barrier counters,
///    iteration tallies) is partitioned per shard (ShardPartition):
///    during conservative windows each shard writes only its own
///    segment, and collective phases (AtSync cascades, reductions,
///    migrations, finish detection) run serialized in exact global event
///    order, so makespan, migrations and energy are bit-identical to the
///    legacy engine for any shard and worker count.
class RuntimeJob {
 public:
  /// Legacy single-engine mode. The balancer may be the NullLb to
  /// reproduce the paper's "noLB" configuration.
  RuntimeJob(Simulator& sim, VirtualMachine& vm, JobConfig config,
             std::unique_ptr<LoadBalancer> balancer);

  /// Shard-partitioned mode: the job registers with `host` and is
  /// advanced by host.drive(). Requires config.router == nullptr (the
  /// host speaks the window protocol itself) and no observer (the tracer
  /// is a legacy-engine facility).
  RuntimeJob(ShardedRuntimeHost& host, VirtualMachine& vm, JobConfig config,
             std::unique_ptr<LoadBalancer> balancer);
  ~RuntimeJob();

  RuntimeJob(const RuntimeJob&) = delete;
  RuntimeJob& operator=(const RuntimeJob&) = delete;

  /// Registers a chare before start(); returns its id. Chares are assigned
  /// to PEs block-wise initially (chare i -> PE i·P/N), matching an even
  /// static decomposition.
  [[nodiscard]] ChareId add_chare(std::unique_ptr<Chare> chare);

  /// Starts the job at the current simulation time: anchors measurement
  /// windows and invokes every chare's on_start().
  CLB_BARRIER_PHASE void start();

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] SimTime start_time() const { return start_time_; }
  /// Valid once finished(): time the last chare called finish().
  [[nodiscard]] SimTime finish_time() const;
  /// Wall-clock makespan (finish − start).
  [[nodiscard]] SimTime elapsed() const;

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const JobConfig& config() const { return config_; }
  [[nodiscard]] int num_pes() const { return vm_.num_vcpus(); }
  [[nodiscard]] std::size_t num_chares() const { return chares_.size(); }
  [[nodiscard]] int lb_period() const { return config_.lb_period; }

  /// Legacy mode only (the sharded runtime has one engine per shard).
  Simulator& sim();
  /// Sharded mode only.
  ShardedRuntimeHost& host();
  [[nodiscard]] bool sharded() const { return host_ != nullptr; }
  VirtualMachine& vm() { return vm_; }

  [[nodiscard]] PeId pe_of(ChareId chare) const;
  [[nodiscard]] CoreId core_of_pe(PeId pe) const { return vm_.core_of(pe); }
  Chare& chare(ChareId id);

  /// Completion times of fully-finished application iterations
  /// (index = iteration number as reported by chares). In sharded mode
  /// the per-shard tallies are merged lazily; complete after drive().
  [[nodiscard]] const std::vector<SimTime>& iteration_times() const {
    return iteration_times_;
  }

  void set_observer(ExecutionObserver* observer) { observer_ = observer; }

  /// Aggregate counters, cumulative over the job's lifetime.
  struct Counters {
    std::int64_t tasks_executed = 0;
    std::int64_t messages_sent = 0;
    int lb_steps = 0;
    int migrations = 0;  ///< migrations decided by the balancer
    /// Bytes of those migrations, also counted at decision time: an
    /// attempt that later fails — even at the source, where nothing left
    /// the PE — keeps its bytes here. The retry/failure counters below
    /// say what became of the attempts; this is decided volume, not
    /// wire traffic.
    std::int64_t migrated_bytes = 0;
    int migration_retries = 0;   ///< failed attempts that were retried
    int migrations_failed = 0;   ///< abandoned after exhausting retries
  };
  /// By value: in sharded mode the window-local counters (tasks,
  /// messages) live in the per-shard segments and are merged on read.
  [[nodiscard]] Counters counters() const;

  /// Total CPU consumed by the job's PEs (from core accounting).
  [[nodiscard]] SimTime cpu_consumed() const;

  /// Sharded mode: per-shard {load, O_p} summaries, refreshed at every
  /// window barrier (from the segments' running totals and the exact
  /// idle counters) and at every LB step (from the LbStats snapshot the
  /// balancer saw). Empty in legacy mode or before the first barrier.
  [[nodiscard]] const std::vector<ShardLoadSummary>& shard_summaries() const {
    return shard_summaries_;
  }

  // --- Chare-facing API (called from Chare protected helpers). ---

  CLB_SHARD_CONFINED void send(ChareId from, ChareId to, int tag,
                               std::vector<double> data, std::size_t bytes);
  CLB_SHARD_CONFINED void at_sync(ChareId chare);
  CLB_SHARD_CONFINED void contribute(ChareId chare, double value);
  CLB_SHARD_CONFINED void chare_finished(ChareId chare);
  CLB_SHARD_CONFINED void report_iteration(ChareId chare, int iteration);

  // --- Host-facing protocol (sharded mode; called by ShardedRuntimeHost
  // from the driving thread, never from inside a window). ---

  /// True when the job has collective state in motion that requires
  /// serialized global execution (an AtSync wave, an open reduction, a
  /// pending broadcast, an LB barrier, or a partial finish — the latter
  /// so the final finish instant, and with it the energy meter stop, is
  /// exact).
  [[nodiscard]] CLB_BARRIER_PHASE bool needs_global_phase() const;

  /// Barrier bookkeeping after each conservative window: refreshes the
  /// per-shard summaries and recovers cascades that completed entirely
  /// inside the window (rewinding the shard clocks to the completion
  /// instant, or failing loudly when the window outran the cascade).
  CLB_BARRIER_PHASE void merge_window_state();

  /// Merges the lazily-partitioned tallies (iteration times) after
  /// drive().
  CLB_BARRIER_PHASE void finalize_shard_state();

  /// Deep structural audit of the job (validation_enabled() gates the
  /// automatic call after every LB step; calling it directly is always
  /// allowed): the chare -> PE mapping is dense, in range, and agrees
  /// with every chare's identity (no chare lost, duplicated, or misowned),
  /// per-PE message queues route consistently, the barrier/migration
  /// state machine is quiescent, and — in sharded mode — the partition
  /// segments are mutually consistent (finish counts match the done
  /// flags, reduction counters match their contribution logs,
  /// contribution times are monotone per shard, and the segment load
  /// totals match their databases). Throws CheckFailure on violation.
  /// Must not be called mid-window in sharded mode.
  CLB_BARRIER_PHASE void validate_invariants() const;

 private:
  friend struct RuntimeJobTestAccess;  ///< corruption seams for validator tests

  /// Runtime-internal CPU work (migration pack/unpack) serialized per PE.
  struct ServiceItem {
    SimTime cpu;
    std::function<void()> done;
  };

  struct Pe {
    std::deque<Message> queue;
    bool executing = false;
    std::deque<ServiceItem> services;
    bool service_active = false;
    // Measurement-window anchors for LbStats (reset after each LB step).
    SimTime window_start;
    SimTime idle_anchor;
  };

  // Mode plumbing.
  [[nodiscard]] int shard_of_pe(PeId pe) const {
    return shard_of_pe_[static_cast<std::size_t>(pe)];
  }
  [[nodiscard]] EngineCore& engine_of_pe(PeId pe) const;
  /// The current simulation instant as seen from PE `pe`'s context:
  /// legacy -> the one clock; sharded, inside a window -> the PE's shard
  /// clock; sharded otherwise (global phases, setup, timed actions) ->
  /// the host's global instant.
  [[nodiscard]] SimTime ctx_now(PeId pe) const;
  /// Delivery routing: schedules `cb` at base + delay in the context of
  /// `to_pe`'s engine. Legacy mode preserves the exact pre-sharding call
  /// sequence (including the optional JobConfig::router path).
  CLB_SHARD_CONFINED void route_to(PeId from_pe, PeId to_pe, SimTime base,
                                   SimTime delay, std::function<void()> cb);

  CLB_SHARD_CONFINED void deliver(Message msg);
  [[nodiscard]] SimTime sampled_idle_at(PeId pe, SimTime t) const;
  /// Total delay for `bytes` from src to dst core at time `now`,
  /// including NIC egress queueing when the network model enables it.
  /// Mutates the sender node's NIC ledger, so it carries the sender's
  /// shard context.
  CLB_SHARD_CONFINED SimTime network_delay(CoreId src, CoreId dst,
                                           std::size_t bytes, SimTime now);
  CLB_SHARD_CONFINED void start_next_task(PeId pe);
  void enqueue_service(PeId pe, SimTime cpu, std::function<void()> done);
  // Services execute in the owning PE's engine context whenever pumped
  // (post-task mid-window or at barriers), hence shard-confined.
  CLB_SHARD_CONFINED void push_service(PeId pe, SimTime cpu,
                                       std::function<void()> done);
  CLB_SHARD_CONFINED void pump_service(PeId pe);
  CLB_BARRIER_PHASE void run_lb_step();
  CLB_BARRIER_PHASE void begin_migrations(
      const std::vector<PeId>& new_assignment);
  CLB_BARRIER_PHASE void migrate_chare(ChareId chare, PeId from, PeId to);
  CLB_BARRIER_PHASE void attempt_migration(ChareId chare, PeId from, PeId to,
                                           int attempt);
  CLB_BARRIER_PHASE void retry_or_abandon(ChareId chare, PeId from, PeId to,
                                          int attempt);
  CLB_BARRIER_PHASE void migration_done();
  /// The post-LB resume burst: per-chare continuations ranked by chare
  /// index so the sharded heaps replay them in legacy order.
  CLB_BARRIER_PHASE CLB_RANKED_FANOUT void resume_all();
  CLB_CANONICAL_COMBINE LbStats collect_stats() const;
  CLB_BARRIER_PHASE void reset_lb_window();

  // Sharded collective-phase helpers (driving thread or global events).
  CLB_BARRIER_PHASE void maybe_complete_sync_wave(SimTime t);
  CLB_BARRIER_PHASE void maybe_complete_reduction(SimTime t);
  CLB_BARRIER_PHASE void begin_lb_barrier(SimTime t);
  /// Reduction broadcast fan-out: ranked like resume_all().
  CLB_BARRIER_PHASE CLB_RANKED_FANOUT void complete_reduction(SimTime t,
                                                              double result);
  CLB_BARRIER_PHASE CLB_CANONICAL_COMBINE void refresh_barrier_summaries();

  Simulator* sim_ = nullptr;          ///< legacy mode
  ShardedRuntimeHost* host_ = nullptr;  ///< sharded mode
  VirtualMachine& vm_;
  JobConfig config_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::vector<std::unique_ptr<Chare>> chares_;
  /// One flag per chare. uint8_t, not vector<bool>: in sharded mode each
  /// shard writes its own chares' flags during parallel windows, and a
  /// packed bitfield would make those writes race on shared words.
  CLB_SHARD_CONFINED std::vector<std::uint8_t> chare_done_;
  std::vector<PeId> assignment_;  ///< chare -> PE (stable during windows)
  CLB_SHARD_CONFINED std::vector<Pe> pes_;
  LbDatabase db_;  ///< legacy mode; sharded mode uses the partition's segments
  ExecutionObserver* observer_ = nullptr;

  bool started_ = false;
  bool finished_ = false;
  SimTime start_time_;
  SimTime finish_time_;
  std::size_t finished_chares_ = 0;  ///< legacy; sharded sums the segments

  std::size_t sync_count_ = 0;       ///< legacy; sharded sums the segments
  bool lb_in_progress_ = false;
  std::size_t reduction_count_ = 0;  ///< legacy
  double reduction_sum_ = 0.0;       ///< legacy
  int migrations_in_flight_ = 0;
  int broadcasts_pending_ = 0;       ///< sharded: in-flight broadcast events

  /// Per-source-node NIC egress availability (used when the network model
  /// enables contention). Presized in start(): per-node entries are only
  /// ever touched by the owning node's shard, so no lazy growth may move
  /// the storage mid-window.
  CLB_SHARD_CONFINED std::vector<SimTime> nic_free_at_;

  std::vector<int> iteration_reports_;  ///< per-iteration completion counts
  std::vector<SimTime> iteration_times_;

  Counters counters_;

  // Sharded-mode state.
  std::unique_ptr<ShardPartition> part_;
  std::vector<int> shard_of_pe_;
  std::vector<ShardLoadSummary> shard_summaries_;
};

}  // namespace cloudlb

#include "runtime/chare.h"

#include "runtime/job.h"
#include "util/check.h"

namespace cloudlb {

RuntimeJob& Chare::job() const {
  CLB_CHECK_MSG(job_ != nullptr, "chare not yet added to a job");
  return *job_;
}

void Chare::send(ChareId dest, int tag, std::vector<double> data,
                 std::size_t bytes) const {
  job().send(id_, dest, tag, std::move(data), bytes);
}

void Chare::at_sync() const { job().at_sync(id_); }

void Chare::contribute(double value) const { job().contribute(id_, value); }

void Chare::on_reduction_result(double /*result*/) {
  CLB_CHECK_MSG(false,
                "chare contributed but does not override on_reduction_result");
}

void Chare::finish() const { job().chare_finished(id_); }

void Chare::report_iteration(int iteration) const {
  job().report_iteration(id_, iteration);
}

}  // namespace cloudlb

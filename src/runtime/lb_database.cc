#include "runtime/lb_database.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cloudlb {

void LbDatabase::reset(std::size_t num_chares) {
  window_cpu_.assign(num_chares, 0.0);
}

void LbDatabase::clear_window() {
  std::fill(window_cpu_.begin(), window_cpu_.end(), 0.0);
}

void LbDatabase::record_task(ChareId chare, double cpu_sec) {
  CLB_CHECK(chare >= 0 &&
            static_cast<std::size_t>(chare) < window_cpu_.size());
  CLB_CHECK(cpu_sec >= 0.0);
  window_cpu_[static_cast<std::size_t>(chare)] += cpu_sec;
}

double LbDatabase::chare_cpu(ChareId chare) const {
  CLB_CHECK(chare >= 0 &&
            static_cast<std::size_t>(chare) < window_cpu_.size());
  return window_cpu_[static_cast<std::size_t>(chare)];
}

double LbDatabase::window_total() const {
  return std::accumulate(window_cpu_.begin(), window_cpu_.end(), 0.0);
}

}  // namespace cloudlb

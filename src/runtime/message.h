#pragma once

#include <cstddef>
#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// A message addressed to a chare's entry method.
///
/// `tag` selects the entry method (application-defined); `data` carries the
/// payload (doubles cover ghost rows, particle records, scalar control
/// values). `bytes` is the simulated wire size; if left zero the runtime
/// charges the payload size plus a fixed envelope.
struct Message {
  ChareId src = -1;
  ChareId dest = -1;
  int tag = 0;
  std::vector<double> data;
  std::size_t bytes = 0;
};

/// Envelope overhead added to every message's wire size.
inline constexpr std::size_t kMessageEnvelopeBytes = 64;

}  // namespace cloudlb

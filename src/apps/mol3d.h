#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "runtime/chare.h"
#include "runtime/job.h"

namespace cloudlb {

/// A point particle with position and velocity (unit mass).
struct Particle {
  double x = 0, y = 0, z = 0;
  double vx = 0, vy = 0, vz = 0;
};

/// Configuration for Mol3D, the classical molecular dynamics mini-app
/// standing in for the paper's third code: a 3D cell (spatial)
/// decomposition with Lennard-Jones pair forces, periodic boundaries and
/// particle hand-off between cells.
///
/// Unlike the stencils, per-cell load follows the (clustered) particle
/// distribution and drifts as particles move, so Mol3D carries *internal*
/// imbalance on top of any VM interference.
struct Mol3dConfig {
  // Cell grid; cell edge length is 1.0, so the periodic box is
  // cells_x × cells_y × cells_z. Each dimension needs ≥ 3 cells so the six
  // face neighbours are distinct.
  int cells_x = 8;
  int cells_y = 4;
  int cells_z = 4;

  int num_particles = 2048;
  int iterations = 40;
  std::uint64_t seed = 7;

  /// Fraction of particles seeded inside two Gaussian clusters (the rest
  /// are uniform) — the source of internal load imbalance. The default is
  /// mild (NAMD-style decompositions are reasonably even); crank it up to
  /// study heavy internal imbalance.
  double cluster_fraction = 0.25;

  // Physics (kept stable and deterministic; fidelity is not the point).
  double cutoff = 0.8;   ///< pair interaction range, ≤ 1 cell
  double sigma = 0.3;    ///< LJ length scale
  double epsilon = 1e-4; ///< LJ energy scale
  double dt = 0.005;

  // Cost model: virtual CPU per examined pair / per ghost particle copied.
  double sec_per_pair = 1.2e-6;
  double ghost_sec_per_particle = 5e-8;

  int num_cells() const { return cells_x * cells_y * cells_z; }
  void validate() const;
};

/// One spatial cell of the Mol3D decomposition. Each iteration it ships
/// its particle positions (plus any particles that left its bounds) to its
/// six face neighbours, waits for theirs, computes LJ forces over
/// own-own and own-ghost pairs within the cutoff, and integrates.
class Mol3dChare final : public Chare {
 public:
  /// Faces: 0=x− 1=x+ 2=y− 3=y+ 4=z− 5=z+ (opposite face = side ^ 1).
  Mol3dChare(const Mol3dConfig& config, int cx, int cy, int cz,
             std::vector<Particle> particles);

  void on_start() override;
  SimTime cost(const Message& msg) const override;
  void execute(const Message& msg) override;
  void on_resume_sync() override;
  std::size_t footprint_bytes() const override;

  const std::vector<Particle>& particles() const { return particles_; }
  int iteration() const { return iter_; }

  /// One-line diagnostic of the message-wait state (for tests/tools).
  std::string debug_state() const;

  /// Pairs the cost model charges for one force computation right now.
  std::int64_t pairs_examined() const;

 private:
  void send_phase();
  void maybe_trigger_compute();
  void compute_forces_and_integrate();
  ChareId neighbor(int side) const;
  int side_of_leaver(const Particle& p) const;

  Mol3dConfig config_;
  int cx_, cy_, cz_;
  double lo_[3], hi_[3];
  std::vector<Particle> particles_;
  std::array<std::vector<Particle>, 6> outbox_;  ///< leavers staged per face
  int iter_ = 0;
  bool compute_pending_ = false;
  std::map<int, std::array<std::vector<double>, 6>> ghosts_;  ///< xyz triples
  std::map<int, int> ghost_count_;
  std::map<int, std::vector<Particle>> incoming_;  ///< leavers per iteration
};

/// Generates the deterministic clustered particle set, bins it into cells
/// and adds one Mol3dChare per cell (cell-id order) to `job`.
void populate_mol3d(RuntimeJob& job, const Mol3dConfig& config);

/// The particle set populate_mol3d distributes (exposed for tests).
std::vector<Particle> mol3d_initial_particles(const Mol3dConfig& config);

}  // namespace cloudlb

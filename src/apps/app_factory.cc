#include "apps/app_factory.h"

#include "apps/jacobi2d.h"
#include "apps/mol3d.h"
#include "apps/wave2d.h"
#include "util/check.h"

namespace cloudlb {

std::vector<std::string> app_names() {
  return {"jacobi2d", "wave2d", "mol3d"};
}

namespace {
void apply_block_override(const AppSpec& spec, StencilLayout& layout) {
  if (spec.blocks_x > 0) layout.blocks_x = spec.blocks_x;
  if (spec.blocks_y > 0) layout.blocks_y = spec.blocks_y;
}
}  // namespace

void populate_app(RuntimeJob& job, const AppSpec& spec) {
  CLB_CHECK(spec.work_scale > 0.0);
  if (spec.name == "jacobi2d") {
    Jacobi2dConfig config;
    if (spec.iterations > 0) config.layout.iterations = spec.iterations;
    config.layout.sec_per_point *= spec.work_scale;
    apply_block_override(spec, config.layout);
    populate_jacobi2d(job, config);
    return;
  }
  if (spec.name == "wave2d") {
    Wave2dConfig config;
    // Wave2D's leapfrog update touches two time levels — a heavier
    // per-point cost and a non-square default domain distinguish it from
    // Jacobi2D in the evaluation sweeps.
    config.layout.grid_x = 320;
    config.layout.grid_y = 160;
    config.layout.sec_per_point = 7e-6;
    if (spec.iterations > 0) config.layout.iterations = spec.iterations;
    config.layout.sec_per_point *= spec.work_scale;
    apply_block_override(spec, config.layout);
    populate_wave2d(job, config);
    return;
  }
  if (spec.name == "mol3d") {
    Mol3dConfig config;
    if (spec.iterations > 0) config.iterations = spec.iterations;
    config.sec_per_pair *= spec.work_scale;
    config.seed = spec.seed;
    populate_mol3d(job, config);
    return;
  }
  CLB_CHECK_MSG(false, "unknown application: " << spec.name);
}

}  // namespace cloudlb

#include "apps/stencil_base.h"

#include <cmath>

#include "runtime/job.h"
#include "util/check.h"

namespace cloudlb {

void StencilLayout::validate() const {
  CLB_CHECK(grid_x >= 3 && grid_y >= 3);
  CLB_CHECK(blocks_x >= 1 && blocks_y >= 1);
  CLB_CHECK(blocks_x <= grid_x && blocks_y <= grid_y);
  CLB_CHECK(iterations >= 1);
  CLB_CHECK(sec_per_point >= 0.0);
  CLB_CHECK(ghost_sec_per_value >= 0.0);
  CLB_CHECK(residual_period >= 0);
  CLB_CHECK(residual_tolerance >= 0.0);
}

double stencil_initial_value(int i, int j, int grid_x, int grid_y) {
  const double pi = 3.14159265358979323846;
  const double x = static_cast<double>(i) / (grid_x - 1);
  const double y = static_cast<double>(j) / (grid_y - 1);
  const double mode = std::sin(pi * x) * std::sin(pi * y);
  const double dx = x - 0.3;
  const double dy = y - 0.6;
  const double bump = std::exp(-(dx * dx + dy * dy) / 0.02);
  return mode + 0.5 * bump;
}

StencilBlockChare::StencilBlockChare(const StencilLayout& layout, int bx,
                                     int by)
    : layout_{layout}, bx_{bx}, by_{by} {
  layout_.validate();
  CLB_CHECK(bx >= 0 && bx < layout.blocks_x);
  CLB_CHECK(by >= 0 && by < layout.blocks_y);
  x0_ = bx * layout.grid_x / layout.blocks_x;
  x1_ = (bx + 1) * layout.grid_x / layout.blocks_x;
  y0_ = by * layout.grid_y / layout.blocks_y;
  y1_ = (by + 1) * layout.grid_y / layout.blocks_y;
  CLB_CHECK_MSG(x1_ > x0_ && y1_ > y0_, "empty block — too many blocks");

  const auto block_id = [&](int x, int y) -> ChareId {
    return static_cast<ChareId>(y * layout_.blocks_x + x);
  };
  neighbor_[kWest] = bx > 0 ? block_id(bx - 1, by) : -1;
  neighbor_[kEast] = bx < layout.blocks_x - 1 ? block_id(bx + 1, by) : -1;
  neighbor_[kNorth] = by > 0 ? block_id(bx, by - 1) : -1;
  neighbor_[kSouth] = by < layout.blocks_y - 1 ? block_id(bx, by + 1) : -1;
  for (const ChareId n : neighbor_)
    if (n != -1) ++expected_ghosts_;
}

std::size_t StencilBlockChare::state_bytes() const {
  return static_cast<std::size_t>(nx()) * static_cast<std::size_t>(ny()) *
         sizeof(double);
}

std::size_t StencilBlockChare::footprint_bytes() const {
  return state_bytes() + 512;  // numerical state + object overhead
}

void StencilBlockChare::on_start() { send_ghosts(); }

void StencilBlockChare::on_resume_sync() { send_ghosts(); }

void StencilBlockChare::send_ghosts() {
  static constexpr Side kOpposite[4] = {kEast, kWest, kSouth, kNorth};
  for (int side = 0; side < 4; ++side) {
    const ChareId dest = neighbor_[static_cast<std::size_t>(side)];
    if (dest == -1) continue;
    std::vector<double> payload;
    const std::vector<double> edge = edge_values(static_cast<Side>(side));
    payload.reserve(edge.size() + 2);
    payload.push_back(static_cast<double>(iter_));
    payload.push_back(static_cast<double>(kOpposite[side]));
    payload.insert(payload.end(), edge.begin(), edge.end());
    send(dest, kTagGhost, std::move(payload));
  }
  maybe_trigger_compute();  // blocks with zero neighbours (1-block layouts)
}

SimTime StencilBlockChare::cost(const Message& msg) const {
  switch (msg.tag) {
    case kTagGhost:
      return SimTime::from_seconds(
          layout_.ghost_sec_per_value *
          static_cast<double>(msg.data.size() > 2 ? msg.data.size() - 2 : 0));
    case kTagCompute:
      return SimTime::from_seconds(layout_.sec_per_point *
                                   static_cast<double>(nx()) *
                                   static_cast<double>(ny()));
    default:
      CLB_CHECK_MSG(false, "unknown stencil tag " << msg.tag);
  }
  return SimTime::zero();
}

void StencilBlockChare::execute(const Message& msg) {
  if (msg.tag == kTagGhost) {
    CLB_CHECK(msg.data.size() >= 2);
    const int iter = static_cast<int>(msg.data[0]);
    const auto side = static_cast<std::size_t>(msg.data[1]);
    CLB_CHECK(side < 4);
    // A neighbour can be at most one iteration ahead of us.
    CLB_CHECK_MSG(iter == iter_ || iter == iter_ + 1,
                  "ghost for iteration " << iter << " while at " << iter_);
    auto& slot = ghosts_[iter][side];
    CLB_CHECK_MSG(slot.empty(), "duplicate ghost for side " << side);
    slot.assign(msg.data.begin() + 2, msg.data.end());
    ++ghost_count_[iter];
    maybe_trigger_compute();
    return;
  }

  CLB_CHECK(msg.tag == kTagCompute);
  CLB_CHECK(static_cast<int>(msg.data[0]) == iter_);
  compute_pending_ = false;
  apply_update(ghosts_[iter_]);
  ghosts_.erase(iter_);
  ghost_count_.erase(iter_);

  report_iteration(iter_);
  ++iter_;
  if (iter_ >= layout_.iterations) {
    finish();
    return;
  }
  if (layout_.residual_period > 0 &&
      iter_ % layout_.residual_period == 0) {
    awaiting_reduction_ = true;
    contribute(local_residual());
    return;  // quiet until the global residual arrives
  }
  proceed_to_next_iteration();
}

void StencilBlockChare::on_reduction_result(double global_residual) {
  CLB_CHECK_MSG(awaiting_reduction_, "unexpected reduction result");
  awaiting_reduction_ = false;
  if (global_residual < layout_.residual_tolerance) {
    finish();  // converged everywhere: every chare sees the same sum
    return;
  }
  proceed_to_next_iteration();
}

void StencilBlockChare::proceed_to_next_iteration() {
  const int period = job().lb_period();
  if (period > 0 && iter_ % period == 0) {
    at_sync();
  } else {
    send_ghosts();
  }
}

void StencilBlockChare::maybe_trigger_compute() {
  if (compute_pending_) return;
  auto it = ghost_count_.find(iter_);
  const int have = it == ghost_count_.end() ? 0 : it->second;
  if (have == expected_ghosts_) {
    compute_pending_ = true;
    send(id(), kTagCompute, {static_cast<double>(iter_)});
  }
}

}  // namespace cloudlb

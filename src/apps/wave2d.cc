#include "apps/wave2d.h"

#include "util/check.h"

namespace cloudlb {

Wave2dChare::Wave2dChare(const Wave2dConfig& config, int bx, int by)
    : StencilBlockChare(config.layout, bx, by),
      c2_{config.courant * config.courant} {
  CLB_CHECK(config.courant > 0.0 && config.courant < 0.7071);
  const auto n =
      static_cast<std::size_t>(nx()) * static_cast<std::size_t>(ny());
  u_cur_.resize(n);
  for (int gy = y0(); gy < y0() + ny(); ++gy)
    for (int gx = x0(); gx < x0() + nx(); ++gx)
      u_cur_[index(gx, gy)] = stencil_initial_value(gx, gy, layout().grid_x,
                                                    layout().grid_y);
  u_prev_ = u_cur_;  // zero initial velocity
  scratch_ = u_cur_;
}

std::size_t Wave2dChare::index(int gx, int gy) const {
  return static_cast<std::size_t>(gy - y0()) * static_cast<std::size_t>(nx()) +
         static_cast<std::size_t>(gx - x0());
}

double Wave2dChare::cur(int gx, int gy) const { return u_cur_[index(gx, gy)]; }

std::size_t Wave2dChare::state_bytes() const {
  return 2 * static_cast<std::size_t>(nx()) * static_cast<std::size_t>(ny()) *
         sizeof(double);
}

std::vector<double> Wave2dChare::block_values() const { return u_cur_; }

std::vector<double> Wave2dChare::edge_values(Side side) const {
  std::vector<double> out;
  switch (side) {
    case kWest:
      for (int gy = y0(); gy < y0() + ny(); ++gy) out.push_back(cur(x0(), gy));
      break;
    case kEast:
      for (int gy = y0(); gy < y0() + ny(); ++gy)
        out.push_back(cur(x0() + nx() - 1, gy));
      break;
    case kNorth:
      for (int gx = x0(); gx < x0() + nx(); ++gx) out.push_back(cur(gx, y0()));
      break;
    case kSouth:
      for (int gx = x0(); gx < x0() + nx(); ++gx)
        out.push_back(cur(gx, y0() + ny() - 1));
      break;
  }
  return out;
}

void Wave2dChare::apply_update(
    const std::array<std::vector<double>, 4>& ghosts) {
  const int gx_max = layout().grid_x - 1;
  const int gy_max = layout().grid_y - 1;
  auto value = [&](int gx, int gy) -> double {
    if (gx < x0()) return ghosts[kWest][static_cast<std::size_t>(gy - y0())];
    if (gx >= x0() + nx())
      return ghosts[kEast][static_cast<std::size_t>(gy - y0())];
    if (gy < y0()) return ghosts[kNorth][static_cast<std::size_t>(gx - x0())];
    if (gy >= y0() + ny())
      return ghosts[kSouth][static_cast<std::size_t>(gx - x0())];
    return cur(gx, gy);
  };

  for (int gy = y0(); gy < y0() + ny(); ++gy) {
    for (int gx = x0(); gx < x0() + nx(); ++gx) {
      const std::size_t i = index(gx, gy);
      if (gx == 0 || gx == gx_max || gy == 0 || gy == gy_max) {
        scratch_[i] = 0.0;  // clamped membrane edge
      } else {
        const double lap = value(gx - 1, gy) + value(gx + 1, gy) +
                           value(gx, gy - 1) + value(gx, gy + 1) -
                           4.0 * cur(gx, gy);
        scratch_[i] = 2.0 * cur(gx, gy) - u_prev_[i] + c2_ * lap;
      }
    }
  }
  u_prev_.swap(u_cur_);
  u_cur_.swap(scratch_);
}

void populate_wave2d(RuntimeJob& job, const Wave2dConfig& config) {
  config.layout.validate();
  for (int by = 0; by < config.layout.blocks_y; ++by)
    for (int bx = 0; bx < config.layout.blocks_x; ++bx) {
      // Ghost exchange routes by `by*blocks_x + bx` (stencil_base.cc); the
      // assigned ids only line up when the job starts empty.
      const ChareId id =
          job.add_chare(std::make_unique<Wave2dChare>(config, bx, by));
      CLB_CHECK_MSG(
          id == static_cast<ChareId>(by * config.layout.blocks_x + bx),
          "populate_wave2d requires an empty job: block (" << bx << ',' << by
              << ") was assigned chare id " << id);
    }
}

std::vector<double> wave2d_reference(const Wave2dConfig& config) {
  const StencilLayout& l = config.layout;
  l.validate();
  const double c2 = config.courant * config.courant;
  const auto w = static_cast<std::size_t>(l.grid_x);
  std::vector<double> cur(w * static_cast<std::size_t>(l.grid_y));
  for (int gy = 0; gy < l.grid_y; ++gy)
    for (int gx = 0; gx < l.grid_x; ++gx)
      cur[static_cast<std::size_t>(gy) * w + static_cast<std::size_t>(gx)] =
          stencil_initial_value(gx, gy, l.grid_x, l.grid_y);
  std::vector<double> prev = cur;
  std::vector<double> next(cur.size(), 0.0);

  for (int it = 0; it < l.iterations; ++it) {
    for (int gy = 0; gy < l.grid_y; ++gy) {
      for (int gx = 0; gx < l.grid_x; ++gx) {
        const std::size_t i =
            static_cast<std::size_t>(gy) * w + static_cast<std::size_t>(gx);
        if (gx == 0 || gx == l.grid_x - 1 || gy == 0 || gy == l.grid_y - 1) {
          next[i] = 0.0;  // clamped edge, re-imposed every step
        } else {
          const double lap =
              cur[i - 1] + cur[i + 1] + cur[i - w] + cur[i + w] - 4.0 * cur[i];
          next[i] = 2.0 * cur[i] - prev[i] + c2 * lap;
        }
      }
    }
    prev.swap(cur);
    cur.swap(next);
  }
  return cur;
}

}  // namespace cloudlb

#include "apps/mol3d.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace cloudlb {

namespace {

enum MolTag : int { kMolGhost = 1, kMolCompute = 2 };

double wrap(double v, double box) {
  v = std::fmod(v, box);
  return v < 0 ? v + box : v;
}

/// Minimum-image displacement on one periodic axis.
double min_image(double d, double box) {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

}  // namespace

void Mol3dConfig::validate() const {
  CLB_CHECK_MSG(cells_x >= 3 && cells_y >= 3 && cells_z >= 3,
                "each dimension needs >= 3 cells for distinct neighbours");
  CLB_CHECK(num_particles > 0);
  CLB_CHECK(iterations >= 1);
  CLB_CHECK(cutoff > 0.0 && cutoff <= 1.0);
  CLB_CHECK(sigma > 0.0);
  CLB_CHECK(dt > 0.0);
  CLB_CHECK(cluster_fraction >= 0.0 && cluster_fraction <= 1.0);
  CLB_CHECK(sec_per_pair >= 0.0 && ghost_sec_per_particle >= 0.0);
}

Mol3dChare::Mol3dChare(const Mol3dConfig& config, int cx, int cy, int cz,
                       std::vector<Particle> particles)
    : config_{config},
      cx_{cx},
      cy_{cy},
      cz_{cz},
      particles_{std::move(particles)} {
  config_.validate();
  lo_[0] = cx;
  hi_[0] = cx + 1;
  lo_[1] = cy;
  hi_[1] = cy + 1;
  lo_[2] = cz;
  hi_[2] = cz + 1;
}

ChareId Mol3dChare::neighbor(int side) const {
  int nxc = cx_, nyc = cy_, nzc = cz_;
  switch (side) {
    case 0: nxc = (cx_ + config_.cells_x - 1) % config_.cells_x; break;
    case 1: nxc = (cx_ + 1) % config_.cells_x; break;
    case 2: nyc = (cy_ + config_.cells_y - 1) % config_.cells_y; break;
    case 3: nyc = (cy_ + 1) % config_.cells_y; break;
    case 4: nzc = (cz_ + config_.cells_z - 1) % config_.cells_z; break;
    case 5: nzc = (cz_ + 1) % config_.cells_z; break;
    default: CLB_CHECK_MSG(false, "bad side " << side);
  }
  return static_cast<ChareId>((nzc * config_.cells_y + nyc) * config_.cells_x +
                              nxc);
}

void Mol3dChare::on_start() { send_phase(); }

void Mol3dChare::on_resume_sync() { send_phase(); }

void Mol3dChare::send_phase() {
  for (int side = 0; side < 6; ++side) {
    std::vector<double> payload;
    auto& leavers = outbox_[static_cast<std::size_t>(side)];
    payload.reserve(4 + particles_.size() * 3 + leavers.size() * 6);
    payload.push_back(static_cast<double>(iter_));
    payload.push_back(static_cast<double>(side ^ 1));  // receiver's face
    payload.push_back(static_cast<double>(particles_.size()));
    payload.push_back(static_cast<double>(leavers.size()));
    for (const Particle& p : particles_) {
      payload.push_back(p.x);
      payload.push_back(p.y);
      payload.push_back(p.z);
    }
    for (const Particle& p : leavers) {
      payload.push_back(p.x);
      payload.push_back(p.y);
      payload.push_back(p.z);
      payload.push_back(p.vx);
      payload.push_back(p.vy);
      payload.push_back(p.vz);
    }
    leavers.clear();  // ownership handed to the neighbour
    send(neighbor(side), kMolGhost, std::move(payload));
  }
  // Fast neighbours may already have delivered every ghost for this
  // iteration while we were still computing the previous one.
  maybe_trigger_compute();
}

SimTime Mol3dChare::cost(const Message& msg) const {
  switch (msg.tag) {
    case kMolGhost: {
      const double records =
          msg.data.size() > 4 ? static_cast<double>(msg.data.size() - 4) / 3.0
                              : 0.0;
      return SimTime::from_seconds(config_.ghost_sec_per_particle * records);
    }
    case kMolCompute:
      return SimTime::from_seconds(config_.sec_per_pair *
                                   static_cast<double>(pairs_examined()));
    default:
      CLB_CHECK_MSG(false, "unknown mol3d tag " << msg.tag);
  }
  return SimTime::zero();
}

std::int64_t Mol3dChare::pairs_examined() const {
  const auto n = static_cast<std::int64_t>(particles_.size());
  std::int64_t ghost_total = 0;
  const auto it = ghosts_.find(iter_);
  if (it != ghosts_.end())
    for (const auto& g : it->second)
      ghost_total += static_cast<std::int64_t>(g.size() / 3);
  return n * (n - 1) / 2 + n * ghost_total;
}

void Mol3dChare::execute(const Message& msg) {
  if (msg.tag == kMolGhost) {
    CLB_CHECK(msg.data.size() >= 4);
    const int iter = static_cast<int>(msg.data[0]);
    const auto side = static_cast<std::size_t>(msg.data[1]);
    const auto n_ghost = static_cast<std::size_t>(msg.data[2]);
    const auto n_leave = static_cast<std::size_t>(msg.data[3]);
    CLB_CHECK(side < 6);
    CLB_CHECK_MSG(iter == iter_ || iter == iter_ + 1,
                  "ghost for iteration " << iter << " while at " << iter_);
    CLB_CHECK(msg.data.size() == 4 + n_ghost * 3 + n_leave * 6);

    auto& slot = ghosts_[iter][side];
    slot.assign(msg.data.begin() + 4,
                msg.data.begin() + 4 + static_cast<std::ptrdiff_t>(n_ghost * 3));

    std::size_t off = 4 + n_ghost * 3;
    auto& incoming = incoming_[iter];
    for (std::size_t i = 0; i < n_leave; ++i, off += 6) {
      Particle p;
      p.x = msg.data[off];
      p.y = msg.data[off + 1];
      p.z = msg.data[off + 2];
      p.vx = msg.data[off + 3];
      p.vy = msg.data[off + 4];
      p.vz = msg.data[off + 5];
      incoming.push_back(p);
    }
    ++ghost_count_[iter];
    maybe_trigger_compute();
    return;
  }

  CLB_CHECK(msg.tag == kMolCompute);
  CLB_CHECK(static_cast<int>(msg.data[0]) == iter_);
  compute_pending_ = false;

  // Adopt particles handed over by neighbours before computing forces.
  auto in = incoming_.find(iter_);
  if (in != incoming_.end()) {
    particles_.insert(particles_.end(), in->second.begin(), in->second.end());
    incoming_.erase(in);
  }

  compute_forces_and_integrate();
  ghosts_.erase(iter_);
  ghost_count_.erase(iter_);

  report_iteration(iter_);
  ++iter_;
  if (iter_ >= config_.iterations) {
    finish();
    return;
  }
  const int period = job().lb_period();
  if (period > 0 && iter_ % period == 0) {
    at_sync();
  } else {
    send_phase();
  }
}

void Mol3dChare::maybe_trigger_compute() {
  if (compute_pending_) return;
  const auto it = ghost_count_.find(iter_);
  if (it != ghost_count_.end() && it->second == 6) {
    compute_pending_ = true;
    send(id(), kMolCompute, {static_cast<double>(iter_)});
  }
}

void Mol3dChare::compute_forces_and_integrate() {
  const double box[3] = {static_cast<double>(config_.cells_x),
                         static_cast<double>(config_.cells_y),
                         static_cast<double>(config_.cells_z)};
  const double rc2 = config_.cutoff * config_.cutoff;
  const double sigma2 = config_.sigma * config_.sigma;
  // Clamp r² from below to cap the force singularity at overlap.
  const double r2_min = 0.25 * sigma2;

  const std::size_t n = particles_.size();
  std::vector<double> fx(n, 0.0), fy(n, 0.0), fz(n, 0.0);

  auto accumulate = [&](std::size_t i, double dx, double dy, double dz,
                        double* fxj, double* fyj, double* fzj) {
    double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= rc2) return;
    r2 = std::max(r2, r2_min);
    const double s2 = sigma2 / r2;
    const double s6 = s2 * s2 * s2;
    // d(LJ)/dr / r: positive = repulsive.
    const double f_over_r = 24.0 * config_.epsilon * (2.0 * s6 * s6 - s6) / r2;
    fx[i] += f_over_r * dx;
    fy[i] += f_over_r * dy;
    fz[i] += f_over_r * dz;
    if (fxj != nullptr) {
      *fxj -= f_over_r * dx;
      *fyj -= f_over_r * dy;
      *fzj -= f_over_r * dz;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = min_image(particles_[i].x - particles_[j].x, box[0]);
      const double dy = min_image(particles_[i].y - particles_[j].y, box[1]);
      const double dz = min_image(particles_[i].z - particles_[j].z, box[2]);
      accumulate(i, dx, dy, dz, &fx[j], &fy[j], &fz[j]);
    }
  }
  const auto git = ghosts_.find(iter_);
  if (git != ghosts_.end()) {
    for (const auto& g : git->second) {
      for (std::size_t k = 0; k + 2 < g.size(); k += 3) {
        for (std::size_t i = 0; i < n; ++i) {
          const double dx = min_image(particles_[i].x - g[k], box[0]);
          const double dy = min_image(particles_[i].y - g[k + 1], box[1]);
          const double dz = min_image(particles_[i].z - g[k + 2], box[2]);
          accumulate(i, dx, dy, dz, nullptr, nullptr, nullptr);
        }
      }
    }
  }

  // Symplectic Euler, then periodic wrap and leaver detection. On the
  // final iteration nothing is staged: there is no further send phase, so
  // staged particles would be orphaned.
  const bool stage_leavers = iter_ + 1 < config_.iterations;
  std::vector<Particle> stay;
  stay.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Particle p = particles_[i];
    p.vx += fx[i] * config_.dt;
    p.vy += fy[i] * config_.dt;
    p.vz += fz[i] * config_.dt;
    p.x = wrap(p.x + p.vx * config_.dt, box[0]);
    p.y = wrap(p.y + p.vy * config_.dt, box[1]);
    p.z = wrap(p.z + p.vz * config_.dt, box[2]);
    const int side = stage_leavers ? side_of_leaver(p) : -1;
    if (side < 0) {
      stay.push_back(p);
    } else {
      outbox_[static_cast<std::size_t>(side)].push_back(p);
    }
  }
  particles_.swap(stay);
}

int Mol3dChare::side_of_leaver(const Particle& p) const {
  const double box[3] = {static_cast<double>(config_.cells_x),
                         static_cast<double>(config_.cells_y),
                         static_cast<double>(config_.cells_z)};
  const double pos[3] = {p.x, p.y, p.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (pos[axis] >= lo_[axis] && pos[axis] < hi_[axis]) continue;
    // Outside on this axis: pick the face pointing toward the particle in
    // the periodic sense (shortest way around).
    const double center = 0.5 * (lo_[axis] + hi_[axis]);
    const double d = min_image(pos[axis] - center, box[axis]);
    return axis * 2 + (d >= 0 ? 1 : 0);
  }
  return -1;  // still inside: not a leaver
}

std::string Mol3dChare::debug_state() const {
  std::ostringstream os;
  os << "cell(" << cx_ << ',' << cy_ << ',' << cz_ << ") iter=" << iter_
     << " pending=" << compute_pending_ << " particles=" << particles_.size();
  for (const auto& [it, count] : ghost_count_) os << " ghosts[" << it << "]=" << count;
  for (const auto& [it, inc] : incoming_) os << " incoming[" << it << "]=" << inc.size();
  return os.str();
}

std::size_t Mol3dChare::footprint_bytes() const {
  return particles_.size() * sizeof(Particle) + 512;
}

std::vector<Particle> mol3d_initial_particles(const Mol3dConfig& config) {
  config.validate();
  const double box[3] = {static_cast<double>(config.cells_x),
                         static_cast<double>(config.cells_y),
                         static_cast<double>(config.cells_z)};
  Rng rng{config.seed};
  const double centers[2][3] = {
      {0.25 * box[0], 0.50 * box[1], 0.50 * box[2]},
      {0.70 * box[0], 0.30 * box[1], 0.65 * box[2]},
  };
  std::vector<Particle> particles;
  particles.reserve(static_cast<std::size_t>(config.num_particles));
  for (int i = 0; i < config.num_particles; ++i) {
    Particle p;
    if (rng.next_double() < config.cluster_fraction) {
      const auto& c = centers[i % 2];
      const double spread = 0.25;
      p.x = wrap(rng.normal(c[0], spread * box[0]), box[0]);
      p.y = wrap(rng.normal(c[1], spread * box[1]), box[1]);
      p.z = wrap(rng.normal(c[2], spread * box[2]), box[2]);
    } else {
      p.x = rng.uniform(0.0, box[0]);
      p.y = rng.uniform(0.0, box[1]);
      p.z = rng.uniform(0.0, box[2]);
    }
    p.vx = rng.normal(0.0, 0.05);
    p.vy = rng.normal(0.0, 0.05);
    p.vz = rng.normal(0.0, 0.05);
    particles.push_back(p);
  }
  return particles;
}

void populate_mol3d(RuntimeJob& job, const Mol3dConfig& config) {
  const std::vector<Particle> all = mol3d_initial_particles(config);
  std::vector<std::vector<Particle>> bins(
      static_cast<std::size_t>(config.num_cells()));
  for (const Particle& p : all) {
    const int cx = std::min(static_cast<int>(p.x), config.cells_x - 1);
    const int cy = std::min(static_cast<int>(p.y), config.cells_y - 1);
    const int cz = std::min(static_cast<int>(p.z), config.cells_z - 1);
    bins[static_cast<std::size_t>((cz * config.cells_y + cy) * config.cells_x +
                                  cx)]
        .push_back(p);
  }
  std::size_t bin = 0;
  for (int cz = 0; cz < config.cells_z; ++cz)
    for (int cy = 0; cy < config.cells_y; ++cy)
      for (int cx = 0; cx < config.cells_x; ++cx) {
        // Mol3dChare::neighbor routes ghosts by the computed cell id
        // `(cz*cells_y + cy)*cells_x + cx`; that only matches add_chare's
        // assignment when the job starts empty.
        const ChareId id = job.add_chare(std::make_unique<Mol3dChare>(
            config, cx, cy, cz, std::move(bins[bin++])));
        CLB_CHECK_MSG(
            id == static_cast<ChareId>(
                      (cz * config.cells_y + cy) * config.cells_x + cx),
            "populate_mol3d requires an empty job: cell (" << cx << ',' << cy
                << ',' << cz << ") was assigned chare id " << id);
      }
}

}  // namespace cloudlb

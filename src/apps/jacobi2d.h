#pragma once

#include <vector>

#include "apps/stencil_base.h"
#include "runtime/job.h"

namespace cloudlb {

/// Configuration for the Jacobi2D benchmark (a canonical 5-point stencil
/// that iteratively averages a 2D grid; one of the paper's three codes).
struct Jacobi2dConfig {
  StencilLayout layout;
};

/// One block of the Jacobi2D grid. Interior points relax to the average of
/// their four neighbours each iteration; the global boundary is held fixed
/// (Dirichlet).
class Jacobi2dChare final : public StencilBlockChare {
 public:
  Jacobi2dChare(const Jacobi2dConfig& config, int bx, int by);

  /// Owned block values, row-major over [y0,y0+ny) × [x0,x0+nx)
  /// (for validation against the serial reference).
  std::vector<double> block_values() const;

  /// L1 change of the owned block in the most recent sweep.
  double local_residual() const override { return residual_; }

 protected:
  std::vector<double> edge_values(Side side) const override;
  void apply_update(const std::array<std::vector<double>, 4>& ghosts) override;

 private:
  double& at(int gx, int gy);
  double at(int gx, int gy) const;

  double residual_ = 0.0;
  std::vector<double> u_, scratch_;
};

/// Adds one Jacobi2dChare per block to `job`, in row-major block order.
void populate_jacobi2d(RuntimeJob& job, const Jacobi2dConfig& config);

/// Serial reference: the full grid after `iterations` Jacobi sweeps from
/// the shared initial condition. Row-major, grid_y rows of grid_x values.
std::vector<double> jacobi2d_reference(const Jacobi2dConfig& config);

}  // namespace cloudlb

#pragma once

#include <array>
#include <map>
#include <vector>

#include "runtime/chare.h"

namespace cloudlb {

/// Message tags used by the bundled applications.
enum StencilTag : int {
  kTagGhost = 1,    ///< boundary values from a neighbour
  kTagCompute = 2,  ///< self-message triggering the iteration's update
};

/// Geometry and cost model shared by the 2D stencil applications.
///
/// The global grid_x × grid_y grid is split into blocks_x × blocks_y
/// blocks, one chare each (chare id = by·blocks_x + bx, row-major). The
/// simulated CPU cost of an iteration's update is `sec_per_point` per
/// owned point — uniform blocks make the application internally balanced,
/// so (as in the paper's Wave2D/Jacobi2D) any imbalance comes from outside.
struct StencilLayout {
  int grid_x = 256;
  int grid_y = 256;
  int blocks_x = 32;
  int blocks_y = 16;
  int iterations = 120;
  double sec_per_point = 5e-6;        ///< virtual CPU per point per update
  double ghost_sec_per_value = 2e-8;  ///< virtual CPU to absorb one ghost value

  /// Convergence checking: every `residual_period` iterations the chares
  /// contribute their local residual to a global sum reduction and stop
  /// early once it drops below `residual_tolerance`. 0 disables the check
  /// (fixed iteration count), which is what the timing experiments use.
  int residual_period = 0;
  double residual_tolerance = 0.0;

  int num_blocks() const { return blocks_x * blocks_y; }
  void validate() const;
};

/// Base chare for 2D block-decomposed iterative stencil codes.
///
/// Handles the whole message choreography — ghost sends, out-of-order
/// ghost buffering (a neighbour may run one iteration ahead), the compute
/// self-message, iteration accounting, AtSync every job().lb_period()
/// iterations and finish() — leaving derived classes only the numerics:
/// `edge_values()` (what to send) and `apply_update()` (how to relax).
class StencilBlockChare : public Chare {
 public:
  /// Sides index ghosts and neighbours: 0=west 1=east 2=north 3=south.
  enum Side { kWest = 0, kEast = 1, kNorth = 2, kSouth = 3 };

  StencilBlockChare(const StencilLayout& layout, int bx, int by);

  void on_start() override;
  SimTime cost(const Message& msg) const override;
  void execute(const Message& msg) override;
  void on_resume_sync() override;
  void on_reduction_result(double global_residual) override;
  std::size_t footprint_bytes() const override;

  // Geometry accessors (owned region, halo excluded).
  int x0() const { return x0_; }
  int y0() const { return y0_; }
  int nx() const { return x1_ - x0_; }
  int ny() const { return y1_ - y0_; }
  int iteration() const { return iter_; }
  const StencilLayout& layout() const { return layout_; }

 protected:
  /// Values along `side` of the owned region, innermost first:
  /// west/east sides return ny() values (one per row), north/south nx().
  virtual std::vector<double> edge_values(Side side) const = 0;

  /// Applies one stencil update; `ghosts[side]` is the neighbour's edge
  /// (empty when the block touches the global boundary on that side).
  virtual void apply_update(
      const std::array<std::vector<double>, 4>& ghosts) = 0;

  /// Bytes of numerical state, used for migration cost. Defaults to one
  /// grid of doubles; Wave2D overrides (two time levels).
  virtual std::size_t state_bytes() const;

  /// This block's contribution to the global residual reduction (only
  /// consulted when layout().residual_period > 0).
  virtual double local_residual() const { return 0.0; }

 private:
  void send_ghosts();
  void maybe_trigger_compute();
  void proceed_to_next_iteration();

  StencilLayout layout_;
  int bx_, by_;
  int x0_, x1_, y0_, y1_;
  std::array<ChareId, 4> neighbor_;  ///< -1 where the global boundary is
  int expected_ghosts_ = 0;
  int iter_ = 0;
  bool compute_pending_ = false;
  bool awaiting_reduction_ = false;
  /// Ghosts buffered per iteration (at most two iterations deep in flight).
  std::map<int, std::array<std::vector<double>, 4>> ghosts_;
  std::map<int, int> ghost_count_;
};

/// Deterministic initial condition used by the stencil apps and their
/// serial references: a smooth mode plus an off-centre Gaussian bump.
double stencil_initial_value(int i, int j, int grid_x, int grid_y);

}  // namespace cloudlb

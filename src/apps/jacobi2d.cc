#include "apps/jacobi2d.h"

#include <cmath>

#include "util/check.h"

namespace cloudlb {

Jacobi2dChare::Jacobi2dChare(const Jacobi2dConfig& config, int bx, int by)
    : StencilBlockChare(config.layout, bx, by) {
  u_.resize(static_cast<std::size_t>(nx()) * static_cast<std::size_t>(ny()));
  scratch_ = u_;
  for (int gy = y0(); gy < y0() + ny(); ++gy)
    for (int gx = x0(); gx < x0() + nx(); ++gx)
      at(gx, gy) = stencil_initial_value(gx, gy, layout().grid_x,
                                         layout().grid_y);
}

double& Jacobi2dChare::at(int gx, int gy) {
  return u_[static_cast<std::size_t>(gy - y0()) *
                static_cast<std::size_t>(nx()) +
            static_cast<std::size_t>(gx - x0())];
}

double Jacobi2dChare::at(int gx, int gy) const {
  return u_[static_cast<std::size_t>(gy - y0()) *
                static_cast<std::size_t>(nx()) +
            static_cast<std::size_t>(gx - x0())];
}

std::vector<double> Jacobi2dChare::block_values() const { return u_; }

std::vector<double> Jacobi2dChare::edge_values(Side side) const {
  std::vector<double> out;
  switch (side) {
    case kWest:
      out.reserve(static_cast<std::size_t>(ny()));
      for (int gy = y0(); gy < y0() + ny(); ++gy) out.push_back(at(x0(), gy));
      break;
    case kEast:
      out.reserve(static_cast<std::size_t>(ny()));
      for (int gy = y0(); gy < y0() + ny(); ++gy)
        out.push_back(at(x0() + nx() - 1, gy));
      break;
    case kNorth:
      out.reserve(static_cast<std::size_t>(nx()));
      for (int gx = x0(); gx < x0() + nx(); ++gx) out.push_back(at(gx, y0()));
      break;
    case kSouth:
      out.reserve(static_cast<std::size_t>(nx()));
      for (int gx = x0(); gx < x0() + nx(); ++gx)
        out.push_back(at(gx, y0() + ny() - 1));
      break;
  }
  return out;
}

void Jacobi2dChare::apply_update(
    const std::array<std::vector<double>, 4>& ghosts) {
  const int gx_max = layout().grid_x - 1;
  const int gy_max = layout().grid_y - 1;
  auto value = [&](int gx, int gy) -> double {
    if (gx < x0()) return ghosts[kWest][static_cast<std::size_t>(gy - y0())];
    if (gx >= x0() + nx())
      return ghosts[kEast][static_cast<std::size_t>(gy - y0())];
    if (gy < y0()) return ghosts[kNorth][static_cast<std::size_t>(gx - x0())];
    if (gy >= y0() + ny())
      return ghosts[kSouth][static_cast<std::size_t>(gx - x0())];
    return at(gx, gy);
  };

  double residual = 0.0;
  for (int gy = y0(); gy < y0() + ny(); ++gy) {
    for (int gx = x0(); gx < x0() + nx(); ++gx) {
      const std::size_t idx =
          static_cast<std::size_t>(gy - y0()) * static_cast<std::size_t>(nx()) +
          static_cast<std::size_t>(gx - x0());
      if (gx == 0 || gx == gx_max || gy == 0 || gy == gy_max) {
        scratch_[idx] = at(gx, gy);  // Dirichlet boundary: held fixed
      } else {
        scratch_[idx] = 0.25 * (value(gx - 1, gy) + value(gx + 1, gy) +
                                value(gx, gy - 1) + value(gx, gy + 1));
        residual += std::abs(scratch_[idx] - u_[idx]);
      }
    }
  }
  residual_ = residual;
  u_.swap(scratch_);
}

void populate_jacobi2d(RuntimeJob& job, const Jacobi2dConfig& config) {
  config.layout.validate();
  for (int by = 0; by < config.layout.blocks_y; ++by)
    for (int bx = 0; bx < config.layout.blocks_x; ++bx) {
      // Ghost exchange routes by the computed block id `by*blocks_x + bx`
      // (stencil_base.cc), which only matches what add_chare hands back
      // when the job starts empty; a pre-seeded job would cross-deliver
      // every ghost message, so fail loudly instead.
      const ChareId id =
          job.add_chare(std::make_unique<Jacobi2dChare>(config, bx, by));
      CLB_CHECK_MSG(
          id == static_cast<ChareId>(by * config.layout.blocks_x + bx),
          "populate_jacobi2d requires an empty job: block (" << bx << ','
              << by << ") was assigned chare id " << id);
    }
}

std::vector<double> jacobi2d_reference(const Jacobi2dConfig& config) {
  const StencilLayout& l = config.layout;
  l.validate();
  const auto w = static_cast<std::size_t>(l.grid_x);
  std::vector<double> u(w * static_cast<std::size_t>(l.grid_y));
  for (int gy = 0; gy < l.grid_y; ++gy)
    for (int gx = 0; gx < l.grid_x; ++gx)
      u[static_cast<std::size_t>(gy) * w + static_cast<std::size_t>(gx)] =
          stencil_initial_value(gx, gy, l.grid_x, l.grid_y);

  std::vector<double> next = u;
  for (int it = 0; it < l.iterations; ++it) {
    for (int gy = 1; gy < l.grid_y - 1; ++gy) {
      for (int gx = 1; gx < l.grid_x - 1; ++gx) {
        const std::size_t i =
            static_cast<std::size_t>(gy) * w + static_cast<std::size_t>(gx);
        next[i] = 0.25 * (u[i - 1] + u[i + 1] + u[i - w] + u[i + w]);
      }
    }
    u.swap(next);
  }
  return u;
}

}  // namespace cloudlb

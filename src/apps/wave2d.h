#pragma once

#include <vector>

#include "apps/stencil_base.h"
#include "runtime/job.h"

namespace cloudlb {

/// Configuration for Wave2D, the tightly coupled 5-point stencil the paper
/// uses both as a measured application and as the interfering background
/// job: a second-order wave equation on a 2D membrane.
struct Wave2dConfig {
  StencilLayout layout;
  /// Courant number c·Δt/Δx; must stay below 1/√2 for stability.
  double courant = 0.5;
};

/// One block of the Wave2D membrane. Keeps two time levels and advances
///   u⁺ = 2u − u⁻ + C²·(∇²u)
/// with the global boundary clamped to zero.
class Wave2dChare final : public StencilBlockChare {
 public:
  Wave2dChare(const Wave2dConfig& config, int bx, int by);

  /// Current-time-level values of the owned block, row-major.
  std::vector<double> block_values() const;

 protected:
  std::vector<double> edge_values(Side side) const override;
  void apply_update(const std::array<std::vector<double>, 4>& ghosts) override;
  std::size_t state_bytes() const override;

 private:
  double cur(int gx, int gy) const;
  std::size_t index(int gx, int gy) const;

  double c2_;  ///< Courant number squared
  std::vector<double> u_prev_, u_cur_, scratch_;
};

/// Adds one Wave2dChare per block to `job`, in row-major block order.
void populate_wave2d(RuntimeJob& job, const Wave2dConfig& config);

/// Serial reference: the full grid after `iterations` leapfrog steps.
std::vector<double> wave2d_reference(const Wave2dConfig& config);

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/job.h"

namespace cloudlb {

/// Names of the bundled applications: "jacobi2d", "wave2d", "mol3d".
std::vector<std::string> app_names();

/// High-level knob set used by the scenario runner and the benches to
/// instantiate any of the three applications with evaluation-scale
/// defaults (sized so the 4–32-core sweeps of the paper's Figure 2 run in
/// seconds of virtual time).
struct AppSpec {
  std::string name = "jacobi2d";
  /// 0 keeps the per-app default iteration count.
  int iterations = 0;
  /// Multiplies the app's per-unit compute cost (problem "heaviness").
  double work_scale = 1.0;
  /// Seed for apps with stochastic setup (Mol3D's particles).
  std::uint64_t seed = 7;

  /// Overrides the stencil block grid (chare count = x·y); 0 keeps the
  /// app default (32×16 = 512 chares). Ignored by Mol3D, whose chare
  /// count is its cell grid.
  int blocks_x = 0;
  int blocks_y = 0;
};

/// Adds the chares of the requested application to `job`.
/// Throws CheckFailure for unknown names.
void populate_app(RuntimeJob& job, const AppSpec& spec);

}  // namespace cloudlb

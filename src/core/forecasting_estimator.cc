#include "core/forecasting_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cloudlb {

namespace {

/// Shared per-PE error tracking: an EWMA of the absolute one-step-ahead
/// prediction error, which is what the confidence band reports. Scaling
/// the band linearly with the horizon is deliberately conservative —
/// extrapolation error compounds at least that fast on trending series.
class ErrorTracker {
 public:
  explicit ErrorTracker(double alpha) : alpha_{alpha} {}

  void reset(std::size_t n) { err_.assign(n, 0.0); }
  std::size_t size() const { return err_.size(); }

  /// Folds in this window's |observed - predicted| for PE p.
  void observe(std::size_t p, double abs_error) {
    err_[p] = alpha_ * abs_error + (1.0 - alpha_) * err_[p];
  }

  double band(std::size_t p, double horizon) const {
    return err_[p] * horizon;
  }

 private:
  double alpha_;
  std::vector<double> err_;
};

/// Exponentially weighted level, flat forecast: Ô ← α·x + (1−α)·Ô. The
/// cloud-noise workhorse — it cannot anticipate a ramp, but it stops the
/// balancer whipsawing after bursty tenants (half the fig3 pathology).
class EwmaForecaster final : public ForecastingEstimator {
 public:
  explicit EwmaForecaster(double alpha) : alpha_{alpha}, errors_{alpha} {}

  std::string name() const override { return "ewma"; }

  Forecast step(const std::vector<double>& observed,
                double horizon) override {
    const std::size_t n = observed.size();
    if (level_.size() != n) {  // first window or topology change: reseed
      level_ = observed;
      errors_.reset(n);
    } else {
      for (std::size_t p = 0; p < n; ++p) {
        errors_.observe(p, std::abs(observed[p] - level_[p]));
        level_[p] = alpha_ * observed[p] + (1.0 - alpha_) * level_[p];
      }
    }
    Forecast f;
    f.predicted = level_;  // flat: the level is the forecast at any horizon
    f.band.resize(n);
    for (std::size_t p = 0; p < n; ++p) f.band[p] = errors_.band(p, horizon);
    return f;
  }

 private:
  double alpha_;
  std::vector<double> level_;
  ErrorTracker errors_;
};

/// Holt-style double exponential smoothing: a level plus a velocity,
/// extrapolated linearly. This is RUPER-LB's velocity correction — the
/// estimator that sees interference *rising* and hands refinement the
/// level it will reach next window, not the level it had last window.
class TrendForecaster final : public ForecastingEstimator {
 public:
  explicit TrendForecaster(double alpha) : alpha_{alpha}, errors_{alpha} {}

  std::string name() const override { return "trend"; }

  Forecast step(const std::vector<double>& observed,
                double horizon) override {
    const std::size_t n = observed.size();
    if (level_.size() != n) {
      level_ = observed;
      velocity_.assign(n, 0.0);
      errors_.reset(n);
    } else {
      for (std::size_t p = 0; p < n; ++p) {
        const double one_step = level_[p] + velocity_[p];
        errors_.observe(p, std::abs(observed[p] - one_step));
        const double new_level =
            alpha_ * observed[p] + (1.0 - alpha_) * one_step;
        velocity_[p] = alpha_ * (new_level - level_[p]) +
                       (1.0 - alpha_) * velocity_[p];
        level_[p] = new_level;
      }
    }
    Forecast f;
    f.predicted.resize(n);
    f.band.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      f.predicted[p] = level_[p] + horizon * velocity_[p];
      f.band[p] = errors_.band(p, horizon);
    }
    return f;
  }

 private:
  double alpha_;
  std::vector<double> level_;
  std::vector<double> velocity_;
  ErrorTracker errors_;
};

/// Windowed least squares: fit a line through the last `window` clamped
/// observations and read it off at t + horizon. Heavier than Holt but
/// immune to its slow velocity decay after a spike ends — old windows
/// leave the fit entirely instead of lingering exponentially.
class RegressForecaster final : public ForecastingEstimator {
 public:
  RegressForecaster(int window, double alpha)
      : window_{static_cast<std::size_t>(window)}, errors_{alpha} {}

  std::string name() const override { return "regress"; }

  Forecast step(const std::vector<double>& observed,
                double horizon) override {
    const std::size_t n = observed.size();
    if (history_.size() != n) {
      history_.assign(n, {});
      errors_.reset(n);
    }
    Forecast f;
    f.predicted.resize(n);
    f.band.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      auto& h = history_[p];
      if (!h.empty())
        errors_.observe(p, std::abs(observed[p] - extrapolate(h, 1.0)));
      h.push_back(observed[p]);
      if (h.size() > window_) h.erase(h.begin());  // tiny window; O(w) is fine
      f.predicted[p] = extrapolate(h, horizon);
      f.band[p] = errors_.band(p, horizon);
    }
    return f;
  }

 private:
  /// Least-squares line through h (x = 0..m-1, oldest first), evaluated
  /// at x = m-1+horizon. Fewer than 2 points: persistence.
  static double extrapolate(const std::vector<double>& h, double horizon) {
    const std::size_t m = h.size();
    if (m < 2) return h.empty() ? 0.0 : h.back();
    // Closed-form simple regression with x = 0..m-1: x̄ = (m-1)/2 and
    // Σ(x-x̄)² = m(m²-1)/12 are exact, so only Σ(x-x̄)·y needs the data.
    const double mean_x = 0.5 * static_cast<double>(m - 1);
    double mean_y = 0.0;
    for (double y : h) mean_y += y;
    mean_y /= static_cast<double>(m);
    double sxy = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      sxy += (static_cast<double>(i) - mean_x) * (h[i] - mean_y);
    const double sxx =
        static_cast<double>(m) *
        (static_cast<double>(m) * static_cast<double>(m) - 1.0) / 12.0;
    const double slope = sxy / sxx;
    const double x = static_cast<double>(m - 1) + horizon;
    return mean_y + slope * (x - mean_x);
  }

  std::size_t window_;
  std::vector<std::vector<double>> history_;  ///< per PE, oldest first
  ErrorTracker errors_;
};

}  // namespace

std::unique_ptr<ForecastingEstimator> make_forecasting_estimator(
    const LbRobustnessOptions& options) {
  CLB_CHECK_MSG(
      options.forecast_alpha > 0.0 && options.forecast_alpha <= 1.0,
      "forecast alpha must be in (0, 1]; got " << options.forecast_alpha);
  CLB_CHECK_MSG(options.forecast_horizon > 0.0,
                "forecast horizon must be positive; got "
                    << options.forecast_horizon);
  CLB_CHECK_MSG(options.forecast_margin >= 0.0,
                "forecast margin must be non-negative; got "
                    << options.forecast_margin);
  switch (options.estimator_mode) {
    case EstimatorMode::kPersist:
      return nullptr;
    case EstimatorMode::kEwma:
      return std::make_unique<EwmaForecaster>(options.forecast_alpha);
    case EstimatorMode::kTrend:
      return std::make_unique<TrendForecaster>(options.forecast_alpha);
    case EstimatorMode::kRegress:
      CLB_CHECK_MSG(options.forecast_window >= 2,
                    "regression window needs at least 2 samples; got "
                        << options.forecast_window);
      return std::make_unique<RegressForecaster>(options.forecast_window,
                                                 options.forecast_alpha);
  }
  CLB_CHECK_MSG(false, "unhandled estimator mode");
  return nullptr;
}

EstimatorMode estimator_mode_from_name(const std::string& name) {
  if (name == "persist") return EstimatorMode::kPersist;
  if (name == "ewma") return EstimatorMode::kEwma;
  if (name == "trend") return EstimatorMode::kTrend;
  if (name == "regress") return EstimatorMode::kRegress;
  CLB_CHECK_MSG(false, "unknown estimator mode '"
                           << name
                           << "'; expected persist|ewma|trend|regress");
  return EstimatorMode::kPersist;
}

std::string estimator_mode_name(EstimatorMode mode) {
  switch (mode) {
    case EstimatorMode::kPersist:
      return "persist";
    case EstimatorMode::kEwma:
      return "ewma";
    case EstimatorMode::kTrend:
      return "trend";
    case EstimatorMode::kRegress:
      return "regress";
  }
  return "persist";
}

ProactiveBackgroundEstimator::ProactiveBackgroundEstimator(
    const LbRobustnessOptions& options)
    : options_{options},
      forecaster_{make_forecasting_estimator(options)} {
  if (options_.estimator_window > 0)
    windowed_ = std::make_unique<WindowedBackgroundEstimator>(
        options_.estimator_window, options_.estimator_clamp_factor);
}

std::vector<double> ProactiveBackgroundEstimator::estimate(
    const LbStats& stats) {
  // Clamp first: the forecaster must learn the trend of the *clamped*
  // series, or a one-window glitch would both command a migration and
  // poison the velocity for windows afterwards.
  std::vector<double> observed = windowed_ != nullptr
                                     ? windowed_->estimate(stats)
                                     : estimate_background_load(stats);
  if (forecaster_ == nullptr) return observed;  // persist: the paper's path

  // Score the forecast this window was balanced against, before the
  // forecaster sees the new observation. A topology change (size
  // mismatch) voids the old forecast rather than counting it wrong.
  last_mispredicted_ = false;
  if (last_predicted_.size() == observed.size()) {
    for (std::size_t p = 0; p < observed.size(); ++p) {
      const double tolerance =
          last_band_[p] + wall_slack(std::max(stats.pes[p].wall_sec, 0.0));
      if (std::abs(observed[p] - last_predicted_[p]) > tolerance) {
        last_mispredicted_ = true;
        break;
      }
    }
    if (last_mispredicted_) ++mispredicted_;
  }

  Forecast f = forecaster_->step(observed, options_.forecast_horizon);
  last_predicted_ = f.predicted;
  last_band_ = f.band;

  std::vector<double> out(observed.size());
  for (std::size_t p = 0; p < out.size(); ++p) {
    const double wall = std::max(stats.pes[p].wall_sec, 0.0);
    // Same physical bound as the Eq. 2 boundary clamp: no co-located VM
    // can consume more than the window, predicted or not.
    out[p] = std::clamp(
        f.predicted[p] + options_.forecast_margin * f.band[p], 0.0, wall);
  }
  return out;
}

}  // namespace cloudlb

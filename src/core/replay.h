#pragma once

#include <vector>

#include "lb/framework.h"
#include "lb/stats_io.h"

namespace cloudlb {

/// One row of an offline replay: how a strategy reacts to one recorded
/// measurement window.
struct ReplayRow {
  int window = 0;
  double max_load_before = 0.0;  ///< app + Eq.-2 background, worst PE
  double max_load_after = 0.0;   ///< ditto under the strategy's mapping
  int migrations = 0;
};

/// Replays recorded windows (see lb/stats_io.h) through `balancer`,
/// reporting per-window makespan proxies. Windows are treated
/// independently, re-based on each one's recorded assignment — matching
/// how the recorded run actually presented them to its own strategy.
///
/// This is the offline strategy-evaluation loop: record one expensive run
/// with RecordingLb, then score any number of candidate balancers against
/// the exact same measured loads.
std::vector<ReplayRow> replay_stats(const std::vector<LbStats>& windows,
                                    LoadBalancer& balancer);

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// Options for the gain-gated strategy.
struct GainGateOptions {
  LbOptions base;

  /// Assumed end-to-end migration cost per byte of chare state
  /// (pack + transfer + unpack). Clouds have slow virtualized networks —
  /// the very concern the paper raises — so the default assumes ~3 ns/B
  /// (≈ 333 MB/s effective).
  double migration_sec_per_byte = 3e-9;

  /// Required ratio of projected gain to migration cost before any
  /// migration is allowed. 1.0 = break-even.
  double gain_threshold = 1.0;

  /// How many future LB windows the improved balance is expected to
  /// persist (the principle of persistence). Migration is a one-time
  /// cost; its benefit recurs every window until the load shifts again,
  /// so the per-window gain is amortized over this horizon.
  double horizon_windows = 10.0;
};

/// The paper's §VI future-work strategy: run the interference-aware
/// refinement *decision* on every LB step, but perform the data migration
/// only when the expected gain offsets its cost.
///
/// Gain is projected as the reduction of the maximum PE load (background
/// included) the refinement achieves — the makespan of a tightly coupled
/// iteration tracks the most loaded core — multiplied by the persistence
/// horizon (the improved balance keeps paying off window after window).
/// Cost is the serialized bytes of every moved chare times an assumed
/// per-byte migration cost. When gain < cost · threshold the step keeps
/// the current mapping.
class MigrationGainGatedLb final : public LoadBalancer {
 public:
  explicit MigrationGainGatedLb(GainGateOptions options)
      : options_{options} {}
  MigrationGainGatedLb() : MigrationGainGatedLb(GainGateOptions{}) {}

  std::string name() const override { return "gain-gated"; }
  std::vector<PeId> assign(const LbStats& stats) override;

  int gated_steps() const { return gated_steps_; }
  int migrating_steps() const { return migrating_steps_; }

 private:
  GainGateOptions options_;
  int gated_steps_ = 0;
  int migrating_steps_ = 0;
};

}  // namespace cloudlb

#include "core/interference_aware_lb.h"

#include "core/background_estimator.h"
#include "lb/refinement.h"

namespace cloudlb {

std::vector<PeId> InterferenceAwareRefineLb::assign(const LbStats& stats) {
  const std::vector<double> background = estimate_background_load(stats);
  RefinementResult result =
      refine_assignment(stats, background, make_refinement_options(options_));
  total_migrations_ += result.migrations;
  return std::move(result.assignment);
}

}  // namespace cloudlb

#include "core/interference_aware_lb.h"

#include "lb/refinement.h"
#include "util/log.h"

namespace cloudlb {

InterferenceAwareRefineLb::InterferenceAwareRefineLb(LbOptions options)
    : options_{options}, estimator_{options.robustness} {}

std::vector<PeId> InterferenceAwareRefineLb::assign(const LbStats& stats) {
  if (options_.robustness.fallback_on_insane_stats && !stats_sane(stats)) {
    // Garbage in, nothing out: the current assignment is the last one a
    // sane window produced, and holding it costs at most one stale window
    // — migrating on corrupted counters can cost the whole run.
    ++garbage_fallbacks_;
    CLB_WARN("ia-refine: insane stats snapshot; keeping the last-good "
             "assignment (fallback #"
             << garbage_fallbacks_ << ")");
    return stats.current_assignment();
  }
  const std::vector<double> background = estimator_.estimate(stats);
  RefinementResult result =
      refine_assignment(stats, background, make_refinement_options(options_));
  total_migrations_ += result.migrations;
  // Whatever this window migrated, it migrated off the back of the
  // previous window's forecast; bill it to the forecaster when that
  // forecast turned out wrong.
  if (estimator_.last_window_mispredicted())
    mispredict_churn_ += result.migrations;
  return std::move(result.assignment);
}

}  // namespace cloudlb

#include "core/scenario.h"

#include <algorithm>
#include <numeric>

#include "apps/wave2d.h"
#include "core/balancer_factory.h"
#include "faults/fault_injector.h"
#include "lb/null_lb.h"
#include "runtime/network.h"
#include "runtime/sharded_runtime.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/validate.h"
#include "vm/virtual_machine.h"

namespace cloudlb {

namespace {

// Hard ceiling on simulator events per run; a healthy evaluation-scale run
// needs well under a million, so hitting this means a livelock bug.
constexpr std::uint64_t kMaxEvents = 200'000'000;

MachineConfig machine_for(const ScenarioConfig& config, int cores_needed) {
  MachineConfig mc = config.machine;
  mc.nodes = (cores_needed + mc.cores_per_node - 1) / mc.cores_per_node;
  return mc;
}

Wave2dConfig background_app_config(const ScenarioConfig& config) {
  const BackgroundJobSpec spec;
  Wave2dConfig wc;
  wc.layout.grid_x = spec.grid_x;
  wc.layout.grid_y = spec.grid_y;
  wc.layout.blocks_x = spec.blocks_x;
  wc.layout.blocks_y = spec.blocks_y;
  wc.layout.sec_per_point = spec.sec_per_point;
  wc.layout.iterations = config.bg_iterations;
  return wc;
}

JobConfig background_job_config(const ScenarioConfig& config) {
  JobConfig jc = config.job;
  jc.name = "bg";
  jc.lb_period = 0;  // the interfering job never balances
  return jc;
}

/// Adapter behind the borrowing run_scenario_with overload: the job owns
/// this shim while the caller keeps the real strategy (and its counters).
class BorrowedBalancer final : public LoadBalancer {
 public:
  explicit BorrowedBalancer(LoadBalancer& inner) : inner_{inner} {}
  std::string name() const override { return inner_.name(); }
  std::vector<PeId> assign(const LbStats& stats) override {
    return inner_.assign(stats);
  }

 private:
  LoadBalancer& inner_;
};

void drive(Simulator& sim, RuntimeJob& primary, RuntimeJob* secondary,
           PowerMeter* meter) {
  while (!primary.finished() ||
         (secondary != nullptr && !secondary->finished())) {
    CLB_CHECK_MSG(sim.step(), "simulation stalled before jobs finished");
    CLB_CHECK_MSG(sim.executed() < kMaxEvents, "event-count ceiling hit");
    if (meter != nullptr && meter->running() && primary.finished())
      meter->stop();
  }
  if (meter != nullptr && meter->running()) meter->stop();
}

/// The shard-partitioned runtime path (config.shards > 1 on a multi-node
/// machine): same experiment, driven by a ShardedRuntimeHost instead of a
/// single Simulator. Construction order mirrors the legacy path step for
/// step so the two produce bit-identical metrics (the differential tier
/// in tests/sharded_runtime_test.cc pins this).
RunResult run_scenario_sharded(const ScenarioConfig& config,
                               std::unique_ptr<LoadBalancer> balancer,
                               TimelineTracer* tracer) {
  // Observers would need a merged in-order event stream, which windows do
  // not provide; the tenant field hangs its burst chains on the single
  // engine. Both are legacy-only until they learn shard discipline.
  CLB_CHECK_MSG(tracer == nullptr,
                "timeline tracing is not supported with --shards > 1");
  CLB_CHECK_MSG(config.tenants == 0,
                "tenant fields are not supported with --shards > 1");

  ValidationScope validation{config.validate || validation_enabled()};

  ShardedRuntimeHost::Config host_config;
  host_config.shards = config.shards;
  host_config.window = shard_window_width(config.job.network);
  host_config.parallel = config.shard_workers > 1;
  host_config.workers = config.shard_workers;
  ShardedRuntimeHost host{machine_for(config, config.app_cores), host_config};
  Machine& machine = host.machine();

  const std::size_t presize =
      1024 + 256 * static_cast<std::size_t>(config.app_cores);
  host.sharded().reserve(presize, presize);

  std::unique_ptr<FaultInjector> faults;
  if (!config.faults.empty()) {
    faults = std::make_unique<FaultInjector>(FaultPlan::parse(config.faults));
    if (!faults->inert())
      host.set_clock_fault_policy(EngineCore::ClockFaultPolicy::kRecover);
  }

  std::vector<CoreId> app_cores(static_cast<std::size_t>(config.app_cores));
  std::iota(app_cores.begin(), app_cores.end(), 0);
  VirtualMachine app_vm{machine, "app", app_cores};

  JobConfig app_job_config = config.job;
  app_job_config.name = config.app.name;
  app_job_config.lb_period = config.lb_period;
  if (faults != nullptr) app_job_config.faults = faults.get();
  RuntimeJob app_job{host, app_vm, app_job_config, std::move(balancer)};
  populate_app(app_job, config.app);

  std::unique_ptr<VirtualMachine> bg_vm;
  std::unique_ptr<RuntimeJob> bg_job;
  if (config.with_background) {
    std::vector<CoreId> bg_cores(static_cast<std::size_t>(config.bg_cores));
    std::iota(bg_cores.begin(), bg_cores.end(), 0);
    bg_vm = std::make_unique<VirtualMachine>(machine, "bg", bg_cores,
                                             config.bg_weight);
    bg_job = std::make_unique<RuntimeJob>(host, *bg_vm,
                                          background_job_config(config),
                                          std::make_unique<NullLb>());
    populate_wave2d(*bg_job, background_app_config(config));
  }

  if (faults != nullptr) {
    faults->install_interference(
        machine, [&host](CoreId core) -> EngineCore& {
          return host.engine_of_core(core);
        });
  }

  // Tickless meter: energy integrates between explicit global instants.
  // The stop instant is the app job's exact finish time, delivered from
  // the finishing global phase — the same instant the legacy drive loop
  // stops its meter at.
  PowerMeter meter{machine, config.power};
  host.set_on_job_finished([&meter, &app_job](RuntimeJob& job) {
    if (&job == &app_job && meter.running()) meter.stop_at(job.finish_time());
  });
  meter.start_at(SimTime::zero());

  app_job.start();
  if (bg_job != nullptr) {
    if (config.bg_start.is_zero()) {
      bg_job->start();
    } else {
      RuntimeJob* bg = bg_job.get();
      host.schedule_action(config.bg_start, [bg] { bg->start(); });
    }
  }

  host.drive(kMaxEvents);
  CLB_CHECK(!meter.running());  // the finish callback must have stopped it

  RunResult result;
  result.app_elapsed = app_job.elapsed();
  if (bg_job != nullptr) result.bg_elapsed = bg_job->elapsed();
  result.energy_joules = meter.energy_joules();
  result.avg_power_watts = meter.average_power_watts();
  result.app_counters = app_job.counters();
  result.lb_migrations = app_job.counters().migrations;
  return result;
}

}  // namespace

double percent_increase(double value, double base) {
  CLB_CHECK(base > 0.0);
  return (value / base - 1.0) * 100.0;
}

RunResult run_scenario(const ScenarioConfig& config, TimelineTracer* tracer) {
  return run_scenario_with(config,
                           make_balancer(config.balancer, config.lb_options),
                           tracer);
}

RunResult run_scenario_with(const ScenarioConfig& config,
                            std::unique_ptr<LoadBalancer> balancer,
                            TimelineTracer* tracer) {
  CLB_CHECK(config.app_cores >= 1);
  CLB_CHECK(!config.with_background || config.bg_cores <= config.app_cores);
  CLB_CHECK(balancer != nullptr);

  // --shards N on a multi-node machine takes the partitioned-runtime
  // path; everything else (including --shards=1, and shard counts that
  // clamp to one on a single-node machine) stays on the legacy engine,
  // bit-identical to earlier releases.
  if (config.shards > 1 &&
      machine_for(config, config.app_cores).nodes > 1) {
    return run_scenario_sharded(config, std::move(balancer), tracer);
  }

  // config.validate widens the process setting for this run only; it
  // never narrows it, so a CLOUDLB_VALIDATE build stays validated.
  ValidationScope validation{config.validate || validation_enabled()};

  Simulator sim;
  // Presize the arena and heap before the first event: steady state holds
  // only a few pending events per core (in-flight messages plus timers),
  // so a generous per-core multiplier removes every mid-run regrow at
  // negligible memory cost (tests/sim_alloc_test.cc pins this).
  const std::size_t presize =
      1024 + 256 * static_cast<std::size_t>(config.app_cores);
  sim.reserve(presize, presize);
  Machine machine{sim, machine_for(config, config.app_cores)};

  std::vector<CoreId> app_cores(static_cast<std::size_t>(config.app_cores));
  std::iota(app_cores.begin(), app_cores.end(), 0);
  VirtualMachine app_vm{machine, "app", app_cores};

  // The fault injector (if any) outlives the jobs that hold a pointer to
  // it. An empty spec never constructs one, so faultless runs take no
  // fault branch anywhere.
  std::unique_ptr<FaultInjector> faults;
  if (!config.faults.empty()) {
    faults = std::make_unique<FaultInjector>(FaultPlan::parse(config.faults));
    // A live fault plan may perturb timestamps; degrade clock-invariant
    // violations to counted recoveries instead of aborting the run. An
    // inert plan keeps the strict policy (and the bit-identical run).
    if (!faults->inert())
      sim.set_clock_fault_policy(Simulator::ClockFaultPolicy::kRecover);
  }

  JobConfig app_job_config = config.job;
  app_job_config.name = config.app.name;
  app_job_config.lb_period = config.lb_period;
  if (faults != nullptr) app_job_config.faults = faults.get();
  RuntimeJob app_job{sim, app_vm, app_job_config, std::move(balancer)};
  populate_app(app_job, config.app);
  if (tracer != nullptr) app_job.set_observer(tracer);

  std::unique_ptr<VirtualMachine> bg_vm;
  std::unique_ptr<RuntimeJob> bg_job;
  if (config.with_background) {
    std::vector<CoreId> bg_cores(static_cast<std::size_t>(config.bg_cores));
    std::iota(bg_cores.begin(), bg_cores.end(), 0);
    bg_vm = std::make_unique<VirtualMachine>(machine, "bg", bg_cores,
                                             config.bg_weight);
    bg_job = std::make_unique<RuntimeJob>(sim, *bg_vm,
                                          background_job_config(config),
                                          std::make_unique<NullLb>());
    populate_wave2d(*bg_job, background_app_config(config));
    if (tracer != nullptr) bg_job->set_observer(tracer);
  }

  std::unique_ptr<TenantField> tenants;
  if (config.tenants > 0) {
    TenantFieldConfig tc = config.tenant_config;
    tc.num_tenants = config.tenants;
    tenants = std::make_unique<TenantField>(sim, machine, tc);
    tenants->start();
  }

  if (faults != nullptr) faults->install_interference(sim, machine);

  PowerMeter meter{sim, machine, config.power};
  meter.start();
  app_job.start();
  if (bg_job != nullptr) {
    if (config.bg_start.is_zero()) {
      bg_job->start();
    } else {
      sim.schedule_at(config.bg_start, [&bg_job] { bg_job->start(); });
    }
  }

  drive(sim, app_job, bg_job.get(), &meter);
  if (tenants != nullptr) tenants->stop();

  RunResult result;
  result.app_elapsed = app_job.elapsed();
  if (bg_job != nullptr) result.bg_elapsed = bg_job->elapsed();
  result.energy_joules = meter.energy_joules();
  result.avg_power_watts = meter.average_power_watts();
  result.app_counters = app_job.counters();
  result.lb_migrations = app_job.counters().migrations;
  return result;
}

RunResult run_scenario_with(const ScenarioConfig& config,
                            LoadBalancer& balancer, TimelineTracer* tracer) {
  return run_scenario_with(config,
                           std::make_unique<BorrowedBalancer>(balancer),
                           tracer);
}

SimTime run_background_solo(const ScenarioConfig& config) {
  Simulator sim;
  // Same cluster shape as the combined run, so BG network locality matches.
  Machine machine{sim, machine_for(config, config.app_cores)};
  std::vector<CoreId> bg_cores(static_cast<std::size_t>(config.bg_cores));
  std::iota(bg_cores.begin(), bg_cores.end(), 0);
  VirtualMachine bg_vm{machine, "bg", bg_cores, config.bg_weight};
  RuntimeJob bg_job{sim, bg_vm, background_job_config(config),
                    std::make_unique<NullLb>()};
  populate_wave2d(bg_job, background_app_config(config));
  bg_job.start();
  drive(sim, bg_job, nullptr, nullptr);
  return bg_job.elapsed();
}

PenaltyResult run_penalty_experiment(const ScenarioConfig& config) {
  PenaltyResult out;

  ScenarioConfig solo = config;
  solo.with_background = false;
  solo.tenants = 0;
  solo.faults.clear();  // the normalization run stays a clean reference
  out.base = run_scenario(solo);

  // "Combined" = the configured interference sources (the 2-core BG job
  // and/or a tenant field); "base" = the same app with neither.
  ScenarioConfig combined = config;
  CLB_CHECK_MSG(combined.with_background || combined.tenants > 0,
                "penalty experiment needs some interference source");
  out.combined = run_scenario(combined);

  out.app_penalty_pct = percent_increase(out.combined.app_elapsed.to_seconds(),
                                         out.base.app_elapsed.to_seconds());
  if (out.combined.bg_elapsed.has_value()) {
    out.bg_solo = run_background_solo(config);
    out.bg_penalty_pct = percent_increase(
        out.combined.bg_elapsed->to_seconds(), out.bg_solo.to_seconds());
  }
  out.energy_overhead_pct =
      percent_increase(out.combined.energy_joules, out.base.energy_joules);
  return out;
}

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// The paper's contribution: refinement load balancing that accounts for
/// VM interference.
///
/// Per LB step it (1) estimates each PE's background load O_p from the LB
/// database and host idle counters (Eq. 2, see estimate_background_load),
/// (2) computes T_avg over application *plus* background load (Eq. 1), and
/// (3) runs the paper's Algorithm 1 refinement so every PE ends within ε
/// of T_avg (Eq. 3) while migrating as few chares as possible — objects
/// move *away from* cores busy serving co-located VMs and return once the
/// interference disappears.
class InterferenceAwareRefineLb final : public LoadBalancer {
 public:
  explicit InterferenceAwareRefineLb(LbOptions options = {})
      : options_{options} {}

  std::string name() const override { return "ia-refine"; }
  std::vector<PeId> assign(const LbStats& stats) override;

  /// Total chares moved across all assign() calls (diagnostics).
  int total_migrations() const { return total_migrations_; }

 private:
  LbOptions options_;
  int total_migrations_ = 0;
};

}  // namespace cloudlb

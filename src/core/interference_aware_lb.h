#pragma once

#include "core/forecasting_estimator.h"
#include "lb/framework.h"

namespace cloudlb {

/// The paper's contribution: refinement load balancing that accounts for
/// VM interference.
///
/// Per LB step it (1) estimates each PE's background load O_p from the LB
/// database and host idle counters (Eq. 2, see estimate_background_load),
/// (2) computes T_avg over application *plus* background load (Eq. 1), and
/// (3) runs the paper's Algorithm 1 refinement so every PE ends within ε
/// of T_avg (Eq. 3) while migrating as few chares as possible — objects
/// move *away from* cores busy serving co-located VMs and return once the
/// interference disappears.
///
/// Degradation (all off by default, see LbRobustnessOptions): when the
/// window's measurements are garbage — corrupted counters, failed reads —
/// the balancer can fall back to the current assignment (the last one a
/// good window produced) rather than migrate on noise, and the background
/// estimate can pass through a median-of-window outlier clamp.
///
/// Proactive mode (estimator_mode != persist): the background estimate is
/// additionally run through a forecasting estimator (EWMA / linear trend /
/// windowed regression, see forecasting_estimator.h) so refinement
/// balances against the *predicted* next-window O_p and migrates before a
/// spike lands instead of one window after it. The default persist mode
/// takes none of these paths and stays byte-identical to the paper.
class InterferenceAwareRefineLb final : public LoadBalancer {
 public:
  explicit InterferenceAwareRefineLb(LbOptions options = {});

  std::string name() const override { return "ia-refine"; }
  std::vector<PeId> assign(const LbStats& stats) override;

  /// Total chares moved across all assign() calls (diagnostics).
  int total_migrations() const { return total_migrations_; }

  /// LB steps skipped because the stats failed the sanity test.
  int garbage_fallbacks() const { return garbage_fallbacks_; }

  /// Windows whose forecast the next observation refuted (0 in persist
  /// mode — persistence never claims to predict).
  int mispredicted_windows() const {
    return estimator_.mispredicted_windows();
  }

  /// Migrations commanded in windows balanced off a forecast the
  /// observation then refuted — the churn bill of bad predictions.
  int mispredict_churn() const { return mispredict_churn_; }

 private:
  LbOptions options_;
  ProactiveBackgroundEstimator estimator_;
  int total_migrations_ = 0;
  int garbage_fallbacks_ = 0;
  int mispredict_churn_ = 0;
};

}  // namespace cloudlb

#pragma once

#include <vector>

#include "core/forecasting_estimator.h"
#include "lb/framework.h"

namespace cloudlb {

/// Interference-aware refinement with a smoothed background estimate.
///
/// The paper's scheme predicts the next window's background load from the
/// last window alone (principle of persistence). Under bursty tenants
/// that estimate whipsaws: an interferer active for half of one window
/// looks like a 50 % tax that may be gone next window, causing migration
/// churn. This variant keeps an exponentially weighted moving average of
/// O_p per PE,
///
///     Ô_p ← α · O_p(window) + (1 − α) · Ô_p,
///
/// and feeds Ô_p into Algorithm 1. α = 1 degenerates to the paper's
/// last-window behaviour; smaller α trades reaction speed for stability.
///
/// The robustness/forecasting layer of LbRobustnessOptions (outlier
/// clamp, proactive estimator modes) applies here too: the composed
/// estimate feeds this class's own EWMA, so e.g. `--estimator=trend`
/// smooths a *predicted* series. The default options change nothing.
class SmoothedInterferenceAwareLb final : public LoadBalancer {
 public:
  struct Options {
    LbOptions base;
    double alpha = 0.5;  ///< EWMA weight of the newest window, in (0, 1]

    /// Optional smoothing of per-chare loads with the same scheme
    /// (1.0 = the paper's last-window persistence). Useful when chare
    /// loads themselves drift, e.g. Mol3D's migrating particles.
    double chare_alpha = 1.0;
  };

  explicit SmoothedInterferenceAwareLb(Options options);
  SmoothedInterferenceAwareLb() : SmoothedInterferenceAwareLb(Options{}) {}

  std::string name() const override { return "ia-refine-ewma"; }
  std::vector<PeId> assign(const LbStats& stats) override;

  /// Current smoothed per-PE estimate (diagnostics/tests).
  const std::vector<double>& smoothed_background() const { return ewma_; }

  /// Current smoothed per-chare loads (empty until the first window, or
  /// always empty when chare_alpha == 1).
  const std::vector<double>& smoothed_chare_loads() const {
    return chare_ewma_;
  }

 private:
  Options options_;
  ProactiveBackgroundEstimator estimator_;
  std::vector<double> ewma_;
  std::vector<double> chare_ewma_;
};

}  // namespace cloudlb

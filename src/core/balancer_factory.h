#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Creates any strategy in the library by name: the baselines ("null",
/// "greedy", "refine", "random") plus the paper's strategies ("ia-refine",
/// "gain-gated"). Throws CheckFailure for unknown names.
std::unique_ptr<LoadBalancer> make_balancer(const std::string& name,
                                            LbOptions options = {});

/// Every name make_balancer accepts.
std::vector<std::string> balancer_names();

}  // namespace cloudlb

#include "core/smoothed_lb.h"

#include "lb/refinement.h"
#include "util/check.h"

namespace cloudlb {

SmoothedInterferenceAwareLb::SmoothedInterferenceAwareLb(Options options)
    : options_{options}, estimator_{options.base.robustness} {
  CLB_CHECK(options.alpha > 0.0 && options.alpha <= 1.0);
  CLB_CHECK(options.chare_alpha > 0.0 && options.chare_alpha <= 1.0);
}

std::vector<PeId> SmoothedInterferenceAwareLb::assign(const LbStats& stats) {
  // With default robustness options this is exactly the raw Eq. 2
  // estimate; with a clamp window or forecasting mode the composed
  // (clamp → forecast) series feeds the EWMA below.
  const std::vector<double> fresh = estimator_.estimate(stats);
  if (ewma_.size() != fresh.size()) {
    ewma_ = fresh;  // first window (or the PE set changed): seed directly
  } else {
    for (std::size_t p = 0; p < fresh.size(); ++p)
      ewma_[p] = options_.alpha * fresh[p] + (1.0 - options_.alpha) * ewma_[p];
  }
  // Optionally smooth the chare loads as well, feeding the refinement a
  // modified copy of the window.
  if (options_.chare_alpha < 1.0) {
    if (chare_ewma_.size() != stats.chares.size()) {
      chare_ewma_.resize(stats.chares.size());
      for (std::size_t c = 0; c < stats.chares.size(); ++c)
        chare_ewma_[c] = stats.chares[c].cpu_sec;
    } else {
      for (std::size_t c = 0; c < stats.chares.size(); ++c)
        chare_ewma_[c] = options_.chare_alpha * stats.chares[c].cpu_sec +
                         (1.0 - options_.chare_alpha) * chare_ewma_[c];
    }
    LbStats smoothed = stats;
    for (std::size_t c = 0; c < smoothed.chares.size(); ++c)
      smoothed.chares[c].cpu_sec = chare_ewma_[c];
    return refine_assignment(smoothed, ewma_,
                             make_refinement_options(options_.base))
        .assignment;
  }

  // Normalize to the current window length: the EWMA mixes windows of
  // (slightly) different wall lengths, which refinement tolerates since
  // loads only matter relative to T_avg.
  return refine_assignment(stats, ewma_, make_refinement_options(options_.base))
      .assignment;
}

}  // namespace cloudlb

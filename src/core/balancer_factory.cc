#include "core/balancer_factory.h"

#include "core/gain_gated_lb.h"
#include "core/smoothed_lb.h"
#include "core/interference_aware_lb.h"
#include "lb/registry.h"
#include "util/check.h"

namespace cloudlb {

std::unique_ptr<LoadBalancer> make_balancer(const std::string& name,
                                            LbOptions options) {
  if (name == "ia-refine")
    return std::make_unique<InterferenceAwareRefineLb>(options);
  if (name == "gain-gated") {
    GainGateOptions gg;
    gg.base = options;
    gg.migration_sec_per_byte = options.migration_sec_per_byte_hint;
    return std::make_unique<MigrationGainGatedLb>(gg);
  }
  if (name == "ia-refine-ewma") {
    SmoothedInterferenceAwareLb::Options so;
    so.base = options;
    return std::make_unique<SmoothedInterferenceAwareLb>(so);
  }
  auto baseline = make_baseline_balancer(name, options);
  CLB_CHECK_MSG(baseline != nullptr, "unknown balancer: " << name);
  return baseline;
}

std::vector<std::string> balancer_names() {
  auto names = baseline_balancer_names();
  names.push_back("ia-refine");
  names.push_back("ia-refine-ewma");
  names.push_back("gain-gated");
  return names;
}

}  // namespace cloudlb

#include "core/gain_gated_lb.h"

#include <algorithm>

#include "core/background_estimator.h"
#include "lb/refinement.h"

namespace cloudlb {

namespace {

/// Maximum per-PE load (application + background) under `assignment`.
double max_pe_load(const LbStats& stats, const std::vector<double>& background,
                   const std::vector<PeId>& assignment) {
  std::vector<double> load(background);
  for (std::size_t c = 0; c < stats.chares.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

std::vector<PeId> MigrationGainGatedLb::assign(const LbStats& stats) {
  const std::vector<double> background = estimate_background_load(stats);
  RefinementResult refined =
      refine_assignment(stats, background, make_refinement_options(options_.base));

  const std::vector<PeId> current = stats.current_assignment();
  if (refined.migrations == 0) return current;

  // The engine reports the refined max load directly; only the pre-move
  // makespan still needs recomputing.
  const double gain =
      (max_pe_load(stats, background, current) - refined.max_load) *
      options_.horizon_windows;

  double cost = 0.0;
  for (std::size_t c = 0; c < current.size(); ++c)
    if (refined.assignment[c] != current[c])
      cost += options_.migration_sec_per_byte *
              static_cast<double>(stats.chares[c].bytes);

  if (gain < cost * options_.gain_threshold) {
    ++gated_steps_;
    return current;
  }
  ++migrating_steps_;
  return std::move(refined.assignment);
}

}  // namespace cloudlb

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apps/app_factory.h"
#include "lb/framework.h"
#include "machine/machine.h"
#include "machine/power.h"
#include "metrics/timeline.h"
#include "vm/tenant.h"
#include "runtime/job.h"
#include "util/sim_time.h"

namespace cloudlb {

/// Full description of one cloud experiment: an application job on P
/// cores of a virtualized cluster, optionally disturbed by the paper's
/// fixed background job (a small Wave2D on two of those cores), balanced
/// by a named strategy.
struct ScenarioConfig {
  AppSpec app;
  int app_cores = 4;

  /// Cluster shape; `nodes` is ignored and derived from app_cores (quad
  /// cores per node by default, like the testbed).
  MachineConfig machine;

  /// Shard count for the partitioned runtime (docs/sharded-engine.md).
  /// <= 1 — the default — takes the legacy single-engine path, bit-identical
  /// to earlier releases. With N > 1 the cluster's nodes are block-
  /// partitioned into min(N, nodes) shards, each with its own event engine
  /// and per-shard LB-database segment; compute phases run as conservative
  /// windows (width = the network's min_internode_delay) and collective
  /// phases (AtSync barriers, reductions, broadcasts) run serialized in
  /// canonical global order. Results are bit-identical to the legacy
  /// engine for every shard count (pinned by tests/sharded_runtime_test.cc).
  int shards = 1;

  /// Worker-team size for parallel shard windows. <= 1 runs windows
  /// serially on the driving thread (same trace either way — the merge
  /// order is canonical); only meaningful when shards > 1.
  int shard_workers = 0;

  /// Strategy name accepted by make_balancer ("null" = the paper's noLB).
  std::string balancer = "ia-refine";
  LbOptions lb_options;
  int lb_period = 5;   ///< iterations between AtSync barriers
  JobConfig job;       ///< runtime template (network, migration costs)

  // Background (interfering) job: a 2-core Wave2D, identical across runs,
  // pinned to the first bg_cores cores of the application's allocation.
  bool with_background = true;
  int bg_cores = 2;
  double bg_weight = 1.0;  ///< OS share of the BG VM (>1 models BG favouring)
  int bg_iterations = 240;
  SimTime bg_start;  ///< when the interfering job begins (default: t = 0)

  // Public-cloud mode (the paper's §VI outlook): in addition to — or
  // instead of — the fixed 2-core background job, a field of bursty
  // single-vCPU tenant VMs on random cores. 0 disables it.
  int tenants = 0;
  TenantFieldConfig tenant_config;

  /// Fault-injection spec (see docs/fault-injection.md), e.g.
  /// "spike(core=2,start=0.5,duration=1);drop(prob=0.1);seed(value=42)".
  /// Empty — the default — injects nothing and leaves the run bit-identical
  /// to a faultless build. Penalty experiments keep their base/solo runs
  /// clean so faults only perturb the combined run.
  std::string faults;

  /// Enables deep invariant validation (util/validate.h) for the duration
  /// of this run: heap/arena audits, per-LB-step assignment audits, Eq. 1
  /// conservation, monotone trace checks. Validators only observe, so a
  /// validated run is bit-identical to an unvalidated one — just slower.
  bool validate = false;

  PowerModelConfig power;
};

/// Everything one simulated run yields.
struct RunResult {
  SimTime app_elapsed;
  std::optional<SimTime> bg_elapsed;  ///< set when a background job ran
  double energy_joules = 0.0;         ///< over the application's window
  double avg_power_watts = 0.0;       ///< ditto
  RuntimeJob::Counters app_counters;
  int lb_migrations = 0;  ///< convenience copy of app_counters.migrations
};

/// Runs one experiment to completion (both jobs). If `tracer` is given it
/// observes both jobs, enabling Figure-1/3-style timelines.
RunResult run_scenario(const ScenarioConfig& config,
                       TimelineTracer* tracer = nullptr);

/// Same, but with a caller-supplied application balancer instead of the
/// name in `config.balancer` — the hook for custom strategies (see
/// examples/custom_balancer.cpp).
RunResult run_scenario_with(const ScenarioConfig& config,
                            std::unique_ptr<LoadBalancer> balancer,
                            TimelineTracer* tracer = nullptr);

/// Same, but borrowing the balancer: the caller keeps ownership (it must
/// outlive the call) and can query strategy-specific diagnostics — e.g.
/// InterferenceAwareRefineLb::garbage_fallbacks() — after the run, which
/// the owning overload destroys with the job before returning.
RunResult run_scenario_with(const ScenarioConfig& config,
                            LoadBalancer& balancer,
                            TimelineTracer* tracer = nullptr);

/// Runs only the scenario's background job on an otherwise empty machine
/// (the BG baseline the paper's "BG timing penalty" divides by).
SimTime run_background_solo(const ScenarioConfig& config);

/// The paper's primary measurement (Figures 2 and 4): the same
/// application with and without interference, plus the BG solo baseline.
struct PenaltyResult {
  RunResult base;      ///< app alone (normalization run)
  RunResult combined;  ///< app + the configured interference
  SimTime bg_solo;     ///< background job alone (zero in tenants-only mode)

  double app_penalty_pct = 0.0;      ///< extra app time from interference, %
  double bg_penalty_pct = 0.0;       ///< extra BG time from the app, %
                                     ///< (0 in tenants-only mode)
  double energy_overhead_pct = 0.0;  ///< extra energy vs. the base run, %
};

PenaltyResult run_penalty_experiment(const ScenarioConfig& config);

/// Percentage increase of `value` over `base` ((value/base − 1)·100).
double percent_increase(double value, double base);

/// The Wave2D configuration used for the background job (exposed so tests
/// and ablations can reason about its size).
struct BackgroundJobSpec {
  int grid_x = 128;
  int grid_y = 128;
  int blocks_x = 4;
  int blocks_y = 2;
  double sec_per_point = 5e-6;
};

}  // namespace cloudlb

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/background_estimator.h"
#include "lb/framework.h"

namespace cloudlb {

/// One-window-ahead forecast of the per-PE background series.
struct Forecast {
  /// Predicted O_p per PE, `horizon` windows ahead of the newest
  /// observation. Extrapolation may leave [0, T_lb]; the consumer clamps
  /// (ProactiveBackgroundEstimator does) because only it knows T_lb.
  std::vector<double> predicted;

  /// One-sided confidence half-width per PE — an online estimate of the
  /// forecaster's own one-step error on this series, scaled to the
  /// horizon. Zero until the forecaster has seen enough windows to have
  /// made a checkable prediction.
  std::vector<double> band;
};

/// A forecasting estimator ingests the per-PE background series (the
/// paper's Eq. 2 values, already through the outlier clamp when one is
/// configured — clamp first, forecast on the clamped series) one LB
/// window at a time and predicts where each PE's O_p will be `horizon`
/// windows ahead.
///
/// The paper's principle of persistence predicts the next window from the
/// last one; under dynamic-arrival interference (fig3, the fault
/// waveforms) that is exactly one window too late — the balancer always
/// chases the spike instead of anticipating it. These estimators follow
/// the trend of the series instead ("On the Benefits of Anticipating
/// Load Imbalance", Boulmier et al.; RUPER-LB's velocity correction).
///
/// Contract: deterministic, state only from the observations fed in, and
/// a PE-count change resets all per-PE state (topology changed; stale
/// levels/velocities must not survive it).
class ForecastingEstimator {
 public:
  virtual ~ForecastingEstimator() = default;
  virtual std::string name() const = 0;

  /// Ingests the newest per-PE observation and returns the forecast
  /// `horizon` windows ahead (same shape as `observed`).
  virtual Forecast step(const std::vector<double>& observed,
                        double horizon) = 0;
};

/// Factory for the mode picked in LbRobustnessOptions. kPersist returns
/// nullptr — persistence is the *absence* of a forecasting layer, so the
/// default path stays byte-identical to the paper's scheme.
std::unique_ptr<ForecastingEstimator> make_forecasting_estimator(
    const LbRobustnessOptions& options);

/// CLI-name round trip for EstimatorMode ("persist", "ewma", "trend",
/// "regress"). from_name throws CheckFailure listing the valid names.
EstimatorMode estimator_mode_from_name(const std::string& name);
std::string estimator_mode_name(EstimatorMode mode);

/// The composed estimator front-end the interference-aware balancers use:
///
///     Eq. 2  →  [median-of-window outlier clamp]  →  [forecaster]
///
/// In the default configuration (persist mode, no clamp window) this is
/// exactly `estimate_background_load` — same calls, same values, pinned
/// byte-identical by the golden trace digest. With a clamp window the
/// clamp runs first so a one-window measurement glitch cannot poison the
/// forecaster's trend state; with a forecasting mode the balancer plans
/// against `predicted + margin · band`, clamped into [0, T_lb].
///
/// The front-end also keeps the books on its own mistakes: a window whose
/// observation lands outside the previous forecast's confidence band
/// (plus the wall-slack tolerance) counts as mispredicted, which the
/// balancer uses to attribute migration churn to bad forecasts.
class ProactiveBackgroundEstimator {
 public:
  explicit ProactiveBackgroundEstimator(const LbRobustnessOptions& options);

  /// Per-PE background loads to balance against (shape of stats.pes).
  std::vector<double> estimate(const LbStats& stats);

  /// True when a forecasting mode (anything but persist) is active.
  bool forecasting() const { return forecaster_ != nullptr; }

  /// Estimates capped by the outlier clamp so far; 0 without a window.
  int clamped_count() const {
    return windowed_ != nullptr ? windowed_->clamped_count() : 0;
  }

  /// Windows whose observation fell outside the previous forecast's
  /// confidence band. Always 0 in persist mode (nothing predicts).
  int mispredicted_windows() const { return mispredicted_; }

  /// Whether the newest estimate() call found the previous forecast
  /// wrong — i.e. whatever the balancer does *this* window, it does off
  /// the back of a misprediction.
  bool last_window_mispredicted() const { return last_mispredicted_; }

 private:
  LbRobustnessOptions options_;
  std::unique_ptr<WindowedBackgroundEstimator> windowed_;
  std::unique_ptr<ForecastingEstimator> forecaster_;
  std::vector<double> last_predicted_;  ///< forecast made for this window
  std::vector<double> last_band_;
  int mispredicted_ = 0;
  bool last_mispredicted_ = false;
};

}  // namespace cloudlb

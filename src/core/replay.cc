#include "core/replay.h"

#include <algorithm>

#include "core/background_estimator.h"
#include "util/check.h"

namespace cloudlb {

namespace {

double max_load(const LbStats& stats, const std::vector<PeId>& assignment,
                const std::vector<double>& background) {
  std::vector<double> load = background;
  for (std::size_t c = 0; c < assignment.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return load.empty() ? 0.0 : *std::max_element(load.begin(), load.end());
}

}  // namespace

std::vector<ReplayRow> replay_stats(const std::vector<LbStats>& windows,
                                    LoadBalancer& balancer) {
  std::vector<ReplayRow> rows;
  rows.reserve(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const LbStats& stats = windows[w];
    const std::vector<double> background = estimate_background_load(stats);
    const std::vector<PeId> before = stats.current_assignment();
    const std::vector<PeId> after = balancer.assign(stats);
    CLB_CHECK_MSG(after.size() == before.size(),
                  "balancer returned a mapping of the wrong size");

    ReplayRow row;
    row.window = static_cast<int>(w);
    row.max_load_before = max_load(stats, before, background);
    row.max_load_after = max_load(stats, after, background);
    for (std::size_t c = 0; c < before.size(); ++c)
      if (before[c] != after[c]) ++row.migrations;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cloudlb

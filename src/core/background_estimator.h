#pragma once

#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Estimates each PE's background (interfering) load over the last LB
/// window — the paper's Eq. 2:
///
///     O_p = T_lb − Σ_i t_p_i − t_p_idle
///
/// where T_lb is the wall-clock window, Σ t_p_i the CPU consumed by the
/// application's own tasks (from the LB database) and t_idle the *physical
/// core's* idle time over the window (the `/proc/stat` reading). Whatever
/// wall time is neither the application computing nor the core idling must
/// have been spent running somebody else — the co-located VM.
///
/// The estimate also absorbs runtime overheads (message handling,
/// migration pack/unpack) exactly as the paper's implementation does; it is
/// clamped at zero since measurement jitter can drive it slightly negative.
std::vector<double> estimate_background_load(const LbStats& stats);

/// Single-PE version of Eq. 2 (exposed for tests and tooling).
double estimate_background_load(const PeSample& pe);

}  // namespace cloudlb

#pragma once

#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Estimates each PE's background (interfering) load over the last LB
/// window — the paper's Eq. 2:
///
///     O_p = T_lb − Σ_i t_p_i − t_p_idle
///
/// where T_lb is the wall-clock window, Σ t_p_i the CPU consumed by the
/// application's own tasks (from the LB database) and t_idle the *physical
/// core's* idle time over the window (the `/proc/stat` reading). Whatever
/// wall time is neither the application computing nor the core idling must
/// have been spent running somebody else — the co-located VM.
///
/// The estimate also absorbs runtime overheads (message handling,
/// migration pack/unpack) exactly as the paper's implementation does; it is
/// clamped into [0, T_lb] at the estimate boundary: measurement jitter can
/// drive the Eq. 2 subtraction slightly negative, and a corrupted counter
/// (e.g. a finite-but-negative idle reading) would otherwise explode it
/// past the window length and poison T_avg for every PE.
std::vector<double> estimate_background_load(const LbStats& stats);

/// Single-PE version of Eq. 2 (exposed for tests and tooling).
double estimate_background_load(const PeSample& pe);

/// Whether one PE sample is physically plausible: every field finite and
/// non-negative, and neither idle nor task time exceeding the wall-clock
/// window (beyond a small jitter tolerance). Corrupted host counters and
/// failed /proc/stat-style reads fail this test.
bool pe_sample_sane(const PeSample& pe);

/// True when every PE sample of the snapshot is sane — the gate
/// InterferenceAwareRefineLb's garbage fallback keys on.
bool stats_sane(const LbStats& stats);

/// Tolerance for "a duration exceeds the wall window": an absolute floor
/// for tiny windows plus a relative allowance for clock jitter and jiffy
/// rounding. The single source of the wall-slack fraction — the sanity
/// gate, the windowed clamp ceiling, and the forecast mispredict test all
/// share it so the tolerances cannot drift apart.
double wall_slack(double wall_sec);

/// Median of a small sample (by copy; windows are a handful of entries).
/// Even-sized samples average the two middle elements — returning either
/// middle alone would bias the clamp ceiling by half an element.
double median_of(std::vector<double> samples);

/// Eq. 2 with windowed outlier rejection (a median-of-window clamp).
///
/// Keeps the last `window` raw estimates per PE and caps each new one at
///
///     clamp_factor · median(window) + wall_slack(T_lb)
///
/// so a one-window measurement glitch (dropped sample, corrupted counter,
/// interference alias) cannot command a migration storm, while a genuine
/// sustained rise feeds the window, shifts the median, and passes through
/// within ~window/2 LB steps. Raw values enter the history (never the
/// clamped ones) so the clamp cannot latch itself shut. Non-finite raw
/// estimates cannot occur (the boundary clamp rejects them) but a PE
/// count change resets the history.
class WindowedBackgroundEstimator {
 public:
  WindowedBackgroundEstimator(int window, double clamp_factor);

  /// Per-PE clamped estimates; same shape as estimate_background_load.
  std::vector<double> estimate(const LbStats& stats);

  /// Estimates capped by the clamp so far (diagnostics/tests). Cumulative
  /// over the estimator's lifetime: a PE-count change resets the history
  /// rings but never this counter.
  int clamped_count() const { return clamped_; }

 private:
  int window_;
  double clamp_factor_;
  std::vector<std::vector<double>> history_;  ///< per PE, ring of raws
  std::vector<std::size_t> next_;             ///< per-PE ring cursor
  int clamped_ = 0;
};

}  // namespace cloudlb

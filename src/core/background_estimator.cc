#include "core/background_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace cloudlb {

namespace {

/// A corrupt sample field (e.g. wall_sec = NaN from a failed /proc/stat
/// style read) must not reach Eq. 2: NaN/Inf would propagate into T_avg
/// and poison the whole balance decision. Treat non-finite fields as 0.
double finite_or_zero(double v, const char* field, PeId pe) {
  if (std::isfinite(v)) return v;
  CLB_WARN("background estimator: PE " << pe << " sample has non-finite "
                                       << field << " (" << v
                                       << "); treating as 0");
  return 0.0;
}

}  // namespace

double estimate_background_load(const PeSample& pe) {
  const double wall = finite_or_zero(pe.wall_sec, "wall_sec", pe.pe);
  const double task = finite_or_zero(pe.task_cpu_sec, "task_cpu_sec", pe.pe);
  const double idle = finite_or_zero(pe.core_idle_sec, "core_idle_sec", pe.pe);
  const double o_p = wall - task - idle;
  return std::max(o_p, 0.0);
}

std::vector<double> estimate_background_load(const LbStats& stats) {
  std::vector<double> out;
  out.reserve(stats.pes.size());
  for (const PeSample& pe : stats.pes) out.push_back(estimate_background_load(pe));
  return out;
}

}  // namespace cloudlb

#include "core/background_estimator.h"

#include <algorithm>

namespace cloudlb {

double estimate_background_load(const PeSample& pe) {
  const double o_p = pe.wall_sec - pe.task_cpu_sec - pe.core_idle_sec;
  return std::max(o_p, 0.0);
}

std::vector<double> estimate_background_load(const LbStats& stats) {
  std::vector<double> out;
  out.reserve(stats.pes.size());
  for (const PeSample& pe : stats.pes) out.push_back(estimate_background_load(pe));
  return out;
}

}  // namespace cloudlb

#include "core/background_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/log.h"

namespace cloudlb {

namespace {

/// A corrupt sample field (e.g. wall_sec = NaN from a failed /proc/stat
/// style read) must not reach Eq. 2: NaN/Inf would propagate into T_avg
/// and poison the whole balance decision. Treat non-finite fields as 0.
double finite_or_zero(double v, const char* field, PeId pe) {
  if (std::isfinite(v)) return v;
  CLB_WARN("background estimator: PE " << pe << " sample has non-finite "
                                       << field << " (" << v
                                       << "); treating as 0");
  return 0.0;
}

/// The relative wall-slack allowance. Keep this the only `0.05` in the
/// estimator: every consumer goes through wall_slack(), so the sanity
/// gate and the clamp ceiling cannot drift apart (the determinism
/// linter's float-literal rule pins the bare-literal form).
constexpr double kWallSlackFraction = 0.05;

}  // namespace

double wall_slack(double wall_sec) {
  return 1e-9 + kWallSlackFraction * wall_sec;
}

double median_of(std::vector<double> v) {
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 != 0) return v[mid];
  // Even sample: nth_element left the upper middle at v[mid] and
  // everything not greater before it, so the lower middle is the max of
  // the left partition. Averaging the two keeps the clamp ceiling
  // unbiased for even windows.
  const double lower =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + v[mid]);
}

double estimate_background_load(const PeSample& pe) {
  const double wall = finite_or_zero(pe.wall_sec, "wall_sec", pe.pe);
  const double task = finite_or_zero(pe.task_cpu_sec, "task_cpu_sec", pe.pe);
  const double idle = finite_or_zero(pe.core_idle_sec, "core_idle_sec", pe.pe);
  const double o_p = wall - task - idle;
  // Clamp at the estimate boundary, not just per field: a finite-but-
  // negative idle or task reading (clock jitter, corrupted counter) makes
  // the Eq. 2 subtraction exceed the window — yet no co-located VM can
  // have consumed more than the window itself.
  return std::clamp(o_p, 0.0, std::max(wall, 0.0));
}

std::vector<double> estimate_background_load(const LbStats& stats) {
  std::vector<double> out;
  out.reserve(stats.pes.size());
  for (const PeSample& pe : stats.pes) out.push_back(estimate_background_load(pe));
  return out;
}

bool pe_sample_sane(const PeSample& pe) {
  if (!std::isfinite(pe.wall_sec) || !std::isfinite(pe.core_idle_sec) ||
      !std::isfinite(pe.task_cpu_sec))
    return false;
  if (pe.wall_sec < 0.0 || pe.core_idle_sec < 0.0 || pe.task_cpu_sec < 0.0)
    return false;
  const double slack = wall_slack(pe.wall_sec);
  return pe.core_idle_sec <= pe.wall_sec + slack &&
         pe.task_cpu_sec <= pe.wall_sec + slack;
}

bool stats_sane(const LbStats& stats) {
  return std::all_of(stats.pes.begin(), stats.pes.end(), pe_sample_sane);
}

WindowedBackgroundEstimator::WindowedBackgroundEstimator(int window,
                                                         double clamp_factor)
    : window_{window}, clamp_factor_{clamp_factor} {
  CLB_CHECK_MSG(window >= 3, "outlier window needs at least 3 samples");
  CLB_CHECK(clamp_factor >= 1.0);
}

std::vector<double> WindowedBackgroundEstimator::estimate(
    const LbStats& stats) {
  if (history_.size() != stats.pes.size()) {
    history_.assign(stats.pes.size(), {});
    next_.assign(stats.pes.size(), 0);
  }
  std::vector<double> out;
  out.reserve(stats.pes.size());
  for (std::size_t p = 0; p < stats.pes.size(); ++p) {
    const double raw = estimate_background_load(stats.pes[p]);
    double value = raw;
    auto& ring = history_[p];
    if (ring.size() >= 3) {
      // The slack term keeps the ceiling open when the median is zero (a
      // previously quiet core), so genuine new interference ramps in at a
      // bounded rate per window instead of being suppressed forever.
      const double ceiling =
          clamp_factor_ * median_of(ring) +
          wall_slack(std::max(stats.pes[p].wall_sec, 0.0));
      if (raw > ceiling) {
        value = ceiling;
        ++clamped_;
        CLB_DEBUG("windowed estimator: PE " << stats.pes[p].pe
                                            << " O_p clamped " << raw
                                            << " -> " << value);
      }
    }
    if (ring.size() < static_cast<std::size_t>(window_)) {
      ring.push_back(raw);
    } else {
      ring[next_[p]] = raw;
      next_[p] = (next_[p] + 1) % static_cast<std::size_t>(window_);
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/sim_time.h"

namespace cloudlb {

/// Handle to a scheduled event, usable for cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

/// Deterministic discrete-event simulator.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO tie-break by sequence number), so a scenario is bit-reproducible
/// across runs and platforms. Single-threaded by design: the parallelism
/// being studied lives *inside* the simulated machine, not in the host.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time. Starts at zero.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + delay (delay must be >= 0).
  EventHandle schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or inert handle is a no-op; returns whether something was cancelled.
  bool cancel(EventHandle h);

  /// Executes the next pending event. Returns false if none remain.
  bool step();

  /// Runs until the event queue drains.
  void run();

  /// Runs all events with timestamp <= `t`, then sets the clock to `t`.
  void run_until(SimTime t);

  /// Number of events scheduled but not yet fired or cancelled.
  std::size_t pending() const { return callbacks_.size(); }

  /// Heap entries currently held, including stale (cancelled) ones waiting
  /// to be skipped or compacted away. Bounded at < 2·pending() + a small
  /// floor even under adversarial schedule/cancel churn.
  std::size_t queue_size() const { return queue_.size(); }

  /// Total events executed so far (monitoring / benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const QueueEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Min-heap (std::*_heap with operator>) over queue_; manual layout so
  // cancellation can compact stale entries in place, which a
  // std::priority_queue cannot.
  void push_entry(const QueueEntry& e);
  void pop_entry();
  void compact_queue();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<QueueEntry> queue_;
  std::size_t stale_ = 0;  ///< cancelled entries still sitting in queue_
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace cloudlb

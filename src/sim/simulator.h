#pragma once

#include "sim/engine_core.h"

namespace cloudlb {

/// Deterministic discrete-event simulator.
///
/// Events scheduled for the same timestamp execute in scheduling order
/// (FIFO tie-break by sequence number), so a scenario is bit-reproducible
/// across runs and platforms. Single-threaded by design: the parallelism
/// being studied lives *inside* the simulated machine, not in the host —
/// host-level parallelism runs whole independent Simulators side by side
/// (util/thread_pool.h, bench::ParallelGrid) or shards one scenario
/// across EngineCores behind ShardedSimulator (docs/sharded-engine.md).
///
/// The whole mechanism — slot arena, 4-ary heap, lazy cancellation, trace
/// hook, clock-fault policy — lives in EngineCore (sim/engine_core.h);
/// Simulator is that core with a public, single-engine identity. The split
/// exists so ShardedSimulator can own N cores without N copies of the
/// machinery, while every single-threaded caller keeps this name.
class Simulator final : public EngineCore {};

}  // namespace cloudlb

#pragma once

#include "sim/engine_core.h"
#include "util/sim_time.h"

namespace cloudlb {

/// Seam between the runtime's message plane and the sharded engine's
/// windowed delivery protocol (docs/sharded-engine.md).
///
/// The runtime never schedules a cross-shard delivery directly: when a
/// router is installed (JobConfig::router), every message or migration
/// transfer between machine nodes on *different shards* is handed here
/// instead of going to EngineCore::schedule_at, and the router releases
/// it at a conservative window barrier in canonical channel-merge order.
/// Traffic within a node or between co-sharded nodes keeps the direct
/// path — its ordering is already owned by one shard. A null router
/// (the default everywhere) leaves the legacy direct path bit-identical.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// True when traffic between these machine nodes crosses a shard
  /// boundary and must go through windowed channel delivery.
  [[nodiscard]] virtual bool crosses_shards(int src_node,
                                            int dst_node) const = 0;

  /// Buffers one cross-shard delivery for release at the next window
  /// barrier. Only legal when crosses_shards(src_node, dst_node), and
  /// `deliver_at` must not precede that barrier — guaranteed whenever the
  /// delivery delay is at least the window width (min_internode_delay),
  /// which the network model's latency floor provides.
  virtual void route(int src_node, int dst_node, SimTime deliver_at,
                     EngineCore::Callback cb) = 0;
};

}  // namespace cloudlb

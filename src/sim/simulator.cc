#include "sim/simulator.h"

#include <algorithm>

#include "util/check.h"

namespace cloudlb {

void Simulator::compact_queue() {
  std::erase_if(queue_, [this](const QueueEntry& e) {
    return slots_[e.slot].gen != e.gen;
  });
  // Re-establish the 4-ary heap: sift down every internal node, deepest
  // first (the classic Floyd build, just with fan-out 4).
  if (queue_.size() > 1)
    for (std::size_t i = (queue_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  stale_ = 0;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  if (t < now_) {
    // Normally API misuse — but after fault_advance_clock the caller's
    // target can legitimately lag the perturbed clock. Recover mode treats
    // the call as run_until(now()): drain what is due, never rewind.
    CLB_CHECK_MSG(clock_policy_ == ClockFaultPolicy::kRecover,
                  "run_until(" << t.to_string()
                               << ") is behind the clock ("
                               << now_.to_string() << ")");
    ++clock_recoveries_;
    t = now_;
  }
  while (!queue_.empty()) {
    // Skip stale (cancelled) heads without advancing the clock.
    const QueueEntry entry = queue_.front();
    if (slots_[entry.slot].gen != entry.gen) {
      pop_entry();
      if (stale_ > 0) --stale_;
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  // The loop exits only with an empty queue or a live head strictly past
  // `t` — events executed above may have scheduled more work at times
  // <= t (e.g. schedule_at(now())), and all of it must have run before
  // the clock is allowed to jump. Guard the invariant so a future engine
  // change can never move now() past an unexecuted pending event. Under
  // kRecover the stragglers are executed (late, clamped to the clock)
  // instead of aborting the run.
  while (!queue_.empty() && slots_[queue_.front().slot].gen ==
                                queue_.front().gen &&
         queue_.front().time <= t) {
    CLB_CHECK_MSG(clock_policy_ == ClockFaultPolicy::kRecover,
                  "run_until would advance the clock past a pending event");
    step();
  }
  now_ = t;
}

}  // namespace cloudlb

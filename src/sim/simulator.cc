#include "sim/simulator.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace cloudlb {

namespace {

// Below this size, compaction is not worth the pass: lazily skipping a
// handful of stale heads is cheaper than rebuilding the heap.
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

void Simulator::push_entry(const QueueEntry& e) {
  queue_.push_back(e);
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulator::pop_entry() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  queue_.pop_back();
}

void Simulator::compact_queue() {
  std::erase_if(queue_, [this](const QueueEntry& e) {
    return !callbacks_.contains(e.id);
  });
  std::make_heap(queue_.begin(), queue_.end(), std::greater<>{});
  stale_ = 0;
}

EventHandle Simulator::schedule_at(SimTime t, Callback cb) {
  CLB_CHECK_MSG(t >= now_, "event scheduled in the past: t="
                               << t.to_string() << " now=" << now_.to_string());
  CLB_CHECK(cb != nullptr);
  const std::uint64_t id = next_seq_++;
  push_entry(QueueEntry{t, id, id});
  callbacks_.emplace(id, std::move(cb));
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback cb) {
  CLB_CHECK(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (callbacks_.erase(h.id_) == 0) return false;
  // The queue entry is normally skipped lazily when popped, but repeated
  // schedule/cancel cycles (re-armed periodic timers) would then grow the
  // queue without bound: compact once stale entries outnumber live ones.
  ++stale_;
  if (queue_.size() > kCompactionFloor && stale_ * 2 > queue_.size())
    compact_queue();
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.front();
    pop_entry();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) {  // cancelled
      if (stale_ > 0) --stale_;
      continue;
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  CLB_CHECK(t >= now_);
  while (!queue_.empty()) {
    // Skip stale (cancelled) heads without advancing the clock.
    const QueueEntry entry = queue_.front();
    if (!callbacks_.contains(entry.id)) {
      pop_entry();
      if (stale_ > 0) --stale_;
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace cloudlb

#include "sim/simulator.h"

#include "util/check.h"

namespace cloudlb {

EventHandle Simulator::schedule_at(SimTime t, Callback cb) {
  CLB_CHECK_MSG(t >= now_, "event scheduled in the past: t="
                               << t.to_string() << " now=" << now_.to_string());
  CLB_CHECK(cb != nullptr);
  const std::uint64_t id = next_seq_++;
  queue_.push(QueueEntry{t, id, id});
  callbacks_.emplace(id, std::move(cb));
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback cb) {
  CLB_CHECK(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return callbacks_.erase(h.id_) > 0;
  // The queue entry stays behind and is skipped lazily when popped.
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  CLB_CHECK(t >= now_);
  while (!queue_.empty()) {
    // Skip stale (cancelled) heads without advancing the clock.
    const QueueEntry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace cloudlb

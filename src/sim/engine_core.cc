#include "sim/engine_core.h"

#include <algorithm>

#include "util/check.h"

namespace cloudlb {

void EngineCore::compact_queue() {
  std::erase_if(queue_, [this](const QueueEntry& e) {
    return slots_[e.slot].gen != e.gen;
  });
  // Re-establish the 4-ary heap: sift down every internal node, deepest
  // first (the classic Floyd build, just with fan-out 4).
  if (queue_.size() > 1)
    for (std::size_t i = (queue_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  stale_ = 0;
  if (validation_enabled()) validate_integrity();
}

void EngineCore::validate_integrity() const {
  // Heap property: no parent orders after any of its four children.
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const std::size_t parent = (i - 1) >> 2;
    CLB_CHECK_MSG(!(queue_[parent] > queue_[i]),
                  "heap property violated at entry " << i << " (parent "
                                                     << parent << ")");
  }

  // Free-list shape: every link in range, no cycles, callbacks cleared.
  std::vector<char> on_free_list(slots_.size(), 0);
  std::size_t free_count = 0;
  for (std::uint32_t s = free_head_; s != kNoSlot; s = slots_[s].next_free) {
    CLB_CHECK_MSG(s < slots_.size(), "free-list link out of range: " << s);
    CLB_CHECK_MSG(!on_free_list[s], "free-list cycle through slot " << s);
    CLB_CHECK_MSG(slots_[s].cb == nullptr,
                  "free slot " << s << " still holds a callback");
    on_free_list[s] = 1;
    ++free_count;
  }
  CLB_CHECK_MSG(free_count + live_ == slots_.size(),
                "arena accounting broken: " << free_count << " free + "
                                            << live_ << " live != "
                                            << slots_.size() << " slots");

  // Generation consistency: an entry whose generation matches its slot is
  // the slot's one live occupancy — the slot must be off the free list,
  // hold a callback, and be referenced by exactly one such entry. Every
  // other entry is stale, and stale_ must account for all of them.
  std::vector<char> seen_live(slots_.size(), 0);
  std::size_t live_entries = 0;
  for (const QueueEntry& e : queue_) {
    CLB_CHECK_MSG(e.slot < slots_.size(),
                  "queue entry references slot " << e.slot
                                                 << " out of range");
    if (slots_[e.slot].gen != e.gen) continue;  // stale, skipped lazily
    CLB_CHECK_MSG(!on_free_list[e.slot],
                  "live queue entry references freed slot " << e.slot);
    CLB_CHECK_MSG(slots_[e.slot].cb != nullptr,
                  "live queue entry references empty slot " << e.slot);
    CLB_CHECK_MSG(!seen_live[e.slot],
                  "slot " << e.slot << " referenced by two live entries");
    seen_live[e.slot] = 1;
    ++live_entries;
  }
  CLB_CHECK_MSG(live_entries == live_,
                "live-entry count " << live_entries
                                    << " disagrees with live_ " << live_);
  CLB_CHECK_MSG(queue_.size() - live_entries == stale_,
                "stale accounting broken: " << queue_.size() - live_entries
                                            << " stale entries, counter "
                                            << stale_);
}

void EngineCore::run() {
  while (step()) {
  }
  if (validation_enabled()) validate_integrity();
}

void EngineCore::run_until(SimTime t) {
  if (t < now_) {
    // Normally API misuse — but after fault_advance_clock the caller's
    // target can legitimately lag the perturbed clock. Recover mode treats
    // the call as run_until(now()): drain what is due, never rewind.
    CLB_CHECK_MSG(clock_policy_ == ClockFaultPolicy::kRecover,
                  "run_until(" << t.to_string()
                               << ") is behind the clock ("
                               << now_.to_string() << ")");
    ++clock_recoveries_;
    t = now_;
  }
  while (!queue_.empty()) {
    // Skip stale (cancelled) heads without advancing the clock.
    const QueueEntry entry = queue_.front();
    if (slots_[entry.slot].gen != entry.gen) {
      drop_stale_head();
      continue;
    }
    if (entry.time > t) break;
    // The head is live and due, so step() must execute it.
    CLB_CHECK(step());
  }
  // The loop exits only with an empty queue or a live head strictly past
  // `t` — events executed above may have scheduled more work at times
  // <= t (e.g. schedule_at(now())), and all of it must have run before
  // the clock is allowed to jump. Guard the invariant so a future engine
  // change can never move now() past an unexecuted pending event. Under
  // kRecover the stragglers are executed (late, clamped to the clock)
  // instead of aborting the run.
  while (!queue_.empty() && slots_[queue_.front().slot].gen ==
                                queue_.front().gen &&
         queue_.front().time <= t) {
    CLB_CHECK_MSG(clock_policy_ == ClockFaultPolicy::kRecover,
                  "run_until would advance the clock past a pending event");
    CLB_CHECK(step());
  }
  now_ = t;
  if (validation_enabled()) validate_integrity();
}

void EngineCore::run_before(SimTime t) {
  CLB_CHECK_MSG(t >= now_, "run_before(" << t.to_string()
                                         << ") is behind the clock ("
                                         << now_.to_string() << ")");
  for (;;) {
    const std::optional<SimTime> next = next_live_time();
    if (!next || *next >= t) break;
    // The head is live and strictly inside the window; step() must run it.
    CLB_CHECK(step());
  }
  now_ = t;
  if (validation_enabled()) validate_integrity();
}

}  // namespace cloudlb

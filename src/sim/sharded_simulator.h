#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "sim/engine_core.h"
#include "sim/shard_router.h"
#include "util/shard_annotations.h"
#include "util/sim_time.h"

namespace cloudlb {

class WorkerTeam;

/// Handle to an event scheduled on one shard of a ShardedSimulator. On top
/// of the slot/generation pair it stamps the owning shard, because a bare
/// EventHandle presented to the wrong shard's arena could silently cancel
/// an unrelated event whose slot/generation happen to collide. Cross-shard
/// cancellation is therefore refused loudly at runtime (CLB_CHECK) and
/// flagged statically by analyzer-stale-handle.
class ShardEventHandle {
 public:
  ShardEventHandle() = default;
  [[nodiscard]] bool valid() const { return inner_.valid(); }
  /// Owning shard index; -1 for an inert handle.
  [[nodiscard]] int shard() const { return shard_; }

 private:
  friend class ShardedSimulator;
  ShardEventHandle(EventHandle inner, int shard)
      : inner_{inner}, shard_{static_cast<std::int32_t>(shard)} {}
  EventHandle inner_;
  std::int32_t shard_ = -1;
};

/// One buffered cross-shard delivery — the unit of the channel merge.
/// `seq` is a per-source channel counter, so (deliver, src, seq) is a
/// total order and the merge at a window barrier is deterministic: every
/// run, for every worker count, injects the same envelopes in the same
/// order.
struct ShardEnvelope {
  SimTime deliver;
  /// Source clock at post() time — injected as the event's send stamp so
  /// the destination's same-time ordering is by send instant, exactly as
  /// if the sender had scheduled directly on a single shared engine.
  SimTime sent;
  /// Sender event's rank (EngineCore::current_rank) — injected with the
  /// stamp so burst continuations keep their chare-index ordering across
  /// the channel when time and stamp both tie.
  std::uint64_t rank = 0;
  std::uint64_t seq = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  EngineCore::Callback cb;
};

/// Canonical channel-merge order: (deliver time, source, source seq).
[[nodiscard]] inline bool shard_envelope_before(const ShardEnvelope& a,
                                                const ShardEnvelope& b) {
  if (a.deliver != b.deliver) return a.deliver < b.deliver;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

/// N shared-nothing event engines advanced in conservative lock-step time
/// windows (docs/sharded-engine.md).
///
/// Each shard owns a private EngineCore — its own slot arena, 4-ary heap
/// and clock — and executes one window [W, W+L) at a time, where the
/// lookahead L is a lower bound on every cross-shard delivery latency
/// (min_internode_delay for the machine model's network). Because no
/// message sent inside a window can arrive before the window ends, shards
/// never interact mid-window: cross-shard sends buffer into per-source
/// ordered mailboxes and are exchanged at the window barrier, merged by
/// (time, src-shard, seq) and injected into the destination engines in
/// that canonical order. Within a window shards run concurrently on a
/// persistent WorkerTeam (Config::parallel) or sequentially in shard
/// order — the two modes produce identical execution traces, which is
/// what makes the parallel mode testable against a serial oracle.
///
/// Contract: during a window, a callback may only touch its own shard
/// (schedule, cancel, post from itself); the shared-nothing rule is
/// enforced with CLB_CHECK against the owning worker thread. Between
/// windows (setup, or from the driving thread) any shard is accessible.
class ShardedSimulator {
 public:
  using Callback = EngineCore::Callback;

  /// Observes every executed event as (time, shard, per-shard sequence
  /// number) in canonical merge order — the deterministic interleaving of
  /// the per-shard traces. With one shard this is exactly the legacy
  /// engine's (time, seq) trace.
  using TraceHook = std::function<void(SimTime, int, std::uint64_t)>;

  struct Config {
    int shards = 1;
    /// Window width = cross-shard lookahead. Must be positive and must
    /// lower-bound every cross-shard post latency (enforced per post).
    SimTime lookahead = SimTime::micros(60);
    /// Execute windows on a persistent worker team instead of the calling
    /// thread. Trace-identical to serial execution by construction.
    bool parallel = false;
    /// Worker count for parallel mode; <= 0 picks min(shards,
    /// hardware_jobs()). Shards are dealt round-robin to workers.
    int workers = 0;
  };

  explicit ShardedSimulator(const Config& config);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(states_.size()); }
  [[nodiscard]] SimTime lookahead() const { return config_.lookahead; }
  [[nodiscard]] bool parallel() const { return team_ != nullptr; }
  /// Workers actually executing windows (1 in serial mode).
  [[nodiscard]] int workers() const;

  /// Global window clock: the last barrier passed. Shard clocks advance
  /// inside [now(), now()+lookahead) during a window and all meet at the
  /// next barrier.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` on `shard` at absolute time `t`. During a window only
  /// the shard's owning worker may call this (shared-nothing contract).
  CLB_SHARD_CONFINED ShardEventHandle schedule_at(int shard, SimTime t,
                                                  Callback cb);

  /// Schedules `cb` on `shard` at that shard's now() + delay.
  CLB_SHARD_CONFINED ShardEventHandle schedule_after(int shard, SimTime delay,
                                                     Callback cb);

  /// Cancels a pending event on its owning shard. During a window the
  /// caller must own that shard: presenting another shard's handle is the
  /// cross-shard misuse this handle type exists to catch, and fails a
  /// CLB_CHECK rather than corrupting the foreign arena.
  [[nodiscard]] CLB_SHARD_CONFINED bool cancel(const ShardEventHandle& h);

  /// Cross-shard send: delivers `cb` on shard `dst` at src's now() +
  /// latency. Cross-shard posts require latency >= lookahead() — the
  /// conservative-window safety condition — and buffer into the src
  /// mailbox until the next barrier; a post to the own shard (src == dst)
  /// schedules directly with no latency floor, like same-node traffic.
  CLB_SHARD_CONFINED void post(int src, int dst, SimTime latency, Callback cb);

  /// Presize hints forwarded to every shard (EngineCore::reserve).
  CLB_BARRIER_PHASE void reserve(std::size_t events_per_shard,
                                 std::size_t slots_per_shard);

  /// Runs windows until every shard and mailbox drains.
  void run();

  /// Runs every event with timestamp <= `t`, then advances all clocks to
  /// `t`. Cross-shard messages still in flight past `t` stay buffered for
  /// a later run()/run_until().
  CLB_BARRIER_PHASE void run_until(SimTime t);

  // --- Externally driven execution (the sharded runtime host). The
  // methods below let a driver interleave conservative windows with
  // serialized global phases: run_one_window advances one window at a
  // time so the driver can do barrier bookkeeping between windows, and
  // step_global executes events one at a time in canonical global
  // (time, shard, seq) order — shards stay mutually consistent because
  // only the driving thread runs, outside any window, where the
  // shared-nothing restriction is deliberately lifted.

  /// Flushes pending cross-shard mail, then reports the earliest live
  /// event across all shards (nullopt when fully drained).
  [[nodiscard]] std::optional<SimTime> next_event_time();

  /// Runs exactly one exclusive window [now(), end), where end is the
  /// canonical window boundary after the earliest pending event, clipped
  /// to `cap` if that comes first. Advances the barrier clock to end,
  /// emits the merged trace, and returns end. Requires a pending event
  /// strictly before end (call next_event_time() first; if an external
  /// action is due at or before the earliest event, run it instead).
  SimTime run_one_window(std::optional<SimTime> cap);

  /// Executes the single globally earliest event — min over shards of
  /// (next event time, shard) — on the driving thread, emits its trace
  /// record immediately (global order makes per-event emission already
  /// canonical), and returns its time; nullopt when drained. This is the
  /// serialized mode the runtime's global phases (LB barrier cascades,
  /// reductions, finish detection) run under: it is exactly a merged
  /// single-engine execution, so cross-shard state reads are safe and
  /// every timestamp is exact.
  CLB_BARRIER_PHASE std::optional<SimTime> step_global();

  /// Barrier recovery (see EngineCore::rewind_clock): rewinds every
  /// shard clock and the barrier clock to `t`, after a window that turned
  /// out to have executed nothing past `t`. Each engine proves the
  /// rewind's legality itself.
  CLB_BARRIER_PHASE void rewind_clocks(SimTime t);

  /// Events executed through step_global (monitoring).
  [[nodiscard]] std::uint64_t global_steps() const { return global_steps_; }

  // The per-event append the installed hook performs runs inside shard
  // execution, hence the shard-confined context on the installer.
  CLB_SHARD_CONFINED void set_trace_hook(TraceHook hook);

  /// Direct access to one shard's engine, for plumbing and monitoring.
  /// Scheduling through it mid-window bypasses the mailbox protocol —
  /// callers inside callbacks should use schedule_at/post instead.
  [[nodiscard]] CLB_SHARD_CONFINED EngineCore& shard_engine(int shard);
  [[nodiscard]] CLB_BARRIER_PHASE const EngineCore& shard_engine(
      int shard) const;

  /// Total events executed across all shards.
  [[nodiscard]] CLB_BARRIER_PHASE std::uint64_t executed() const;
  /// Pending events across all shards plus undelivered mailbox envelopes.
  [[nodiscard]] CLB_BARRIER_PHASE std::size_t pending() const;
  /// Cross-shard envelopes posted so far (monitoring).
  [[nodiscard]] std::uint64_t cross_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }
  /// Cross-shard envelopes injected at barriers so far. Equals
  /// cross_posts() whenever no envelope is still buffered — the
  /// no-message-lost conservation the property tests pin.
  [[nodiscard]] std::uint64_t cross_delivered() const {
    return cross_delivered_;
  }
  /// Windows executed so far (monitoring / window-width sensitivity).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }

  /// Deep audit of every shard engine (EngineCore::validate_integrity).
  CLB_BARRIER_PHASE void validate_integrity() const;

 private:
  struct CLB_SHARD_CONFINED ShardState {
    EngineCore engine;
    std::vector<ShardEnvelope> outbox;  ///< written only by the owner
    std::uint64_t chan_seq = 0;         ///< per-source channel counter
    /// (time, seq) of events executed this window, in execution order;
    /// drained into the merged trace at the barrier.
    std::vector<std::pair<SimTime, std::uint64_t>> trace;
    /// Worker currently (or last) executing this shard; relaxed atomics
    /// because a *misusing* cross-shard caller reads it concurrently with
    /// the owner's store — the read must be loud, not undefined.
    std::atomic<std::thread::id> owner;
  };

  /// Range-checks `shard` and, inside a window, enforces that the calling
  /// thread owns it.
  // The ownership guard itself runs in the (possibly misusing) caller's
  // shard context.
  CLB_SHARD_CONFINED void check_shard_access(int shard,
                                             const char* what) const;
  [[nodiscard]] CLB_BARRIER_PHASE std::optional<SimTime> earliest_pending();
  CLB_BARRIER_PHASE void flush_mailboxes();
  // Warm-path: one closure per window is handed to WorkerTeam::run_round
  // by FunctionRef (borrowed, never type-erased into an owning wrapper),
  // so driving a round allocates nothing.
  CLB_SHARD_CONFINED CLB_WARM_PATH void run_window(SimTime end,
                                                   bool inclusive);
  CLB_BARRIER_PHASE void emit_trace();
  [[nodiscard]] SimTime window_end_for(SimTime t) const;

  Config config_;
  std::vector<std::unique_ptr<ShardState>> states_;
  std::unique_ptr<WorkerTeam> team_;
  SimTime now_ = SimTime::zero();
  bool in_window_ = false;
  TraceHook trace_;
  std::vector<ShardEnvelope> merge_scratch_;
  struct TraceRecord {
    SimTime time;
    std::int32_t shard;
    std::uint64_t seq;
  };
  std::vector<TraceRecord> trace_scratch_;
  /// Counted from post(), which worker threads call concurrently —
  /// relaxed is enough for a monitoring counter.
  std::atomic<std::uint64_t> cross_posts_{0};
  std::uint64_t cross_delivered_ = 0;
  std::uint64_t windows_run_ = 0;
  std::uint64_t global_steps_ = 0;
};

/// The runtime-facing half of the window protocol, on a single host
/// engine: machine nodes are block-partitioned into shards, and a
/// scenario's cross-shard traffic is buffered into per-source ordered
/// channels released by a lazily scheduled flush event at the next
/// barrier (the next multiple of the window width), injected in the same
/// canonical (deliver, src, seq) merge order ShardedSimulator uses at its
/// barriers. Historically this is what `--shards N` installed behind
/// JobConfig::router; the scenario runtime now runs partitioned for real
/// on ShardedRuntimeHost (src/runtime/sharded_runtime.h, per-shard LB
/// segments and reductions — see docs/sharded-engine.md), so the router
/// remains as the single-engine window shim for tests and for embedders
/// that want windowed ordering without the partitioned runtime. Its
/// digests are pinned by determinism_test, which is why its flush
/// deliberately injects with plain schedule_at (no send stamps).
class WindowedShardRouter final : public ShardRouter {
 public:
  /// `shards` must be in [1, nodes]; node n maps to shard n·shards/nodes
  /// (contiguous near-equal blocks). `window` is the barrier cadence and
  /// must lower-bound every cross-shard delivery delay
  /// (min_internode_delay of the scenario's network).
  WindowedShardRouter(EngineCore& sim, int shards, int nodes, SimTime window);

  [[nodiscard]] int shard_of(int node) const;
  [[nodiscard]] bool crosses_shards(int src_node,
                                    int dst_node) const override {
    return shard_of(src_node) != shard_of(dst_node);
  }
  void route(int src_node, int dst_node, SimTime deliver_at,
             EngineCore::Callback cb) override;

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] SimTime window() const { return window_; }
  /// Envelopes routed / flush barriers executed so far (monitoring).
  [[nodiscard]] std::uint64_t routed() const { return routed_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  /// Envelopes not yet released; 0 once the engine drains.
  [[nodiscard]] std::size_t buffered() const { return buffered_.size(); }

 private:
  /// First barrier strictly after the engine's current time.
  [[nodiscard]] SimTime next_barrier() const;
  void flush();

  EngineCore& sim_;
  int shards_;
  int nodes_;
  SimTime window_;
  std::vector<ShardEnvelope> buffered_;
  std::vector<std::uint64_t> src_seq_;  ///< per-source channel counters
  bool flush_scheduled_ = false;
  std::uint64_t routed_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace cloudlb

#include "sim/sharded_simulator.h"

#include <algorithm>

#include "util/check.h"
#include "util/shard_annotations.h"
#include "util/thread_pool.h"
#include "util/validate.h"

namespace cloudlb {

ShardedSimulator::ShardedSimulator(const Config& config) : config_{config} {
  CLB_CHECK_MSG(config.shards >= 1,
                "shard count must be >= 1, got " << config.shards);
  CLB_CHECK_MSG(config.lookahead > SimTime::zero(),
                "lookahead window must be positive, got "
                    << config.lookahead.to_string());
  states_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s)
    states_.push_back(std::make_unique<ShardState>());
  if (config.parallel) {
    const int cap = config.workers > 0 ? config.workers : hardware_jobs();
    team_ = std::make_unique<WorkerTeam>(
        std::max(1, std::min(cap, config.shards)));
  }
}

ShardedSimulator::~ShardedSimulator() = default;

int ShardedSimulator::workers() const {
  return team_ != nullptr ? team_->workers() : 1;
}

void ShardedSimulator::check_shard_access(int shard, const char* what) const {
  CLB_CHECK_MSG(shard >= 0 && shard < shards(),
                what << " shard out of range: " << shard);
  if (!in_window_) return;  // setup / between-window access is unrestricted
  CLB_CHECK_MSG(
      states_[static_cast<std::size_t>(shard)]->owner.load(
          std::memory_order_relaxed) == std::this_thread::get_id(),
      "shared-nothing contract violated: " << what << " shard " << shard
          << " from a worker that does not own it this window (cross-shard "
             "interaction must go through post())");
}

ShardEventHandle ShardedSimulator::schedule_at(int shard, SimTime t,
                                               Callback cb) {
  check_shard_access(shard, "schedule_at on");
  return ShardEventHandle{
      states_[static_cast<std::size_t>(shard)]->engine.schedule_at(
          t, std::move(cb)),
      shard};
}

ShardEventHandle ShardedSimulator::schedule_after(int shard, SimTime delay,
                                                  Callback cb) {
  check_shard_access(shard, "schedule_after on");
  return ShardEventHandle{
      states_[static_cast<std::size_t>(shard)]->engine.schedule_after(
          delay, std::move(cb)),
      shard};
}

bool ShardedSimulator::cancel(const ShardEventHandle& h) {
  if (!h.valid()) return false;
  check_shard_access(h.shard(), "cancel on");
  return states_[static_cast<std::size_t>(h.shard())]->engine.cancel(
      h.inner_);
}

void ShardedSimulator::post(int src, int dst, SimTime latency, Callback cb) {
  check_shard_access(src, "post from");
  CLB_CHECK_MSG(dst >= 0 && dst < shards(),
                "post to shard out of range: " << dst);
  CLB_CHECK(!latency.is_negative());
  CLB_CHECK(cb != nullptr);
  ShardState& st = *states_[static_cast<std::size_t>(src)];
  if (src == dst) {
    // Shard-local delivery needs no window: the shard owns its own order.
    st.engine.schedule_after(latency, std::move(cb));
    return;
  }
  CLB_CHECK_MSG(
      latency >= config_.lookahead,
      "cross-shard post with latency " << latency.to_string()
          << " below the lookahead window " << config_.lookahead.to_string()
          << ": the conservative-window safety condition would not hold");
  st.outbox.push_back(ShardEnvelope{st.engine.now() + latency,
                                    st.engine.now(), st.engine.current_rank(),
                                    st.chan_seq++, src, dst, std::move(cb)});
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedSimulator::reserve(std::size_t events_per_shard,
                               std::size_t slots_per_shard) {
  for (auto& st : states_)
    st->engine.reserve(events_per_shard, slots_per_shard);
}

std::optional<SimTime> ShardedSimulator::earliest_pending() {
  std::optional<SimTime> earliest;
  for (auto& st : states_) {
    const std::optional<SimTime> next = st->engine.next_live_time();
    if (next && (!earliest || *next < *earliest)) earliest = next;
  }
  return earliest;
}

void ShardedSimulator::flush_mailboxes() {
  merge_scratch_.clear();
  for (auto& st : states_) {
    for (ShardEnvelope& e : st->outbox)
      merge_scratch_.push_back(std::move(e));
    st->outbox.clear();
  }
  if (merge_scratch_.empty()) return;
  // The deterministic merge: (deliver time, src shard, src seq) is a
  // total order, so the destination engines assign their local sequence
  // numbers to injected envelopes identically on every run, for every
  // worker count and execution mode.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            shard_envelope_before);
  for (ShardEnvelope& e : merge_scratch_) {
    CLB_CHECK_MSG(e.deliver >= now_,
                  "cross-shard envelope due " << e.deliver.to_string()
                      << " is behind the barrier " << now_.to_string());
    states_[static_cast<std::size_t>(e.dst)]->engine.schedule_at_ranked(
        e.deliver, e.sent, e.rank, std::move(e.cb));
    ++cross_delivered_;
  }
  merge_scratch_.clear();
}

SimTime ShardedSimulator::window_end_for(SimTime t) const {
  CLB_CHECK(!t.is_negative());
  const std::int64_t w = config_.lookahead.ns();
  return SimTime::nanos((t.ns() / w + 1) * w);
}

void ShardedSimulator::run_window(SimTime end, bool inclusive) {
  ++windows_run_;
  in_window_ = true;
  const auto run_shard = [this, end, inclusive](int s) {
    ShardState& st = *states_[static_cast<std::size_t>(s)];
    st.owner.store(std::this_thread::get_id(), std::memory_order_relaxed);
    if (inclusive) {
      st.engine.run_until(end);
    } else {
      st.engine.run_before(end);
    }
  };
  try {
    if (team_ != nullptr) {
      const int n = shards();
      const int w = team_->workers();
      team_->run_round([&run_shard, n, w](int worker) {
        for (int s = worker; s < n; s += w) run_shard(s);
      });
    } else {
      for (int s = 0; s < shards(); ++s) run_shard(s);
    }
  } catch (...) {
    in_window_ = false;
    throw;
  }
  in_window_ = false;
}

void ShardedSimulator::emit_trace() {
  if (!trace_) return;
  trace_scratch_.clear();
  for (int s = 0; s < shards(); ++s) {
    ShardState& st = *states_[static_cast<std::size_t>(s)];
    for (const auto& [time, seq] : st.trace)
      trace_scratch_.push_back(TraceRecord{time, s, seq});
    st.trace.clear();
  }
  // Same key as the mailbox merge: within a window the per-shard traces
  // interleave by (time, shard, seq), which both modes reproduce exactly.
  std::sort(trace_scratch_.begin(), trace_scratch_.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  for (const TraceRecord& r : trace_scratch_)
    trace_(r.time, static_cast<int>(r.shard), r.seq);
}

void ShardedSimulator::run() {
  for (;;) {
    flush_mailboxes();
    const std::optional<SimTime> next = earliest_pending();
    if (!next) break;
    const SimTime end = window_end_for(*next);
    run_window(end, /*inclusive=*/false);
    now_ = end;
    emit_trace();
  }
  if (validation_enabled()) validate_integrity();
}

void ShardedSimulator::run_until(SimTime t) {
  CLB_CHECK_MSG(t >= now_, "run_until(" << t.to_string()
                               << ") is behind the barrier clock ("
                               << now_.to_string() << ")");
  for (;;) {
    flush_mailboxes();
    const std::optional<SimTime> next = earliest_pending();
    if (!next || *next > t) break;
    const SimTime end = window_end_for(*next);
    if (end <= t) {
      run_window(end, /*inclusive=*/false);
      now_ = end;
    } else {
      // Final partial window, inclusive of t. Safe concurrently: anything
      // posted here delivers >= send + lookahead > t and stays buffered.
      run_window(t, /*inclusive=*/true);
      now_ = t;
    }
    emit_trace();
  }
  // Idle shards may still hold earlier clocks; everyone meets at t.
  for (auto& st : states_)
    if (st->engine.now() < t) st->engine.run_until(t);
  now_ = t;
  if (validation_enabled()) validate_integrity();
}

std::optional<SimTime> ShardedSimulator::next_event_time() {
  flush_mailboxes();
  return earliest_pending();
}

SimTime ShardedSimulator::run_one_window(std::optional<SimTime> cap) {
  flush_mailboxes();
  const std::optional<SimTime> next = earliest_pending();
  CLB_CHECK_MSG(next.has_value(), "run_one_window with no pending event");
  SimTime end = window_end_for(*next);
  if (cap && *cap < end) end = *cap;
  // A clipped window is still conservative (a subset of a legal window);
  // clipping at or before the earliest event would make no progress, and
  // means the driver should have run its external action instead.
  CLB_CHECK_MSG(*next < end, "run_one_window makes no progress: next event "
                                 << next->to_string() << " not before "
                                 << end.to_string());
  run_window(end, /*inclusive=*/false);
  now_ = end;
  emit_trace();
  return end;
}

std::optional<SimTime> ShardedSimulator::step_global() {
  CLB_CHECK_MSG(!in_window_, "step_global from inside a window");
  flush_mailboxes();
  int best = -1;
  SimTime best_time;
  for (int s = 0; s < shards(); ++s) {
    const std::optional<SimTime> next =
        states_[static_cast<std::size_t>(s)]->engine.next_live_time();
    if (next && (best < 0 || *next < best_time)) {
      best = s;
      best_time = *next;
    }
  }
  if (best < 0) return std::nullopt;
  ShardState& st = *states_[static_cast<std::size_t>(best)];
  // Advance the barrier clock *before* executing: a global-phase callback
  // reads now() as "the current global instant", and that is this event's
  // timestamp, not the previous one's.
  if (best_time > now_) now_ = best_time;
  CLB_CHECK(st.engine.step());
  ++global_steps_;
  if (trace_) {
    // One event stepped at a time, always the global minimum, so per-event
    // emission is already in the canonical (time, shard, seq) order the
    // window barrier would have sorted into.
    for (const auto& [time, seq] : st.trace)
      trace_(time, best, seq);
    st.trace.clear();
  }
  return best_time;
}

void ShardedSimulator::rewind_clocks(SimTime t) {
  CLB_CHECK_MSG(t <= now_, "rewind_clocks forward: t=" << t.to_string()
                               << " barrier=" << now_.to_string());
  for (auto& st : states_) st->engine.rewind_clock(t);
  now_ = t;
}

void ShardedSimulator::set_trace_hook(TraceHook hook) {
  trace_ = std::move(hook);
  for (auto& st : states_) {
    if (trace_) {
      ShardState* state = st.get();
      st->engine.set_trace_hook([state](SimTime time, std::uint64_t seq) {
        state->trace.emplace_back(time, seq);
      });
    } else {
      st->engine.set_trace_hook(EngineCore::TraceHook{});
      st->trace.clear();
    }
  }
}

EngineCore& ShardedSimulator::shard_engine(int shard) {
  check_shard_access(shard, "shard_engine for");
  return states_[static_cast<std::size_t>(shard)]->engine;
}

const EngineCore& ShardedSimulator::shard_engine(int shard) const {
  CLB_CHECK_MSG(shard >= 0 && shard < shards(),
                "shard_engine for shard out of range: " << shard);
  return states_[static_cast<std::size_t>(shard)]->engine;
}

std::uint64_t ShardedSimulator::executed() const {
  std::uint64_t total = 0;
  for (const auto& st : states_) total += st->engine.executed();
  return total;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t total = 0;
  for (const auto& st : states_)
    total += st->engine.pending() + st->outbox.size();
  return total;
}

void ShardedSimulator::validate_integrity() const {
  for (const auto& st : states_) st->engine.validate_integrity();
}

WindowedShardRouter::WindowedShardRouter(EngineCore& sim, int shards,
                                         int nodes, SimTime window)
    : sim_{sim},
      shards_{shards},
      nodes_{nodes},
      window_{window},
      src_seq_(static_cast<std::size_t>(nodes > 0 ? nodes : 0), 0) {
  CLB_CHECK_MSG(nodes >= 1, "router needs at least one node, got " << nodes);
  CLB_CHECK_MSG(shards >= 1 && shards <= nodes,
                "router shard count must be in [1, " << nodes << "], got "
                                                     << shards);
  CLB_CHECK_MSG(window > SimTime::zero(),
                "window width must be positive, got " << window.to_string());
}

int WindowedShardRouter::shard_of(int node) const {
  CLB_CHECK_MSG(node >= 0 && node < nodes_, "node out of range: " << node);
  // Contiguous near-equal blocks, matching the rack/node locality a real
  // partition would keep.
  return static_cast<int>(static_cast<std::int64_t>(node) * shards_ /
                          nodes_);
}

SimTime WindowedShardRouter::next_barrier() const {
  const std::int64_t w = window_.ns();
  return SimTime::nanos((sim_.now().ns() / w + 1) * w);
}

void WindowedShardRouter::route(int src_node, int dst_node,
                                SimTime deliver_at, EngineCore::Callback cb) {
  CLB_CHECK(cb != nullptr);
  CLB_CHECK_MSG(crosses_shards(src_node, dst_node),
                "route() called for co-sharded nodes " << src_node << " and "
                                                       << dst_node);
  const SimTime barrier = next_barrier();
  CLB_CHECK_MSG(deliver_at >= barrier,
                "cross-shard delivery at " << deliver_at.to_string()
                    << " would beat the barrier at " << barrier.to_string()
                    << ": delivery delay below the lookahead window");
  // `sent` is recorded for symmetry with ShardedSimulator::post but the
  // flush below deliberately injects with plain schedule_at: the router
  // predates send stamps and its digests pin the flush-order tie-break.
  buffered_.push_back(ShardEnvelope{
      deliver_at, sim_.now(), 0,
      src_seq_[static_cast<std::size_t>(src_node)]++, src_node, dst_node,
      std::move(cb)});
  ++routed_;
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim_.schedule_at(barrier, [this] { flush(); });
  }
}

void WindowedShardRouter::flush() {
  flush_scheduled_ = false;
  ++flushes_;
  // Canonical release order — identical to ShardedSimulator's barrier
  // merge, so both halves of the protocol share one ordering rule.
  std::sort(buffered_.begin(), buffered_.end(), shard_envelope_before);
  for (ShardEnvelope& e : buffered_)
    sim_.schedule_at(e.deliver, std::move(e.cb));
  buffered_.clear();
}

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/check.h"
#include "util/shard_annotations.h"
#include "util/sim_time.h"
#include "util/small_function.h"
#include "util/validate.h"

namespace cloudlb {

/// Handle to a scheduled event, usable for cancellation. Default-constructed
/// handles are inert. A handle names one *occupancy* of a callback slot —
/// {slot index, generation} — so a handle kept across its event's firing
/// (or cancellation) goes stale instead of aliasing whatever event reuses
/// the slot: cancelling it is detected and returns false.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return gen_ != 0; }

 private:
  friend class EngineCore;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_{slot}, gen_{gen} {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  ///< 0 = inert; live generations start at 1
};

/// The event-engine mechanism: a slot-arena of callbacks addressed by a
/// 4-ary min-heap of (time, seq) entries, with lazy cancellation and
/// stale-entry compaction. One EngineCore is one shard's worth of pending
/// events — `Simulator` wraps exactly one as the single-threaded engine,
/// and `ShardedSimulator` owns N of them advanced in conservative time
/// windows (docs/sharded-engine.md). The core itself is single-threaded:
/// all cross-thread coordination lives in the owner.
///
/// Engine layout (see docs/event-engine.md): callbacks live in a free-list
/// slot arena addressed directly by the heap entries, so the steady-state
/// schedule→fire cycle does no hashing and — for callbacks whose captures
/// fit the Callback inline buffer — no heap allocation at all. The pending
/// queue is a 4-ary min-heap: half the depth of a binary heap, and the
/// four children of a node share a cache line, which is worth ~25% on the
/// schedule→fire cycle at evaluation-grid queue sizes.
class EngineCore {
 public:
  /// What to do when the clock-consistency invariant is violated — an
  /// event due to fire with a timestamp behind now(), or run_until()
  /// finding live work at or before its target after draining. Impossible
  /// in normal operation; reachable when fault injection intentionally
  /// perturbs timestamps (fault_advance_clock), or on an engine bug.
  enum class ClockFaultPolicy {
    kStrict,   ///< CLB_CHECK: throw CheckFailure (the default; on in every
               ///< build type, so engine bugs can never fire events late
               ///< silently in release builds)
    kRecover,  ///< execute the late event at the current clock (time never
               ///< regresses), count it in clock_recoveries(), continue
  };

  void set_clock_fault_policy(ClockFaultPolicy policy) {
    clock_policy_ = policy;
  }
  [[nodiscard]] ClockFaultPolicy clock_fault_policy() const {
    return clock_policy_;
  }

  /// Late events executed under ClockFaultPolicy::kRecover.
  [[nodiscard]] std::uint64_t clock_recoveries() const {
    return clock_recoveries_;
  }

  /// Fault-injection hook: forcibly advances the clock to max(now(), t)
  /// WITHOUT executing the events in between, leaving them pending in the
  /// past — the perturbed-timestamp state the kRecover policy exists for.
  /// Pair with kRecover (under kStrict the next step() over a bypassed
  /// event throws). Never called by the engine itself.
  void fault_advance_clock(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Bytes of capture state a callback may carry and still be stored
  /// inline (allocation-free). Sized for the fattest runtime closure:
  /// message delivery captures {this, Message} = 56 bytes (Message is 48:
  /// three ints + payload vector + wire size).
  static constexpr std::size_t kInlineCallbackBytes = 64;

  using Callback = SmallFunction<void(), kInlineCallbackBytes>;

  /// Current virtual time. Starts at zero.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Presize hints: reserves heap capacity for `events` concurrently
  /// pending entries and arena capacity for `slots` callback cells, so
  /// the growth reallocations of a large scenario's setup burst (100k+
  /// PEs schedule one event per entity up front) leave the warm path.
  /// Never shrinks; purely a capacity hint, invisible to the trace.
  void reserve(std::size_t events, std::size_t slots) {
    queue_.reserve(events);
    slots_.reserve(slots);
  }

  /// Schedules `cb` at absolute time `t` (must be >= now()). The event is
  /// stamped with the caller's clock (now()): same-time events fire in
  /// (stamp, insertion) order. On a lone engine the stamp is redundant —
  /// insertion order already sorts by the non-decreasing clock — so this
  /// orders identically to a plain (time, seq) heap. The stamp exists for
  /// the sharded runtime, where events reach one engine from several
  /// clocks: see schedule_at_stamped.
  CLB_WARM_PATH EventHandle schedule_at(SimTime t, Callback cb) {
    return schedule_at_ranked(t, now_, current_rank_, std::move(cb));
  }

  /// Schedules `cb` at `t` carrying an explicit send stamp — the logical
  /// instant the *scheduling* happened, on whatever clock the caller was
  /// executing under. Same-time events fire in ascending stamp order
  /// (ties by insertion), which is exactly the single-engine rule where
  /// an event inserted earlier-in-virtual-time fires first. The sharded
  /// runtime uses this to inject cross-engine work (mailbox envelopes,
  /// global-phase scheduling) so that destination queues interleave
  /// same-time events by send order, bit-identical to the legacy engine,
  /// instead of by arrival route. `stamp` may be behind this engine's
  /// clock (the sender's window lags the barrier) but never ahead of `t`.
  /// The event inherits the executing event's rank (see
  /// schedule_at_ranked).
  CLB_WARM_PATH EventHandle schedule_at_stamped(SimTime t, SimTime stamp,
                                                Callback cb) {
    return schedule_at_ranked(t, stamp, current_rank_, std::move(cb));
  }

  /// Schedules `cb` at `t` with an explicit (stamp, rank) ordering key.
  /// `rank` breaks ties after the stamp and before insertion order. It
  /// exists for synchronized fan-out bursts in the sharded runtime: when
  /// one logical broadcast (an LB resume, a reduction result) reaches N
  /// chares "at the same instant", the legacy engine executes the
  /// per-chare continuations in the order the broadcast loop inserted
  /// them — chare index order — while per-shard engines drain shard by
  /// shard. Ranking those continuations by chare index, and letting every
  /// event they transitively schedule inherit the rank (current_rank()),
  /// reproduces the legacy interleave for events whose time AND stamp
  /// both tie across shards. The legacy path never assigns a rank, so
  /// every entry carries 0 there and ordering degenerates to the
  /// historical (time, stamp, seq).
  CLB_WARM_PATH EventHandle schedule_at_ranked(SimTime t, SimTime stamp,
                                               std::uint64_t rank,
                                               Callback cb) {
    CLB_CHECK_MSG(t >= now_, "event scheduled in the past: t="
                                 << t.to_string()
                                 << " now=" << now_.to_string());
    CLB_CHECK_MSG(stamp <= t, "send stamp after delivery: stamp="
                                  << stamp.to_string()
                                  << " t=" << t.to_string());
    CLB_CHECK(cb != nullptr);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    push_entry(QueueEntry{t, stamp, rank, next_seq_++, slot, s.gen});
    ++live_;
    return EventHandle{slot, s.gen};
  }

  /// Rank of the currently executing event — zero outside a callback and
  /// on the legacy path. Everything scheduled from inside a callback
  /// inherits it, so a ranked burst continuation propagates its rank down
  /// its whole causal chain.
  [[nodiscard]] std::uint64_t current_rank() const { return current_rank_; }

  /// Overrides the inherited rank mid-callback. Used by fan-out loops
  /// that deliver to several chares from ONE event (the per-shard half of
  /// a reduction broadcast): each chare's deliveries must rank as if the
  /// chare had its own continuation event. step() resets the rank after
  /// the callback returns.
  void set_current_rank(std::uint64_t rank) { current_rank_ = rank; }

  /// Schedules `cb` at now() + delay (delay must be >= 0).
  CLB_WARM_PATH EventHandle schedule_after(SimTime delay, Callback cb) {
    CLB_CHECK(!delay.is_negative());
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or inert handle is a no-op; returns whether something was cancelled.
  /// Stale handles (their slot was recycled by a later event) are detected
  /// by the generation check and refused.
  [[nodiscard]] CLB_WARM_PATH bool cancel(EventHandle h) {
    if (!h.valid()) return false;
    if (h.slot_ >= slots_.size() || slots_[h.slot_].gen != h.gen_)
      return false;  // already fired or cancelled; the slot may be reused
    release_slot(h.slot_);
    // The queue entry is normally skipped lazily when popped, but repeated
    // schedule/cancel cycles (re-armed periodic timers) would then grow the
    // queue without bound: compact once stale entries outnumber live ones.
    ++stale_;
    if (queue_.size() > kCompactionFloor && stale_ * 2 > queue_.size())
      compact_queue();
    return true;
  }

  /// Executes the next pending event. Returns false if none remain.
  [[nodiscard]] CLB_WARM_PATH bool step() {
    while (!queue_.empty()) {
      const QueueEntry entry = queue_.front();
      if (slots_[entry.slot].gen != entry.gen) {  // cancelled
        drop_stale_head();
        continue;
      }
      pop_entry();
      // Move the callback out and release the slot *before* invoking: the
      // callback may itself schedule (possibly into this very slot, at a
      // fresh generation) or cancel events, and scheduling may grow the
      // slot vector, so the callable must not run from arena storage.
      Callback cb = std::move(slots_[entry.slot].cb);
      release_slot(entry.slot);
      if (entry.time < now_) {
        // A live event behind the clock: only possible when timestamps
        // were perturbed (fault_advance_clock) or the engine is broken.
        // Strict mode fails loudly in every build type; recover mode runs
        // the event late, at the current clock, so time never regresses.
        if (clock_policy_ == ClockFaultPolicy::kStrict) {
          CLB_CHECK_MSG(entry.time >= now_,
                        "event due at " << entry.time.to_string()
                                        << " fired behind the clock ("
                                        << now_.to_string() << ")");
        }
        ++clock_recoveries_;
      } else {
        now_ = entry.time;
      }
      ++executed_;
      last_event_time_ = now_;
      if (validation_enabled()) {
        // The heap contract: events fire in strictly increasing
        // (time, stamp, rank, seq) order — the determinism fingerprint
        // every golden digest depends on. Holds for any clock policy,
        // since faults perturb the clock, never the queue order.
        const bool monotone =
            last_fired_time_ < entry.time ||
            (last_fired_time_ == entry.time &&
             (last_fired_stamp_ < entry.stamp ||
              (last_fired_stamp_ == entry.stamp &&
               (last_fired_rank_ < entry.rank ||
                (last_fired_rank_ == entry.rank &&
                 last_fired_seq_ < entry.seq)))));
        CLB_CHECK_MSG(monotone,
                      "trace sequence not monotone: ("
                          << entry.time.to_string() << ", stamp "
                          << entry.stamp.to_string() << ", rank " << entry.rank
                          << ", seq " << entry.seq << ") fired after ("
                          << last_fired_time_.to_string() << ", stamp "
                          << last_fired_stamp_.to_string() << ", rank "
                          << last_fired_rank_ << ", seq " << last_fired_seq_
                          << ")");
        last_fired_time_ = entry.time;
        last_fired_stamp_ = entry.stamp;
        last_fired_rank_ = entry.rank;
        last_fired_seq_ = entry.seq;
      }
      if (trace_) trace_(entry.time, entry.seq);
      current_rank_ = entry.rank;
      cb();
      current_rank_ = 0;
      return true;
    }
    return false;
  }

  /// Runs until the event queue drains.
  void run();

  /// Runs all events with timestamp <= `t` (including events they schedule
  /// at times <= `t`), then sets the clock to `t`. Postcondition: no
  /// pending event is earlier than now().
  CLB_SHARD_CONFINED void run_until(SimTime t);

  /// Runs all events with timestamp strictly *before* `t`, then sets the
  /// clock to `t`. This is the conservative-window execution primitive
  /// (docs/sharded-engine.md): a shard owns [now(), t) exclusively, and an
  /// event at exactly `t` belongs to the next window, after the barrier at
  /// which cross-shard messages timestamped `t` are injected. `t` must be
  /// >= now().
  CLB_SHARD_CONFINED void run_before(SimTime t);

  /// Time at which the most recent event executed (the clock it ran
  /// under, so a kRecover late event reports its recovery time, not its
  /// stale timestamp). Zero before any event has run. Unlike now(), this
  /// never moves on run_until / run_before clock advancement — it is the
  /// high-water mark of *work*, which is what makes rewind_clock able to
  /// prove a window tail was empty.
  [[nodiscard]] SimTime last_event_time() const { return last_event_time_; }

  /// Rewinds the clock to `t` without touching any state but now().
  ///
  /// This is the barrier-recovery primitive of the sharded runtime
  /// (docs/sharded-engine.md): when a window barrier discovers that a
  /// global cascade (an AtSync wave, a reduction, a job finish) completed
  /// entirely *inside* the window just run, the cascade's continuation
  /// must fire at the cascade instant t — but run_before already advanced
  /// the clock to the window end. Rewinding is legal exactly when nothing
  /// observable happened after t: no event executed past t (checked
  /// against last_event_time) and no pending event is due before t
  /// (guaranteed by the window postcondition, checked anyway). Machine
  /// state cannot disagree — every lazily-accruing model (core fluid
  /// shares, power) anchors at its last *event*, never at the bare clock.
  CLB_BARRIER_PHASE void rewind_clock(SimTime t) {
    CLB_CHECK_MSG(t <= now_, "rewind_clock forward: t=" << t.to_string()
                                                        << " now="
                                                        << now_.to_string());
    CLB_CHECK_MSG(last_event_time_ <= t,
                  "rewind_clock past executed work: t="
                      << t.to_string() << " last event at "
                      << last_event_time_.to_string());
    const auto next = next_live_time();
    CLB_CHECK_MSG(!next || *next >= t,
                  "rewind_clock below a pending event: t="
                      << t.to_string() << " pending at "
                      << next->to_string());
    now_ = t;
  }

  /// Timestamp of the earliest live (non-cancelled) pending event, or
  /// nullopt when none remain. Sheds stale heads off the heap as a side
  /// effect (bookkeeping only; the trace is untouched).
  [[nodiscard]] std::optional<SimTime> next_live_time() {
    while (!queue_.empty()) {
      const QueueEntry& head = queue_.front();
      if (slots_[head.slot].gen == head.gen) return head.time;
      drop_stale_head();
    }
    return std::nullopt;
  }

  /// Number of events scheduled but not yet fired or cancelled.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Heap entries currently held, including stale (cancelled) ones waiting
  /// to be skipped or compacted away. Bounded at < 2·pending() + a small
  /// floor even under adversarial schedule/cancel churn.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

  /// Callback slots allocated (monitoring; slots are recycled, so this
  /// tracks the high-water mark of concurrently pending events).
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Total events executed so far (monitoring / benchmarks).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Observes every executed event as (time, sequence number), *before*
  /// its callback runs. Used by determinism tests to fingerprint the
  /// execution trace; null (the default) costs one branch per event.
  using TraceHook = std::function<void(SimTime, std::uint64_t)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Deep structural audit of the engine (validation_enabled() gates the
  /// automatic call sites; calling it directly is always allowed): 4-ary
  /// heap property over the pending queue, slot-arena free-list shape
  /// (in-range, acyclic, callbacks cleared), generation consistency
  /// between queue entries and slots, and the live/stale accounting.
  /// Throws CheckFailure on the first violated invariant.
  void validate_integrity() const;

 private:
  friend struct SimulatorTestAccess;  ///< corruption seams for validator tests

  struct QueueEntry {
    SimTime time;
    SimTime stamp;       ///< send instant; breaks same-time ties before rank
    std::uint64_t rank;  ///< burst-continuation rank; 0 on the legacy path
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const QueueEntry& o) const {
      if (time != o.time) return time > o.time;
      if (stamp != o.stamp) return stamp > o.stamp;
      if (rank != o.rank) return rank > o.rank;
      return seq > o.seq;
    }
  };

  /// One arena cell. `gen` counts occupancies: it is bumped when the
  /// occupant leaves (fires or is cancelled), so queue entries and handles
  /// carrying an old generation are recognizably stale. A slot is on the
  /// free list iff its generation matches no outstanding entry.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Below this size, compaction is not worth the pass: lazily skipping a
  // handful of stale heads is cheaper than rebuilding the heap.
  static constexpr std::size_t kCompactionFloor = 64;

  // --- 4-ary min-heap over queue_ (manual layout so cancellation can
  // compact stale entries in place, which a std::priority_queue cannot).

  CLB_WARM_PATH void push_entry(const QueueEntry& e) {
    queue_.push_back(e);
    std::size_t i = queue_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!(queue_[parent] > e)) break;
      queue_[i] = queue_[parent];
      i = parent;
    }
    queue_[i] = e;
  }

  CLB_WARM_PATH void pop_entry() {
    queue_.front() = queue_.back();
    queue_.pop_back();
    if (queue_.size() > 1) sift_down(0);
  }

  /// Pops the stale head entry and retires it from the stale ledger.
  /// Every stale entry was counted by exactly one cancel(), so finding
  /// the ledger at zero here means the accounting drifted — an engine
  /// bug. That used to be clamped away (`if (stale_ > 0)`), which let an
  /// undercount ride silently until compaction resynced it; now it is an
  /// integrity failure in every build type, same as validate_integrity()
  /// would report.
  CLB_WARM_PATH void drop_stale_head() {
    pop_entry();
    CLB_CHECK_MSG(stale_ > 0,
                  "stale-entry ledger underflow: skipping a cancelled head "
                  "with stale_ == 0 (accounting drifted)");
    --stale_;
  }

  CLB_WARM_PATH void sift_down(std::size_t i) {
    const std::size_t n = queue_.size();
    const QueueEntry item = queue_[i];
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c)
        if (queue_[best] > queue_[c]) best = c;
      if (!(item > queue_[best])) break;
      queue_[i] = queue_[best];
      i = best;
    }
    queue_[i] = item;
  }

  CLB_WARM_PATH void compact_queue();

  CLB_WARM_PATH std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    CLB_CHECK_MSG(slot != kNoSlot, "event slot arena exhausted");
    slots_.emplace_back();
    return slot;
  }

  CLB_WARM_PATH void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb = nullptr;
    ++s.gen;  // invalidates every outstanding handle/entry
    s.next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  SimTime now_ = SimTime::zero();
  SimTime last_event_time_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  SimTime last_fired_time_ = SimTime::min_value();
  SimTime last_fired_stamp_ = SimTime::min_value();
  std::uint64_t last_fired_rank_ = 0;
  std::uint64_t last_fired_seq_ = 0;
  std::uint64_t current_rank_ = 0;  ///< rank of the executing event
  std::uint64_t executed_ = 0;
  ClockFaultPolicy clock_policy_ = ClockFaultPolicy::kStrict;
  std::uint64_t clock_recoveries_ = 0;
  std::vector<QueueEntry> queue_;
  std::size_t stale_ = 0;  ///< cancelled entries still sitting in queue_
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  TraceHook trace_;
};

}  // namespace cloudlb

#pragma once

#include <vector>

#include "machine/machine.h"
#include "sim/simulator.h"
#include "util/sim_time.h"

namespace cloudlb {

/// Node-level power model.
///
/// P_node(t) = base + dynamic_per_core · Σ_core util_core(t).
/// Defaults are the paper's testbed figures: 40 W base per node and a
/// 170 W full-load quad-core node, i.e. (170 − 40) / 4 = 32.5 W per busy
/// core. The paper's energy argument depends on exactly these two facts:
/// high base power, and dynamic power proportional to utilization.
struct PowerModelConfig {
  double base_watts_per_node = 40.0;
  double dynamic_watts_per_core = 32.5;
};

/// Per-node power meter, mirroring the testbed's 1 Hz node meters.
///
/// Provides both a sampled power series (what the paper's meters report)
/// and an exact energy integral computed from the cores' cumulative busy
/// time (used for headline numbers; the sampled series converges to it).
class PowerMeter {
 public:
  struct Sample {
    SimTime time;
    double total_watts = 0.0;
  };

  PowerMeter(Simulator& sim, Machine& machine, PowerModelConfig config = {},
             SimTime sample_interval = SimTime::seconds(1));

  /// Tickless meter for the sharded runtime: no engine to hang the 1 Hz
  /// sample chain on (there are N of them), so there is no sampled series
  /// — only the exact energy integral between start_at and stop_at, read
  /// through Core::proc_stat_at at explicit global instants. The sampled
  /// series was always a convergent approximation of that integral; the
  /// headline numbers never depended on it.
  PowerMeter(Machine& machine, PowerModelConfig config = {});

  /// Begins metering at the current simulation time.
  void start();

  /// Ends metering; freezes energy and the sample series. Idempotent.
  void stop();

  /// Tickless begin/end at an explicit global instant (sharded runtime
  /// only; requires the tickless constructor). `t` must satisfy the
  /// proc_stat_at contract on every core's engine — the sharded host's
  /// global phases guarantee it.
  void start_at(SimTime t);
  void stop_at(SimTime t);

  bool running() const { return running_; }

  /// Exact energy (J) consumed by all nodes over [start, stop] (or
  /// [start, now) while still running).
  double energy_joules() const;

  /// Exact mean power (W) over the metered window.
  double average_power_watts() const;

  /// Metered wall time so far.
  SimTime window() const;

  /// Instantaneous-window samples captured every `sample_interval`.
  const std::vector<Sample>& samples() const { return samples_; }

  const PowerModelConfig& config() const { return config_; }

 private:
  double total_busy_seconds() const;
  double total_busy_seconds_at(SimTime t) const;
  void on_sample_tick();

  EngineCore* sim_;  ///< null in tickless (sharded) mode
  Machine& machine_;
  PowerModelConfig config_;
  SimTime interval_;
  bool running_ = false;
  SimTime start_time_;
  SimTime stop_time_;
  double busy_at_start_ = 0.0;
  double busy_at_stop_ = 0.0;
  double busy_at_last_sample_ = 0.0;
  std::vector<Sample> samples_;
  EventHandle tick_event_;
};

}  // namespace cloudlb

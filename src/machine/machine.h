#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "machine/core.h"
#include "sim/simulator.h"

namespace cloudlb {

/// Shape of the simulated cluster. Defaults model the paper's testbed:
/// single-socket quad-core (Xeon X3430) nodes.
struct MachineConfig {
  int nodes = 8;
  int cores_per_node = 4;
  double core_speed = 1.0;  ///< CPU-seconds consumed per wall-second when alone

  /// Optional per-core speed overrides (global core id -> speed), for
  /// heterogeneous clouds mixing fast and slow instances. Cores not
  /// listed run at `core_speed`.
  std::vector<std::pair<int, double>> core_speed_overrides;
};

/// A cluster of nodes × cores with globally indexed cores.
///
/// Core `c` lives on node `c / cores_per_node`, mirroring how the paper's
/// 8-node / 32-core testbed is addressed.
class Machine {
 public:
  Machine(Simulator& sim, MachineConfig config);

  /// Sharded-runtime construction: every node's cores bind to the engine
  /// the resolver names for that node, so each shard's `EngineCore` owns
  /// the cores of exactly its own nodes (docs/sharded-engine.md). The
  /// resolver is only consulted during construction.
  Machine(MachineConfig config,
          const std::function<EngineCore&(int node)>& engine_of_node);

  int num_nodes() const { return config_.nodes; }
  int cores_per_node() const { return config_.cores_per_node; }
  int num_cores() const { return config_.nodes * config_.cores_per_node; }
  const MachineConfig& config() const { return config_; }

  Core& core(CoreId id);
  const Core& core(CoreId id) const;

  /// Node hosting a global core id.
  int node_of(CoreId id) const;

  /// True when both cores sit on the same node (intra-node communication).
  bool same_node(CoreId a, CoreId b) const {
    return node_of(a) == node_of(b);
  }

 private:
  MachineConfig config_;
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine_core.h"
#include "util/sim_time.h"

namespace cloudlb {

using CoreId = std::int32_t;
using ContextId = std::int32_t;

/// Snapshot of a core's cumulative CPU accounting — the simulated
/// equivalent of one row of `/proc/stat`, which the paper's background-load
/// estimator samples (Eq. 2 reads the idle counter).
struct ProcStat {
  SimTime busy;  ///< time the core spent executing any context
  SimTime idle;  ///< time the core spent with no runnable context
};

/// One physical CPU core, modelled as a weighted fluid processor-sharing
/// server.
///
/// Schedulable entities (the app's processing element, an interfering VM's
/// vCPU, ...) register as *contexts*. When k contexts are runnable, context
/// i progresses at `speed · w_i / Σw` — the fluid limit of an OS
/// time-slicer, which is exactly the interference mechanism the paper
/// studies (two co-located vCPUs halving each other's speed).
///
/// The core keeps full CPU-time accounting: cumulative busy/idle time and
/// per-context consumed CPU time, all exact under the fluid model. The
/// `/proc/stat` substitute (`proc_stat()`), the LB database and the power
/// model all read from this accounting.
class Core {
 public:
  /// `speed` scales CPU consumption: a demand of 1 CPU-second completes in
  /// 1/speed wall seconds on an otherwise idle core. The engine is the
  /// core's event clock: in the legacy runtime it is the one `Simulator`,
  /// in the sharded runtime it is the `EngineCore` of the shard that owns
  /// this core's node (docs/sharded-engine.md).
  Core(EngineCore& sim, CoreId id, double speed = 1.0);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }
  double speed() const { return speed_; }

  /// Registers a schedulable context with the given scheduler weight
  /// (relative CPU share when competing; 1.0 = normal).
  ContextId register_context(std::string name, double weight = 1.0);

  /// Adjusts a context's scheduler weight (its "niceness").
  void set_weight(ContextId ctx, double weight);

  const std::string& context_name(ContextId ctx) const;

  /// Requests that `ctx` consume `cpu_time` of CPU, then invokes
  /// `on_complete`. At most one outstanding demand per context: a PE
  /// serializes its task executions. Zero demands complete via an
  /// immediately-scheduled event (still ordered deterministically).
  void demand(ContextId ctx, SimTime cpu_time, std::function<void()> on_complete);

  /// Whether `ctx` currently has an unfinished demand.
  bool has_demand(ContextId ctx) const;

  /// Number of currently runnable contexts.
  std::size_t runnable() const { return active_.size(); }

  // --- Accounting (all cumulative since t = 0, exact to the fluid model).

  /// Busy/idle counters as an OS would expose them.
  ProcStat proc_stat() const;

  /// Busy/idle counters extrapolated to `t` >= the engine clock. Exact —
  /// not an estimate — because between events the fluid shares are
  /// constant: nothing about the active set can change before the
  /// engine's next pending event fires. The caller must therefore
  /// guarantee `t` does not pass that event (the sharded runtime's
  /// global-order stepping does, by construction). `proc_stat()` is the
  /// `t == now` case.
  ProcStat proc_stat_at(SimTime t) const;

  /// Total CPU time consumed by one context so far.
  SimTime context_cpu_time(ContextId ctx) const;

  /// Per-context consumption extrapolated to `t`, under the same contract
  /// as proc_stat_at.
  SimTime context_cpu_time_at(ContextId ctx, SimTime t) const;

  std::size_t num_contexts() const { return contexts_.size(); }

 private:
  struct ContextInfo {
    std::string name;
    double weight = 1.0;
    double consumed_cpu_sec = 0.0;  ///< cumulative
  };
  struct Request {
    double remaining_cpu_sec = 0.0;
    std::function<void()> on_complete;
  };

  /// Accrues CPU consumption from `last_update_` to now, updating
  /// per-context counters and busy time. Does not fire completions.
  void advance_to_now();

  /// Fires callbacks for all requests that have run dry, then reschedules
  /// the next completion event.
  void complete_and_reschedule();

  double total_active_weight() const;

  EngineCore& sim_;
  CoreId id_;
  double speed_;
  std::vector<ContextInfo> contexts_;
  /// Ordered by ContextId so every iteration below (FP share sums, the
  /// completion scan) visits contexts in one platform-independent order —
  /// an unordered container here would make the trace digest depend on the
  /// standard library's hashing.
  std::map<ContextId, Request> active_;
  SimTime last_update_ = SimTime::zero();
  double busy_sec_ = 0.0;
  EventHandle completion_event_;
};

}  // namespace cloudlb

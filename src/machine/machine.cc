#include "machine/machine.h"

#include "util/check.h"

namespace cloudlb {

Machine::Machine(Simulator& sim, MachineConfig config)
    : Machine{config, [&sim](int) -> EngineCore& { return sim; }} {}

Machine::Machine(MachineConfig config,
                 const std::function<EngineCore&(int node)>& engine_of_node)
    : config_{config} {
  CLB_CHECK(config.nodes > 0);
  CLB_CHECK(config.cores_per_node > 0);
  CLB_CHECK(engine_of_node != nullptr);
  const int total = config.nodes * config.cores_per_node;
  cores_.reserve(static_cast<std::size_t>(total));
  for (int c = 0; c < total; ++c) {
    double speed = config.core_speed;
    for (const auto& [core, override_speed] : config.core_speed_overrides) {
      if (core == c) speed = override_speed;
    }
    CLB_CHECK_MSG(speed > 0.0, "core " << c << " has non-positive speed");
    cores_.push_back(std::make_unique<Core>(
        engine_of_node(c / config.cores_per_node), static_cast<CoreId>(c),
        speed));
  }
}

Core& Machine::core(CoreId id) {
  CLB_CHECK(id >= 0 && static_cast<std::size_t>(id) < cores_.size());
  return *cores_[static_cast<std::size_t>(id)];
}

const Core& Machine::core(CoreId id) const {
  CLB_CHECK(id >= 0 && static_cast<std::size_t>(id) < cores_.size());
  return *cores_[static_cast<std::size_t>(id)];
}

int Machine::node_of(CoreId id) const {
  CLB_CHECK(id >= 0 && static_cast<std::size_t>(id) < cores_.size());
  return id / config_.cores_per_node;
}

}  // namespace cloudlb

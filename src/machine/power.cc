#include "machine/power.h"

#include "util/check.h"

namespace cloudlb {

PowerMeter::PowerMeter(Simulator& sim, Machine& machine,
                       PowerModelConfig config, SimTime sample_interval)
    : sim_{&sim},
      machine_{machine},
      config_{config},
      interval_{sample_interval} {
  CLB_CHECK(sample_interval > SimTime::zero());
}

PowerMeter::PowerMeter(Machine& machine, PowerModelConfig config)
    : sim_{nullptr},
      machine_{machine},
      config_{config},
      interval_{SimTime::seconds(1)} {}

double PowerMeter::total_busy_seconds() const {
  double busy = 0.0;
  for (CoreId c = 0; c < machine_.num_cores(); ++c)
    busy += machine_.core(c).proc_stat().busy.to_seconds();
  return busy;
}

double PowerMeter::total_busy_seconds_at(SimTime t) const {
  double busy = 0.0;
  for (CoreId c = 0; c < machine_.num_cores(); ++c)
    busy += machine_.core(c).proc_stat_at(t).busy.to_seconds();
  return busy;
}

void PowerMeter::start() {
  CLB_CHECK_MSG(sim_ != nullptr, "tickless power meter needs start_at()");
  CLB_CHECK_MSG(!running_, "power meter already running");
  running_ = true;
  start_time_ = sim_->now();
  busy_at_start_ = total_busy_seconds();
  busy_at_last_sample_ = busy_at_start_;
  samples_.clear();
  tick_event_ = sim_->schedule_after(interval_, [this] { on_sample_tick(); });
}

void PowerMeter::start_at(SimTime t) {
  CLB_CHECK_MSG(sim_ == nullptr,
                "start_at is the tickless-mode entry point; engine-backed "
                "meters use start()");
  CLB_CHECK_MSG(!running_, "power meter already running");
  running_ = true;
  start_time_ = t;
  busy_at_start_ = total_busy_seconds_at(t);
  busy_at_last_sample_ = busy_at_start_;
  samples_.clear();
}

void PowerMeter::stop_at(SimTime t) {
  CLB_CHECK_MSG(sim_ == nullptr,
                "stop_at is the tickless-mode entry point; engine-backed "
                "meters use stop()");
  if (!running_) return;
  CLB_CHECK_MSG(t >= start_time_, "power meter stopped before it started");
  running_ = false;
  stop_time_ = t;
  busy_at_stop_ = total_busy_seconds_at(t);
}

void PowerMeter::on_sample_tick() {
  const double busy = total_busy_seconds();
  const double util_core_seconds = busy - busy_at_last_sample_;
  busy_at_last_sample_ = busy;
  const double watts =
      config_.base_watts_per_node * machine_.num_nodes() +
      config_.dynamic_watts_per_core * util_core_seconds /
          interval_.to_seconds();
  samples_.push_back(Sample{sim_->now(), watts});
  tick_event_ = sim_->schedule_after(interval_, [this] { on_sample_tick(); });
}

void PowerMeter::stop() {
  CLB_CHECK_MSG(sim_ != nullptr, "tickless power meter needs stop_at()");
  if (!running_) return;
  running_ = false;
  stop_time_ = sim_->now();
  busy_at_stop_ = total_busy_seconds();
  if (tick_event_.valid()) {
    // While running, the tick chain keeps exactly one pending event; a
    // valid handle that fails to cancel means the chain double-armed or
    // fired without re-arming — both accounting bugs worth failing on.
    CLB_CHECK_MSG(sim_->cancel(tick_event_),
                  "power-meter tick handle went stale while running");
    tick_event_ = EventHandle{};
  }
}

SimTime PowerMeter::window() const {
  if (running_) {
    CLB_CHECK_MSG(sim_ != nullptr,
                  "tickless power meter has no live window; stop_at first");
    return sim_->now() - start_time_;
  }
  return stop_time_ - start_time_;
}

double PowerMeter::energy_joules() const {
  CLB_CHECK_MSG(sim_ != nullptr || !running_,
                "tickless power meter energy is defined after stop_at");
  const double busy_end = running_ ? total_busy_seconds() : busy_at_stop_;
  const double busy = busy_end - busy_at_start_;
  const double wall = window().to_seconds();
  return config_.base_watts_per_node * machine_.num_nodes() * wall +
         config_.dynamic_watts_per_core * busy;
}

double PowerMeter::average_power_watts() const {
  const double wall = window().to_seconds();
  if (wall <= 0.0) return 0.0;
  return energy_joules() / wall;
}

}  // namespace cloudlb

#include "machine/core.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cloudlb {

namespace {
// Remaining CPU below this is treated as finished; guards against
// floating-point residue after advancing to a completion instant.
constexpr double kCpuEpsilonSec = 1e-12;
}  // namespace

Core::Core(EngineCore& sim, CoreId id, double speed)
    : sim_{sim}, id_{id}, speed_{speed} {
  CLB_CHECK(speed > 0.0);
}

ContextId Core::register_context(std::string name, double weight) {
  CLB_CHECK(weight > 0.0);
  const auto ctx = static_cast<ContextId>(contexts_.size());
  contexts_.push_back(ContextInfo{std::move(name), weight, 0.0});
  return ctx;
}

void Core::set_weight(ContextId ctx, double weight) {
  CLB_CHECK(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  CLB_CHECK(weight > 0.0);
  advance_to_now();
  contexts_[static_cast<std::size_t>(ctx)].weight = weight;
  complete_and_reschedule();
}

const std::string& Core::context_name(ContextId ctx) const {
  CLB_CHECK(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  return contexts_[static_cast<std::size_t>(ctx)].name;
}

void Core::demand(ContextId ctx, SimTime cpu_time,
                  std::function<void()> on_complete) {
  CLB_CHECK(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  CLB_CHECK(!cpu_time.is_negative());
  CLB_CHECK(on_complete != nullptr);
  CLB_CHECK_MSG(!active_.contains(ctx),
                "context " << context_name(ctx) << " already has a demand");
  advance_to_now();
  active_.emplace(ctx, Request{cpu_time.to_seconds(), std::move(on_complete)});
  complete_and_reschedule();
}

bool Core::has_demand(ContextId ctx) const { return active_.contains(ctx); }

double Core::total_active_weight() const {
  double w = 0.0;
  for (const auto& [ctx, req] : active_)
    w += contexts_[static_cast<std::size_t>(ctx)].weight;
  return w;
}

void Core::advance_to_now() {
  const SimTime now = sim_.now();
  const SimTime elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed.is_zero() || active_.empty()) return;

  const double dt = elapsed.to_seconds();
  busy_sec_ += dt;
  const double total_w = total_active_weight();
  for (auto& [ctx, req] : active_) {
    auto& info = contexts_[static_cast<std::size_t>(ctx)];
    const double rate = speed_ * info.weight / total_w;
    const double used = std::min(req.remaining_cpu_sec, dt * rate);
    req.remaining_cpu_sec -= used;
    info.consumed_cpu_sec += used;
  }
}

void Core::complete_and_reschedule() {
  // Collect finished requests first so their callbacks (which may issue new
  // demands on this core) run against a consistent active set.
  std::vector<std::function<void()>> finished;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining_cpu_sec <= kCpuEpsilonSec) {
      finished.push_back(std::move(it->second.on_complete));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }

  if (completion_event_.valid()) {
    // The completion callback clears the handle before re-entering this
    // function, so a valid handle here always names a pending event; a
    // failed cancel would mean the handle went stale (engine bug).
    CLB_CHECK_MSG(sim_.cancel(completion_event_),
                  "core completion handle went stale");
    completion_event_ = EventHandle{};
  }
  if (!active_.empty()) {
    const double total_w = total_active_weight();
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& [ctx, req] : active_) {
      const double rate =
          speed_ * contexts_[static_cast<std::size_t>(ctx)].weight / total_w;
      earliest = std::min(earliest, req.remaining_cpu_sec / rate);
    }
    // Round up so that at the event instant every candidate has actually
    // crossed the epsilon threshold.
    SimTime dt = SimTime::from_seconds(earliest) + SimTime::nanos(1);
    completion_event_ = sim_.schedule_after(dt, [this] {
      completion_event_ = EventHandle{};
      advance_to_now();
      complete_and_reschedule();
    });
  }

  // Deliver completions through zero-delay events: a callback typically
  // issues the context's next demand, and synchronous delivery would recurse
  // unboundedly through demand() -> complete_and_reschedule() for chains of
  // tiny tasks.
  for (auto& cb : finished)
    sim_.schedule_after(SimTime::zero(), std::move(cb));
}

ProcStat Core::proc_stat() const { return proc_stat_at(sim_.now()); }

ProcStat Core::proc_stat_at(SimTime t) const {
  // Accrue lazily without mutating: recompute what advance_to_now would add
  // if the engine clock stood at `t`. Exact for any t that does not pass
  // the engine's next pending event (fluid shares are constant between
  // events) — the header spells out the caller's contract.
  CLB_CHECK_MSG(t >= sim_.now(), "proc_stat_at behind the engine clock: t="
                                     << t.to_string() << " now="
                                     << sim_.now().to_string());
  double busy = busy_sec_;
  const SimTime elapsed = t - last_update_;
  if (!elapsed.is_zero() && !active_.empty()) busy += elapsed.to_seconds();
  ProcStat st;
  st.busy = SimTime::from_seconds(busy);
  st.idle = t - st.busy;
  return st;
}

SimTime Core::context_cpu_time(ContextId ctx) const {
  return context_cpu_time_at(ctx, sim_.now());
}

SimTime Core::context_cpu_time_at(ContextId ctx, SimTime t) const {
  CLB_CHECK(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  CLB_CHECK_MSG(t >= sim_.now(),
                "context_cpu_time_at behind the engine clock: t="
                    << t.to_string() << " now=" << sim_.now().to_string());
  double consumed = contexts_[static_cast<std::size_t>(ctx)].consumed_cpu_sec;
  const SimTime elapsed = t - last_update_;
  if (!elapsed.is_zero()) {
    auto it = active_.find(ctx);
    if (it != active_.end()) {
      const double rate =
          speed_ * contexts_[static_cast<std::size_t>(ctx)].weight /
          total_active_weight();
      consumed +=
          std::min(it->second.remaining_cpu_sec, elapsed.to_seconds() * rate);
    }
  }
  return SimTime::from_seconds(consumed);
}

}  // namespace cloudlb

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "vm/interferer.h"

namespace cloudlb {

/// A population of co-located tenant VMs — the paper's §VI future-work
/// setting ("a public cloud where multiple VMs share CPU resources").
///
/// Each tenant is a single-vCPU CPU-bound VM pinned to a random core of
/// the machine, alternating exponentially distributed busy ("on") and
/// quiet ("off") episodes. The result is exactly the environment the
/// paper argues needs *continuous* balancing: interference whose
/// location, intensity and duration all drift over time, reproducibly
/// (everything is driven by one seed).
struct TenantFieldConfig {
  int num_tenants = 4;
  double mean_on_seconds = 2.0;   ///< exponential mean of busy episodes
  double mean_off_seconds = 2.0;  ///< exponential mean of quiet episodes
  double duty_cycle = 1.0;        ///< CPU appetite while "on"
  double weight = 1.0;            ///< scheduler share of each tenant vCPU
  std::uint64_t seed = 99;
};

class TenantField {
 public:
  TenantField(Simulator& sim, Machine& machine, TenantFieldConfig config);

  /// Begins every tenant's on/off cycle (first episode starts after a
  /// random fraction of an off-period, so tenants are desynchronized).
  void start();

  /// Stops scheduling new episodes; running bursts drain naturally.
  void stop();

  int num_tenants() const { return static_cast<int>(tenants_.size()); }

  /// Tenants currently in a busy episode.
  int active_tenants() const;

  /// The core each tenant is pinned to (diagnostics/tests).
  CoreId core_of_tenant(int tenant) const;

  /// Total CPU consumed by all tenants so far.
  SimTime cpu_consumed() const;

 private:
  struct Tenant {
    std::unique_ptr<SyntheticInterferer> hog;
    CoreId core;
  };

  void schedule_on(int tenant);
  void schedule_off(int tenant);

  Simulator& sim_;
  TenantFieldConfig config_;
  Rng rng_;
  std::vector<Tenant> tenants_;
  bool running_ = false;
};

}  // namespace cloudlb

#include "vm/interferer.h"

#include "util/check.h"

namespace cloudlb {

SyntheticInterferer::SyntheticInterferer(EngineCore& sim, Machine& machine,
                                         std::vector<CoreId> cores,
                                         Config config)
    : sim_{sim}, config_{config} {
  CLB_CHECK(config.duty_cycle > 0.0 && config.duty_cycle <= 1.0);
  CLB_CHECK(config.chunk > SimTime::zero());
  vm_ = std::make_unique<VirtualMachine>(machine, "interferer",
                                         std::move(cores), config.weight);
}

void SyntheticInterferer::start() {
  active_ = true;
  for (int v = 0; v < vm_->num_vcpus(); ++v) pump(v);
}

void SyntheticInterferer::stop() { active_ = false; }

void SyntheticInterferer::pump(int vcpu) {
  // Re-entrancy guard: an in-flight chunk keeps pumping by itself, so a
  // start() overlapping it must not issue a second demand.
  if (!active_ || vm_->has_demand(vcpu)) return;
  const SimTime busy = config_.chunk * config_.duty_cycle;
  const SimTime rest = config_.chunk - busy;
  vm_->demand(vcpu, busy, [this, vcpu, rest] {
    if (!active_) return;
    if (rest.is_zero()) {
      pump(vcpu);
    } else {
      sim_.schedule_after(rest, [this, vcpu] { pump(vcpu); });
    }
  });
}

SimTime SyntheticInterferer::cpu_consumed() const {
  SimTime total = SimTime::zero();
  for (int v = 0; v < vm_->num_vcpus(); ++v) total += vm_->vcpu_cpu_time(v);
  return total;
}

}  // namespace cloudlb

#include "vm/tenant.h"

#include "util/check.h"

namespace cloudlb {

TenantField::TenantField(Simulator& sim, Machine& machine,
                         TenantFieldConfig config)
    : sim_{sim}, config_{config}, rng_{config.seed} {
  CLB_CHECK(config.num_tenants >= 0);
  CLB_CHECK(config.mean_on_seconds > 0.0);
  CLB_CHECK(config.mean_off_seconds > 0.0);
  tenants_.reserve(static_cast<std::size_t>(config.num_tenants));
  for (int t = 0; t < config.num_tenants; ++t) {
    const auto core = static_cast<CoreId>(
        rng_.uniform_int(0, machine.num_cores() - 1));
    SyntheticInterferer::Config hog_config;
    hog_config.duty_cycle = config.duty_cycle;
    hog_config.weight = config.weight;
    tenants_.push_back(Tenant{
        std::make_unique<SyntheticInterferer>(sim, machine,
                                              std::vector<CoreId>{core},
                                              hog_config),
        core});
  }
}

void TenantField::start() {
  CLB_CHECK_MSG(!running_, "tenant field already running");
  running_ = true;
  for (int t = 0; t < num_tenants(); ++t) {
    // Desynchronize: each tenant waits a random slice of an off-period.
    const SimTime stagger = SimTime::from_seconds(
        rng_.uniform(0.0, config_.mean_off_seconds));
    sim_.schedule_after(stagger, [this, t] { schedule_on(t); });
  }
}

void TenantField::stop() { running_ = false; }

void TenantField::schedule_on(int tenant) {
  if (!running_) return;
  auto& hog = *tenants_[static_cast<std::size_t>(tenant)].hog;
  if (!hog.active()) hog.start();
  const SimTime on = SimTime::from_seconds(
      rng_.exponential(config_.mean_on_seconds));
  sim_.schedule_after(on, [this, tenant] { schedule_off(tenant); });
}

void TenantField::schedule_off(int tenant) {
  auto& hog = *tenants_[static_cast<std::size_t>(tenant)].hog;
  if (hog.active()) hog.stop();
  if (!running_) return;
  const SimTime off = SimTime::from_seconds(
      rng_.exponential(config_.mean_off_seconds));
  sim_.schedule_after(off, [this, tenant] { schedule_on(tenant); });
}

int TenantField::active_tenants() const {
  int active = 0;
  for (const Tenant& t : tenants_)
    if (t.hog->active()) ++active;
  return active;
}

CoreId TenantField::core_of_tenant(int tenant) const {
  CLB_CHECK(tenant >= 0 &&
            static_cast<std::size_t>(tenant) < tenants_.size());
  return tenants_[static_cast<std::size_t>(tenant)].core;
}

SimTime TenantField::cpu_consumed() const {
  SimTime total = SimTime::zero();
  for (const Tenant& t : tenants_) total += t.hog->cpu_consumed();
  return total;
}

}  // namespace cloudlb

#include "vm/virtual_machine.h"

#include "util/check.h"

namespace cloudlb {

VirtualMachine::VirtualMachine(Machine& machine, std::string name,
                               std::vector<CoreId> pinned_cores, double weight)
    : machine_{machine}, name_{std::move(name)} {
  CLB_CHECK(!pinned_cores.empty());
  vcpus_.reserve(pinned_cores.size());
  for (std::size_t v = 0; v < pinned_cores.size(); ++v) {
    const CoreId core = pinned_cores[v];
    const ContextId ctx = machine_.core(core).register_context(
        name_ + "/vcpu" + std::to_string(v), weight);
    vcpus_.push_back(VCpu{core, ctx});
  }
}

const VirtualMachine::VCpu& VirtualMachine::vcpu(int v) const {
  CLB_CHECK(v >= 0 && static_cast<std::size_t>(v) < vcpus_.size());
  return vcpus_[static_cast<std::size_t>(v)];
}

CoreId VirtualMachine::core_of(int v) const { return vcpu(v).core; }

void VirtualMachine::demand(int v, SimTime cpu_time,
                            std::function<void()> on_complete) {
  const VCpu& vc = vcpu(v);
  machine_.core(vc.core).demand(vc.ctx, cpu_time, std::move(on_complete));
}

bool VirtualMachine::has_demand(int v) const {
  const VCpu& vc = vcpu(v);
  return machine_.core(vc.core).has_demand(vc.ctx);
}

SimTime VirtualMachine::vcpu_cpu_time(int v) const {
  const VCpu& vc = vcpu(v);
  return machine_.core(vc.core).context_cpu_time(vc.ctx);
}

ProcStat VirtualMachine::host_proc_stat(int v) const {
  return machine_.core(vcpu(v).core).proc_stat();
}

ProcStat VirtualMachine::host_proc_stat_at(int v, SimTime t) const {
  return machine_.core(vcpu(v).core).proc_stat_at(t);
}

SimTime VirtualMachine::vcpu_cpu_time_at(int v, SimTime t) const {
  const VCpu& vc = vcpu(v);
  return machine_.core(vc.core).context_cpu_time_at(vc.ctx, t);
}

void VirtualMachine::set_weight(double weight) {
  for (const VCpu& vc : vcpus_)
    machine_.core(vc.core).set_weight(vc.ctx, weight);
}

}  // namespace cloudlb

#pragma once

#include <memory>
#include <vector>

#include "sim/engine_core.h"
#include "vm/virtual_machine.h"

namespace cloudlb {

/// A synthetic CPU-hog workload inside its own VM, used for controlled
/// interference in tests and ablations (the paper's real background load —
/// a 2-core Wave2D job — is built from the runtime layer instead).
///
/// While active it repeatedly issues compute chunks with a configurable
/// duty cycle: duty 1.0 saturates its vCPU, 0.5 alternates equal compute
/// and idle phases.
class SyntheticInterferer {
 public:
  struct Config {
    double duty_cycle = 1.0;                   ///< fraction of time computing
    SimTime chunk = SimTime::millis(10);       ///< granularity of one burst
    double weight = 1.0;                       ///< scheduler share of the VM
  };

  /// `sim` is the engine that clocks the hog's idle gaps. In the legacy
  /// runtime that is the one Simulator; in the sharded runtime it must be
  /// the engine owning every core in `cores` (the fault layer builds one
  /// hog per core, so this is one shard's engine).
  SyntheticInterferer(EngineCore& sim, Machine& machine,
                      std::vector<CoreId> cores, Config config);
  SyntheticInterferer(EngineCore& sim, Machine& machine,
                      std::vector<CoreId> cores)
      : SyntheticInterferer(sim, machine, std::move(cores), Config{}) {}

  /// Begins hogging immediately; may be called again after stop().
  void start();

  /// Stops issuing new chunks (an in-flight chunk finishes naturally).
  void stop();

  bool active() const { return active_; }

  /// Total CPU consumed by the interferer so far, summed over its vCPUs.
  SimTime cpu_consumed() const;

  VirtualMachine& vm() { return *vm_; }

 private:
  void pump(int vcpu);

  EngineCore& sim_;
  Config config_;
  std::unique_ptr<VirtualMachine> vm_;
  bool active_ = false;
};

}  // namespace cloudlb

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machine/machine.h"

namespace cloudlb {

/// A virtual machine: a named set of vCPUs pinned to physical cores.
///
/// Each vCPU is a scheduler context on its physical core. Co-location —
/// two VMs owning vCPUs on the same core — is how interference arises:
/// the core's weighted processor sharing divides cycles between them,
/// exactly the multi-tenancy effect the paper studies. The `weight`
/// models the hypervisor/OS share given to this VM's vCPUs (the paper
/// observed the OS favouring the background job for Mol3D; that scenario
/// sets weight > 1 on the interfering VM).
class VirtualMachine {
 public:
  VirtualMachine(Machine& machine, std::string name,
                 std::vector<CoreId> pinned_cores, double weight = 1.0);

  const std::string& name() const { return name_; }
  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }

  /// Physical core backing vCPU `v`.
  CoreId core_of(int vcpu) const;

  /// Requests CPU consumption on a vCPU (see Core::demand).
  void demand(int vcpu, SimTime cpu_time, std::function<void()> on_complete);

  bool has_demand(int vcpu) const;

  /// Cumulative CPU consumed by a vCPU.
  SimTime vcpu_cpu_time(int vcpu) const;

  /// `/proc/stat` of the physical core backing vCPU `v` — what a guest
  /// reading host counters (or the LB daemon on the host) would see.
  ProcStat host_proc_stat(int vcpu) const;

  /// host_proc_stat extrapolated to `t` (see Core::proc_stat_at for the
  /// exactness contract). The sharded runtime samples all PEs at one
  /// global instant even though their engines' clocks lag behind it.
  ProcStat host_proc_stat_at(int vcpu, SimTime t) const;

  /// vcpu_cpu_time extrapolated to `t` (same contract).
  SimTime vcpu_cpu_time_at(int vcpu, SimTime t) const;

  /// Changes the scheduler weight of every vCPU of this VM.
  void set_weight(double weight);

 private:
  struct VCpu {
    CoreId core;
    ContextId ctx;
  };

  const VCpu& vcpu(int v) const;

  Machine& machine_;
  std::string name_;
  std::vector<VCpu> vcpus_;
};

}  // namespace cloudlb

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cloudlb {

/// Entry point of the `cloudlb` command-line tool, separated from main()
/// so tests can drive it with captured streams.
///
/// Subcommands:
///   penalty   — one penalty experiment (app + balancer + cores)
///   sweep     — the Figure-2/4 grid over core counts and balancers
///   timeline  — run a scenario and render the per-core ASCII timeline
///   apps      — list bundled applications
///   balancers — list balancer strategies
///   help      — usage
///
/// Returns a process exit code (0 on success, 1 on usage errors).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace cloudlb

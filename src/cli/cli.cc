#include "cli/cli.h"

#include <fstream>
#include <ostream>

#include "apps/app_factory.h"
#include "core/balancer_factory.h"
#include "core/forecasting_estimator.h"
#include "core/replay.h"
#include "core/scenario.h"
#include "faults/fault_spec.h"
#include "lb/stats_io.h"
#include "metrics/profile.h"
#include "util/check.h"
#include "util/options.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cloudlb {

namespace {

constexpr const char* kUsage = R"usage(cloudlb — interference-aware load balancing playground

usage: cloudlb <command> [options]

commands:
  penalty    run one interference experiment and report penalties
             --app=jacobi2d|wave2d|mol3d   (default jacobi2d)
             --balancer=<name>             (default ia-refine; see `balancers`)
             --cores=N                     (default 8)
             --iterations=N                (default 60)
             --lb-period=N                 (default 5)
             --epsilon=F                   (fraction of T_avg, default 0.05)
             --bg-iterations=N             (default 150)
             --bg-weight=F                 (default 1.0)
             --tenants=N                   (bursty tenant VMs on random
                                            cores; replaces the 2-core BG
                                            job unless --with-bg)
             --faults=SPEC                 (fault-injection spec, e.g.
                                            "spike(core=2,start=0.5,duration=1);
                                            drop(prob=0.1);seed(value=42)";
                                            see docs/fault-injection.md.
                                            Applies to the interfered run
                                            only; baselines stay clean)
             --migration-retries=N         (retry failed migrations up to N
                                            times with doubling backoff;
                                            default 0)
             --shards=N                    (partition the cluster's nodes
                                            into N shards, each with its
                                            own event engine and LB-
                                            database segment; compute
                                            phases run as conservative
                                            windows, collective phases in
                                            canonical global order;
                                            results are bit-identical to
                                            --shards=1 = the legacy
                                            single-engine path; see
                                            docs/sharded-engine.md)
             --jobs=N                      (run shard windows on N worker
                                            threads when --shards > 1;
                                            0 = all hardware threads;
                                            default 1 = serial windows;
                                            output identical for every N)
             --lb-fallback                 (keep the last-good assignment
                                            when a stats window is garbage)
             --estimator-window=N          (median-of-N outlier clamp on the
                                            background estimate; default 0
                                            = the paper's raw estimate;
                                            N must be 0 or >= 3)
             --estimator-clamp-factor=F    (clamp ceiling multiplier over
                                            the window median; default 4,
                                            must be >= 1)
             --estimator=MODE              (persist|ewma|trend|regress:
                                            forecast the background load
                                            one window ahead and balance
                                            proactively; default persist
                                            = the paper's last-window
                                            persistence; see
                                            docs/estimators.md)
             --forecast-horizon=F          (windows ahead to extrapolate;
                                            default 1, must be > 0)
             --forecast-margin=F           (confidence-band multiplier
                                            added to the prediction;
                                            default 0, must be >= 0)
             --csv                         (emit CSV instead of a table)
  sweep      the Figure-2/4 grid
             --app=..., --cores=4,8,16,32, --balancers=null,ia-refine
             --jobs=N  (run grid cells on N threads; 0 = all hardware
                        threads; output is identical for every N)
             (other penalty options apply)
  timeline   run one scenario and draw per-core ASCII timelines
             --app=..., --balancer=..., --cores=N (<= 8 renders best),
             --width=N (default 100)
  record     run one interfered scenario, recording every LB window
             --out=FILE (required; other penalty options apply)
  replay     score a strategy offline against a recorded trace
             --trace=FILE (required), --balancer=<name>, --epsilon=F
  apps       list bundled applications
  balancers  list balancer strategies
  help       this text
)usage";

ScenarioConfig config_from(Options& options,
                           bool scalar_cores_and_balancer = true) {
  ScenarioConfig config;
  config.app.name = options.get_string("app", "jacobi2d");
  config.app.iterations =
      static_cast<int>(options.get_int("iterations", 60));
  if (scalar_cores_and_balancer) {
    config.app_cores = static_cast<int>(options.get_int("cores", 8));
    config.balancer = options.get_string("balancer", "ia-refine");
  }
  config.lb_period = static_cast<int>(options.get_int("lb-period", 5));
  config.lb_options.epsilon_fraction = options.get_double("epsilon", 0.05);
  config.bg_iterations =
      static_cast<int>(options.get_int("bg-iterations", 150));
  config.bg_weight = options.get_double("bg-weight", 1.0);
  config.tenants = static_cast<int>(options.get_int("tenants", 0));
  if (config.tenants > 0)
    config.with_background = options.get_bool("with-bg", false);
  config.faults = options.get_string("faults", "");
  // Parse eagerly so a typo fails before any simulation runs; only the
  // validation side effect (CheckFailure on malformed specs) is wanted
  // here — the scenario parses its own copy when it builds the injector.
  if (!config.faults.empty()) static_cast<void>(FaultPlan::parse(config.faults));
  config.job.migration_max_retries =
      static_cast<int>(options.get_int("migration-retries", 0));
  config.shards = static_cast<int>(options.get_int("shards", 1));
  CLB_CHECK_MSG(config.shards >= 1,
                "--shards must be at least 1; got " << config.shards);
  config.lb_options.robustness.fallback_on_insane_stats =
      options.get_bool("lb-fallback", false);
  // Validate the estimator knobs here, at parse time, with errors that
  // name the flag — mirroring the eager FaultPlan::parse above. Without
  // this, a bad value only surfaces as a CLB_CHECK abort deep inside the
  // estimator constructor, mid-run.
  LbRobustnessOptions& robustness = config.lb_options.robustness;
  robustness.estimator_window =
      static_cast<int>(options.get_int("estimator-window", 0));
  CLB_CHECK_MSG(
      robustness.estimator_window == 0 || robustness.estimator_window >= 3,
      "--estimator-window must be 0 (clamp off) or at least 3; got "
          << robustness.estimator_window);
  robustness.estimator_clamp_factor =
      options.get_double("estimator-clamp-factor", 4.0);
  CLB_CHECK_MSG(robustness.estimator_clamp_factor >= 1.0,
                "--estimator-clamp-factor must be at least 1.0 (a ceiling "
                "below the median would clamp everything); got "
                    << robustness.estimator_clamp_factor);
  // estimator_mode_from_name rejects unknown modes with the valid list.
  robustness.estimator_mode =
      estimator_mode_from_name(options.get_string("estimator", "persist"));
  robustness.forecast_horizon = options.get_double("forecast-horizon", 1.0);
  CLB_CHECK_MSG(robustness.forecast_horizon > 0.0,
                "--forecast-horizon must be positive; got "
                    << robustness.forecast_horizon);
  robustness.forecast_margin = options.get_double("forecast-margin", 0.0);
  CLB_CHECK_MSG(robustness.forecast_margin >= 0.0,
                "--forecast-margin must be non-negative; got "
                    << robustness.forecast_margin);
  return config;
}

void emit_table(const Table& table, bool csv, std::ostream& out) {
  if (csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
}

int cmd_penalty(Options& options, std::ostream& out) {
  ScenarioConfig config = config_from(options);
  // --jobs here sizes the shard worker team (sweep reuses the flag for
  // grid cells); windows merge canonically, so output is N-independent.
  int jobs = static_cast<int>(options.get_int("jobs", 1));
  if (jobs <= 0) jobs = hardware_jobs();
  config.shard_workers = jobs;
  const bool csv = options.get_bool("csv", false);
  options.check_unused();
  const PenaltyResult r = run_penalty_experiment(config);

  Table table({"metric", "value"});
  table.add_row({"app", config.app.name});
  table.add_row({"balancer", config.balancer});
  table.add_row({"cores", std::to_string(config.app_cores)});
  table.add_row(
      {"app solo (s)", Table::num(r.base.app_elapsed.to_seconds(), 3)});
  table.add_row({"app with interference (s)",
                 Table::num(r.combined.app_elapsed.to_seconds(), 3)});
  table.add_row({"app penalty (%)", Table::num(r.app_penalty_pct, 1)});
  table.add_row({"bg penalty (%)", Table::num(r.bg_penalty_pct, 1)});
  table.add_row(
      {"energy overhead (%)", Table::num(r.energy_overhead_pct, 1)});
  table.add_row({"avg power (W)",
                 Table::num(r.combined.avg_power_watts, 1)});
  table.add_row({"migrations", std::to_string(r.combined.lb_migrations)});
  emit_table(table, csv, out);
  return 0;
}

int cmd_sweep(Options& options, std::ostream& out) {
  ScenarioConfig base = config_from(options, /*scalar_cores_and_balancer=*/false);
  const std::vector<int> cores =
      options.get_int_list("cores", {4, 8, 16, 32});
  std::vector<std::string> balancers;
  {
    const std::string list =
        options.get_string("balancers", "null,ia-refine");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const auto comma = list.find(',', pos);
      balancers.push_back(list.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  const bool csv = options.get_bool("csv", false);
  int jobs = static_cast<int>(options.get_int("jobs", 1));
  if (jobs <= 0) jobs = hardware_jobs();
  options.check_unused();

  // Each grid cell runs an independent pair of scenarios whose RNGs are
  // seeded from the cell's config, so the table is byte-identical for
  // every --jobs value; rows are emitted in cores-major order regardless
  // of which thread finished first.
  const std::size_t n_cells = cores.size() * balancers.size();
  const std::vector<PenaltyResult> results = parallel_map<PenaltyResult>(
      n_cells, jobs, [&](std::size_t i) {
        ScenarioConfig config = base;
        config.app_cores = cores[i / balancers.size()];
        config.balancer = balancers[i % balancers.size()];
        return run_penalty_experiment(config);
      });

  Table table({"cores", "balancer", "app penalty %", "BG penalty %",
               "energy overhead %", "power W", "migrations"});
  for (std::size_t i = 0; i < n_cells; ++i) {
    const PenaltyResult& r = results[i];
    table.add_row({std::to_string(cores[i / balancers.size()]),
                   balancers[i % balancers.size()],
                   Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   Table::num(r.energy_overhead_pct, 1),
                   Table::num(r.combined.avg_power_watts, 1),
                   std::to_string(r.combined.lb_migrations)});
  }
  emit_table(table, csv, out);
  return 0;
}

int cmd_timeline(Options& options, std::ostream& out) {
  ScenarioConfig config = config_from(options);
  const int width = static_cast<int>(options.get_int("width", 100));
  options.check_unused();

  TimelineTracer tracer;
  const RunResult r = run_scenario(config, &tracer);
  const SimTime end = r.app_elapsed;

  out << config.app.name << " on " << config.app_cores << " cores, '"
      << config.balancer << "', 2-core background job\n"
      << "finished in " << end.to_string() << " with " << r.lb_migrations
      << " migrations\n\n";
  tracer.render_ascii(out, config.app_cores, SimTime::zero(), end, width);
  out << "\nper-core utilization (wall-interval semantics):\n";
  profile_table(
      profile_cores(tracer, config.app_cores, SimTime::zero(), end))
      .print(out);
  out << "\ntask wall-duration histogram (interference = long tail):\n";
  task_duration_histogram(tracer, config.app.name).print(out, "ms", 40);
  return 0;
}

int cmd_record(Options& options, std::ostream& out) {
  ScenarioConfig config = config_from(options);
  const std::string path = options.get_string("out");
  CLB_CHECK_MSG(!path.empty(), "record requires --out=FILE");
  options.check_unused();

  std::ofstream file{path};
  CLB_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
  auto recorder = std::make_unique<RecordingLb>(
      make_balancer(config.balancer, config.lb_options), &file);
  const RecordingLb* probe = recorder.get();
  const RunResult r = run_scenario_with(config, std::move(recorder));
  out << "recorded " << probe->windows_recorded() << " LB windows to "
      << path << " (run took " << r.app_elapsed.to_string() << ", "
      << r.lb_migrations << " migrations)\n";
  return 0;
}

int cmd_replay(Options& options, std::ostream& out) {
  const std::string path = options.get_string("trace");
  CLB_CHECK_MSG(!path.empty(), "replay requires --trace=FILE");
  const std::string balancer_name =
      options.get_string("balancer", "ia-refine");
  LbOptions lb_options;
  lb_options.epsilon_fraction = options.get_double("epsilon", 0.05);
  const bool csv = options.get_bool("csv", false);
  options.check_unused();

  std::ifstream file{path};
  CLB_CHECK_MSG(file.good(), "cannot open " << path);
  const std::vector<LbStats> windows = read_stats(file);
  const auto balancer = make_balancer(balancer_name, lb_options);
  const std::vector<ReplayRow> rows = replay_stats(windows, *balancer);

  Table table({"window", "max load before (s)", "max load after (s)",
               "migrations"});
  int total_migrations = 0;
  for (const ReplayRow& row : rows) {
    table.add_row({std::to_string(row.window),
                   Table::num(row.max_load_before, 4),
                   Table::num(row.max_load_after, 4),
                   std::to_string(row.migrations)});
    total_migrations += row.migrations;
  }
  emit_table(table, csv, out);
  out << balancer_name << ": " << total_migrations
      << " total migrations over " << rows.size() << " windows\n";
  return 0;
}

int cmd_list_apps(std::ostream& out) {
  for (const auto& name : app_names()) out << name << '\n';
  return 0;
}

int cmd_list_balancers(std::ostream& out) {
  for (const auto& name : balancer_names()) out << name << '\n';
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 1;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  Options options{rest};
  try {
    if (command == "penalty") return cmd_penalty(options, out);
    if (command == "sweep") return cmd_sweep(options, out);
    if (command == "timeline") return cmd_timeline(options, out);
    if (command == "record") return cmd_record(options, out);
    if (command == "replay") return cmd_replay(options, out);
    if (command == "apps") return cmd_list_apps(out);
    if (command == "balancers") return cmd_list_balancers(out);
    if (command == "help" || command == "--help") {
      out << kUsage;
      return 0;
    }
    err << "unknown command: " << command << "\n\n" << kUsage;
    return 1;
  } catch (const CheckFailure& failure) {
    err << "error: " << failure.what() << '\n';
    return 1;
  }
}

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// Classic Charm++-style RefineLB: moves chares away from PEs whose
/// *application* load exceeds the average, ignoring any background load.
///
/// Against pure internal imbalance it behaves like the paper's scheme, but
/// under VM interference it sees a perfectly balanced application and does
/// nothing — the failure mode that motivates the paper's contribution.
class RefineLb final : public LoadBalancer {
 public:
  explicit RefineLb(LbOptions options = {}) : options_{options} {}

  std::string name() const override { return "refine"; }
  std::vector<PeId> assign(const LbStats& stats) override;

 private:
  LbOptions options_;
};

}  // namespace cloudlb

#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// The paper's "noLB" baseline: never migrates anything.
class NullLb final : public LoadBalancer {
 public:
  std::string name() const override { return "null"; }
  std::vector<PeId> assign(const LbStats& stats) override;
};

}  // namespace cloudlb

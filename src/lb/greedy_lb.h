#pragma once

#include "lb/framework.h"

namespace cloudlb {

/// Classic Charm++-style GreedyLB: sorts chares by descending load and
/// assigns each to the currently least-loaded PE, rebuilding the mapping
/// from scratch.
///
/// It is interference-blind (ignores background load) and migrates
/// aggressively — both properties the paper's refinement scheme improves
/// on, which makes it the natural strong-but-naive baseline for ablations.
class GreedyLb final : public LoadBalancer {
 public:
  std::string name() const override { return "greedy"; }
  std::vector<PeId> assign(const LbStats& stats) override;
};

}  // namespace cloudlb

#include "lb/refinement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "lb/refinement_internal.h"
#include "util/check.h"
#include "util/validate.h"

namespace cloudlb {

namespace refinement_detail {

Problem build_problem(const LbStats& stats,
                      const std::vector<double>& external_load,
                      const RefinementOptions& options) {
  stats.validate();
  CLB_CHECK(external_load.size() == stats.pes.size());
  CLB_CHECK(options.epsilon_fraction >= 0.0);

  Problem p;
  p.num_pes = stats.pes.size();

  // Per-PE load = external (background) + migratable task CPU.   (Eq. 1)
  p.load = external_load;
  for (auto& l : p.load) l = std::max(l, 0.0);
  p.tasks.resize(p.num_pes);
  for (const auto& ch : stats.chares) {
    p.load[static_cast<std::size_t>(ch.pe)] += ch.cpu_sec;
    p.tasks[static_cast<std::size_t>(ch.pe)].push_back(ch.chare);
  }
  // Tasks per PE, sorted by descending cost (ties by chare id per policy).
  const bool low = options.tie_break == RefinementTieBreak::kLowestId;
  auto cost = [&](ChareId c) {
    return stats.chares[static_cast<std::size_t>(c)].cpu_sec;
  };
  for (auto& v : p.tasks)
    std::sort(v.begin(), v.end(), [&](ChareId a, ChareId b) {
      if (cost(a) != cost(b)) return cost(a) > cost(b);
      return low ? a < b : a > b;
    });

  double total = 0.0;
  for (double l : p.load) total += l;
  p.t_avg = total / static_cast<double>(p.num_pes);
  p.epsilon = options.epsilon_fraction * p.t_avg;
  p.limit = p.t_avg + p.epsilon;
  return p;
}

void finalize(const Problem& p, RefinementResult* result) {
  result->fully_balanced = true;
  result->max_load = 0.0;
  for (std::size_t i = 0; i < p.num_pes; ++i) {
    result->max_load = std::max(result->max_load, p.load[i]);
    if (std::abs(p.load[i] - p.t_avg) > p.epsilon + 1e-12)
      result->fully_balanced = false;
  }
}

void validate_refinement(const LbStats& stats,
                         const std::vector<double>& external_load,
                         const Problem& p, const RefinementResult& result) {
  CLB_CHECK_MSG(result.assignment.size() == stats.chares.size(),
                "refinement returned " << result.assignment.size()
                                       << " assignments for "
                                       << stats.chares.size() << " chares");
  std::vector<double> recomputed(p.num_pes, 0.0);
  for (std::size_t i = 0; i < p.num_pes; ++i)
    recomputed[i] = std::max(external_load[i], 0.0);
  for (std::size_t c = 0; c < result.assignment.size(); ++c) {
    const PeId pe = result.assignment[c];
    CLB_CHECK_MSG(pe >= 0 && static_cast<std::size_t>(pe) < p.num_pes,
                  "refinement assigned chare " << c << " to invalid PE "
                                               << pe);
    recomputed[static_cast<std::size_t>(pe)] += stats.chares[c].cpu_sec;
  }

  // The incremental load vector (maintained by ± task cost per move) may
  // drift from an exact recomputation by a few ULPs per migration; the
  // tolerance scales with the problem's magnitude.
  const double scale = std::max(1.0, p.t_avg * static_cast<double>(p.num_pes));
  const double tol = 1e-9 * scale;
  double total = 0.0;
  for (std::size_t i = 0; i < p.num_pes; ++i) {
    total += p.load[i];
    CLB_CHECK_MSG(std::abs(p.load[i] - recomputed[i]) <= tol,
                  "PE " << i << " load " << p.load[i]
                        << " disagrees with recomputation " << recomputed[i]);
  }
  // Eq. 1: refinement moves load between PEs but never creates or
  // destroys it, so the grand total must still be P · T_avg.
  CLB_CHECK_MSG(
      std::abs(total - p.t_avg * static_cast<double>(p.num_pes)) <= tol,
      "Eq. 1 conservation violated: total load "
          << total << " != P*T_avg "
          << p.t_avg * static_cast<double>(p.num_pes));
}

}  // namespace refinement_detail

namespace {

using refinement_detail::Problem;

struct HeapEntry {
  double load;
  PeId pe;
};

/// (load, PE) node of the underloaded index; multiset-ordered ascending by
/// load so `begin()` is always the least-loaded receiver.
using UnderNode = std::pair<double, PeId>;

}  // namespace

RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   const RefinementOptions& options) {
  RefinementResult result;
  result.assignment = stats.current_assignment();

  // Degenerate: no PEs. T_avg would divide by zero — there is nothing to
  // balance and nowhere to move anything, so report a no-op.
  if (stats.pes.empty()) {
    result.fully_balanced = true;
    return result;
  }

  Problem p =
      refinement_detail::build_problem(stats, external_load, options);

  // Degenerate: zero total load. ε = epsilon_fraction·T_avg collapses to 0
  // and the heavy/light classification loses meaning; every load is 0 (the
  // inputs are clamped/validated non-negative), so the instance is already
  // balanced.
  if (p.t_avg <= 0.0) {
    refinement_detail::finalize(p, &result);
    return result;
  }

  const bool low = options.tie_break == RefinementTieBreak::kLowestId;
  auto cost = [&](ChareId c) {
    return stats.chares[static_cast<std::size_t>(c)].cpu_sec;
  };

  // Max-heap of overloaded donors (Algorithm 1's overheap). Each heavy PE
  // is in the heap at most once: it is popped, mutated, and conditionally
  // re-pushed, so entries are never stale.
  auto heap_less = [low](const HeapEntry& a, const HeapEntry& b) {
    if (a.load != b.load) return a.load < b.load;
    return low ? a.pe > b.pe : a.pe < b.pe;  // preferred id surfaces first
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(heap_less)>
      overheap(heap_less);

  // Ordered index over the underloaded set, keyed by (load, PE id): the
  // least-loaded receiver — the only one whose feasibility matters, since
  // `fits` is monotone in receiver load — is *begin(), an O(1) peek, and
  // every insert/erase is O(log P).
  auto under_less = [low](const UnderNode& a, const UnderNode& b) {
    if (a.first != b.first) return a.first < b.first;
    return low ? a.second < b.second : a.second > b.second;
  };
  std::set<UnderNode, decltype(under_less)> underset(under_less);

  for (std::size_t i = 0; i < p.num_pes; ++i) {
    const auto pe = static_cast<PeId>(i);
    if (refinement_detail::is_heavy(p, pe)) {
      overheap.push(HeapEntry{p.load[i], pe});
    } else if (refinement_detail::is_light(p, pe)) {
      underset.insert(UnderNode{p.load[i], pe});
    }
  }

  // Main refinement loop (Algorithm 1, lines 10-15).
  int budget = options.max_migrations < 0 ? std::numeric_limits<int>::max()
                                          : options.max_migrations;
  while (!overheap.empty() && budget > 0) {
    const PeId donor = overheap.top().pe;
    overheap.pop();
    if (underset.empty()) continue;  // nobody can take work; drop donor

    // getBestCoreAndTask in O(log T + log P): the least-loaded receiver
    // bounds the absorbable cost at limit − its load, and the donor's
    // descending-sorted task list is binary-searched for the largest task
    // under that bound (ties already resolved by the sort order).
    const UnderNode receiver_node = *underset.begin();
    const double receiver_load = receiver_node.first;
    const PeId receiver = receiver_node.second;
    auto& donor_tasks = p.tasks[static_cast<std::size_t>(donor)];
    const auto it = std::partition_point(
        donor_tasks.begin(), donor_tasks.end(), [&](ChareId t) {
          return !refinement_detail::fits(p, cost(t), receiver_load);
        });
    // Zero-cost tasks are unmovable gain; a donor with no positive-cost
    // movable task cannot be relieved and leaves the heap (line 12).
    if (it == donor_tasks.end() || cost(*it) <= 0.0) continue;

    // Perform the transfer and update loads, heap and index (lines 13-14).
    const ChareId moved = *it;
    const double c = cost(moved);
    donor_tasks.erase(it);
    underset.erase(underset.begin());
    p.load[static_cast<std::size_t>(donor)] -= c;
    p.load[static_cast<std::size_t>(receiver)] += c;
    result.assignment[static_cast<std::size_t>(moved)] = receiver;
    ++result.migrations;
    --budget;

    // updateHeapAndSet (line 14): reclassify both endpoints. A donor that
    // overshoots below the tolerance band becomes a receiver candidate; a
    // receiver stays in the index (with its new key) while still light.
    // Received tasks never need to join the receiver's donation list: the
    // Eq. 3 guard keeps receivers at or below T_avg + ε, so they can never
    // turn into donors later.
    if (refinement_detail::is_heavy(p, donor)) {
      overheap.push(HeapEntry{p.load[static_cast<std::size_t>(donor)], donor});
    } else if (refinement_detail::is_light(p, donor)) {
      underset.insert(
          UnderNode{p.load[static_cast<std::size_t>(donor)], donor});
    }
    if (refinement_detail::is_light(p, receiver)) {
      underset.insert(
          UnderNode{p.load[static_cast<std::size_t>(receiver)], receiver});
    }
  }

  refinement_detail::finalize(p, &result);
  if (validation_enabled())
    refinement_detail::validate_refinement(stats, external_load, p, result);
  return result;
}

RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   double epsilon_fraction) {
  RefinementOptions options;
  options.epsilon_fraction = epsilon_fraction;
  return refine_assignment(stats, external_load, options);
}

}  // namespace cloudlb

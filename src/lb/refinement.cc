#include "lb/refinement.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "util/check.h"

namespace cloudlb {

namespace {

struct HeapEntry {
  double load;
  PeId pe;
  bool operator<(const HeapEntry& o) const {
    if (load != o.load) return load < o.load;
    return pe > o.pe;  // smaller id wins ties at equal load
  }
};

}  // namespace

RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   double epsilon_fraction) {
  stats.validate();
  CLB_CHECK(external_load.size() == stats.pes.size());
  CLB_CHECK(epsilon_fraction >= 0.0);

  const std::size_t num_pes = stats.pes.size();
  RefinementResult result;
  result.assignment = stats.current_assignment();

  // Per-PE load = external (background) + migratable task CPU.   (Eq. 1)
  std::vector<double> load(external_load);
  for (auto& l : load) l = std::max(l, 0.0);
  // Tasks per PE, kept sorted by descending cost (stable by chare id).
  std::vector<std::vector<ChareId>> tasks(num_pes);
  for (const auto& ch : stats.chares) {
    load[static_cast<std::size_t>(ch.pe)] += ch.cpu_sec;
    tasks[static_cast<std::size_t>(ch.pe)].push_back(ch.chare);
  }
  auto cost = [&](ChareId c) {
    return stats.chares[static_cast<std::size_t>(c)].cpu_sec;
  };
  for (auto& v : tasks)
    std::sort(v.begin(), v.end(), [&](ChareId a, ChareId b) {
      if (cost(a) != cost(b)) return cost(a) > cost(b);
      return a < b;
    });

  double total = 0.0;
  for (double l : load) total += l;
  const double t_avg = total / static_cast<double>(num_pes);
  const double epsilon = epsilon_fraction * t_avg;

  const auto is_heavy = [&](PeId p) {
    return load[static_cast<std::size_t>(p)] - t_avg > epsilon;
  };
  const auto is_light = [&](PeId p) {
    return t_avg - load[static_cast<std::size_t>(p)] > epsilon;
  };

  // createOverheapAndUnderset (Algorithm 1, lines 2-9).
  std::priority_queue<HeapEntry> overheap;
  std::set<PeId> underset;
  for (std::size_t p = 0; p < num_pes; ++p) {
    const auto pe = static_cast<PeId>(p);
    if (is_heavy(pe)) {
      overheap.push(HeapEntry{load[p], pe});
    } else if (is_light(pe)) {
      underset.insert(pe);
    }
  }

  // Main refinement loop (Algorithm 1, lines 10-15).
  while (!overheap.empty()) {
    const PeId donor = overheap.top().pe;
    overheap.pop();
    auto& donor_tasks = tasks[static_cast<std::size_t>(donor)];

    // getBestCoreAndTask: the donor's largest task that some underloaded
    // core can absorb without itself becoming overloaded (Eq. 3 guard).
    std::size_t best_task_idx = donor_tasks.size();
    PeId best_core = -1;
    for (std::size_t t = 0; t < donor_tasks.size(); ++t) {
      const double c = cost(donor_tasks[t]);
      if (c <= 0.0) break;  // sorted: the rest are zero-cost, unmovable gain
      double best_load = 0.0;
      for (const PeId cand : underset) {
        const double after = load[static_cast<std::size_t>(cand)] + c;
        if (after - t_avg > epsilon) continue;  // would overload receiver
        if (best_core == -1 || load[static_cast<std::size_t>(cand)] < best_load) {
          best_core = cand;
          best_load = load[static_cast<std::size_t>(cand)];
        }
      }
      if (best_core != -1) {
        best_task_idx = t;
        break;  // tasks are sorted descending: this is the biggest movable
      }
    }

    if (best_core == -1) continue;  // donor cannot be relieved; drop it

    // Perform the transfer and update loads, heap and set (lines 13-14).
    const ChareId moved = donor_tasks[best_task_idx];
    donor_tasks.erase(donor_tasks.begin() +
                      static_cast<std::ptrdiff_t>(best_task_idx));
    const double c = cost(moved);
    load[static_cast<std::size_t>(donor)] -= c;
    load[static_cast<std::size_t>(best_core)] += c;
    result.assignment[static_cast<std::size_t>(moved)] = best_core;
    ++result.migrations;
    // Keep the receiver's task list coherent for potential later inspection.
    auto& recv_tasks = tasks[static_cast<std::size_t>(best_core)];
    recv_tasks.insert(
        std::lower_bound(recv_tasks.begin(), recv_tasks.end(), moved,
                         [&](ChareId a, ChareId b) {
                           if (cost(a) != cost(b)) return cost(a) > cost(b);
                           return a < b;
                         }),
        moved);

    // updateHeapAndSet (line 14): reclassify both endpoints. A donor that
    // overshoots below the tolerance band becomes a receiver candidate.
    if (is_heavy(donor)) {
      overheap.push(HeapEntry{load[static_cast<std::size_t>(donor)], donor});
    } else if (is_light(donor)) {
      underset.insert(donor);
    }
    if (!is_light(best_core)) underset.erase(best_core);
  }

  result.fully_balanced = true;
  for (std::size_t p = 0; p < num_pes; ++p) {
    if (std::abs(load[p] - t_avg) > epsilon + 1e-12) {
      result.fully_balanced = false;
      break;
    }
  }
  return result;
}

}  // namespace cloudlb

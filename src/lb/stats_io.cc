#include "lb/stats_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace cloudlb {

void write_stats(std::ostream& os, const LbStats& stats, int window_index) {
  stats.validate();
  os << "window " << window_index << '\n';
  os.precision(17);  // round-trip doubles exactly
  for (const PeSample& pe : stats.pes)
    os << "pe " << pe.pe << ' ' << pe.core << ' ' << pe.wall_sec << ' '
       << pe.core_idle_sec << ' ' << pe.task_cpu_sec << '\n';
  for (const ChareSample& ch : stats.chares)
    os << "chare " << ch.chare << ' ' << ch.pe << ' ' << ch.cpu_sec << ' '
       << ch.bytes << '\n';
  os << "end\n";
}

std::vector<LbStats> read_stats(std::istream& is) {
  std::vector<LbStats> windows;
  LbStats current;
  bool in_window = false;
  std::string line;
  int line_number = 0;

  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    if (kind == "window") {
      CLB_CHECK_MSG(!in_window, "line " << line_number
                                        << ": nested 'window' record");
      current = LbStats{};
      in_window = true;
    } else if (kind == "pe") {
      CLB_CHECK_MSG(in_window, "line " << line_number
                                       << ": 'pe' outside a window");
      PeSample pe;
      fields >> pe.pe >> pe.core >> pe.wall_sec >> pe.core_idle_sec >>
          pe.task_cpu_sec;
      CLB_CHECK_MSG(!fields.fail(), "line " << line_number
                                            << ": malformed 'pe' record");
      current.pes.push_back(pe);
    } else if (kind == "chare") {
      CLB_CHECK_MSG(in_window, "line " << line_number
                                       << ": 'chare' outside a window");
      ChareSample ch;
      fields >> ch.chare >> ch.pe >> ch.cpu_sec >> ch.bytes;
      CLB_CHECK_MSG(!fields.fail(), "line " << line_number
                                            << ": malformed 'chare' record");
      current.chares.push_back(ch);
    } else if (kind == "end") {
      CLB_CHECK_MSG(in_window, "line " << line_number
                                       << ": 'end' outside a window");
      current.validate();
      windows.push_back(std::move(current));
      in_window = false;
    } else {
      CLB_CHECK_MSG(false,
                    "line " << line_number << ": unknown record '" << kind
                            << "'");
    }
  }
  CLB_CHECK_MSG(!in_window, "trace ends inside a window (missing 'end')");
  return windows;
}

RecordingLb::RecordingLb(std::unique_ptr<LoadBalancer> inner,
                         std::ostream* sink)
    : inner_{std::move(inner)}, sink_{sink} {
  CLB_CHECK(inner_ != nullptr);
  CLB_CHECK(sink_ != nullptr);
}

std::string RecordingLb::name() const {
  return inner_->name() + "+record";
}

std::vector<PeId> RecordingLb::assign(const LbStats& stats) {
  write_stats(*sink_, stats, windows_);
  ++windows_;
  return inner_->assign(stats);
}

}  // namespace cloudlb

#include "lb/null_lb.h"

namespace cloudlb {

std::vector<PeId> NullLb::assign(const LbStats& stats) {
  return stats.current_assignment();
}

}  // namespace cloudlb

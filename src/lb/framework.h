#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cloudlb {

using PeId = std::int32_t;
using ChareId = std::int32_t;

/// Per-PE measurements accumulated since the previous load-balancing step —
/// the simulated equivalent of the Charm++ LB database plus the host's
/// `/proc/stat` counters the paper samples.
///
/// All durations are in seconds over the LB window. `wall_sec` is T_lb in
/// the paper's Eq. 2; `core_idle_sec` is t_idle (idle time of the *physical
/// core*, which is near zero when an interfering VM keeps the core busy);
/// `task_cpu_sec` is Σ_i t_p_i, the CPU consumed by the application's own
/// tasks.
struct PeSample {
  PeId pe = 0;
  std::int32_t core = 0;       ///< physical core id (for placement-aware LBs)
  double wall_sec = 0.0;       ///< T_lb: wall-clock length of the window
  double core_idle_sec = 0.0;  ///< t_idle from the host core's /proc/stat
  double task_cpu_sec = 0.0;   ///< Σ t_p_i from the LB database
};

/// Per-chare measurement over the LB window.
struct ChareSample {
  ChareId chare = 0;
  PeId pe = 0;                 ///< current host PE
  double cpu_sec = 0.0;        ///< CPU consumed by this chare's tasks
  std::size_t bytes = 0;       ///< serialized size, for migration cost
};

/// Input to a load-balancing strategy.
struct LbStats {
  std::vector<PeSample> pes;       ///< indexed by PE id
  std::vector<ChareSample> chares; ///< indexed by chare id

  /// Current assignment as a dense vector: chare -> PE.
  std::vector<PeId> current_assignment() const;

  /// Sanity-checks internal consistency (ids dense, PEs valid).
  void validate() const;
};

/// Strategy interface. Given the measured window, returns the new
/// chare -> PE assignment (dense, same length as stats.chares). Returning
/// the current assignment means "no migrations".
///
/// Strategies must be deterministic functions of (stats, their own config
/// and RNG state) — the runtime calls them at a global barrier, so they
/// see a consistent snapshot.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual std::string name() const = 0;
  virtual std::vector<PeId> assign(const LbStats& stats) = 0;
};

/// How a balancer turns the per-PE background series (Eq. 2) into the
/// load it balances against (see docs/estimators.md). kPersist is the
/// paper's principle of persistence — the last window, verbatim; the
/// other modes forecast one window ahead so refinement can migrate
/// *before* a predicted spike lands.
enum class EstimatorMode {
  kPersist,  ///< last window predicts the next (the paper's scheme)
  kEwma,     ///< exponentially weighted level, flat forecast
  kTrend,    ///< Holt-style level + velocity, linear forecast
  kRegress,  ///< windowed least-squares line fit
};

/// Degradation behaviour under hostile measurements (see
/// docs/fault-injection.md). Everything defaults to off, so faultless
/// runs are bit-identical to the paper's scheme.
struct LbRobustnessOptions {
  /// When the stats snapshot fails the sanity test (non-finite or
  /// physically impossible PE counters), keep the current assignment —
  /// the last one a good window produced — instead of balancing on
  /// garbage.
  bool fallback_on_insane_stats = false;

  /// Window length of the background estimator's median-of-window outlier
  /// clamp; 0 disables it (the paper's raw last-window estimate).
  int estimator_window = 0;

  /// Ceiling multiplier of the outlier clamp: a new estimate may exceed
  /// the window median by at most this factor (plus a small slack).
  double estimator_clamp_factor = 4.0;

  /// Forecasting mode layered on top of the (optionally clamped) Eq. 2
  /// series: the clamp runs first, the forecaster sees the clamped
  /// values. kPersist leaves the series untouched — byte-identical to
  /// the paper's behaviour, pinned by the golden trace digest.
  EstimatorMode estimator_mode = EstimatorMode::kPersist;

  /// How far ahead the forecaster extrapolates, in LB windows. 1.0 is
  /// "the next window" (the horizon refinement actually balances for).
  double forecast_horizon = 1.0;

  /// Confidence-band multiplier added to the prediction: the balancer
  /// plans against `predicted + margin · band`, trading a little
  /// pessimism for fewer mispredict-triggered re-migrations. 0 plans
  /// against the point prediction alone.
  double forecast_margin = 0.0;

  /// Smoothing weight of the newest observation for the EWMA and trend
  /// forecasters, in (0, 1].
  double forecast_alpha = 0.5;

  /// History length of the windowed-least-squares forecaster (>= 2).
  int forecast_window = 8;
};

/// Tuning shared by the refinement-style strategies.
struct LbOptions {
  /// ε in the paper's Eq. 3, expressed as a fraction of T_avg: a PE is
  /// over/underloaded when it deviates from the average by more than
  /// `epsilon_fraction · T_avg`.
  double epsilon_fraction = 0.05;

  /// Hard cap on migrations per LB invocation for refinement-style
  /// strategies; negative means unlimited. Bounds the per-step migration
  /// burst (pack/transfer/unpack traffic) on large machines.
  int max_migrations = -1;

  /// Seed for randomized strategies.
  std::uint64_t seed = 1;

  /// What one byte of chare state costs to migrate end-to-end
  /// (pack + transfer + unpack), used by cost-gated strategies. The
  /// default matches the library's default migration model (~1 ns/B pack,
  /// ~1 ns/B unpack, ~1 GB/s network).
  double migration_sec_per_byte_hint = 3e-9;

  LbRobustnessOptions robustness;
};

}  // namespace cloudlb

#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Serialization of LbStats windows to a simple line-oriented text format,
/// enabling the record-and-replay workflow: capture the measurement
/// windows of a live run once, then evaluate any number of strategies
/// against them offline (no simulation required).
///
/// Format (whitespace-separated, one record per line):
///
///     window <index>
///     pe <id> <core> <wall_sec> <idle_sec> <task_cpu_sec>
///     chare <id> <pe> <cpu_sec> <bytes>
///     end
///
/// Windows appear in the order the run produced them.
void write_stats(std::ostream& os, const LbStats& stats, int window_index);

/// Reads every window in the stream. Throws CheckFailure on malformed
/// input. Returns an empty vector for an empty stream.
std::vector<LbStats> read_stats(std::istream& is);

/// Decorator that forwards to an inner strategy while appending every
/// window it sees to `sink` — attach to a live job to produce a trace.
class RecordingLb final : public LoadBalancer {
 public:
  RecordingLb(std::unique_ptr<LoadBalancer> inner, std::ostream* sink);

  std::string name() const override;
  std::vector<PeId> assign(const LbStats& stats) override;

  int windows_recorded() const { return windows_; }

 private:
  std::unique_ptr<LoadBalancer> inner_;
  std::ostream* sink_;
  int windows_ = 0;
};

}  // namespace cloudlb

#include "lb/refine_lb.h"

#include "lb/refinement.h"

namespace cloudlb {

std::vector<PeId> RefineLb::assign(const LbStats& stats) {
  // Interference-blind: external load is identically zero.
  const std::vector<double> no_external(stats.pes.size(), 0.0);
  return refine_assignment(stats, no_external,
                           make_refinement_options(options_))
      .assignment;
}

}  // namespace cloudlb

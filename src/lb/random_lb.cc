#include "lb/random_lb.h"

namespace cloudlb {

std::vector<PeId> RandomLb::assign(const LbStats& stats) {
  stats.validate();
  std::vector<PeId> assignment(stats.chares.size());
  for (auto& pe : assignment)
    pe = static_cast<PeId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(stats.pes.size()) - 1));
  return assignment;
}

}  // namespace cloudlb

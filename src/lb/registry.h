#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Creates one of the baseline strategies by name:
/// "null", "greedy", "refine", "random".
/// Returns nullptr for unknown names (the core layer extends this set with
/// the paper's strategies via cloudlb::make_balancer).
std::unique_ptr<LoadBalancer> make_baseline_balancer(const std::string& name,
                                                     LbOptions options = {});

/// Names accepted by make_baseline_balancer.
std::vector<std::string> baseline_balancer_names();

}  // namespace cloudlb

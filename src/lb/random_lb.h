#pragma once

#include "lb/framework.h"
#include "util/rng.h"

namespace cloudlb {

/// Assigns every chare to a uniformly random PE. A deliberately poor
/// strategy used as a lower bound in ablations and to exercise the
/// migration machinery heavily in tests.
class RandomLb final : public LoadBalancer {
 public:
  explicit RandomLb(LbOptions options = {}) : rng_{options.seed} {}

  std::string name() const override { return "random"; }
  std::vector<PeId> assign(const LbStats& stats) override;

 private:
  Rng rng_;
};

}  // namespace cloudlb

#pragma once

#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Deterministic tie-break policy for the refinement engine. Ties happen in
/// three places — equal donor loads in the max-heap, equal receiver loads in
/// the underloaded index, equal task costs inside a donor — and the policy
/// resolves all three the same way so a run is reproducible bit-for-bit.
enum class RefinementTieBreak {
  kLowestId,   ///< prefer the smaller PE / chare id (historical behaviour)
  kHighestId,  ///< prefer the larger id (useful to shake out order bugs)
};

/// Tuning for one `refine_assignment` invocation.
struct RefinementOptions {
  /// ε in the paper's Eq. 3 as a fraction of T_avg: a PE is over/underloaded
  /// when it deviates from the average by more than `epsilon_fraction·T_avg`.
  double epsilon_fraction = 0.05;

  /// Hard cap on migrations per invocation; negative means unlimited. The
  /// engine performs exactly the first `max_migrations` moves of the
  /// uncapped schedule, so capped runs are prefixes of uncapped ones.
  int max_migrations = -1;

  /// Tie-break policy (see RefinementTieBreak).
  RefinementTieBreak tie_break = RefinementTieBreak::kLowestId;
};

/// Maps strategy-level LbOptions onto engine options.
inline RefinementOptions make_refinement_options(const LbOptions& base) {
  RefinementOptions opts;
  opts.epsilon_fraction = base.epsilon_fraction;
  opts.max_migrations = base.max_migrations;
  return opts;
}

/// Result of one refinement pass.
struct RefinementResult {
  std::vector<PeId> assignment;  ///< new chare -> PE mapping
  int migrations = 0;            ///< chares whose PE changed
  bool fully_balanced = false;   ///< every PE ended within ε of T_avg
  double max_load = 0.0;         ///< final max per-PE load (app + external)
};

/// The paper's Algorithm 1 ("Refinement Load Balancing for VM
/// Interference"), parameterized by the per-PE *external* (non-migratable)
/// load O_p so it can serve both the interference-aware scheme (O_p from
/// the background-load estimator, Eq. 2) and the interference-blind classic
/// RefineLB baseline (O_p ≡ 0).
///
/// Steps, following the paper's pseudocode:
///  1. T_avg = Σ_p (Σ_i t_p_i + O_p) / P                       (Eq. 1)
///  2. Cores with load − T_avg > ε go into a max-heap (`overheap`);
///     cores with T_avg − load > ε into the underloaded index.
///  3. While the heap is non-empty: pop the most overloaded donor, and move
///     its largest task that fits onto the least-loaded underloaded core
///     *without overloading it* (Eq. 3); update both loads and re-insert.
///  4. A donor none of whose tasks can move (all too big, or no receivers
///     left) is dropped from the heap — the run is then not fully
///     balanced, which the caller can observe via `fully_balanced`.
///
/// This is the scalable engine: the underloaded set lives in an ordered
/// index keyed by (load, PE id), so the "least-loaded receiver that can
/// absorb cost c without exceeding T_avg + ε" query is O(log P), and each
/// donor's descending-sorted task list is binary-searched for the largest
/// feasible task instead of being rescanned against the whole underset.
/// Total cost is O((T + M)·log P) for T tasks and M migrations (plus the
/// initial O(T log T) sort). See docs/refinement-engine.md.
///
/// Degenerate inputs are handled without UB: zero PEs returns a no-op
/// result immediately, and an all-zero total load (T_avg == 0, which would
/// collapse ε to 0) early-outs as already balanced.
RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   const RefinementOptions& options);

/// Convenience overload with default cap and tie-break.
RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   double epsilon_fraction);

/// Retained naive reference implementation of Algorithm 1 — the original
/// O(donors × tasks × |underset|) nested-scan kernel. Semantically (and,
/// by construction, bit-for-bit) identical to the indexed engine; kept for
/// the differential-testing harness (tests/refinement_diff_test.cc) and
/// the speedup micro-benchmark (bench/micro_refinement_sweep.cc). Do not
/// call it from production paths.
RefinementResult refine_assignment_naive(const LbStats& stats,
                                         const std::vector<double>& external_load,
                                         const RefinementOptions& options);

}  // namespace cloudlb

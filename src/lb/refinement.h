#pragma once

#include <vector>

#include "lb/framework.h"

namespace cloudlb {

/// Result of one refinement pass.
struct RefinementResult {
  std::vector<PeId> assignment;  ///< new chare -> PE mapping
  int migrations = 0;            ///< chares whose PE changed
  bool fully_balanced = false;   ///< every PE ended within ε of T_avg
};

/// The paper's Algorithm 1 ("Refinement Load Balancing for VM
/// Interference"), parameterized by the per-PE *external* (non-migratable)
/// load O_p so it can serve both the interference-aware scheme (O_p from
/// the background-load estimator, Eq. 2) and the interference-blind classic
/// RefineLB baseline (O_p ≡ 0).
///
/// Steps, following the paper's pseudocode:
///  1. T_avg = Σ_p (Σ_i t_p_i + O_p) / P                       (Eq. 1)
///  2. Cores with load − T_avg > ε go into a max-heap (`overheap`);
///     cores with T_avg − load > ε into `underset`.
///  3. While the heap is non-empty: pop the most overloaded donor, and move
///     its largest task that fits onto some underloaded core *without
///     overloading it* (Eq. 3); update both loads and re-insert.
///  4. A donor none of whose tasks can move (all too big, or underset
///     empty) is dropped from the heap — the run is then not fully
///     balanced, which the caller can observe via `fully_balanced`.
///
/// ε is `epsilon_fraction · T_avg`. Determinism: ties on load break by PE
/// id, ties on task size by chare id.
RefinementResult refine_assignment(const LbStats& stats,
                                   const std::vector<double>& external_load,
                                   double epsilon_fraction);

}  // namespace cloudlb

#pragma once

// Setup shared by the indexed production engine (refinement.cc) and the
// retained naive reference (refinement_naive.cc). Both must compute loads,
// T_avg, ε and the Eq. 3 feasibility bound with the exact same
// floating-point expressions — otherwise the differential harness would be
// chasing rounding ghosts instead of logic bugs.

#include <vector>

#include "lb/refinement.h"

namespace cloudlb::refinement_detail {

struct Problem {
  std::size_t num_pes = 0;
  std::vector<double> load;                 ///< per-PE O_p + Σ task cost
  std::vector<std::vector<ChareId>> tasks;  ///< per-PE, in donation order
  double t_avg = 0.0;
  double epsilon = 0.0;  ///< epsilon_fraction · T_avg
  double limit = 0.0;    ///< T_avg + ε, the Eq. 3 receiver ceiling
};

/// Validates (stats, external_load, options) and builds the shared problem
/// state. Task lists are sorted by descending cost; cost ties resolve by
/// chare id per `options.tie_break`.
Problem build_problem(const LbStats& stats,
                      const std::vector<double>& external_load,
                      const RefinementOptions& options);

inline bool is_heavy(const Problem& p, PeId pe) {
  return p.load[static_cast<std::size_t>(pe)] - p.t_avg > p.epsilon;
}
inline bool is_light(const Problem& p, PeId pe) {
  return p.t_avg - p.load[static_cast<std::size_t>(pe)] > p.epsilon;
}

/// A task of cost `c` fits on a receiver currently at `receiver_load`
/// without pushing it past T_avg + ε. Monotone in `receiver_load` even
/// under floating point, so feasibility for the least-loaded receiver
/// decides feasibility for the whole underloaded set.
inline bool fits(const Problem& p, double c, double receiver_load) {
  return c <= p.limit - receiver_load;
}

/// Fills `fully_balanced` and `max_load` from the final load vector.
void finalize(const Problem& p, RefinementResult* result);

/// Debug validator (validation_enabled() gates the engine's automatic
/// call): audits a finished refinement pass against the problem it was
/// built from. Checks Eq. 1 conservation — Σ load must still equal
/// P · T_avg within FP tolerance, since refinement only *moves* load —
/// plus assignment shape (dense, every PE in range) and agreement between
/// the incrementally-maintained load vector and a recomputation from the
/// final assignment. Throws CheckFailure on violation.
void validate_refinement(const LbStats& stats,
                         const std::vector<double>& external_load,
                         const Problem& p, const RefinementResult& result);

}  // namespace cloudlb::refinement_detail

#include "lb/registry.h"

#include "lb/greedy_lb.h"
#include "lb/null_lb.h"
#include "lb/random_lb.h"
#include "lb/refine_lb.h"

namespace cloudlb {

std::unique_ptr<LoadBalancer> make_baseline_balancer(const std::string& name,
                                                     LbOptions options) {
  if (name == "null") return std::make_unique<NullLb>();
  if (name == "greedy") return std::make_unique<GreedyLb>();
  if (name == "refine") return std::make_unique<RefineLb>(options);
  if (name == "random") return std::make_unique<RandomLb>(options);
  return nullptr;
}

std::vector<std::string> baseline_balancer_names() {
  return {"null", "greedy", "refine", "random"};
}

}  // namespace cloudlb

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "lb/framework.h"
#include "util/check.h"
#include "util/shard_annotations.h"

namespace cloudlb {

/// Per-shard aggregate of the quantities the paper's scheme balances on:
/// the application load (Σ task CPU from the shard's LB-database segment)
/// and the Eq. 2 background overhead O_p summed over the shard's PEs
/// (Σ_p [T_lb − t_idle − Σ_i t_p_i]).
///
/// The sharded runtime refreshes these at two cadences. At every window
/// barrier it rebuilds the cheap fields (load, tasks) in O(shards) from
/// the segments' running totals plus the exact idle counters — legal to
/// read there because all shard clocks sit exactly at the barrier. At
/// every LB step it rebuilds them from the very LbStats snapshot handed
/// to the strategy, so what the balancer saw and what the summaries say
/// are the same numbers.
struct ShardLoadSummary {
  int shard = 0;
  int pes = 0;                 ///< PEs of the job hosted on this shard
  std::int64_t tasks = 0;      ///< tasks executed this window (barrier path)
  double load_cpu_sec = 0.0;   ///< Σ task CPU over the shard's chares
  double wall_sec = 0.0;       ///< window wall clock (same for every PE)
  double idle_sec = 0.0;       ///< Σ host-core idle over the shard's PEs
  double overhead_sec = 0.0;   ///< Σ O_p (Eq. 2), clamped at 0 per PE
};

/// Builds per-shard summaries from an LbStats snapshot (the LB-step
/// cadence). `shard_of_pe` maps each PE to its shard; `shards` bounds it.
[[nodiscard]] CLB_CANONICAL_COMBINE inline std::vector<ShardLoadSummary>
shard_summaries_from_stats(
    const LbStats& stats, const std::vector<int>& shard_of_pe, int shards) {
  CLB_CHECK(shards >= 1);
  CLB_CHECK(shard_of_pe.size() == stats.pes.size());
  std::vector<ShardLoadSummary> out(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) out[static_cast<std::size_t>(s)].shard = s;
  for (std::size_t p = 0; p < stats.pes.size(); ++p) {
    const int s = shard_of_pe[p];
    CLB_CHECK(s >= 0 && s < shards);
    ShardLoadSummary& sum = out[static_cast<std::size_t>(s)];
    const PeSample& pe = stats.pes[p];
    ++sum.pes;
    sum.load_cpu_sec += pe.task_cpu_sec;
    sum.wall_sec = std::max(sum.wall_sec, pe.wall_sec);
    sum.idle_sec += pe.core_idle_sec;
    sum.overhead_sec +=
        std::max(0.0, pe.wall_sec - pe.core_idle_sec - pe.task_cpu_sec);
  }
  return out;
}

}  // namespace cloudlb

#include "lb/greedy_lb.h"

#include <algorithm>
#include <queue>

namespace cloudlb {

std::vector<PeId> GreedyLb::assign(const LbStats& stats) {
  stats.validate();

  std::vector<ChareId> order(stats.chares.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<ChareId>(i);
  std::sort(order.begin(), order.end(), [&](ChareId a, ChareId b) {
    const auto& ca = stats.chares[static_cast<std::size_t>(a)];
    const auto& cb = stats.chares[static_cast<std::size_t>(b)];
    if (ca.cpu_sec != cb.cpu_sec) return ca.cpu_sec > cb.cpu_sec;
    return a < b;  // deterministic tie-break
  });

  // Min-heap of (load, pe).
  using Entry = std::pair<double, PeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const auto& pe : stats.pes) heap.emplace(0.0, pe.pe);

  std::vector<PeId> assignment(stats.chares.size());
  for (const ChareId c : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    assignment[static_cast<std::size_t>(c)] = pe;
    heap.emplace(load + stats.chares[static_cast<std::size_t>(c)].cpu_sec, pe);
  }
  return assignment;
}

}  // namespace cloudlb

#include "lb/framework.h"

#include "util/check.h"

namespace cloudlb {

std::vector<PeId> LbStats::current_assignment() const {
  std::vector<PeId> out(chares.size());
  for (std::size_t i = 0; i < chares.size(); ++i) out[i] = chares[i].pe;
  return out;
}

void LbStats::validate() const {
  CLB_CHECK(!pes.empty());
  for (std::size_t p = 0; p < pes.size(); ++p)
    CLB_CHECK_MSG(pes[p].pe == static_cast<PeId>(p), "PE ids must be dense");
  for (std::size_t c = 0; c < chares.size(); ++c) {
    CLB_CHECK_MSG(chares[c].chare == static_cast<ChareId>(c),
                  "chare ids must be dense");
    CLB_CHECK_MSG(chares[c].pe >= 0 &&
                      static_cast<std::size_t>(chares[c].pe) < pes.size(),
                  "chare " << c << " assigned to invalid PE " << chares[c].pe);
    CLB_CHECK(chares[c].cpu_sec >= 0.0);
  }
}

}  // namespace cloudlb

// Retained naive reference kernel for Algorithm 1 — the original
// O(donors × tasks × |underset|) nested-scan implementation, kept verbatim
// in spirit so the differential harness (tests/refinement_diff_test.cc) and
// the speedup sweep (bench/micro_refinement_sweep.cc) have an independent
// oracle for the indexed engine in refinement.cc. It shares the problem
// setup and the heavy/light/fits predicates with the indexed engine so the
// two can only diverge through selection logic, never through arithmetic.

#include <limits>
#include <queue>
#include <set>

#include "lb/refinement.h"
#include "lb/refinement_internal.h"

namespace cloudlb {

namespace {

struct NaiveHeapEntry {
  double load;
  PeId pe;
  bool prefer_low;
  bool operator<(const NaiveHeapEntry& o) const {
    if (load != o.load) return load < o.load;
    return prefer_low ? pe > o.pe : pe < o.pe;
  }
};

}  // namespace

RefinementResult refine_assignment_naive(
    const LbStats& stats, const std::vector<double>& external_load,
    const RefinementOptions& options) {
  RefinementResult result;
  result.assignment = stats.current_assignment();
  if (stats.pes.empty()) {
    result.fully_balanced = true;
    return result;
  }

  refinement_detail::Problem p =
      refinement_detail::build_problem(stats, external_load, options);
  if (p.t_avg <= 0.0) {
    refinement_detail::finalize(p, &result);
    return result;
  }

  const bool low = options.tie_break == RefinementTieBreak::kLowestId;
  auto cost = [&](ChareId c) {
    return stats.chares[static_cast<std::size_t>(c)].cpu_sec;
  };

  // createOverheapAndUnderset (Algorithm 1, lines 2-9).
  std::priority_queue<NaiveHeapEntry> overheap;
  std::set<PeId> underset;
  for (std::size_t i = 0; i < p.num_pes; ++i) {
    const auto pe = static_cast<PeId>(i);
    if (refinement_detail::is_heavy(p, pe)) {
      overheap.push(NaiveHeapEntry{p.load[i], pe, low});
    } else if (refinement_detail::is_light(p, pe)) {
      underset.insert(pe);
    }
  }

  int budget = options.max_migrations < 0 ? std::numeric_limits<int>::max()
                                          : options.max_migrations;
  while (!overheap.empty() && budget > 0) {
    const PeId donor = overheap.top().pe;
    overheap.pop();
    auto& donor_tasks = p.tasks[static_cast<std::size_t>(donor)];

    // getBestCoreAndTask: the donor's largest task that some underloaded
    // core can absorb without itself becoming overloaded (Eq. 3 guard);
    // among feasible receivers the least-loaded wins, ties by id policy.
    std::size_t best_task_idx = donor_tasks.size();
    PeId best_core = -1;
    for (std::size_t t = 0; t < donor_tasks.size(); ++t) {
      const double c = cost(donor_tasks[t]);
      if (c <= 0.0) break;  // sorted: the rest are zero-cost, unmovable gain
      double best_load = 0.0;
      for (const PeId cand : underset) {
        const double cand_load = p.load[static_cast<std::size_t>(cand)];
        if (!refinement_detail::fits(p, c, cand_load)) continue;
        const bool better =
            best_core == -1 ||
            (low ? cand_load < best_load : cand_load <= best_load);
        if (better) {
          best_core = cand;
          best_load = cand_load;
        }
      }
      if (best_core != -1) {
        best_task_idx = t;
        break;  // tasks are sorted descending: this is the biggest movable
      }
    }

    if (best_core == -1) continue;  // donor cannot be relieved; drop it

    // Perform the transfer and update loads, heap and set (lines 13-14).
    const ChareId moved = donor_tasks[best_task_idx];
    donor_tasks.erase(donor_tasks.begin() +
                      static_cast<std::ptrdiff_t>(best_task_idx));
    const double c = cost(moved);
    p.load[static_cast<std::size_t>(donor)] -= c;
    p.load[static_cast<std::size_t>(best_core)] += c;
    result.assignment[static_cast<std::size_t>(moved)] = best_core;
    ++result.migrations;
    --budget;

    // updateHeapAndSet (line 14): reclassify both endpoints.
    if (refinement_detail::is_heavy(p, donor)) {
      overheap.push(
          NaiveHeapEntry{p.load[static_cast<std::size_t>(donor)], donor, low});
    } else if (refinement_detail::is_light(p, donor)) {
      underset.insert(donor);
    }
    if (!refinement_detail::is_light(p, best_core)) underset.erase(best_core);
  }

  refinement_detail::finalize(p, &result);
  return result;
}

}  // namespace cloudlb

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interference_demo "/root/repo/build/examples/interference_demo" "ia-refine" "4")
set_tests_properties(example_interference_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_energy_study "/root/repo/build/examples/energy_study" "jacobi2d")
set_tests_properties(example_energy_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_balancer "/root/repo/build/examples/custom_balancer")
set_tests_properties(example_custom_balancer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ampi_stencil "/root/repo/build/examples/ampi_stencil")
set_tests_properties(example_ampi_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cloud_multitenant "/root/repo/build/examples/cloud_multitenant" "2" "ia-refine")
set_tests_properties(example_cloud_multitenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/ampi_stencil.dir/ampi_stencil.cpp.o"
  "CMakeFiles/ampi_stencil.dir/ampi_stencil.cpp.o.d"
  "ampi_stencil"
  "ampi_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampi_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

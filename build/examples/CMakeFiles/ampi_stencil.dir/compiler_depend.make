# Empty compiler generated dependencies file for ampi_stencil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/interference_demo.dir/interference_demo.cpp.o"
  "CMakeFiles/interference_demo.dir/interference_demo.cpp.o.d"
  "interference_demo"
  "interference_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

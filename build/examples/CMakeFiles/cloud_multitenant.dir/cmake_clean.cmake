file(REMOVE_RECURSE
  "CMakeFiles/cloud_multitenant.dir/cloud_multitenant.cpp.o"
  "CMakeFiles/cloud_multitenant.dir/cloud_multitenant.cpp.o.d"
  "cloud_multitenant"
  "cloud_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

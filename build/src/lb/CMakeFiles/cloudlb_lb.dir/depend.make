# Empty dependencies file for cloudlb_lb.
# This may be replaced when dependencies are built.

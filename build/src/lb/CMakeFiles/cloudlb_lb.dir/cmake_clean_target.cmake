file(REMOVE_RECURSE
  "libcloudlb_lb.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/framework.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/framework.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/framework.cc.o.d"
  "/root/repo/src/lb/greedy_lb.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/greedy_lb.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/greedy_lb.cc.o.d"
  "/root/repo/src/lb/null_lb.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/null_lb.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/null_lb.cc.o.d"
  "/root/repo/src/lb/random_lb.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/random_lb.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/random_lb.cc.o.d"
  "/root/repo/src/lb/refine_lb.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/refine_lb.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/refine_lb.cc.o.d"
  "/root/repo/src/lb/refinement.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/refinement.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/refinement.cc.o.d"
  "/root/repo/src/lb/registry.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/registry.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/registry.cc.o.d"
  "/root/repo/src/lb/stats_io.cc" "src/lb/CMakeFiles/cloudlb_lb.dir/stats_io.cc.o" "gcc" "src/lb/CMakeFiles/cloudlb_lb.dir/stats_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

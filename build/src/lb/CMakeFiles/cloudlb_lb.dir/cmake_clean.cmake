file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_lb.dir/framework.cc.o"
  "CMakeFiles/cloudlb_lb.dir/framework.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/greedy_lb.cc.o"
  "CMakeFiles/cloudlb_lb.dir/greedy_lb.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/null_lb.cc.o"
  "CMakeFiles/cloudlb_lb.dir/null_lb.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/random_lb.cc.o"
  "CMakeFiles/cloudlb_lb.dir/random_lb.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/refine_lb.cc.o"
  "CMakeFiles/cloudlb_lb.dir/refine_lb.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/refinement.cc.o"
  "CMakeFiles/cloudlb_lb.dir/refinement.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/registry.cc.o"
  "CMakeFiles/cloudlb_lb.dir/registry.cc.o.d"
  "CMakeFiles/cloudlb_lb.dir/stats_io.cc.o"
  "CMakeFiles/cloudlb_lb.dir/stats_io.cc.o.d"
  "libcloudlb_lb.a"
  "libcloudlb_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_factory.cc" "src/apps/CMakeFiles/cloudlb_apps.dir/app_factory.cc.o" "gcc" "src/apps/CMakeFiles/cloudlb_apps.dir/app_factory.cc.o.d"
  "/root/repo/src/apps/jacobi2d.cc" "src/apps/CMakeFiles/cloudlb_apps.dir/jacobi2d.cc.o" "gcc" "src/apps/CMakeFiles/cloudlb_apps.dir/jacobi2d.cc.o.d"
  "/root/repo/src/apps/mol3d.cc" "src/apps/CMakeFiles/cloudlb_apps.dir/mol3d.cc.o" "gcc" "src/apps/CMakeFiles/cloudlb_apps.dir/mol3d.cc.o.d"
  "/root/repo/src/apps/stencil_base.cc" "src/apps/CMakeFiles/cloudlb_apps.dir/stencil_base.cc.o" "gcc" "src/apps/CMakeFiles/cloudlb_apps.dir/stencil_base.cc.o.d"
  "/root/repo/src/apps/wave2d.cc" "src/apps/CMakeFiles/cloudlb_apps.dir/wave2d.cc.o" "gcc" "src/apps/CMakeFiles/cloudlb_apps.dir/wave2d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cloudlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cloudlb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cloudlb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/cloudlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_apps.dir/app_factory.cc.o"
  "CMakeFiles/cloudlb_apps.dir/app_factory.cc.o.d"
  "CMakeFiles/cloudlb_apps.dir/jacobi2d.cc.o"
  "CMakeFiles/cloudlb_apps.dir/jacobi2d.cc.o.d"
  "CMakeFiles/cloudlb_apps.dir/mol3d.cc.o"
  "CMakeFiles/cloudlb_apps.dir/mol3d.cc.o.d"
  "CMakeFiles/cloudlb_apps.dir/stencil_base.cc.o"
  "CMakeFiles/cloudlb_apps.dir/stencil_base.cc.o.d"
  "CMakeFiles/cloudlb_apps.dir/wave2d.cc.o"
  "CMakeFiles/cloudlb_apps.dir/wave2d.cc.o.d"
  "libcloudlb_apps.a"
  "libcloudlb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

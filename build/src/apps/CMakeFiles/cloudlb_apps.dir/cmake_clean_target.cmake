file(REMOVE_RECURSE
  "libcloudlb_apps.a"
)

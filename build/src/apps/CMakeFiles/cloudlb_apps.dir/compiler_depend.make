# Empty compiler generated dependencies file for cloudlb_apps.
# This may be replaced when dependencies are built.

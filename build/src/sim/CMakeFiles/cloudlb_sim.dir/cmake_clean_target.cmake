file(REMOVE_RECURSE
  "libcloudlb_sim.a"
)

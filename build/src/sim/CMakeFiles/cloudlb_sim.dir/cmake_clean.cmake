file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_sim.dir/simulator.cc.o"
  "CMakeFiles/cloudlb_sim.dir/simulator.cc.o.d"
  "libcloudlb_sim.a"
  "libcloudlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cloudlb_sim.
# This may be replaced when dependencies are built.

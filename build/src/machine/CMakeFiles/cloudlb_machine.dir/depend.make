# Empty dependencies file for cloudlb_machine.
# This may be replaced when dependencies are built.

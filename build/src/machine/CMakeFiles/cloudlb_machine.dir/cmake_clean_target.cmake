file(REMOVE_RECURSE
  "libcloudlb_machine.a"
)

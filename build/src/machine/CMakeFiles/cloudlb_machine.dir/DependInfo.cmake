
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/core.cc" "src/machine/CMakeFiles/cloudlb_machine.dir/core.cc.o" "gcc" "src/machine/CMakeFiles/cloudlb_machine.dir/core.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/machine/CMakeFiles/cloudlb_machine.dir/machine.cc.o" "gcc" "src/machine/CMakeFiles/cloudlb_machine.dir/machine.cc.o.d"
  "/root/repo/src/machine/power.cc" "src/machine/CMakeFiles/cloudlb_machine.dir/power.cc.o" "gcc" "src/machine/CMakeFiles/cloudlb_machine.dir/power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

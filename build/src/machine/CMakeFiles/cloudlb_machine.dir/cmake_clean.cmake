file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_machine.dir/core.cc.o"
  "CMakeFiles/cloudlb_machine.dir/core.cc.o.d"
  "CMakeFiles/cloudlb_machine.dir/machine.cc.o"
  "CMakeFiles/cloudlb_machine.dir/machine.cc.o.d"
  "CMakeFiles/cloudlb_machine.dir/power.cc.o"
  "CMakeFiles/cloudlb_machine.dir/power.cc.o.d"
  "libcloudlb_machine.a"
  "libcloudlb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_metrics.dir/profile.cc.o"
  "CMakeFiles/cloudlb_metrics.dir/profile.cc.o.d"
  "CMakeFiles/cloudlb_metrics.dir/timeline.cc.o"
  "CMakeFiles/cloudlb_metrics.dir/timeline.cc.o.d"
  "libcloudlb_metrics.a"
  "libcloudlb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

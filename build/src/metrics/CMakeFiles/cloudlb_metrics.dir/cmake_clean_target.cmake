file(REMOVE_RECURSE
  "libcloudlb_metrics.a"
)

# Empty compiler generated dependencies file for cloudlb_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_cli.dir/cli.cc.o"
  "CMakeFiles/cloudlb_cli.dir/cli.cc.o.d"
  "libcloudlb_cli.a"
  "libcloudlb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

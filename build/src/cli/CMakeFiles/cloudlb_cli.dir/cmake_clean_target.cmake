file(REMOVE_RECURSE
  "libcloudlb_cli.a"
)

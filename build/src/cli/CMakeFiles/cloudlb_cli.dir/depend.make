# Empty dependencies file for cloudlb_cli.
# This may be replaced when dependencies are built.

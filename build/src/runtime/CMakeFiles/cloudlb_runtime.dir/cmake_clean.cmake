file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_runtime.dir/ampi.cc.o"
  "CMakeFiles/cloudlb_runtime.dir/ampi.cc.o.d"
  "CMakeFiles/cloudlb_runtime.dir/chare.cc.o"
  "CMakeFiles/cloudlb_runtime.dir/chare.cc.o.d"
  "CMakeFiles/cloudlb_runtime.dir/job.cc.o"
  "CMakeFiles/cloudlb_runtime.dir/job.cc.o.d"
  "CMakeFiles/cloudlb_runtime.dir/lb_database.cc.o"
  "CMakeFiles/cloudlb_runtime.dir/lb_database.cc.o.d"
  "CMakeFiles/cloudlb_runtime.dir/network.cc.o"
  "CMakeFiles/cloudlb_runtime.dir/network.cc.o.d"
  "libcloudlb_runtime.a"
  "libcloudlb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcloudlb_runtime.a"
)

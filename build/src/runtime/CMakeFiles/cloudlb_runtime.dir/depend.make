# Empty dependencies file for cloudlb_runtime.
# This may be replaced when dependencies are built.

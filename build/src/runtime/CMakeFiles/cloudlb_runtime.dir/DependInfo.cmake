
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/ampi.cc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/ampi.cc.o" "gcc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/ampi.cc.o.d"
  "/root/repo/src/runtime/chare.cc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/chare.cc.o" "gcc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/chare.cc.o.d"
  "/root/repo/src/runtime/job.cc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/job.cc.o" "gcc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/job.cc.o.d"
  "/root/repo/src/runtime/lb_database.cc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/lb_database.cc.o" "gcc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/lb_database.cc.o.d"
  "/root/repo/src/runtime/network.cc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/network.cc.o" "gcc" "src/runtime/CMakeFiles/cloudlb_runtime.dir/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/cloudlb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/cloudlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cloudlb_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

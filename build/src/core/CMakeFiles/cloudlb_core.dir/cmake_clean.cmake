file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_core.dir/background_estimator.cc.o"
  "CMakeFiles/cloudlb_core.dir/background_estimator.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/balancer_factory.cc.o"
  "CMakeFiles/cloudlb_core.dir/balancer_factory.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/gain_gated_lb.cc.o"
  "CMakeFiles/cloudlb_core.dir/gain_gated_lb.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/interference_aware_lb.cc.o"
  "CMakeFiles/cloudlb_core.dir/interference_aware_lb.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/replay.cc.o"
  "CMakeFiles/cloudlb_core.dir/replay.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/scenario.cc.o"
  "CMakeFiles/cloudlb_core.dir/scenario.cc.o.d"
  "CMakeFiles/cloudlb_core.dir/smoothed_lb.cc.o"
  "CMakeFiles/cloudlb_core.dir/smoothed_lb.cc.o.d"
  "libcloudlb_core.a"
  "libcloudlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/background_estimator.cc" "src/core/CMakeFiles/cloudlb_core.dir/background_estimator.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/background_estimator.cc.o.d"
  "/root/repo/src/core/balancer_factory.cc" "src/core/CMakeFiles/cloudlb_core.dir/balancer_factory.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/balancer_factory.cc.o.d"
  "/root/repo/src/core/gain_gated_lb.cc" "src/core/CMakeFiles/cloudlb_core.dir/gain_gated_lb.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/gain_gated_lb.cc.o.d"
  "/root/repo/src/core/interference_aware_lb.cc" "src/core/CMakeFiles/cloudlb_core.dir/interference_aware_lb.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/interference_aware_lb.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/cloudlb_core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/replay.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/cloudlb_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/smoothed_lb.cc" "src/core/CMakeFiles/cloudlb_core.dir/smoothed_lb.cc.o" "gcc" "src/core/CMakeFiles/cloudlb_core.dir/smoothed_lb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cloudlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/cloudlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cloudlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cloudlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cloudlb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cloudlb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

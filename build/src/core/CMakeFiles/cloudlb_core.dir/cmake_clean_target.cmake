file(REMOVE_RECURSE
  "libcloudlb_core.a"
)

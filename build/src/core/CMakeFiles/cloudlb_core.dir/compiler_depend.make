# Empty compiler generated dependencies file for cloudlb_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcloudlb_util.a"
)

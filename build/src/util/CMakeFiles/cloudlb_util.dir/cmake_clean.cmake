file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_util.dir/histogram.cc.o"
  "CMakeFiles/cloudlb_util.dir/histogram.cc.o.d"
  "CMakeFiles/cloudlb_util.dir/log.cc.o"
  "CMakeFiles/cloudlb_util.dir/log.cc.o.d"
  "CMakeFiles/cloudlb_util.dir/options.cc.o"
  "CMakeFiles/cloudlb_util.dir/options.cc.o.d"
  "CMakeFiles/cloudlb_util.dir/rng.cc.o"
  "CMakeFiles/cloudlb_util.dir/rng.cc.o.d"
  "CMakeFiles/cloudlb_util.dir/stats.cc.o"
  "CMakeFiles/cloudlb_util.dir/stats.cc.o.d"
  "CMakeFiles/cloudlb_util.dir/table.cc.o"
  "CMakeFiles/cloudlb_util.dir/table.cc.o.d"
  "libcloudlb_util.a"
  "libcloudlb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

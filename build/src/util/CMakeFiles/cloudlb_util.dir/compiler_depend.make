# Empty compiler generated dependencies file for cloudlb_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_vm.dir/interferer.cc.o"
  "CMakeFiles/cloudlb_vm.dir/interferer.cc.o.d"
  "CMakeFiles/cloudlb_vm.dir/tenant.cc.o"
  "CMakeFiles/cloudlb_vm.dir/tenant.cc.o.d"
  "CMakeFiles/cloudlb_vm.dir/virtual_machine.cc.o"
  "CMakeFiles/cloudlb_vm.dir/virtual_machine.cc.o.d"
  "libcloudlb_vm.a"
  "libcloudlb_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

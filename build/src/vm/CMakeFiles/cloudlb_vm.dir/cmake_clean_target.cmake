file(REMOVE_RECURSE
  "libcloudlb_vm.a"
)

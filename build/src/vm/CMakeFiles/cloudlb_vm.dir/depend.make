# Empty dependencies file for cloudlb_vm.
# This may be replaced when dependencies are built.

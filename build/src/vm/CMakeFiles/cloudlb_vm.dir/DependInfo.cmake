
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/interferer.cc" "src/vm/CMakeFiles/cloudlb_vm.dir/interferer.cc.o" "gcc" "src/vm/CMakeFiles/cloudlb_vm.dir/interferer.cc.o.d"
  "/root/repo/src/vm/tenant.cc" "src/vm/CMakeFiles/cloudlb_vm.dir/tenant.cc.o" "gcc" "src/vm/CMakeFiles/cloudlb_vm.dir/tenant.cc.o.d"
  "/root/repo/src/vm/virtual_machine.cc" "src/vm/CMakeFiles/cloudlb_vm.dir/virtual_machine.cc.o" "gcc" "src/vm/CMakeFiles/cloudlb_vm.dir/virtual_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/cloudlb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ablation_migration_cost.dir/ablation_migration_cost.cc.o"
  "CMakeFiles/ablation_migration_cost.dir/ablation_migration_cost.cc.o.d"
  "ablation_migration_cost"
  "ablation_migration_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_migration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

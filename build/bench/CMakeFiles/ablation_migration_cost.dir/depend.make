# Empty dependencies file for ablation_migration_cost.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4_power_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_power_energy.dir/fig4_power_energy.cc.o"
  "CMakeFiles/fig4_power_energy.dir/fig4_power_energy.cc.o.d"
  "fig4_power_energy"
  "fig4_power_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_power_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3_dynamic_interference.dir/fig3_dynamic_interference.cc.o"
  "CMakeFiles/fig3_dynamic_interference.dir/fig3_dynamic_interference.cc.o.d"
  "fig3_dynamic_interference"
  "fig3_dynamic_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dynamic_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

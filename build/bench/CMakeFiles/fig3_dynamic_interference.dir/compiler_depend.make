# Empty compiler generated dependencies file for fig3_dynamic_interference.
# This may be replaced when dependencies are built.

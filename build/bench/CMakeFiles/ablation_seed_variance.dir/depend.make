# Empty dependencies file for ablation_seed_variance.
# This may be replaced when dependencies are built.

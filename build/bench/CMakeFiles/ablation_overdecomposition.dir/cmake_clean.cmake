file(REMOVE_RECURSE
  "CMakeFiles/ablation_overdecomposition.dir/ablation_overdecomposition.cc.o"
  "CMakeFiles/ablation_overdecomposition.dir/ablation_overdecomposition.cc.o.d"
  "ablation_overdecomposition"
  "ablation_overdecomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overdecomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_overdecomposition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_timing_penalty.dir/fig2_timing_penalty.cc.o"
  "CMakeFiles/fig2_timing_penalty.dir/fig2_timing_penalty.cc.o.d"
  "fig2_timing_penalty"
  "fig2_timing_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timing_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_timing_penalty.
# This may be replaced when dependencies are built.

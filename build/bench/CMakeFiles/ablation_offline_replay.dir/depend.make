# Empty dependencies file for ablation_offline_replay.
# This may be replaced when dependencies are built.

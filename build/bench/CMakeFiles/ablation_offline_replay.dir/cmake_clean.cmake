file(REMOVE_RECURSE
  "CMakeFiles/ablation_offline_replay.dir/ablation_offline_replay.cc.o"
  "CMakeFiles/ablation_offline_replay.dir/ablation_offline_replay.cc.o.d"
  "ablation_offline_replay"
  "ablation_offline_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offline_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1_interference_timeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_interference_timeline.dir/fig1_interference_timeline.cc.o"
  "CMakeFiles/fig1_interference_timeline.dir/fig1_interference_timeline.cc.o.d"
  "fig1_interference_timeline"
  "fig1_interference_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_interference_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/apps_test.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/cloudlb_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cloudlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cloudlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cloudlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/cloudlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cloudlb_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cloudlb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

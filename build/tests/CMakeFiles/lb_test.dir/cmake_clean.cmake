file(REMOVE_RECURSE
  "CMakeFiles/lb_test.dir/lb_test.cc.o"
  "CMakeFiles/lb_test.dir/lb_test.cc.o.d"
  "lb_test"
  "lb_test.pdb"
  "lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ampi_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/cloudlb_tool.dir/cloudlb.cc.o"
  "CMakeFiles/cloudlb_tool.dir/cloudlb.cc.o.d"
  "cloudlb"
  "cloudlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cloudlb_tool.
# This may be replaced when dependencies are built.

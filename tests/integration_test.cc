#include <gtest/gtest.h>

#include <numeric>

#include "core/balancer_factory.h"
#include "core/scenario.h"
#include "util/check.h"
#include "vm/interferer.h"

namespace cloudlb {
namespace {

ScenarioConfig config_for(const std::string& app, const std::string& balancer,
                          int cores) {
  ScenarioConfig config;
  config.app.name = app;
  config.app.iterations = 40;
  config.app_cores = cores;
  config.balancer = balancer;
  config.lb_period = 5;
  config.bg_iterations = 100;
  return config;
}

// ------------------------------------------------- the paper's §V claims

TEST(PaperClaimsTest, InterferenceRoughlyDoublesUnbalancedRuntime) {
  // Fair CPU sharing on 2 of 4 cores + tight coupling → ≈100% penalty.
  const PenaltyResult r =
      run_penalty_experiment(config_for("jacobi2d", "null", 4));
  EXPECT_GT(r.app_penalty_pct, 85.0);
  EXPECT_LT(r.app_penalty_pct, 115.0);
  EXPECT_GT(r.bg_penalty_pct, 80.0);
}

TEST(PaperClaimsTest, HeadlineTimingPenaltyReducedByHalfAt8Cores) {
  // "our scheme reduces the timing penalty ... by at least 50%".
  const PenaltyResult no_lb =
      run_penalty_experiment(config_for("jacobi2d", "null", 8));
  const PenaltyResult with_lb =
      run_penalty_experiment(config_for("jacobi2d", "ia-refine", 8));
  EXPECT_LT(with_lb.app_penalty_pct, 0.5 * no_lb.app_penalty_pct);
}

TEST(PaperClaimsTest, HeadlineEnergyOverheadReducedByHalfAt16Cores) {
  // The energy-overhead halving needs enough cores for the balanced
  // penalty to drop well below the noLB ~100% (the paper's grid goes to
  // 32; the reduction crosses 50% between 8 and 16 in our model).
  const PenaltyResult no_lb =
      run_penalty_experiment(config_for("wave2d", "null", 16));
  const PenaltyResult with_lb =
      run_penalty_experiment(config_for("wave2d", "ia-refine", 16));
  EXPECT_LT(with_lb.energy_overhead_pct, 0.5 * no_lb.energy_overhead_pct);
}

TEST(PaperClaimsTest, LbPenaltyDecreasesWithMoreCores) {
  // Figure 2 trend: more cores → more places to offload the interfered
  // cores' work → smaller LB penalty. noLB stays put.
  const PenaltyResult lb4 =
      run_penalty_experiment(config_for("jacobi2d", "ia-refine", 4));
  const PenaltyResult lb8 =
      run_penalty_experiment(config_for("jacobi2d", "ia-refine", 8));
  const PenaltyResult lb16 =
      run_penalty_experiment(config_for("jacobi2d", "ia-refine", 16));
  EXPECT_LT(lb8.app_penalty_pct, lb4.app_penalty_pct);
  EXPECT_LT(lb16.app_penalty_pct, lb8.app_penalty_pct);

  const PenaltyResult nolb4 =
      run_penalty_experiment(config_for("jacobi2d", "null", 4));
  const PenaltyResult nolb16 =
      run_penalty_experiment(config_for("jacobi2d", "null", 16));
  EXPECT_GT(nolb16.app_penalty_pct, 0.7 * nolb4.app_penalty_pct);
}

TEST(PaperClaimsTest, BackgroundJobAlsoBenefitsFromLb) {
  // Figure 2: "significantly reduces the timing penalty for the background
  // load" (Jacobi2D / Wave2D).
  const PenaltyResult no_lb =
      run_penalty_experiment(config_for("wave2d", "null", 8));
  const PenaltyResult with_lb =
      run_penalty_experiment(config_for("wave2d", "ia-refine", 8));
  EXPECT_LT(with_lb.bg_penalty_pct, no_lb.bg_penalty_pct);
}

TEST(PaperClaimsTest, Mol3dWithOsFavouredBackground) {
  // The paper saw the OS strongly favour the BG job for Mol3D: tiny BG
  // penalty, up to ~400% application penalty without LB.
  ScenarioConfig no_lb = config_for("mol3d", "null", 8);
  no_lb.bg_weight = 4.0;
  // Weighting only bites while the BG is runnable; give it enough work to
  // outlast even the heavily slowed noLB application run.
  no_lb.bg_iterations = 700;
  ScenarioConfig with_lb = no_lb;
  with_lb.balancer = "ia-refine";

  const PenaltyResult r_no = run_penalty_experiment(no_lb);
  const PenaltyResult r_lb = run_penalty_experiment(with_lb);
  // Far above the ~100% of fair sharing (the paper's Mol3D reached ~400%
  // on their testbed; the exact factor depends on the OS preference and
  // Mol3D's residual internal imbalance).
  EXPECT_GT(r_no.app_penalty_pct, 120.0);
  EXPECT_LT(r_no.bg_penalty_pct, 40.0);  // BG barely notices the app
  EXPECT_LT(r_lb.app_penalty_pct, 0.5 * r_no.app_penalty_pct);
}

TEST(PaperClaimsTest, LbPowerHigherEnergyLowerForAllApps) {
  // Figure 4 across all three applications.
  for (const char* app : {"jacobi2d", "wave2d", "mol3d"}) {
    const PenaltyResult no_lb =
        run_penalty_experiment(config_for(app, "null", 8));
    const PenaltyResult with_lb =
        run_penalty_experiment(config_for(app, "ia-refine", 8));
    EXPECT_GT(with_lb.combined.avg_power_watts,
              no_lb.combined.avg_power_watts)
        << app;
    EXPECT_LT(with_lb.combined.energy_joules, no_lb.combined.energy_joules)
        << app;
  }
}

TEST(PaperClaimsTest, InternalImbalanceAloneAlsoHelped) {
  // Mol3D is internally imbalanced (clustered particles); even without any
  // interference the balancer should win.
  ScenarioConfig null_config = config_for("mol3d", "null", 8);
  null_config.with_background = false;
  ScenarioConfig lb_config = null_config;
  lb_config.balancer = "ia-refine";
  const RunResult no_lb = run_scenario(null_config);
  const RunResult with_lb = run_scenario(lb_config);
  EXPECT_LT(with_lb.app_elapsed.to_seconds(),
            0.95 * no_lb.app_elapsed.to_seconds());
}

// -------------------------------------------------- strategy comparisons

TEST(StrategyComparisonTest, InterferenceAwareBeatsInterferenceBlind) {
  // Classic RefineLB cannot see the background load; under pure external
  // imbalance it does nothing (the paper's motivation).
  const PenaltyResult blind =
      run_penalty_experiment(config_for("jacobi2d", "refine", 8));
  const PenaltyResult aware =
      run_penalty_experiment(config_for("jacobi2d", "ia-refine", 8));
  EXPECT_LT(aware.app_penalty_pct, 0.6 * blind.app_penalty_pct);
  EXPECT_EQ(blind.combined.lb_migrations, 0);
}

TEST(StrategyComparisonTest, GainGateMigratesLessUnderSlowNetwork) {
  ScenarioConfig aware = config_for("jacobi2d", "ia-refine", 8);
  ScenarioConfig gated = config_for("jacobi2d", "gain-gated", 8);
  const PenaltyResult r_aware = run_penalty_experiment(aware);
  const PenaltyResult r_gated = run_penalty_experiment(gated);
  EXPECT_LE(r_gated.combined.lb_migrations, r_aware.combined.lb_migrations);
  // And it must still clearly beat doing nothing.
  const PenaltyResult r_null =
      run_penalty_experiment(config_for("jacobi2d", "null", 8));
  EXPECT_LT(r_gated.app_penalty_pct, 0.7 * r_null.app_penalty_pct);
}

TEST(PaperClaimsTest, HeterogeneousCoresHandledByEq2) {
  // A slow core is indistinguishable from an interfered one through the
  // paper's estimator; the balancer right-sizes its share without any
  // heterogeneity-specific logic.
  ScenarioConfig config = config_for("jacobi2d", "null", 8);
  config.with_background = false;
  const double fast = run_scenario(config).app_elapsed.to_seconds();

  config.machine.core_speed_overrides = {{0, 0.5}, {1, 0.5}};
  const double slow_no_lb = run_scenario(config).app_elapsed.to_seconds();
  config.balancer = "ia-refine";
  const RunResult lb = run_scenario(config);
  const double slow_lb = lb.app_elapsed.to_seconds();

  EXPECT_GT(slow_no_lb, 1.8 * fast);  // tight coupling: ~2x from 2 slow cores
  EXPECT_LT(slow_lb, 0.75 * slow_no_lb);
  EXPECT_GT(lb.lb_migrations, 0);
}

// -------------------------------------------- dynamic interference (Fig. 3)

TEST(DynamicInterferenceTest, BalancerTracksMovingInterferer) {
  // Interference hops between cores mid-run; the LB must chase it.
  auto run_with = [&](const std::string& balancer) {
    Simulator sim;
    Machine machine{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};
    VirtualMachine vm{machine, "app", {0, 1, 2, 3}};
    JobConfig jc;
    jc.name = "wave2d";
    jc.lb_period = 4;
    RuntimeJob job{sim, vm, jc, make_balancer(balancer)};
    AppSpec spec;
    spec.name = "wave2d";
    spec.iterations = 60;
    populate_app(job, spec);

    SyntheticInterferer hog1{sim, machine, {0}};
    SyntheticInterferer hog2{sim, machine, {2}};
    sim.schedule_at(SimTime::from_seconds(0.0), [&] { hog1.start(); });
    sim.schedule_at(SimTime::from_seconds(3.0), [&] { hog1.stop(); });
    sim.schedule_at(SimTime::from_seconds(4.0), [&] { hog2.start(); });
    sim.schedule_at(SimTime::from_seconds(8.0), [&] { hog2.stop(); });

    job.start();
    while (!job.finished()) CLB_CHECK(sim.step());
    return std::pair{job.elapsed().to_seconds(), job.counters().migrations};
  };
  const auto [null_time, null_migrations] = run_with("null");
  const auto [lb_time, lb_migrations] = run_with("ia-refine");
  EXPECT_EQ(null_migrations, 0);
  EXPECT_GT(lb_migrations, 4);  // moved away at least once per episode
  EXPECT_LT(lb_time, 0.9 * null_time);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <sstream>

#include "cli/cli.h"
#include "util/check.h"
#include "util/options.h"

namespace cloudlb {
namespace {

// ---------------------------------------------------------------- Options

TEST(OptionsTest, ParsesEqualsForm) {
  Options options{{"--app=wave2d", "--cores=8"}};
  EXPECT_EQ(options.get_string("app"), "wave2d");
  EXPECT_EQ(options.get_int("cores"), 8);
}

TEST(OptionsTest, ParsesSpaceForm) {
  Options options{{"--app", "mol3d", "--cores", "16"}};
  EXPECT_EQ(options.get_string("app"), "mol3d");
  EXPECT_EQ(options.get_int("cores"), 16);
}

TEST(OptionsTest, BareFlagIsTrue) {
  Options options{{"--csv", "--verbose=false"}};
  EXPECT_TRUE(options.get_bool("csv"));
  EXPECT_FALSE(options.get_bool("verbose"));
  EXPECT_FALSE(options.get_bool("absent", false));
  EXPECT_TRUE(options.get_bool("absent2", true));
}

TEST(OptionsTest, PositionalArgumentsKept) {
  Options options{{"sweep", "--cores=4", "extra"}};
  EXPECT_EQ(options.positional(),
            (std::vector<std::string>{"sweep", "extra"}));
}

TEST(OptionsTest, DefaultsWhenMissing) {
  Options options{{}};
  EXPECT_EQ(options.get_string("app", "jacobi2d"), "jacobi2d");
  EXPECT_EQ(options.get_int("cores", 8), 8);
  EXPECT_DOUBLE_EQ(options.get_double("epsilon", 0.05), 0.05);
}

TEST(OptionsTest, IntListParsing) {
  Options options{{"--cores=4,8,16,32"}};
  EXPECT_EQ(options.get_int_list("cores"), (std::vector<int>{4, 8, 16, 32}));
  Options single{{"--cores=7"}};
  EXPECT_EQ(single.get_int_list("cores"), (std::vector<int>{7}));
}

TEST(OptionsTest, TypeErrorsThrow) {
  Options options{{"--cores=eight", "--epsilon=tiny", "--csv=maybe",
                   "--list=1,x"}};
  EXPECT_THROW(options.get_int("cores"), CheckFailure);
  EXPECT_THROW(options.get_double("epsilon"), CheckFailure);
  EXPECT_THROW(options.get_bool("csv"), CheckFailure);
  EXPECT_THROW(options.get_int_list("list"), CheckFailure);
}

TEST(OptionsTest, UnusedOptionsDetected) {
  Options options{{"--app=wave2d", "--epsilan=0.1"}};
  options.get_string("app");
  EXPECT_THROW(options.check_unused(), CheckFailure);
  options.get_double("epsilan");
  EXPECT_NO_THROW(options.check_unused());
}

// -------------------------------------------------------------------- CLI

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return CliResult{code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CliResult r = cli({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  const CliResult r = cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("penalty"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliResult r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, ListsAppsAndBalancers) {
  const CliResult apps = cli({"apps"});
  EXPECT_EQ(apps.code, 0);
  EXPECT_NE(apps.out.find("jacobi2d"), std::string::npos);
  EXPECT_NE(apps.out.find("mol3d"), std::string::npos);
  const CliResult balancers = cli({"balancers"});
  EXPECT_EQ(balancers.code, 0);
  EXPECT_NE(balancers.out.find("ia-refine"), std::string::npos);
  EXPECT_NE(balancers.out.find("null"), std::string::npos);
}

TEST(CliTest, PenaltyRunsAndReports) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("app penalty (%)"), std::string::npos);
  EXPECT_NE(r.out.find("migrations"), std::string::npos);
}

TEST(CliTest, PenaltyCsvMode) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("metric,value"), std::string::npos);
}

TEST(CliTest, SweepCoversGrid) {
  const CliResult r =
      cli({"sweep", "--app=jacobi2d", "--cores=4,8", "--iterations=20",
           "--bg-iterations=40", "--balancers=null,ia-refine"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 4 data rows: 2 core counts x 2 balancers.
  int rows = 0;
  std::istringstream in{r.out};
  std::string line;
  while (std::getline(in, line))
    if (line.find("ia-refine") != std::string::npos ||
        line.find("null") != std::string::npos)
      ++rows;
  EXPECT_EQ(rows, 4);
}

TEST(CliTest, SweepJobsOutputIsThreadCountInvariant) {
  // The parallel grid runner must produce byte-identical output no matter
  // how many worker threads execute the cells.
  const std::vector<std::string> base = {
      "sweep", "--app=jacobi2d", "--cores=4,8", "--iterations=20",
      "--bg-iterations=40", "--balancers=null,ia-refine"};
  auto with_jobs = [&](const std::string& jobs) {
    std::vector<std::string> args = base;
    args.push_back("--jobs=" + jobs);
    return cli(args);
  };
  const CliResult serial = with_jobs("1");
  EXPECT_EQ(serial.code, 0) << serial.err;
  for (const char* jobs : {"4", "0"}) {  // 0 = all hardware threads
    const CliResult parallel = with_jobs(jobs);
    EXPECT_EQ(parallel.code, 0) << parallel.err;
    EXPECT_EQ(parallel.out, serial.out) << "--jobs=" << jobs;
  }
}

TEST(CliTest, PenaltyShardsOutputMatchesLegacy) {
  // --shards moves the whole runtime onto the partitioned engines; the
  // report must stay byte-identical to the legacy single-engine run, for
  // serial and parallel windows alike. 16 cores / 4 per node = 4 nodes,
  // so both shard counts genuinely partition the machine.
  const std::vector<std::string> base = {"penalty", "--app=jacobi2d",
                                         "--cores=16", "--iterations=20",
                                         "--bg-iterations=40"};
  const CliResult legacy = cli(base);
  EXPECT_EQ(legacy.code, 0) << legacy.err;
  for (const auto& extra : std::vector<std::vector<const char*>>{
           {"--shards=1", "--jobs=4"},  // legacy dispatch; --jobs inert
           {"--shards=2"},
           {"--shards=4", "--jobs=1"},
           {"--shards=4", "--jobs=3"}}) {
    std::vector<std::string> args = base;
    for (const char* a : extra) args.emplace_back(a);
    const CliResult sharded = cli(args);
    EXPECT_EQ(sharded.code, 0) << sharded.err;
    EXPECT_EQ(sharded.out, legacy.out) << extra[0];
  }
}

TEST(CliTest, TimelineRenders) {
  const CliResult r = cli({"timeline", "--app=wave2d", "--cores=4",
                           "--iterations=16", "--bg-iterations=30",
                           "--width=60"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("core 0"), std::string::npos);
  EXPECT_NE(r.out.find("busy %"), std::string::npos);
}

TEST(CliTest, RecordThenReplayRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cloudlb_trace.lbstats";
  const CliResult record =
      cli({"record", "--out=" + path, "--app=jacobi2d", "--cores=4",
           "--iterations=20", "--bg-iterations=40"});
  EXPECT_EQ(record.code, 0) << record.err;
  EXPECT_NE(record.out.find("recorded"), std::string::npos);

  const CliResult replay =
      cli({"replay", "--trace=" + path, "--balancer=ia-refine"});
  EXPECT_EQ(replay.code, 0) << replay.err;
  EXPECT_NE(replay.out.find("max load before"), std::string::npos);
  EXPECT_NE(replay.out.find("total migrations"), std::string::npos);
}

TEST(CliTest, ReplayMissingFileFails) {
  const CliResult r = cli({"replay", "--trace=/no/such/file.lbstats"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, RecordRequiresOut) {
  const CliResult r = cli({"record", "--app=jacobi2d"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(CliTest, BadOptionValueReportsError) {
  const CliResult r = cli({"penalty", "--cores=many"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(CliTest, UnknownOptionReportsError) {
  const CliResult r = cli({"penalty", "--coers=8", "--iterations=10",
                           "--bg-iterations=20"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--coers"), std::string::npos);
}

TEST(CliTest, UnknownBalancerReportsError) {
  const CliResult r = cli({"penalty", "--balancer=magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown balancer"), std::string::npos);
}

TEST(CliTest, UnknownAppReportsError) {
  const CliResult r = cli({"penalty", "--app=linpack"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown application"), std::string::npos);
}

TEST(CliTest, EstimatorWindowTooSmallFailsAtParse) {
  // 1 or 2 samples have a degenerate median; the flag takes 0 (off) or
  // >= 3, and the error must name both the flag and the rule.
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator-window=2"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--estimator-window"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("at least 3"), std::string::npos) << r.err;
}

TEST(CliTest, ShardCountBelowOneFailsAtParse) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--shards=0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--shards"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("at least 1"), std::string::npos) << r.err;
}

TEST(CliTest, EstimatorClampFactorBelowOneFailsAtParse) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator-clamp-factor=0.5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--estimator-clamp-factor"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("at least 1"), std::string::npos) << r.err;
}

TEST(CliTest, UnknownEstimatorModeListsTheValidOnes) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator=psychic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("persist|ewma|trend|regress"), std::string::npos)
      << r.err;
}

TEST(CliTest, NonPositiveForecastHorizonFailsAtParse) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator=trend", "--forecast-horizon=0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--forecast-horizon"), std::string::npos) << r.err;
}

TEST(CliTest, NegativeForecastMarginFailsAtParse) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator=ewma", "--forecast-margin=-0.5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--forecast-margin"), std::string::npos) << r.err;
}

TEST(CliTest, ForecastingPenaltyRunsEndToEnd) {
  const CliResult r = cli({"penalty", "--app=jacobi2d", "--cores=4",
                           "--iterations=20", "--bg-iterations=40",
                           "--estimator=trend", "--estimator-window=3",
                           "--forecast-margin=0.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("app penalty (%)"), std::string::npos);
}

}  // namespace
}  // namespace cloudlb

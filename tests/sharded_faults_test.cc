#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi2d.h"
#include "core/interference_aware_lb.h"
#include "faults/fault_injector.h"
#include "faults/fault_spec.h"
#include "machine/machine.h"
#include "runtime/job.h"
#include "runtime/network.h"
#include "runtime/sharded_runtime.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "vm/virtual_machine.h"

// Fault injection × the shard-partitioned runtime: seeded random fault
// plans run the same multi-node scenario on the legacy engine and under
// --shards=4, and must agree bit-for-bit — the injector's install-time
// draws and serialized hooks make the fault schedule shard-independent
// (runtime/fault_hooks.h). On top of the differential check, each sharded
// run is held to the core fault-tier invariants: no chare lost or
// duplicated across shard boundaries (bit-exact Jacobi blocks against the
// serial reference), dense assignments, sane counters.

namespace cloudlb {
namespace {

std::uint64_t seed_base() {
  const char* env = std::getenv("CLOUDLB_SHARD_SEED_BASE");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// Random plan over every model class (mirrors the legacy fault grid).
std::string random_fault_spec(Rng& rng, std::uint64_t seed) {
  std::ostringstream spec;
  spec << "seed(value=" << seed << ")";
  if (rng.next_double() < 0.4)
    spec << ";spike(core=" << rng.uniform_int(0, 7)
         << ",start=" << rng.uniform(0.0, 0.002)
         << ",duration=" << rng.uniform(0.0, 0.01)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  if (rng.next_double() < 0.3) {
    const double period = rng.uniform(0.001, 0.01);
    spec << ";square(core=" << rng.uniform_int(0, 7)
         << ",start=" << rng.uniform(0.0, 0.002) << ",period=" << period
         << ",on=" << rng.uniform(0.0, period)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  }
  if (rng.next_double() < 0.25)
    spec << ";pareto(cores=" << rng.uniform_int(0, 2)
         << ",alpha=" << rng.uniform(1.1, 3.0)
         << ",min_on=" << rng.uniform(0.0001, 0.002)
         << ",mean_off=" << rng.uniform(0.002, 0.02)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  if (rng.next_double() < 0.5)
    spec << ";drop(prob=" << rng.uniform(0.0, 0.5) << ")";
  if (rng.next_double() < 0.5)
    spec << ";stale(prob=" << rng.uniform(0.0, 0.5) << ")";
  if (rng.next_double() < 0.5) {
    const char* const modes[] = {"negative", "nan", "overflow", "mixed"};
    spec << ";corrupt(prob=" << rng.uniform(0.0, 0.4)
         << ",mode=" << modes[rng.uniform_int(0, 3)] << ")";
  }
  if (rng.next_double() < 0.4)
    spec << ";jitter(sigma=" << rng.uniform(0.0, 0.0005) << ")";
  if (rng.next_double() < 0.6)
    spec << ";failmig(prob=" << rng.uniform(0.0, 1.0)
         << ",partial=" << rng.uniform(0.0, 1.0) << ")";
  return spec.str();
}

constexpr int kNodes = 4;
constexpr int kCoresPerNode = 2;
constexpr int kCores = kNodes * kCoresPerNode;
constexpr int kChares = 16;
constexpr int kIterations = 8;

Jacobi2dConfig app_config() {
  Jacobi2dConfig config;
  config.layout.grid_x = 32;
  config.layout.grid_y = 32;
  config.layout.blocks_x = 4;
  config.layout.blocks_y = 4;
  config.layout.iterations = kIterations;
  // ~2 tasks per window width: waves spread over several windows, so
  // cascades mostly complete in exact global phases (rewinds stay rare).
  config.layout.sec_per_point = 2e-6;
  return config;
}

JobConfig job_config(Rng& rng, FaultInjector* faults) {
  JobConfig jc;
  jc.lb_period = 2;
  jc.faults = faults;
  jc.migration_max_retries = static_cast<int>(rng.uniform_int(0, 3));
  return jc;
}

struct HarvestedBlock {
  int x0 = 0, y0 = 0, nx = 0, ny = 0;
  std::vector<double> values;

  friend bool operator==(const HarvestedBlock& a, const HarvestedBlock& b) {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.nx == b.nx && a.ny == b.ny &&
           a.values == b.values;
  }
};

struct FaultedRun {
  bool refused = false;
  std::int64_t finish_ns = 0;
  RuntimeJob::Counters counters;
  std::vector<PeId> assignment;
  std::vector<HarvestedBlock> blocks;  ///< per-chare final state
};

void harvest(RuntimeJob& job, FaultedRun& out) {
  out.finish_ns = job.finish_time().ns();
  out.counters = job.counters();
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    out.assignment.push_back(job.pe_of(static_cast<ChareId>(c)));
    auto* chare =
        dynamic_cast<Jacobi2dChare*>(&job.chare(static_cast<ChareId>(c)));
    ASSERT_NE(chare, nullptr);
    out.blocks.push_back(HarvestedBlock{chare->x0(), chare->y0(),
                                        chare->nx(), chare->ny(),
                                        chare->block_values()});
  }
}

/// The scenario on the legacy single engine (the reference).
FaultedRun run_legacy(std::uint64_t rig_seed, const std::string& spec) {
  Rng rng{rig_seed};
  FaultInjector injector{FaultPlan::parse(spec)};
  Simulator sim;
  if (!injector.inert())
    sim.set_clock_fault_policy(Simulator::ClockFaultPolicy::kRecover);
  MachineConfig mc;
  mc.nodes = kNodes;
  mc.cores_per_node = kCoresPerNode;
  Machine machine{sim, mc};
  std::vector<CoreId> ids(kCores);
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{machine, "app", ids};
  RuntimeJob job{sim, vm, job_config(rng, &injector),
                 std::make_unique<InterferenceAwareRefineLb>()};
  populate_jacobi2d(job, app_config());
  injector.install_interference(sim, machine);
  job.start();
  std::uint64_t steps = 0;
  while (!job.finished()) {
    CLB_CHECK(sim.step());
    CLB_CHECK_MSG(++steps < 50'000'000ull, "legacy run livelocked");
  }
  FaultedRun out;
  harvest(job, out);
  return out;
}

/// The same scenario under --shards=4. A loud refusal (an in-window
/// cascade some hog had already run past) is a documented outcome, not a
/// failure — but it must be rare and worker-count independent.
FaultedRun run_sharded(std::uint64_t rig_seed, const std::string& spec,
                       int workers) {
  Rng rng{rig_seed};
  FaultInjector injector{FaultPlan::parse(spec)};
  MachineConfig mc;
  mc.nodes = kNodes;
  mc.cores_per_node = kCoresPerNode;
  ShardedRuntimeHost::Config hc;
  hc.shards = 4;
  hc.window = shard_window_width(JobConfig{}.network);
  hc.parallel = workers > 1;
  hc.workers = workers;
  ShardedRuntimeHost host{mc, hc};
  if (!injector.inert())
    host.set_clock_fault_policy(EngineCore::ClockFaultPolicy::kRecover);
  std::vector<CoreId> ids(kCores);
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{host.machine(), "app", ids};
  RuntimeJob job{host, vm, job_config(rng, &injector),
                 std::make_unique<InterferenceAwareRefineLb>()};
  populate_jacobi2d(job, app_config());
  injector.install_interference(
      host.machine(),
      [&host](CoreId core) -> EngineCore& { return host.engine_of_core(core); });
  job.start();
  FaultedRun out;
  try {
    host.drive(50'000'000);
  } catch (const CheckFailure& e) {
    if (std::string{e.what()}.find("rewind_clock past executed work") ==
        std::string::npos)
      throw;
    out.refused = true;
    return out;
  }
  harvest(job, out);
  job.validate_invariants();
  return out;
}

void expect_equal(const FaultedRun& a, const FaultedRun& b,
                  const char* label) {
  EXPECT_EQ(a.finish_ns, b.finish_ns) << label;
  EXPECT_EQ(a.counters.tasks_executed, b.counters.tasks_executed) << label;
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent) << label;
  EXPECT_EQ(a.counters.lb_steps, b.counters.lb_steps) << label;
  EXPECT_EQ(a.counters.migrations, b.counters.migrations) << label;
  EXPECT_EQ(a.counters.migrated_bytes, b.counters.migrated_bytes) << label;
  EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries)
      << label;
  EXPECT_EQ(a.counters.migrations_failed, b.counters.migrations_failed)
      << label;
  EXPECT_EQ(a.assignment, b.assignment) << label;
  EXPECT_EQ(a.blocks, b.blocks) << label;
}

class ShardedFaultTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedFaultTest, FaultScheduleIsShardIndependent) {
  const std::uint64_t seed =
      seed_base() * 7'000'003ull + static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const std::string spec = random_fault_spec(rng, seed);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " spec=\"" + spec + "\"");

  const FaultedRun serial = run_sharded(seed, spec, /*workers=*/1);
  const FaultedRun parallel = run_sharded(seed, spec, /*workers=*/3);
  EXPECT_EQ(serial.refused, parallel.refused)
      << "refusal must not depend on the worker count";
  if (serial.refused) return;

  expect_equal(serial, parallel, "serial vs parallel windows");

  const FaultedRun legacy = run_legacy(seed, spec);
  expect_equal(serial, legacy, "sharded vs legacy engine");

  // No chare lost or duplicated across shard boundaries: the computation
  // is bit-exact against the serial (no-runtime) reference even with
  // failed and partially-failed migrations in the plan.
  const auto reference = jacobi2d_reference(app_config());
  ASSERT_EQ(serial.blocks.size(), static_cast<std::size_t>(kChares));
  for (std::size_t c = 0; c < serial.blocks.size(); ++c) {
    const HarvestedBlock& block = serial.blocks[c];
    for (int y = 0; y < block.ny; ++y)
      for (int x = 0; x < block.nx; ++x)
        ASSERT_EQ(
            block.values[static_cast<std::size_t>(y * block.nx + x)],
            reference[static_cast<std::size_t>(block.y0 + y) * 32 +
                      static_cast<std::size_t>(block.x0 + x)])
            << "chare " << c << " diverged from the serial reference";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFaultTest, ::testing::Range(0, 64));

// Interference pinned into two *different* shards: installation must bind
// each hog to its core's engine, and the schedule must still match the
// legacy engine exactly.
TEST(ShardedFaultTest, CrossShardInterferenceMatchesLegacy) {
  const std::string spec =
      "spike(core=0,start=0.0005,duration=0.01,duty=0.8);"
      "square(core=7,start=0.001,period=0.004,on=0.002,duty=0.6);"
      "seed(value=42)";
  const FaultedRun legacy = run_legacy(/*rig_seed=*/1, spec);
  const FaultedRun sharded = run_sharded(/*rig_seed=*/1, spec, /*workers=*/2);
  ASSERT_FALSE(sharded.refused);
  expect_equal(sharded, legacy, "pinned cross-shard interference");
}

}  // namespace
}  // namespace cloudlb

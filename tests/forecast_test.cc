// The forecasting-estimator tier (`ctest -L forecast`): the EWMA /
// trend / windowed-regression forecasters of forecasting_estimator.h,
// their composition with the windowed outlier clamp (clamp first,
// forecast on the clamped series), the proactive wiring inside
// InterferenceAwareRefineLb, and the estimator-layer regressions of this
// PR (median parity, clamp-counter semantics across topology resets).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/background_estimator.h"
#include "core/forecasting_estimator.h"
#include "core/interference_aware_lb.h"
#include "util/check.h"

namespace cloudlb {
namespace {

// ------------------------------------------------------------ helpers

/// One-PE snapshot with the given background load folded into idle
/// (wall = task + idle + bg, the estimator reads bg back out via Eq. 2).
LbStats one_pe_stats(double bg, double wall = 10.0, double task = 2.0) {
  LbStats stats;
  stats.pes.resize(1);
  stats.pes[0].pe = 0;
  stats.pes[0].wall_sec = wall;
  stats.pes[0].task_cpu_sec = task;
  stats.pes[0].core_idle_sec = std::max(0.0, wall - task - bg);
  return stats;
}

/// N-PE snapshot, every PE with the same background load.
LbStats n_pe_stats(std::size_t n, double bg) {
  LbStats stats;
  stats.pes.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    stats.pes[p].pe = static_cast<PeId>(p);
    stats.pes[p].wall_sec = 10.0;
    stats.pes[p].task_cpu_sec = 2.0;
    stats.pes[p].core_idle_sec = std::max(0.0, 10.0 - 2.0 - bg);
  }
  return stats;
}

LbRobustnessOptions mode_options(EstimatorMode mode) {
  LbRobustnessOptions options;
  options.estimator_mode = mode;
  return options;
}

std::unique_ptr<ForecastingEstimator> make_mode(EstimatorMode mode) {
  return make_forecasting_estimator(mode_options(mode));
}

// ----------------------------------------------- median_of (bug pin)

TEST(MedianTest, OddSampleReturnsMiddleElement) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({5.0}), 5.0);
}

TEST(MedianTest, EvenSampleAveragesTheTwoMiddles) {
  // The regression this pins: nth_element alone returns the *upper*
  // middle (1.0 here), biasing every even-window clamp ceiling upward.
  EXPECT_DOUBLE_EQ(median_of({0.0, 0.0, 1.0, 1.0}), 0.5);
  EXPECT_DOUBLE_EQ(median_of({10.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0}), 2.5);
}

TEST(MedianTest, EvenWindowClampCeilingIsUnbiased) {
  // Window of 4 at {0.2, 0.4, 0.6, 0.8}: the unbiased median is 0.5, so
  // a 2x clamp must cap at 1.0 + slack — not the 1.2 + slack the
  // upper-middle bias produced.
  WindowedBackgroundEstimator est{4, 2.0};
  for (double bg : {0.2, 0.4, 0.6, 0.8}) est.estimate(one_pe_stats(bg));
  const double clamped = est.estimate(one_pe_stats(8.0))[0];
  EXPECT_EQ(est.clamped_count(), 1);
  EXPECT_NEAR(clamped, 2.0 * 0.5 + wall_slack(10.0), 1e-12);
}

// ------------------------------------- windowed clamp across a reset

TEST(WindowedEstimatorTest, ClampedCounterSurvivesTopologyReset) {
  WindowedBackgroundEstimator est{3, 2.0};
  for (int i = 0; i < 3; ++i) est.estimate(one_pe_stats(0.5));
  est.estimate(one_pe_stats(7.0));
  ASSERT_EQ(est.clamped_count(), 1);

  // PE count changes: the history rings reset, the lifetime counter
  // does not.
  est.estimate(n_pe_stats(2, 0.5));
  EXPECT_EQ(est.clamped_count(), 1);

  // Fresh history means nothing to clamp against until the new topology
  // has a full-enough window again...
  EXPECT_NEAR(est.estimate(n_pe_stats(2, 7.0))[1], 7.0, 1e-12);
  EXPECT_EQ(est.clamped_count(), 1);
}

TEST(WindowedEstimatorTest, StaleMediansDoNotSurviveShrinkingTopology) {
  WindowedBackgroundEstimator est{3, 2.0};
  // Build a low median on two PEs, then shrink to one PE running hot:
  // the old PE-0 median (0.5) must not clamp the new level.
  for (int i = 0; i < 3; ++i) est.estimate(n_pe_stats(2, 0.5));
  const double after = est.estimate(one_pe_stats(6.0))[0];
  EXPECT_NEAR(after, 6.0, 1e-12);
  EXPECT_EQ(est.clamped_count(), 0);
}

// --------------------------------------------------- mode round trip

TEST(EstimatorModeTest, NameRoundTrip) {
  for (EstimatorMode mode :
       {EstimatorMode::kPersist, EstimatorMode::kEwma, EstimatorMode::kTrend,
        EstimatorMode::kRegress})
    EXPECT_EQ(estimator_mode_from_name(estimator_mode_name(mode)), mode);
}

TEST(EstimatorModeTest, UnknownNameThrowsWithTheValidList) {
  try {
    estimator_mode_from_name("psychic");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& failure) {
    EXPECT_NE(std::string{failure.what()}.find("persist|ewma|trend|regress"),
              std::string::npos);
  }
}

TEST(EstimatorModeTest, PersistModeHasNoForecaster) {
  EXPECT_EQ(make_mode(EstimatorMode::kPersist), nullptr);
  EXPECT_NE(make_mode(EstimatorMode::kEwma), nullptr);
  EXPECT_NE(make_mode(EstimatorMode::kTrend), nullptr);
  EXPECT_NE(make_mode(EstimatorMode::kRegress), nullptr);
}

TEST(EstimatorModeTest, BadForecastKnobsAreRejected) {
  LbRobustnessOptions options = mode_options(EstimatorMode::kEwma);
  options.forecast_alpha = 0.0;
  EXPECT_THROW(make_forecasting_estimator(options), CheckFailure);
  options = mode_options(EstimatorMode::kTrend);
  options.forecast_horizon = -1.0;
  EXPECT_THROW(make_forecasting_estimator(options), CheckFailure);
  options = mode_options(EstimatorMode::kRegress);
  options.forecast_window = 1;
  EXPECT_THROW(make_forecasting_estimator(options), CheckFailure);
}

// ------------------------------------------------------- forecasters

TEST(ForecasterTest, ConstantSeriesForecastsItselfWithZeroBand) {
  for (EstimatorMode mode :
       {EstimatorMode::kEwma, EstimatorMode::kTrend, EstimatorMode::kRegress}) {
    auto forecaster = make_mode(mode);
    Forecast f;
    for (int i = 0; i < 6; ++i) f = forecaster->step({2.0, 0.0}, 1.0);
    ASSERT_EQ(f.predicted.size(), 2u) << forecaster->name();
    EXPECT_NEAR(f.predicted[0], 2.0, 1e-9) << forecaster->name();
    EXPECT_NEAR(f.predicted[1], 0.0, 1e-9) << forecaster->name();
    EXPECT_NEAR(f.band[0], 0.0, 1e-9) << forecaster->name();
  }
}

TEST(ForecasterTest, TrendAnticipatesALinearRampPersistenceCannot) {
  auto trend = make_mode(EstimatorMode::kTrend);
  Forecast f;
  double last = 0.0;
  for (int i = 0; i < 12; ++i) {
    last = 0.5 * i;
    f = trend->step({last}, 1.0);
  }
  const double next = last + 0.5;
  // The trend forecast must land closer to the next ramp value than the
  // principle of persistence (which predicts `last` and is always one
  // step short on a ramp).
  EXPECT_LT(std::abs(f.predicted[0] - next), std::abs(last - next));
  EXPECT_GT(f.predicted[0], last);  // extrapolates forward, not backward
}

TEST(ForecasterTest, RegressIsExactOnALine) {
  auto regress = make_mode(EstimatorMode::kRegress);
  Forecast f;
  for (int i = 0; i < 8; ++i)
    f = regress->step({1.0 + 0.25 * i}, 1.0);
  // Last observation was 1 + 0.25·7 = 2.75; the line predicts 3.0 next.
  EXPECT_NEAR(f.predicted[0], 3.0, 1e-9);
  // The band is an EWMA of past one-step errors: the short-history
  // misses at the start decay geometrically but never reach zero.
  EXPECT_LT(f.band[0], 0.01);
}

TEST(ForecasterTest, RegressForgetsASlopeChangeWithinItsWindow) {
  LbRobustnessOptions options = mode_options(EstimatorMode::kRegress);
  options.forecast_window = 4;
  auto regress = make_forecasting_estimator(options);
  for (int i = 0; i < 6; ++i) regress->step({static_cast<double>(i)}, 1.0);
  // Four flat windows push every ramp sample out of the fit: the
  // prediction must return to the flat level exactly.
  Forecast f;
  for (int i = 0; i < 4; ++i) f = regress->step({1.5}, 1.0);
  EXPECT_NEAR(f.predicted[0], 1.5, 1e-9);
}

TEST(ForecasterTest, HorizonScalesTheExtrapolation) {
  auto trend = make_mode(EstimatorMode::kTrend);
  Forecast one, three;
  for (int i = 0; i < 12; ++i) {
    one = trend->step({1.0 * i}, 1.0);
  }
  auto trend3 = make_mode(EstimatorMode::kTrend);
  for (int i = 0; i < 12; ++i) {
    three = trend3->step({1.0 * i}, 3.0);
  }
  EXPECT_GT(three.predicted[0], one.predicted[0]);
}

TEST(ForecasterTest, PeCountChangeResetsState) {
  for (EstimatorMode mode :
       {EstimatorMode::kEwma, EstimatorMode::kTrend, EstimatorMode::kRegress}) {
    auto forecaster = make_mode(mode);
    // Learn a steep upward ramp on 2 PEs...
    for (int i = 0; i < 8; ++i)
      forecaster->step({2.0 * i, 2.0 * i}, 1.0);
    // ...then the topology changes to 3 PEs sitting at a flat 1.0: the
    // forecast must reseed from the new observation, not extrapolate
    // the dead topology's velocity.
    const Forecast f = forecaster->step({1.0, 1.0, 1.0}, 1.0);
    ASSERT_EQ(f.predicted.size(), 3u) << forecaster->name();
    for (double p : f.predicted)
      EXPECT_NEAR(p, 1.0, 1e-9) << forecaster->name();
    for (double b : f.band) EXPECT_NEAR(b, 0.0, 1e-9) << forecaster->name();
  }
}

TEST(ForecasterTest, BandWidensOnANoisySeries) {
  auto ewma = make_mode(EstimatorMode::kEwma);
  Forecast f;
  for (int i = 0; i < 10; ++i)
    f = ewma->step({i % 2 == 0 ? 0.0 : 4.0}, 1.0);
  EXPECT_GT(f.band[0], 0.5);
}

// ------------------------------------------- the composed front-end

TEST(ProactiveEstimatorTest, PersistDefaultIsBitIdenticalToRawEq2) {
  ProactiveBackgroundEstimator estimator{LbRobustnessOptions{}};
  for (double bg : {0.5, 3.0, 7.5, 0.0}) {
    const LbStats stats = one_pe_stats(bg);
    // Bitwise equality, not NEAR: the default path must be the paper's
    // exact computation (the golden trace digest pins this end to end).
    EXPECT_EQ(estimator.estimate(stats), estimate_background_load(stats));
  }
  EXPECT_FALSE(estimator.forecasting());
  EXPECT_EQ(estimator.mispredicted_windows(), 0);
}

TEST(ProactiveEstimatorTest, ClampRunsBeforeTheForecast) {
  // Same trend forecaster, with and without the outlier clamp in front.
  LbRobustnessOptions clamped = mode_options(EstimatorMode::kTrend);
  clamped.estimator_window = 3;
  LbRobustnessOptions raw = mode_options(EstimatorMode::kTrend);
  ProactiveBackgroundEstimator with_clamp{clamped};
  ProactiveBackgroundEstimator without_clamp{raw};

  for (int i = 0; i < 4; ++i) {
    with_clamp.estimate(one_pe_stats(0.5));
    without_clamp.estimate(one_pe_stats(0.5));
  }
  // A one-window glitch spikes O_p 16x. Clamp-first means the forecaster
  // never sees the glitch, so the *next* window's plan stays near the
  // real level; forecast-on-raw chases it.
  with_clamp.estimate(one_pe_stats(8.0));
  without_clamp.estimate(one_pe_stats(8.0));
  const double planned_clamped = with_clamp.estimate(one_pe_stats(0.5))[0];
  const double planned_raw = without_clamp.estimate(one_pe_stats(0.5))[0];
  EXPECT_LT(planned_clamped, planned_raw);
  EXPECT_GT(with_clamp.clamped_count(), 0);
}

TEST(ProactiveEstimatorTest, PredictionsStayInsideTheWindow) {
  LbRobustnessOptions options = mode_options(EstimatorMode::kTrend);
  ProactiveBackgroundEstimator estimator{options};
  // A ramp steep enough that the linear extrapolation exceeds T_lb.
  std::vector<double> out;
  for (int i = 0; i < 12; ++i)
    out = estimator.estimate(one_pe_stats(0.9 * i, /*wall=*/10.0,
                                          /*task=*/0.5));
  EXPECT_LE(out[0], 10.0);
  EXPECT_GE(out[0], 0.0);
}

TEST(ProactiveEstimatorTest, MispredictsAreCountedAgainstTheBand) {
  LbRobustnessOptions options = mode_options(EstimatorMode::kEwma);
  ProactiveBackgroundEstimator estimator{options};
  for (int i = 0; i < 6; ++i) estimator.estimate(one_pe_stats(1.0));
  EXPECT_EQ(estimator.mispredicted_windows(), 0);
  EXPECT_FALSE(estimator.last_window_mispredicted());

  // A step the flat forecast cannot have seen coming.
  estimator.estimate(one_pe_stats(6.0));
  EXPECT_EQ(estimator.mispredicted_windows(), 1);
  EXPECT_TRUE(estimator.last_window_mispredicted());

  // Settling back onto the new level clears the flag (the EWMA catches
  // up and the band has widened).
  int settled_extra = 0;
  for (int i = 0; i < 8; ++i) {
    estimator.estimate(one_pe_stats(6.0));
    if (estimator.last_window_mispredicted()) ++settled_extra;
  }
  EXPECT_LT(settled_extra, 8);
  EXPECT_FALSE(estimator.last_window_mispredicted());
}

// ------------------------------------------- proactive ia-refine LB

/// Two PEs, eight equal chares (fine enough that a single move always
/// fits inside the ε-band), background folded into PE 0's idle.
LbStats two_pe_assignment_stats(double bg_on_pe0) {
  LbStats stats;
  stats.pes.resize(2);
  for (int p = 0; p < 2; ++p) {
    stats.pes[p].pe = p;
    stats.pes[p].core = p;
    stats.pes[p].wall_sec = 10.0;
    stats.pes[p].task_cpu_sec = 4.0;
    stats.pes[p].core_idle_sec =
        std::max(0.0, 10.0 - 4.0 - (p == 0 ? bg_on_pe0 : 0.0));
  }
  stats.chares.resize(8);
  for (int c = 0; c < 8; ++c) {
    stats.chares[c].chare = c;
    stats.chares[c].pe = c < 4 ? 0 : 1;
    stats.chares[c].cpu_sec = 1.0;
    stats.chares[c].bytes = 1000;
  }
  return stats;
}

TEST(ProactiveLbTest, PersistModeNeverReportsMispredicts) {
  InterferenceAwareRefineLb lb;  // default options: the paper's scheme
  for (double bg : {0.0, 5.0, 0.0, 5.0})
    lb.assign(two_pe_assignment_stats(bg));
  EXPECT_EQ(lb.mispredicted_windows(), 0);
  EXPECT_EQ(lb.mispredict_churn(), 0);
}

TEST(ProactiveLbTest, SurpriseSpikeChurnIsBilledToTheForecast) {
  LbOptions options;
  options.robustness.estimator_mode = EstimatorMode::kEwma;
  InterferenceAwareRefineLb lb{options};
  for (int i = 0; i < 4; ++i) lb.assign(two_pe_assignment_stats(0.0));
  ASSERT_EQ(lb.total_migrations(), 0);  // balanced, quiet machine

  // An unforecast 5 s background spike on PE 0: this window's migrations
  // happen off the back of a wrong forecast and are billed to it.
  lb.assign(two_pe_assignment_stats(5.0));
  EXPECT_GT(lb.total_migrations(), 0);
  EXPECT_GE(lb.mispredicted_windows(), 1);
  EXPECT_EQ(lb.mispredict_churn(), lb.total_migrations());
}

TEST(ProactiveLbTest, TrendModeMigratesAheadOfARamp) {
  // A background ramp on PE 0 rising half a second per window. The
  // reactive balancer only sees each step after paying for it; the trend
  // balancer plans against the extrapolated next step. Compare how much
  // load each schedule leaves on the interfered PE mid-ramp.
  LbOptions reactive_options;  // persist
  LbOptions trend_options;
  trend_options.robustness.estimator_mode = EstimatorMode::kTrend;
  InterferenceAwareRefineLb reactive{reactive_options};
  InterferenceAwareRefineLb trend{trend_options};

  int reactive_on_pe0 = 0;
  int trend_on_pe0 = 0;
  for (int i = 0; i < 6; ++i) {
    const LbStats stats = two_pe_assignment_stats(0.8 * i);
    for (PeId pe : reactive.assign(stats)) reactive_on_pe0 += pe == 0;
    for (PeId pe : trend.assign(stats)) trend_on_pe0 += pe == 0;
  }
  // The anticipating balancer keeps no more (and on the steep part of
  // the ramp, less) work on the interfered PE than the reactive one.
  EXPECT_LE(trend_on_pe0, reactive_on_pe0);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "lb/null_lb.h"
#include "lb/greedy_lb.h"
#include "lb/refine_lb.h"

#include "core/interference_aware_lb.h"
#include "machine/machine.h"
#include "runtime/chare.h"
#include "runtime/job.h"
#include "runtime/lb_database.h"
#include "runtime/network.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/interferer.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

constexpr double kTol = 1e-4;

/// Independent iterative worker: one self-task per iteration of a fixed
/// cost, AtSync every lb_period iterations.
class WorkerChare final : public Chare {
 public:
  WorkerChare(int iterations, SimTime task_cost, std::size_t bytes = 4096)
      : iterations_{iterations}, task_cost_{task_cost}, bytes_{bytes} {}

  void on_start() override { send(id(), 0, {}); }
  SimTime cost(const Message&) const override { return task_cost_; }

  void execute(const Message&) override {
    report_iteration(iter_);
    ++iter_;
    if (iter_ >= iterations_) {
      finish();
      return;
    }
    const int period = job().lb_period();
    if (period > 0 && iter_ % period == 0) {
      at_sync();
    } else {
      send(id(), 0, {});
    }
  }

  void on_resume_sync() override { send(id(), 0, {}); }
  std::size_t footprint_bytes() const override { return bytes_; }

  int completed() const { return iter_; }

 private:
  int iterations_;
  SimTime task_cost_;
  std::size_t bytes_;
  int iter_ = 0;
};

/// Two chares bouncing a counter back and forth.
class PingPongChare final : public Chare {
 public:
  PingPongChare(ChareId peer, int rounds, bool starts)
      : peer_{peer}, rounds_{rounds}, starts_{starts} {}

  void on_start() override {
    if (starts_) send(peer_, 0, {0.0});
  }
  SimTime cost(const Message&) const override { return SimTime::micros(10); }
  void execute(const Message& msg) override {
    const int count = static_cast<int>(msg.data[0]) + 1;
    received_ = count;
    if (msg.tag == 1) {
      finish();
      return;
    }
    if (count >= rounds_) {
      finish();
      send(peer_, 1, {static_cast<double>(count)});  // tell peer to stop
      return;
    }
    send(peer_, 0, {static_cast<double>(count)});
  }
  int received() const { return received_; }

 private:
  ChareId peer_;
  int rounds_;
  bool starts_;
  int received_ = 0;
};

/// Captures the LbStats handed to a strategy and keeps the mapping as-is.
class ProbeLb final : public LoadBalancer {
 public:
  explicit ProbeLb(std::vector<LbStats>* sink) : sink_{sink} {}
  std::string name() const override { return "probe"; }
  std::vector<PeId> assign(const LbStats& stats) override {
    sink_->push_back(stats);
    return stats.current_assignment();
  }

 private:
  std::vector<LbStats>* sink_;
};

/// Applies a fixed assignment on the first LB step, then holds.
class ForcedMoveLb final : public LoadBalancer {
 public:
  explicit ForcedMoveLb(std::vector<PeId> target) : target_{std::move(target)} {}
  std::string name() const override { return "forced"; }
  std::vector<PeId> assign(const LbStats& stats) override {
    if (!applied_) {
      applied_ = true;
      return target_;
    }
    return stats.current_assignment();
  }

 private:
  std::vector<PeId> target_;
  bool applied_ = false;
};

/// Counts every observer callback.
class CountingObserver final : public ExecutionObserver {
 public:
  void on_task_executed(const RuntimeJob&, PeId, CoreId, ChareId, int,
                        SimTime, SimTime end) override {
    ++tasks;
    last_task_end = end;
  }
  void on_lb_step(const RuntimeJob&, int, SimTime, int step_migrations) override {
    ++lb_steps;
    total_migrations += step_migrations;
  }
  void on_migration(const RuntimeJob&, ChareId, PeId, PeId) override {
    ++migrations;
  }
  void on_iteration_complete(const RuntimeJob&, int iteration,
                             SimTime) override {
    iterations.push_back(iteration);
  }

  int tasks = 0;
  int lb_steps = 0;
  int migrations = 0;
  int total_migrations = 0;
  std::vector<int> iterations;
  SimTime last_task_end;
};

struct Rig {
  explicit Rig(int cores, JobConfig config = JobConfig{},
               std::unique_ptr<LoadBalancer> lb = nullptr,
               MachineConfig mc = MachineConfig{.nodes = 2,
                                                .cores_per_node = 4, .core_speed_overrides = {}})
      : machine(sim, mc) {
    std::vector<CoreId> ids(static_cast<std::size_t>(cores));
    std::iota(ids.begin(), ids.end(), 0);
    vm = std::make_unique<VirtualMachine>(machine, "app", ids);
    if (lb == nullptr) lb = std::make_unique<NullLb>();
    job = std::make_unique<RuntimeJob>(sim, *vm, std::move(config),
                                       std::move(lb));
  }

  Simulator sim;
  Machine machine;
  std::unique_ptr<VirtualMachine> vm;
  std::unique_ptr<RuntimeJob> job;
};

// ------------------------------------------------------------ fundamentals

TEST(NetworkTest, DelayComposition) {
  NetworkConfig net;
  const SimTime intra = delivery_delay(net, 1000, true);
  const SimTime inter = delivery_delay(net, 1000, false);
  EXPECT_EQ(intra, net.intra_node_latency +
                       SimTime::from_seconds(1000 / net.intra_node_bandwidth));
  EXPECT_EQ(inter, net.inter_node_latency +
                       SimTime::from_seconds(1000 / net.inter_node_bandwidth));
  EXPECT_GT(inter, intra);
}

TEST(LbDatabaseTest, AccumulatesAndClears) {
  LbDatabase db;
  db.reset(3);
  db.record_task(0, 1.0);
  db.record_task(0, 0.5);
  db.record_task(2, 2.0);
  EXPECT_DOUBLE_EQ(db.chare_cpu(0), 1.5);
  EXPECT_DOUBLE_EQ(db.chare_cpu(1), 0.0);
  EXPECT_DOUBLE_EQ(db.window_total(), 3.5);
  db.clear_window();
  EXPECT_DOUBLE_EQ(db.window_total(), 0.0);
  EXPECT_EQ(db.num_chares(), 3u);
  EXPECT_THROW(db.record_task(3, 1.0), CheckFailure);
  EXPECT_THROW(db.record_task(0, -1.0), CheckFailure);
}

// ------------------------------------------------------------ basic runs

TEST(RuntimeJobTest, SingleWorkerRunsToCompletion) {
  Rig rig{1};
  auto owned = std::make_unique<WorkerChare>(10, SimTime::millis(50));
  auto* w = owned.get();
  static_cast<void>(rig.job->add_chare(std::move(owned)));
  rig.job->start();
  rig.sim.run();
  EXPECT_TRUE(rig.job->finished());
  EXPECT_EQ(w->completed(), 10);
  // 10 tasks × 50 ms on a dedicated core.
  EXPECT_NEAR(rig.job->elapsed().to_seconds(), 0.5, kTol);
  EXPECT_EQ(rig.job->counters().tasks_executed, 10);
}

TEST(RuntimeJobTest, BlockInitialMapping) {
  Rig rig{2};
  for (int i = 0; i < 6; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  rig.job->start();
  EXPECT_EQ(rig.job->pe_of(0), 0);
  EXPECT_EQ(rig.job->pe_of(2), 0);
  EXPECT_EQ(rig.job->pe_of(3), 1);
  EXPECT_EQ(rig.job->pe_of(5), 1);
  rig.sim.run();
}

TEST(RuntimeJobTest, PesExecuteConcurrently) {
  Rig rig{4};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(4, SimTime::millis(100))));
  rig.job->start();
  rig.sim.run();
  // Perfectly parallel: 4 iterations × 100 ms each.
  EXPECT_NEAR(rig.job->elapsed().to_seconds(), 0.4, kTol);
}

TEST(RuntimeJobTest, SamePeSerializesChares) {
  Rig rig{1};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(4, SimTime::millis(100))));
  rig.job->start();
  rig.sim.run();
  EXPECT_NEAR(rig.job->elapsed().to_seconds(), 1.6, kTol);
}

TEST(RuntimeJobTest, PingPongDelivers) {
  Rig rig{2};
  static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(1, 20, true)));
  static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(0, 20, false)));
  rig.job->start();
  rig.sim.run();
  EXPECT_TRUE(rig.job->finished());
  EXPECT_GE(rig.job->counters().messages_sent, 20);
}

TEST(RuntimeJobTest, InterNodeLatencyVisible) {
  JobConfig config;
  config.lb_period = 0;
  config.network.intra_node_latency = SimTime::micros(1);
  config.network.inter_node_latency = SimTime::millis(10);

  // Two PEs on one node vs. two PEs across nodes.
  auto run_with = [&](MachineConfig mc) {
    Rig rig{2, config, nullptr, mc};
    static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(1, 10, true)));
    static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(0, 10, false)));
    rig.job->start();
    rig.sim.run();
    return rig.job->elapsed();
  };
  const SimTime same_node =
      run_with(MachineConfig{.nodes = 1, .cores_per_node = 2, .core_speed_overrides = {}});
  const SimTime cross_node =
      run_with(MachineConfig{.nodes = 2, .cores_per_node = 1, .core_speed_overrides = {}});
  EXPECT_GT(cross_node.to_seconds(), same_node.to_seconds() + 0.08);
}

TEST(RuntimeJobTest, CpuConsumedMatchesTaskCost) {
  Rig rig{2};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(5, SimTime::millis(10))));
  rig.job->start();
  rig.sim.run();
  EXPECT_NEAR(rig.job->cpu_consumed().to_seconds(), 4 * 5 * 0.010, 1e-3);
}

// ------------------------------------------------------------ contracts

TEST(RuntimeJobTest, RequiresOverdecomposition) {
  Rig rig{4};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  EXPECT_THROW(rig.job->start(), CheckFailure);
}

TEST(RuntimeJobTest, NoChareAdditionAfterStart) {
  Rig rig{1};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  rig.job->start();
  EXPECT_THROW(
      static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1)))),
      CheckFailure);
  rig.sim.run();
}

TEST(RuntimeJobTest, NullBalancerRejected) {
  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 1, .cores_per_node = 1, .core_speed_overrides = {}}};
  VirtualMachine vm{machine, "app", {0}};
  EXPECT_THROW(RuntimeJob(sim, vm, JobConfig{}, nullptr), CheckFailure);
}

TEST(RuntimeJobTest, DoubleStartRejected) {
  Rig rig{1};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  rig.job->start();
  EXPECT_THROW(rig.job->start(), CheckFailure);
  rig.sim.run();
}

TEST(RuntimeJobTest, FinishTimeRequiresCompletion) {
  Rig rig{1};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  rig.job->start();
  EXPECT_THROW(static_cast<void>(rig.job->finish_time()), CheckFailure);
  rig.sim.run();
  EXPECT_NO_THROW(static_cast<void>(rig.job->finish_time()));
}

// ------------------------------------------------------- LB barrier + stats

TEST(RuntimeJobTest, AtSyncTriggersBalancerWithMeasuredStats) {
  JobConfig config;
  config.lb_period = 5;
  std::vector<LbStats> seen;
  Rig rig{2, config, std::make_unique<ProbeLb>(&seen)};
  // Two chares per PE, distinct costs.
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(30))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(10))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(20))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(20))));
  rig.job->start();
  rig.sim.run();

  ASSERT_EQ(seen.size(), 1u);  // one sync at iteration 5 (10 ends the run)
  const LbStats& stats = seen[0];
  ASSERT_EQ(stats.pes.size(), 2u);
  ASSERT_EQ(stats.chares.size(), 4u);
  EXPECT_NEAR(stats.chares[0].cpu_sec, 5 * 0.030, 1e-3);
  EXPECT_NEAR(stats.chares[1].cpu_sec, 5 * 0.010, 1e-3);
  EXPECT_NEAR(stats.pes[0].task_cpu_sec, 5 * 0.040, 1e-3);
  EXPECT_NEAR(stats.pes[1].task_cpu_sec, 5 * 0.040, 1e-3);
  // PE0 serializes 40 ms/iteration of work → window wall ≈ 200 ms, no idle.
  EXPECT_NEAR(stats.pes[0].wall_sec, 0.200, 0.01);
  EXPECT_NEAR(stats.pes[0].core_idle_sec, 0.0, 0.01);
  // Eq. 2 background estimate on a quiet machine ≈ 0.
  EXPECT_NEAR(stats.pes[0].wall_sec - stats.pes[0].task_cpu_sec -
                  stats.pes[0].core_idle_sec,
              0.0, 0.01);
}

TEST(RuntimeJobTest, IdleShowsUpInWindowStats) {
  JobConfig config;
  config.lb_period = 5;
  std::vector<LbStats> seen;
  Rig rig{2, config, std::make_unique<ProbeLb>(&seen)};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(40))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(10))));
  rig.job->start();
  rig.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  // PE1 works 10 ms per 40 ms of wall: idle ≈ wall − 50 ms.
  EXPECT_NEAR(seen[0].pes[1].core_idle_sec,
              seen[0].pes[1].wall_sec - 5 * 0.010, 0.01);
}

TEST(RuntimeJobTest, BackgroundLoadVisibleViaIdleCounter) {
  JobConfig config;
  config.lb_period = 5;
  std::vector<LbStats> seen;
  Rig rig{2, config, std::make_unique<ProbeLb>(&seen)};
  SyntheticInterferer hog{rig.sim, rig.machine, {1}};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(20))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(20))));
  hog.start();
  rig.job->start();
  rig.sim.run_until(SimTime::seconds(10));
  hog.stop();
  rig.sim.run();

  ASSERT_GE(seen.size(), 1u);
  const PeSample& interfered = seen[0].pes[1];
  const PeSample& quiet = seen[0].pes[0];
  const double o_interfered =
      interfered.wall_sec - interfered.task_cpu_sec - interfered.core_idle_sec;
  const double o_quiet =
      quiet.wall_sec - quiet.task_cpu_sec - quiet.core_idle_sec;
  // The hog eats every cycle the app leaves on core 1 → O_p ≈ wall − task.
  EXPECT_NEAR(o_interfered, interfered.wall_sec - interfered.task_cpu_sec,
              1e-6);
  EXPECT_GT(o_interfered, 0.3 * interfered.wall_sec);
  EXPECT_NEAR(o_quiet, 0.0, 0.01);
}

// ---------------------------------------------------------- migrations

TEST(RuntimeJobTest, ForcedMigrationMovesChareAndCharesKeepState) {
  JobConfig config;
  config.lb_period = 5;
  // 4 chares: swap sides for chares 0 and 2 at the first sync.
  Rig rig{2, config, std::make_unique<ForcedMoveLb>(std::vector<PeId>{1, 0, 1, 1})};
  std::vector<WorkerChare*> workers;
  for (int i = 0; i < 4; ++i) {
    auto w = std::make_unique<WorkerChare>(20, SimTime::millis(5));
    workers.push_back(w.get());
    static_cast<void>(rig.job->add_chare(std::move(w)));
  }
  rig.job->start();
  rig.sim.run();

  EXPECT_EQ(rig.job->pe_of(0), 1);
  EXPECT_EQ(rig.job->pe_of(1), 0);
  // Only chare 0 actually changes PE (1, 2, 3 were already on target).
  EXPECT_EQ(rig.job->counters().migrations, 1);
  EXPECT_GT(rig.job->counters().migrated_bytes, 0);
  for (const auto* w : workers) EXPECT_EQ(w->completed(), 20);
  EXPECT_TRUE(rig.job->finished());
}

TEST(RuntimeJobTest, MigrationCostsWallTime) {
  auto elapsed_with_bytes = [&](std::size_t bytes) {
    JobConfig config;
    config.lb_period = 2;
    config.pack_sec_per_byte = 1e-6;  // exaggerated for visibility
    config.unpack_sec_per_byte = 1e-6;
    Rig rig{2, config, std::make_unique<ForcedMoveLb>(std::vector<PeId>{1, 0})};
    static_cast<void>(rig.job->add_chare(
        std::make_unique<WorkerChare>(4, SimTime::millis(1), bytes)));
    static_cast<void>(rig.job->add_chare(
        std::make_unique<WorkerChare>(4, SimTime::millis(1), bytes)));
    rig.job->start();
    rig.sim.run();
    return rig.job->elapsed().to_seconds();
  };
  const double small = elapsed_with_bytes(1'000);
  const double big = elapsed_with_bytes(100'000);
  // The two migrations overlap, so at least one pack+unpack chain
  // (≈ 0.2 s for the larger state) lands on the critical path.
  EXPECT_GT(big, small + 0.15);
}

TEST(RuntimeJobTest, BalancerOutputValidated) {
  JobConfig config;
  config.lb_period = 2;
  Rig rig{2, config, std::make_unique<ForcedMoveLb>(std::vector<PeId>{7, 0})};
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(4, SimTime::millis(1))));
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(4, SimTime::millis(1))));
  rig.job->start();
  EXPECT_THROW(rig.sim.run(), CheckFailure);
}

// ---------------------------------------------------------- observers

TEST(RuntimeJobTest, ObserverSeesEverything) {
  JobConfig config;
  config.lb_period = 5;
  Rig rig{2, config, std::make_unique<ForcedMoveLb>(std::vector<PeId>{1, 0, 1, 0})};
  CountingObserver obs;
  rig.job->set_observer(&obs);
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(2))));
  rig.job->start();
  rig.sim.run();

  EXPECT_EQ(obs.tasks, 40);
  EXPECT_EQ(obs.lb_steps, 1);
  EXPECT_EQ(obs.migrations, 2);  // chares 0 and 3 change PEs
  EXPECT_EQ(obs.total_migrations, 2);
  ASSERT_EQ(obs.iterations.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(obs.iterations[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(obs.last_task_end, rig.job->finish_time());
}

TEST(RuntimeJobTest, IterationTimesMonotone) {
  Rig rig{2};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(8, SimTime::millis(3))));
  rig.job->start();
  rig.sim.run();
  const auto& times = rig.job->iteration_times();
  ASSERT_EQ(times.size(), 8u);
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GT(times[i], times[i - 1]);
}

// ----------------------------------------------------- NIC contention

TEST(RuntimeJobTest, NicContentionSerializesSimultaneousSends) {
  // Two large cross-node messages sent at the same instant from node 0:
  // with contention modelled, the second transfer queues behind the first.
  auto arrival_gap = [&](bool contention) {
    JobConfig config;
    config.lb_period = 0;
    config.network.model_nic_contention = contention;
    config.network.inter_node_bandwidth = 1e6;  // slow: 1 MB/s
    // PEs 0,1 on node 0; PEs 2,3 on node 1 (cores_per_node = 2 here).
    Rig rig{4, config, nullptr,
            MachineConfig{.nodes = 2, .cores_per_node = 2, .core_speed_overrides = {}}};

    /// Sender fires one 100 kB message at a cross-node receiver on start.
    class BlastChare final : public Chare {
     public:
      explicit BlastChare(ChareId dest) : dest_{dest} {}
      void on_start() override {
        if (dest_ >= 0) send(dest_, 0, {}, 100'000);
      }
      SimTime cost(const Message&) const override { return SimTime::zero(); }
      void execute(const Message&) override {
        received_at = job().sim().now();
        finish();
      }
      SimTime received_at;

     private:
      ChareId dest_ = -1;
    };

    // Chares 0,1 -> PEs 0,1 (node 0) send; chares 2,3 -> PEs 2,3 receive.
    static_cast<void>(rig.job->add_chare(std::make_unique<BlastChare>(2)));
    static_cast<void>(rig.job->add_chare(std::make_unique<BlastChare>(3)));
    auto r2 = std::make_unique<BlastChare>(-1);
    auto r3 = std::make_unique<BlastChare>(-1);
    auto* p2 = r2.get();
    auto* p3 = r3.get();
    static_cast<void>(rig.job->add_chare(std::move(r2)));
    static_cast<void>(rig.job->add_chare(std::move(r3)));
    rig.job->start();
    // Senders never finish (they get no message) — run until receivers do.
    while (p2->received_at.is_zero() || p3->received_at.is_zero())
      CLB_CHECK(rig.sim.step());
    const SimTime a = std::min(p2->received_at, p3->received_at);
    const SimTime b = std::max(p2->received_at, p3->received_at);
    return (b - a).to_seconds();
  };

  // Transfer time is 0.1 s; without contention both arrive together.
  EXPECT_LT(arrival_gap(false), 1e-6);
  EXPECT_NEAR(arrival_gap(true), 0.1, 1e-3);
}

TEST(RuntimeJobTest, NicContentionPreservesIntraNodeTraffic) {
  JobConfig with;
  with.lb_period = 0;
  with.network.model_nic_contention = true;
  JobConfig without = with;
  without.network.model_nic_contention = false;
  auto elapsed = [&](JobConfig config) {
    Rig rig{2, config, nullptr,
            MachineConfig{.nodes = 1, .cores_per_node = 2, .core_speed_overrides = {}}};
    static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(1, 20, true)));
    static_cast<void>(rig.job->add_chare(std::make_unique<PingPongChare>(0, 20, false)));
    rig.job->start();
    rig.sim.run();
    return rig.job->elapsed().ns();
  };
  EXPECT_EQ(elapsed(with), elapsed(without));  // same node: no NIC involved
}

// ------------------------------------------------------------ reductions

/// Contributes a value at start; records the global result and finishes.
class ReducerChare final : public Chare {
 public:
  ReducerChare(double value, std::vector<double>* results, SimTime work)
      : value_{value}, results_{results}, work_{work} {}
  void on_start() override { send(id(), 0, {}); }
  SimTime cost(const Message&) const override { return work_; }
  void execute(const Message&) override { contribute(value_); }
  void on_reduction_result(double result) override {
    results_->push_back(result);
    finish();
  }

 private:
  double value_;
  std::vector<double>* results_;
  SimTime work_;
};

TEST(RuntimeJobTest, ReductionSumsAllChares) {
  Rig rig{2};
  std::vector<double> results;
  for (int i = 0; i < 6; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<ReducerChare>(
        static_cast<double>(i), &results, SimTime::millis(1))));
  rig.job->start();
  rig.sim.run();
  ASSERT_EQ(results.size(), 6u);
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 15.0);  // Σ 0..5
  EXPECT_TRUE(rig.job->finished());
}

TEST(RuntimeJobTest, ReductionWaitsForSlowestContributor) {
  Rig rig{4};
  std::vector<double> results;
  for (int i = 0; i < 3; ++i)
    static_cast<void>(rig.job->add_chare(
        std::make_unique<ReducerChare>(1.0, &results, SimTime::millis(5))));
  static_cast<void>(rig.job->add_chare(
      std::make_unique<ReducerChare>(1.0, &results, SimTime::millis(300))));
  rig.job->start();
  rig.sim.run();
  // The result cannot arrive before the slow chare's 300 ms of work plus
  // the reduction latency.
  EXPECT_GE(rig.job->elapsed().to_seconds(), 0.300);
  ASSERT_EQ(results.size(), 4u);
}

TEST(RuntimeJobTest, ReductionResultWithoutOverrideFailsLoudly) {
  Rig rig{1};
  // WorkerChare never overrides on_reduction_result.
  static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(1, SimTime::micros(1))));
  rig.job->start();
  rig.sim.run();
  EXPECT_THROW(rig.job->chare(0).on_reduction_result(0.0), CheckFailure);
}

// ------------------------------------------------- /proc/stat quantization

TEST(RuntimeJobTest, QuantizedIdleStaysCloseToExact) {
  // With a 10 ms jiffy the window idle reading may be off by up to one
  // quantum per endpoint, never more.
  auto idle_with_quantum = [&](SimTime quantum) {
    JobConfig config;
    config.lb_period = 5;
    config.proc_stat_quantum = quantum;
    std::vector<LbStats> seen;
    Rig rig{2, config, std::make_unique<ProbeLb>(&seen)};
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(43))));
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(10, SimTime::millis(7))));
    rig.job->start();
    rig.sim.run();
    CLB_CHECK(seen.size() == 1);
    return seen[0].pes[1].core_idle_sec;
  };
  const double exact = idle_with_quantum(SimTime::zero());
  const double jiffy = idle_with_quantum(SimTime::millis(10));
  EXPECT_NEAR(jiffy, exact, 0.020 + 1e-9);
  // And the quantized value is a whole number of jiffies up to rounding of
  // the anchor (both endpoints are floored to the same grid).
  const double remainder = std::fmod(jiffy + 1e-12, 0.010);
  EXPECT_TRUE(remainder < 1e-6 || remainder > 0.010 - 1e-6)
      << "remainder " << remainder;
}

TEST(RuntimeJobTest, BalancingStillWorksWithJiffyCounters) {
  // The estimator inputs are 10 ms-quantized; the balancer must still
  // relieve an interfered core (windows are hundreds of ms, so the
  // relative error is small).
  auto elapsed_with = [&](std::unique_ptr<LoadBalancer> lb) {
    JobConfig config;
    config.lb_period = 4;
    config.proc_stat_quantum = SimTime::millis(10);
    Rig rig{2, config, std::move(lb)};
    SyntheticInterferer hog{rig.sim, rig.machine, {0}};
    for (int i = 0; i < 8; ++i)
      static_cast<void>(rig.job->add_chare(
          std::make_unique<WorkerChare>(32, SimTime::millis(20))));
    hog.start();
    rig.job->start();
    while (!rig.job->finished()) CLB_CHECK(rig.sim.step());
    hog.stop();
    rig.sim.run();
    return rig.job->elapsed().to_seconds();
  };
  const double no_lb = elapsed_with(std::make_unique<NullLb>());
  const double with_lb =
      elapsed_with(std::make_unique<InterferenceAwareRefineLb>());
  EXPECT_LT(with_lb, 0.8 * no_lb);
}

// ------------------------------------------------ end-to-end LB behaviour

TEST(RuntimeJobTest, RefineLbFixesInternalImbalanceEndToEnd) {
  // 8 chares of uneven cost piled so PE0 is overloaded; RefineLB should
  // cut the makespan close to the even split.
  auto run_with = [&](std::unique_ptr<LoadBalancer> lb) {
    JobConfig config;
    config.lb_period = 4;
    Rig rig{2, config, std::move(lb)};
    for (int i = 0; i < 4; ++i)
      static_cast<void>(rig.job->add_chare(
          std::make_unique<WorkerChare>(40, SimTime::millis(15))));
    for (int i = 0; i < 4; ++i)
      static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(40, SimTime::millis(5))));
    rig.job->start();
    rig.sim.run();
    return rig.job->elapsed().to_seconds();
  };
  const double unbalanced = run_with(std::make_unique<NullLb>());
  const double refined = run_with(std::make_unique<RefineLb>());
  const double greedy = run_with(std::make_unique<GreedyLb>());
  // noLB: PE0 does 60 ms/iter vs PE1's 20 ms → ≈ 2.4 s. Refinement gets
  // stuck at a 45/35 split (it moves whole 15 ms chares and never swaps),
  // greedy reaches the ideal 40/40.
  EXPECT_NEAR(unbalanced, 2.4, 0.05);
  EXPECT_LT(refined, 1.95);
  EXPECT_LT(greedy, 1.75);
  EXPECT_LT(refined, unbalanced * 0.85);
}

}  // namespace
}  // namespace cloudlb

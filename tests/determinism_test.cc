// Golden determinism test for the event engine. The slot arena, the 4-ary
// heap, and the lazy-cancellation scheme must never change WHICH events
// execute or in what order — only how fast. This test runs a full
// Jacobi2D + ia-refine scenario with a 2-core interferer, hashes the
// (time, sequence-number) execution trace, and pins the digest.
//
// If an engine change breaks this test, it changed observable scheduling
// semantics, not just performance. Either find the bug, or — if the
// reordering is intended and argued for in docs/event-engine.md — update
// kGoldenTraceDigest in the same commit that documents why.

#include <gtest/gtest.h>

#include <cstdint>

#include <memory>
#include <string>

#include "apps/jacobi2d.h"
#include "apps/wave2d.h"
#include "core/balancer_factory.h"
#include "faults/fault_injector.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "runtime/job.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

/// FNV-1a over the little-endian bytes of each word.
class TraceHash {
 public:
  void mix(std::uint64_t word) {
    for (int b = 0; b < 8; ++b) {
      digest_ ^= (word >> (8 * b)) & 0xffu;
      digest_ *= 1099511628211ull;
    }
  }
  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t digest_ = 1469598103934665603ull;
};

/// The paper's core setting, shrunk to test size: Jacobi2D on 4 cores
/// under ia-refine, a 2-core Wave2D background job interfering on cores
/// 2-3. Exercises messaging, barriers, LB migration, and timer churn.
///
/// A non-empty `fault_spec` wires a FaultInjector (plus migration retries)
/// into the app job — the differential-degradation pin: a spec whose every
/// model is at zero intensity must leave this digest untouched.
std::uint64_t traced_scenario_digest(const std::string& fault_spec = {}) {
  Simulator sim;
  TraceHash hash;
  sim.set_trace_hook([&hash](SimTime time, std::uint64_t seq) {
    hash.mix(static_cast<std::uint64_t>(time.ns()));
    hash.mix(seq);
  });

  MachineConfig mc;
  mc.nodes = 1;
  mc.cores_per_node = 4;
  Machine machine{sim, mc};

  std::unique_ptr<FaultInjector> faults;
  if (!fault_spec.empty())
    faults = std::make_unique<FaultInjector>(FaultPlan::parse(fault_spec));

  VirtualMachine app_vm{machine, "jacobi2d", {0, 1, 2, 3}};
  JobConfig app_config;
  app_config.name = "jacobi2d";
  app_config.lb_period = 3;
  if (faults != nullptr) {
    app_config.faults = faults.get();
    app_config.migration_max_retries = 3;
  }
  RuntimeJob app{sim, app_vm, app_config, make_balancer("ia-refine")};
  Jacobi2dConfig jc;
  jc.layout.grid_x = 64;
  jc.layout.grid_y = 64;
  jc.layout.blocks_x = 8;
  jc.layout.blocks_y = 4;
  jc.layout.iterations = 20;
  populate_jacobi2d(app, jc);

  VirtualMachine bg_vm{machine, "bg", {2, 3}};
  JobConfig bg_config;
  bg_config.name = "bg";
  bg_config.lb_period = 0;
  RuntimeJob bg{sim, bg_vm, bg_config, std::make_unique<NullLb>()};
  Wave2dConfig wc;
  wc.layout.grid_x = 64;
  wc.layout.grid_y = 64;
  wc.layout.blocks_x = 4;
  wc.layout.blocks_y = 2;
  wc.layout.iterations = 30;
  populate_wave2d(bg, wc);

  if (faults != nullptr) faults->install_interference(sim, machine);

  app.start();
  bg.start();
  while (!app.finished()) CLB_CHECK(sim.step());
  return hash.digest();
}

/// One clause of every fault model, all at zero intensity. The injector
/// must prune them all and behave as if it did not exist.
constexpr const char* kZeroIntensitySpec =
    "spike(core=1,start=0.1,duration=0);"
    "square(core=0,start=0.2,period=1,on=0);"
    "pareto(cores=0);"
    "drop(prob=0);stale(prob=0);corrupt(prob=0);"
    "jitter(sigma=0);failmig(prob=0);seed(value=42)";

// Pinned digest of the scenario above. Recompute by running this test and
// reading the "actual" value — but first read the header comment.
constexpr std::uint64_t kGoldenTraceDigest = 0x90efd5aa25d76ebfull;

TEST(DeterminismTest, TraceIsReproducibleWithinProcess) {
  EXPECT_EQ(traced_scenario_digest(), traced_scenario_digest());
}

TEST(DeterminismTest, TraceMatchesGoldenDigest) {
  EXPECT_EQ(traced_scenario_digest(), kGoldenTraceDigest);
}

// Differential degradation: wrapping the scenario with a zero-intensity
// fault plan (every model present, every intensity zero, plus migration
// retries armed) must produce a byte-identical execution trace. If this
// fails, some fault path leaks into faultless runs — an RNG draw, a
// scheduled event, a perturbed stat.
TEST(DeterminismTest, ZeroIntensityFaultWrapIsByteIdentical) {
  FaultInjector probe{FaultPlan::parse(kZeroIntensitySpec)};
  ASSERT_TRUE(probe.inert());
  EXPECT_EQ(traced_scenario_digest(kZeroIntensitySpec), kGoldenTraceDigest);
}

// And the converse: a live fault plan must actually perturb the trace —
// otherwise the injector is wired to nothing.
TEST(DeterminismTest, LiveFaultPlanPerturbsTheTrace) {
  EXPECT_NE(traced_scenario_digest(
                "spike(core=2,start=0.01,duration=0.5);seed(value=42)"),
            kGoldenTraceDigest);
}

// ------------------------------------------------------------------
// Shard routing (docs/sharded-engine.md): the same two-node scenario
// with a WindowedShardRouter between the nodes. Routing preserves every
// delivery *timestamp* — it only changes insertion order (and adds the
// barrier flush events) — so the digest is a sharp detector: it must be
// stable per shard count, different from the direct path when routing
// engages, and untouched when one shard makes routing vacuous.

/// Jacobi2D across two nodes (8 cores), optionally with windowed
/// cross-node delivery. `shards <= 1` leaves the router out entirely.
std::uint64_t traced_two_node_digest(int shards) {
  Simulator sim;
  TraceHash hash;
  sim.set_trace_hook([&hash](SimTime time, std::uint64_t seq) {
    hash.mix(static_cast<std::uint64_t>(time.ns()));
    hash.mix(seq);
  });

  MachineConfig mc;
  mc.nodes = 2;
  mc.cores_per_node = 4;
  Machine machine{sim, mc};

  JobConfig app_config;
  app_config.name = "jacobi2d";
  app_config.lb_period = 3;
  std::unique_ptr<WindowedShardRouter> router;
  if (shards > 1) {
    router = std::make_unique<WindowedShardRouter>(
        sim, shards, mc.nodes, min_internode_delay(app_config.network));
    app_config.router = router.get();
  }

  VirtualMachine app_vm{machine, "jacobi2d", {0, 1, 2, 3, 4, 5, 6, 7}};
  RuntimeJob app{sim, app_vm, app_config, make_balancer("ia-refine")};
  Jacobi2dConfig jc;
  jc.layout.grid_x = 64;
  jc.layout.grid_y = 64;
  jc.layout.blocks_x = 8;
  jc.layout.blocks_y = 4;
  jc.layout.iterations = 12;
  populate_jacobi2d(app, jc);

  app.start();
  while (!app.finished()) CLB_CHECK(sim.step());
  if (router != nullptr) {
    EXPECT_GT(router->routed(), 0u);  // routing actually engaged
    EXPECT_EQ(router->buffered(), 0u);
  }
  return hash.digest();
}

TEST(DeterminismTest, ShardRoutingIsDeterministicPerShardCount) {
  EXPECT_EQ(traced_two_node_digest(2), traced_two_node_digest(2));
}

TEST(DeterminismTest, ShardRoutingEngagesAndReordersTies) {
  // The flush events alone guarantee a different trace whenever any
  // cross-node traffic exists; equality here would mean --shards is
  // wired to nothing.
  EXPECT_NE(traced_two_node_digest(2), traced_two_node_digest(1));
}

TEST(DeterminismTest, SingleShardRouterIsVacuous) {
  // With one shard crosses_shards() is constant-false: the router must
  // leave the direct path bit-identical, which is what keeps the legacy
  // golden digest valid for every --shards<=1 run.
  Simulator sim;
  WindowedShardRouter router{sim, 1, 2, SimTime::micros(60)};
  EXPECT_FALSE(router.crosses_shards(0, 1));
}

}  // namespace
}  // namespace cloudlb

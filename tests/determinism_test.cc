// Golden determinism test for the event engine. The slot arena, the 4-ary
// heap, and the lazy-cancellation scheme must never change WHICH events
// execute or in what order — only how fast. This test runs a full
// Jacobi2D + ia-refine scenario with a 2-core interferer, hashes the
// (time, sequence-number) execution trace, and pins the digest.
//
// If an engine change breaks this test, it changed observable scheduling
// semantics, not just performance. Either find the bug, or — if the
// reordering is intended and argued for in docs/event-engine.md — update
// kGoldenTraceDigest in the same commit that documents why.

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/jacobi2d.h"
#include "apps/wave2d.h"
#include "core/balancer_factory.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "runtime/job.h"
#include "sim/simulator.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

/// FNV-1a over the little-endian bytes of each word.
class TraceHash {
 public:
  void mix(std::uint64_t word) {
    for (int b = 0; b < 8; ++b) {
      digest_ ^= (word >> (8 * b)) & 0xffu;
      digest_ *= 1099511628211ull;
    }
  }
  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t digest_ = 1469598103934665603ull;
};

/// The paper's core setting, shrunk to test size: Jacobi2D on 4 cores
/// under ia-refine, a 2-core Wave2D background job interfering on cores
/// 2-3. Exercises messaging, barriers, LB migration, and timer churn.
std::uint64_t traced_scenario_digest() {
  Simulator sim;
  TraceHash hash;
  sim.set_trace_hook([&hash](SimTime time, std::uint64_t seq) {
    hash.mix(static_cast<std::uint64_t>(time.ns()));
    hash.mix(seq);
  });

  MachineConfig mc;
  mc.nodes = 1;
  mc.cores_per_node = 4;
  Machine machine{sim, mc};

  VirtualMachine app_vm{machine, "jacobi2d", {0, 1, 2, 3}};
  JobConfig app_config;
  app_config.name = "jacobi2d";
  app_config.lb_period = 3;
  RuntimeJob app{sim, app_vm, app_config, make_balancer("ia-refine")};
  Jacobi2dConfig jc;
  jc.layout.grid_x = 64;
  jc.layout.grid_y = 64;
  jc.layout.blocks_x = 8;
  jc.layout.blocks_y = 4;
  jc.layout.iterations = 20;
  populate_jacobi2d(app, jc);

  VirtualMachine bg_vm{machine, "bg", {2, 3}};
  JobConfig bg_config;
  bg_config.name = "bg";
  bg_config.lb_period = 0;
  RuntimeJob bg{sim, bg_vm, bg_config, std::make_unique<NullLb>()};
  Wave2dConfig wc;
  wc.layout.grid_x = 64;
  wc.layout.grid_y = 64;
  wc.layout.blocks_x = 4;
  wc.layout.blocks_y = 2;
  wc.layout.iterations = 30;
  populate_wave2d(bg, wc);

  app.start();
  bg.start();
  while (!app.finished()) sim.step();
  return hash.digest();
}

// Pinned digest of the scenario above. Recompute by running this test and
// reading the "actual" value — but first read the header comment.
constexpr std::uint64_t kGoldenTraceDigest = 0x90efd5aa25d76ebfull;

TEST(DeterminismTest, TraceIsReproducibleWithinProcess) {
  EXPECT_EQ(traced_scenario_digest(), traced_scenario_digest());
}

TEST(DeterminismTest, TraceMatchesGoldenDigest) {
  EXPECT_EQ(traced_scenario_digest(), kGoldenTraceDigest);
}

}  // namespace
}  // namespace cloudlb

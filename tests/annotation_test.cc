#include <gtest/gtest.h>

#include <type_traits>

#include "util/shard_annotations.h"

// The shard-safety effect annotations are metadata for cloudlb-analyzer
// only: they must not change layout, ABI, or behavior of anything they
// mark. Each pair below differs only by annotation; any drift in size,
// alignment, or triviality fails at compile time, and the runtime cases
// pin behavioral equality. (The golden trace digest in
// tests/determinism_test.cc covers the annotated production tree.)

namespace cloudlb {
namespace {

struct PlainSegment {
  long long busy_ns = 0;
  double cpu_seconds = 0.0;
  int tasks_executed = 0;
};

struct CLB_SHARD_CONFINED AnnotatedSegment {
  long long busy_ns = 0;
  double cpu_seconds = 0.0;
  int tasks_executed = 0;
};

static_assert(sizeof(AnnotatedSegment) == sizeof(PlainSegment),
              "type-level annotation must not change layout");
static_assert(alignof(AnnotatedSegment) == alignof(PlainSegment),
              "type-level annotation must not change alignment");
static_assert(std::is_trivially_copyable<AnnotatedSegment>::value ==
                  std::is_trivially_copyable<PlainSegment>::value,
              "type-level annotation must not change triviality");
static_assert(std::is_standard_layout<AnnotatedSegment>::value ==
                  std::is_standard_layout<PlainSegment>::value,
              "type-level annotation must not change layout category");

struct PlainCounters {
  int in_window;
  int merged;
};

struct AnnotatedCounters {
  CLB_SHARD_CONFINED int in_window;
  int merged;
};

static_assert(sizeof(AnnotatedCounters) == sizeof(PlainCounters),
              "field-level annotation must not change layout");
static_assert(std::is_trivial<AnnotatedCounters>::value ==
                  std::is_trivial<PlainCounters>::value,
              "field-level annotation must not change triviality");

int plain_sum(int a, int b) { return a + b; }
CLB_CANONICAL_COMBINE int combine_sum(int a, int b) { return a + b; }
CLB_BARRIER_PHASE int barrier_sum(int a, int b) { return a + b; }
CLB_SHARD_CONFINED CLB_RANKED_FANOUT int stacked_sum(int a, int b) {
  return a + b;
}

static_assert(std::is_same<decltype(&plain_sum), decltype(&combine_sum)>::value,
              "function annotation must not change the function type");

TEST(ShardAnnotations, AnnotatedFunctionsBehaveIdentically) {
  for (int a = -3; a <= 3; ++a) {
    for (int b = -3; b <= 3; ++b) {
      EXPECT_EQ(plain_sum(a, b), combine_sum(a, b));
      EXPECT_EQ(plain_sum(a, b), barrier_sum(a, b));
      EXPECT_EQ(plain_sum(a, b), stacked_sum(a, b));
    }
  }
}

TEST(ShardAnnotations, AnnotatedTypesBehaveIdentically) {
  AnnotatedSegment seg;
  seg.busy_ns = 42;
  seg.cpu_seconds = 1.5;
  seg.tasks_executed = 7;
  AnnotatedSegment copy = seg;
  EXPECT_EQ(copy.busy_ns, 42);
  EXPECT_EQ(copy.cpu_seconds, 1.5);
  EXPECT_EQ(copy.tasks_executed, 7);
}

}  // namespace
}  // namespace cloudlb

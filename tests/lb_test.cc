#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "lb/framework.h"
#include "lb/greedy_lb.h"
#include "lb/null_lb.h"
#include "lb/random_lb.h"
#include "lb/refine_lb.h"
#include "lb/refinement.h"
#include "lb/registry.h"
#include "lb/stats_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace cloudlb {
namespace {

/// Builds an LbStats where each PE's window is `wall` seconds and the idle
/// time is whatever Eq. 2 would need for zero background load (idle =
/// wall − task CPU), unless an explicit external load is given per PE.
LbStats make_stats(int num_pes, const std::vector<double>& chare_cpu,
                   const std::vector<PeId>& assignment, double wall = 10.0,
                   const std::vector<double>& external = {}) {
  CLB_CHECK(chare_cpu.size() == assignment.size());
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(num_pes));
  for (int p = 0; p < num_pes; ++p) {
    stats.pes[static_cast<std::size_t>(p)].pe = p;
    stats.pes[static_cast<std::size_t>(p)].core = p;
    stats.pes[static_cast<std::size_t>(p)].wall_sec = wall;
  }
  stats.chares.resize(chare_cpu.size());
  std::vector<double> task(static_cast<std::size_t>(num_pes), 0.0);
  for (std::size_t c = 0; c < chare_cpu.size(); ++c) {
    auto& ch = stats.chares[c];
    ch.chare = static_cast<ChareId>(c);
    ch.pe = assignment[c];
    ch.cpu_sec = chare_cpu[c];
    ch.bytes = 4096;
    task[static_cast<std::size_t>(ch.pe)] += ch.cpu_sec;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  for (int p = 0; p < num_pes; ++p) {
    const auto i = static_cast<std::size_t>(p);
    const double ext = external.empty() ? 0.0 : external[i];
    stats.pes[i].core_idle_sec = std::max(0.0, wall - task[i] - ext);
  }
  return stats;
}

std::vector<double> pe_loads(const LbStats& stats,
                             const std::vector<PeId>& assignment,
                             const std::vector<double>& external = {}) {
  std::vector<double> load(stats.pes.size(), 0.0);
  if (!external.empty()) load = external;
  for (std::size_t c = 0; c < assignment.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return load;
}

// ----------------------------------------------------------------- NullLb

TEST(NullLbTest, KeepsAssignment) {
  NullLb lb;
  const LbStats stats = make_stats(2, {5.0, 1.0, 1.0}, {0, 1, 1});
  EXPECT_EQ(lb.assign(stats), (std::vector<PeId>{0, 1, 1}));
  EXPECT_EQ(lb.name(), "null");
}

// ---------------------------------------------------------------- GreedyLb

TEST(GreedyLbTest, BalancesEqualTasksEvenly) {
  GreedyLb lb;
  const LbStats stats =
      make_stats(4, std::vector<double>(8, 1.0), {0, 0, 0, 0, 0, 0, 0, 0});
  const auto result = lb.assign(stats);
  const auto load = pe_loads(stats, result);
  for (const double l : load) EXPECT_DOUBLE_EQ(l, 2.0);
}

TEST(GreedyLbTest, HeaviestTaskGoesFirst) {
  GreedyLb lb;
  // Loads 6,3,3,2,2: greedy → PE0:{6,2}=8? no: 6|3|3 then 2→PE1(3),2→PE2(3)
  const LbStats stats = make_stats(3, {6.0, 3.0, 3.0, 2.0, 2.0},
                                   {0, 0, 0, 0, 0});
  const auto result = lb.assign(stats);
  const auto load = pe_loads(stats, result);
  const double mx = *std::max_element(load.begin(), load.end());
  EXPECT_DOUBLE_EQ(mx, 6.0);  // optimal here
}

TEST(GreedyLbTest, GreedyBoundHolds) {
  // Graham's bound: makespan ≤ mean + max_task for list scheduling.
  Rng rng{3};
  for (int trial = 0; trial < 20; ++trial) {
    const int pes = static_cast<int>(rng.uniform_int(2, 8));
    const auto n = static_cast<std::size_t>(rng.uniform_int(4, 40));
    std::vector<double> cpu(n);
    double total = 0.0, mx_task = 0.0;
    for (auto& c : cpu) {
      c = rng.uniform(0.1, 5.0);
      total += c;
      mx_task = std::max(mx_task, c);
    }
    const std::vector<PeId> assign(n, 0);
    const LbStats stats = make_stats(pes, cpu, assign, 1000.0);
    GreedyLb lb;
    const auto result = lb.assign(stats);
    const auto load = pe_loads(stats, result);
    const double mx = *std::max_element(load.begin(), load.end());
    EXPECT_LE(mx, total / pes + mx_task + 1e-9);
  }
}

TEST(GreedyLbTest, Deterministic) {
  const LbStats stats = make_stats(3, {1.0, 1.0, 1.0, 1.0}, {0, 0, 1, 2});
  GreedyLb a, b;
  EXPECT_EQ(a.assign(stats), b.assign(stats));
}

// ------------------------------------------------------------- refinement

TEST(RefinementTest, BalancedInputMigratesNothing) {
  const LbStats stats = make_stats(2, {1.0, 1.0, 1.0, 1.0}, {0, 0, 1, 1});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  EXPECT_EQ(r.migrations, 0);
  EXPECT_TRUE(r.fully_balanced);
  EXPECT_EQ(r.assignment, (std::vector<PeId>{0, 0, 1, 1}));
}

TEST(RefinementTest, MovesWorkOffOverloadedPe) {
  const LbStats stats =
      make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 0, 0});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  EXPECT_EQ(r.migrations, 2);
  EXPECT_TRUE(r.fully_balanced);
  const auto load = pe_loads(stats, r.assignment);
  EXPECT_DOUBLE_EQ(load[0], 4.0);
  EXPECT_DOUBLE_EQ(load[1], 4.0);
}

TEST(RefinementTest, MinimalMigrationsVersusGreedy) {
  // Only slightly imbalanced: refinement should move exactly one chare
  // while greedy would reshuffle many.
  const LbStats stats = make_stats(
      2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0}, {0, 0, 0, 0, 1, 1, 1});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  EXPECT_EQ(r.migrations, 0);  // 4 vs 4: already balanced
}

TEST(RefinementTest, ExternalLoadTreatedAsUnmovable) {
  // PE0 carries 5 s of background; app work is even. The interference-
  // aware view must drain app work from PE0.
  const LbStats stats = make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 1, 1},
                                   10.0, {5.0, 0.0});
  const auto r = refine_assignment(stats, {5.0, 0.0}, 0.05);
  // T_avg = 13/2 = 6.5, ε ≈ 0.33. One 2 s chare moves (9 → 7); the second
  // would push PE1 to 8 > T_avg + ε, so granularity stops refinement there.
  EXPECT_EQ(r.migrations, 1);
  EXPECT_FALSE(r.fully_balanced);
  const auto load = pe_loads(stats, r.assignment, {5.0, 0.0});
  EXPECT_DOUBLE_EQ(load[0], 7.0);
  EXPECT_DOUBLE_EQ(load[1], 6.0);
}

TEST(RefinementTest, ReceiverNeverOverloaded) {
  const LbStats stats =
      make_stats(3, {9.0, 1.0, 1.0, 1.0}, {0, 0, 0, 0});
  const auto r = refine_assignment(stats, {0.0, 0.0, 0.0}, 0.05);
  const auto load = pe_loads(stats, r.assignment);
  const double t_avg = 12.0 / 3.0;
  // PEs 1 and 2 only ever receive; they must end within ε of T_avg.
  EXPECT_LE(load[1], t_avg * 1.05 + 1e-9);
  EXPECT_LE(load[2], t_avg * 1.05 + 1e-9);
}

TEST(RefinementTest, UnsplittableGiantTaskIsDropped) {
  // One chare holds nearly all the load; nothing fits anywhere.
  const LbStats stats = make_stats(2, {10.0, 0.5, 0.5}, {0, 0, 1});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  EXPECT_FALSE(r.fully_balanced);
  // The 10 s chare must not move (it would overload the receiver);
  // at most the 0.5 s one moves.
  EXPECT_EQ(r.assignment[0], 0);
}

TEST(RefinementTest, ZeroCostChareNeverMigrated) {
  const LbStats stats = make_stats(2, {4.0, 0.0, 0.0, 0.0}, {0, 0, 0, 0});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  for (std::size_t c = 1; c < 4; ++c) EXPECT_EQ(r.assignment[c], 0);
}

TEST(RefinementTest, EpsilonWidensTolerance) {
  const LbStats stats = make_stats(2, {3.0, 2.0}, {0, 1});
  // Mean 2.5; deviation 0.5 = 20% of T_avg. ε = 25% → no action.
  const auto relaxed = refine_assignment(stats, {0.0, 0.0}, 0.25);
  EXPECT_EQ(relaxed.migrations, 0);
}

TEST(RefinementTest, ZeroPesIsNoOpNotDivisionByZero) {
  // Degenerate: an empty machine. T_avg would be 0/0; the engine must
  // return an empty no-op result instead of dividing by zero.
  LbStats stats;
  const auto r = refine_assignment(stats, {}, 0.05);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_EQ(r.migrations, 0);
  EXPECT_TRUE(r.fully_balanced);
  EXPECT_DOUBLE_EQ(r.max_load, 0.0);
}

TEST(RefinementTest, ZeroTotalLoadEarlyOuts) {
  // Degenerate: T_avg == 0 collapses ε to 0; with all loads zero the
  // instance is vacuously balanced and nothing must be classified heavy.
  const LbStats stats = make_stats(3, {0.0, 0.0, 0.0}, {0, 0, 1});
  const auto r = refine_assignment(stats, {0.0, 0.0, 0.0}, 0.05);
  EXPECT_EQ(r.migrations, 0);
  EXPECT_TRUE(r.fully_balanced);
  EXPECT_DOUBLE_EQ(r.max_load, 0.0);
  EXPECT_EQ(r.assignment, (std::vector<PeId>{0, 0, 1}));
}

TEST(RefinementTest, MaxMigrationsCapsSchedulePrefix) {
  // Needs 2 moves to balance; capped runs perform exactly the first moves
  // of the uncapped schedule.
  const LbStats stats = make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 0, 0});
  RefinementOptions options;
  options.epsilon_fraction = 0.05;

  options.max_migrations = 0;
  const auto none = refine_assignment(stats, {0.0, 0.0}, options);
  EXPECT_EQ(none.migrations, 0);
  EXPECT_EQ(none.assignment, stats.current_assignment());
  EXPECT_FALSE(none.fully_balanced);

  options.max_migrations = 1;
  const auto one = refine_assignment(stats, {0.0, 0.0}, options);
  EXPECT_EQ(one.migrations, 1);
  EXPECT_FALSE(one.fully_balanced);

  options.max_migrations = -1;
  const auto all = refine_assignment(stats, {0.0, 0.0}, options);
  EXPECT_EQ(all.migrations, 2);
  EXPECT_TRUE(all.fully_balanced);
  // The capped run is a prefix: every chare moved under cap 1 moved to the
  // same place in the uncapped run.
  for (std::size_t c = 0; c < 4; ++c) {
    if (one.assignment[c] != stats.chares[c].pe) {
      EXPECT_EQ(one.assignment[c], all.assignment[c]);
    }
  }
}

TEST(RefinementTest, TieBreakModesDeterministicAndEquivalentQuality) {
  // Four identical chares on PE0 of a 3-PE machine: receivers and tasks
  // tie everywhere. Both modes must be self-deterministic and reach the
  // same makespan, differing only in which ids they prefer.
  const LbStats stats = make_stats(3, {2.0, 2.0, 2.0, 2.0, 2.0, 2.0},
                                   {0, 0, 0, 0, 0, 0});
  RefinementOptions lowest;
  lowest.tie_break = RefinementTieBreak::kLowestId;
  RefinementOptions highest;
  highest.tie_break = RefinementTieBreak::kHighestId;

  const auto a1 = refine_assignment(stats, {0.0, 0.0, 0.0}, lowest);
  const auto a2 = refine_assignment(stats, {0.0, 0.0, 0.0}, lowest);
  const auto b1 = refine_assignment(stats, {0.0, 0.0, 0.0}, highest);
  const auto b2 = refine_assignment(stats, {0.0, 0.0, 0.0}, highest);
  EXPECT_EQ(a1.assignment, a2.assignment);
  EXPECT_EQ(b1.assignment, b2.assignment);
  EXPECT_EQ(a1.migrations, b1.migrations);
  EXPECT_NEAR(a1.max_load, b1.max_load, 1e-12);
}

TEST(RefinementTest, ReportsFinalMaxLoad) {
  const LbStats stats = make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 0, 0});
  const auto r = refine_assignment(stats, {0.0, 0.0}, 0.05);
  const auto load = pe_loads(stats, r.assignment);
  EXPECT_DOUBLE_EQ(r.max_load, *std::max_element(load.begin(), load.end()));
}

TEST(RefinementTest, ValidatesInputs) {
  LbStats stats = make_stats(2, {1.0}, {0});
  EXPECT_THROW(refine_assignment(stats, {0.0}, 0.05), CheckFailure);
  stats.chares[0].pe = 7;  // invalid PE
  EXPECT_THROW(refine_assignment(stats, {0.0, 0.0}, 0.05), CheckFailure);
}

class RefinementPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RefinementPropertyTest, InvariantsOnRandomInstances) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  const int pes = static_cast<int>(rng.uniform_int(2, 16));
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(pes, pes * 8));
  std::vector<double> cpu(n);
  std::vector<PeId> assign(n);
  for (std::size_t c = 0; c < n; ++c) {
    cpu[c] = rng.uniform(0.0, 2.0);
    assign[c] = static_cast<PeId>(rng.uniform_int(0, pes - 1));
  }
  std::vector<double> external(static_cast<std::size_t>(pes), 0.0);
  for (auto& e : external)
    if (rng.next_double() < 0.3) e = rng.uniform(0.0, 8.0);

  const LbStats stats = make_stats(pes, cpu, assign, 100.0, external);
  const auto before = pe_loads(stats, assign, external);
  const double t_avg =
      std::accumulate(before.begin(), before.end(), 0.0) / pes;
  const double eps = 0.05 * t_avg;

  const auto r = refine_assignment(stats, external, 0.05);

  // 1. Valid dense mapping, migration count consistent.
  ASSERT_EQ(r.assignment.size(), n);
  int moves = 0;
  for (std::size_t c = 0; c < n; ++c) {
    ASSERT_GE(r.assignment[c], 0);
    ASSERT_LT(r.assignment[c], pes);
    if (r.assignment[c] != assign[c]) ++moves;
  }
  EXPECT_EQ(moves, r.migrations);

  const auto after = pe_loads(stats, r.assignment, external);

  for (int p = 0; p < pes; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (after[i] > before[i] + 1e-12) {
      // 2. PEs that gained load end within ε of the average.
      EXPECT_LE(after[i], t_avg + eps + 1e-9) << "receiver overloaded";
    }
    // 3. Initially overloaded PEs never gain.
    if (before[i] - t_avg > eps) {
      EXPECT_LE(after[i], before[i] + 1e-12);
    }
  }

  // 4. fully_balanced ⇔ every PE within ε.
  bool all_within = true;
  for (const double l : after)
    if (std::abs(l - t_avg) > eps + 1e-9) all_within = false;
  EXPECT_EQ(r.fully_balanced, all_within);

  // 5. Repeated application converges quickly to a fixpoint. (A single
  // pass of Algorithm 1 is not a fixpoint in general: a donor dropped
  // early can find room opened by a later donor overshooting into the
  // underloaded set; the next LB step then picks it up.)
  std::vector<PeId> current = r.assignment;
  bool converged = false;
  for (int round = 0; round < 8 && !converged; ++round) {
    const LbStats s = make_stats(pes, cpu, current, 100.0, external);
    const auto rr = refine_assignment(s, external, 0.05);
    converged = rr.migrations == 0;
    current = rr.assignment;
  }
  EXPECT_TRUE(converged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementPropertyTest,
                         ::testing::Range(1, 33));

// ---------------------------------------------------------------- RefineLb

TEST(RefineLbTest, IgnoresBackgroundLoad) {
  // App work even, heavy background on PE0: the interference-blind
  // RefineLB sees perfect balance and does nothing — the paper's motivating
  // failure.
  RefineLb lb;
  const LbStats stats = make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 1, 1},
                                   10.0, {5.0, 0.0});
  EXPECT_EQ(lb.assign(stats), (std::vector<PeId>{0, 0, 1, 1}));
}

TEST(RefineLbTest, FixesInternalImbalance) {
  RefineLb lb;
  const LbStats stats = make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 0, 0});
  const auto result = lb.assign(stats);
  const auto load = pe_loads(stats, result);
  EXPECT_DOUBLE_EQ(load[0], 4.0);
  EXPECT_DOUBLE_EQ(load[1], 4.0);
}

// ---------------------------------------------------------------- RandomLb

TEST(RandomLbTest, ProducesValidPes) {
  RandomLb lb{LbOptions{.epsilon_fraction = 0.05, .seed = 42, .robustness = {}}};
  const LbStats stats =
      make_stats(3, std::vector<double>(30, 1.0), std::vector<PeId>(30, 0));
  const auto result = lb.assign(stats);
  for (const PeId p : result) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(RandomLbTest, SeedDeterminism) {
  const LbStats stats =
      make_stats(4, std::vector<double>(16, 1.0), std::vector<PeId>(16, 0));
  RandomLb a{LbOptions{.epsilon_fraction = 0.05, .seed = 9, .robustness = {}}};
  RandomLb b{LbOptions{.epsilon_fraction = 0.05, .seed = 9, .robustness = {}}};
  EXPECT_EQ(a.assign(stats), b.assign(stats));
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, CreatesAllBaselines) {
  for (const auto& name : baseline_balancer_names()) {
    const auto lb = make_baseline_balancer(name);
    ASSERT_NE(lb, nullptr) << name;
    EXPECT_EQ(lb->name(), name);
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(make_baseline_balancer("definitely-not-a-balancer"), nullptr);
}

// ---------------------------------------------------------------- stats IO

TEST(StatsIoTest, RoundTripsExactly) {
  const LbStats original = make_stats(3, {1.25, 0.5, 2.0, 0.0},
                                      {0, 1, 2, 1}, 12.5, {0.0, 3.25, 0.0});
  std::stringstream buffer;
  write_stats(buffer, original, 0);
  write_stats(buffer, original, 1);
  const auto windows = read_stats(buffer);
  ASSERT_EQ(windows.size(), 2u);
  for (const LbStats& w : windows) {
    ASSERT_EQ(w.pes.size(), original.pes.size());
    ASSERT_EQ(w.chares.size(), original.chares.size());
    for (std::size_t p = 0; p < w.pes.size(); ++p) {
      EXPECT_EQ(w.pes[p].pe, original.pes[p].pe);
      EXPECT_EQ(w.pes[p].core, original.pes[p].core);
      EXPECT_EQ(w.pes[p].wall_sec, original.pes[p].wall_sec);
      EXPECT_EQ(w.pes[p].core_idle_sec, original.pes[p].core_idle_sec);
      EXPECT_EQ(w.pes[p].task_cpu_sec, original.pes[p].task_cpu_sec);
    }
    for (std::size_t c = 0; c < w.chares.size(); ++c) {
      EXPECT_EQ(w.chares[c].pe, original.chares[c].pe);
      EXPECT_EQ(w.chares[c].cpu_sec, original.chares[c].cpu_sec);
      EXPECT_EQ(w.chares[c].bytes, original.chares[c].bytes);
    }
  }
}

TEST(StatsIoTest, EmptyStreamIsEmptyTrace) {
  std::stringstream buffer;
  EXPECT_TRUE(read_stats(buffer).empty());
}

TEST(StatsIoTest, MalformedInputRejected) {
  {
    std::stringstream buffer{"pe 0 0 1 1 0\n"};  // record outside a window
    EXPECT_THROW(read_stats(buffer), CheckFailure);
  }
  {
    std::stringstream buffer{"window 0\npe 0 0 junk\nend\n"};
    EXPECT_THROW(read_stats(buffer), CheckFailure);
  }
  {
    std::stringstream buffer{"window 0\npe 0 0 1 1 0\n"};  // missing end
    EXPECT_THROW(read_stats(buffer), CheckFailure);
  }
  {
    std::stringstream buffer{"wat 1 2 3\n"};
    EXPECT_THROW(read_stats(buffer), CheckFailure);
  }
}

TEST(StatsIoTest, RecordingDecoratorCapturesEveryWindow) {
  std::stringstream buffer;
  RecordingLb recorder{std::make_unique<GreedyLb>(), &buffer};
  EXPECT_EQ(recorder.name(), "greedy+record");
  const LbStats stats = make_stats(2, {1.0, 2.0}, {0, 0});
  const auto forwarded = recorder.assign(stats);
  recorder.assign(stats);
  EXPECT_EQ(recorder.windows_recorded(), 2);
  // Forwarding really happened (greedy balances the two chares).
  EXPECT_NE(forwarded[0], forwarded[1]);
  EXPECT_EQ(read_stats(buffer).size(), 2u);
}

// --------------------------------------------------------------- framework

TEST(LbStatsTest, CurrentAssignmentRoundTrips) {
  const LbStats stats = make_stats(2, {1.0, 2.0, 3.0}, {1, 0, 1});
  EXPECT_EQ(stats.current_assignment(), (std::vector<PeId>{1, 0, 1}));
}

TEST(LbStatsTest, ValidateCatchesSparseIds) {
  LbStats stats = make_stats(2, {1.0}, {0});
  stats.chares[0].chare = 5;
  EXPECT_THROW(stats.validate(), CheckFailure);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include "machine/core.h"
#include "machine/machine.h"
#include "machine/power.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace cloudlb {
namespace {

constexpr double kTol = 1e-6;  // seconds; covers ns rounding in the core

class CoreTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(CoreTest, SingleContextRunsAtFullSpeed) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  SimTime done;
  core.demand(ctx, SimTime::seconds(1), [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 1.0, kTol);
  EXPECT_NEAR(core.context_cpu_time(ctx).to_seconds(), 1.0, kTol);
}

TEST_F(CoreTest, SpeedScalesWallTime) {
  Core core{sim, 0, 2.0};
  const ContextId ctx = core.register_context("a");
  SimTime done;
  core.demand(ctx, SimTime::seconds(1), [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 0.5, kTol);
}

TEST_F(CoreTest, TwoEqualContextsShareFairly) {
  Core core{sim, 0};
  const ContextId a = core.register_context("a");
  const ContextId b = core.register_context("b");
  SimTime done_a, done_b;
  core.demand(a, SimTime::seconds(1), [&] { done_a = sim.now(); });
  core.demand(b, SimTime::seconds(1), [&] { done_b = sim.now(); });
  sim.run();
  // Both progress at rate 1/2 → both finish at ~2 s.
  EXPECT_NEAR(done_a.to_seconds(), 2.0, kTol);
  EXPECT_NEAR(done_b.to_seconds(), 2.0, kTol);
}

TEST_F(CoreTest, WeightedSharing) {
  Core core{sim, 0};
  const ContextId light = core.register_context("light", 1.0);
  const ContextId heavy = core.register_context("heavy", 3.0);
  SimTime done_light, done_heavy;
  core.demand(light, SimTime::seconds(1), [&] { done_light = sim.now(); });
  core.demand(heavy, SimTime::seconds(1), [&] { done_heavy = sim.now(); });
  sim.run();
  // heavy at 3/4 rate finishes at 4/3 s; light then runs alone:
  // consumed 1/3 by then, 2/3 left → finishes at 4/3 + 2/3 = 2 s.
  EXPECT_NEAR(done_heavy.to_seconds(), 4.0 / 3.0, kTol);
  EXPECT_NEAR(done_light.to_seconds(), 2.0, kTol);
}

TEST_F(CoreTest, LateArrivalSlowsInProgressWork) {
  Core core{sim, 0};
  const ContextId a = core.register_context("a");
  const ContextId b = core.register_context("b");
  SimTime done_a, done_b;
  core.demand(a, SimTime::seconds(2), [&] { done_a = sim.now(); });
  sim.schedule_at(SimTime::seconds(1), [&] {
    core.demand(b, SimTime::seconds(1), [&] { done_b = sim.now(); });
  });
  sim.run();
  // a runs alone for 1 s (1 s left), then shares: both need 1 CPU-s at
  // rate 1/2 → both finish at t = 3 s.
  EXPECT_NEAR(done_a.to_seconds(), 3.0, kTol);
  EXPECT_NEAR(done_b.to_seconds(), 3.0, kTol);
}

TEST_F(CoreTest, AccountingMidFlight) {
  Core core{sim, 0};
  const ContextId a = core.register_context("a");
  const ContextId b = core.register_context("b");
  core.demand(a, SimTime::seconds(4), [] {});
  core.demand(b, SimTime::seconds(4), [] {});
  sim.run_until(SimTime::seconds(1));
  EXPECT_NEAR(core.context_cpu_time(a).to_seconds(), 0.5, kTol);
  EXPECT_NEAR(core.context_cpu_time(b).to_seconds(), 0.5, kTol);
  EXPECT_NEAR(core.proc_stat().busy.to_seconds(), 1.0, kTol);
  EXPECT_NEAR(core.proc_stat().idle.to_seconds(), 0.0, kTol);
}

TEST_F(CoreTest, IdleTimeAccumulatesInGaps) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  core.demand(ctx, SimTime::seconds(1), [] {});
  sim.run();
  sim.run_until(SimTime::seconds(3));  // 2 s of nothing
  core.demand(ctx, SimTime::seconds(1), [] {});
  sim.run();
  const ProcStat st = core.proc_stat();
  EXPECT_NEAR(st.busy.to_seconds(), 2.0, kTol);
  EXPECT_NEAR(st.idle.to_seconds(), 2.0, kTol);
}

TEST_F(CoreTest, ZeroDemandCompletesPromptly) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  bool fired = false;
  core.demand(ctx, SimTime::zero(), [&] { fired = true; });
  EXPECT_FALSE(fired);  // delivered via event, not synchronously
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST_F(CoreTest, DoubleDemandOnSameContextRejected) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  core.demand(ctx, SimTime::seconds(1), [] {});
  EXPECT_THROW(core.demand(ctx, SimTime::seconds(1), [] {}), CheckFailure);
}

TEST_F(CoreTest, HasDemandTracksLifetime) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  EXPECT_FALSE(core.has_demand(ctx));
  core.demand(ctx, SimTime::seconds(1), [] {});
  EXPECT_TRUE(core.has_demand(ctx));
  sim.run();
  EXPECT_FALSE(core.has_demand(ctx));
}

TEST_F(CoreTest, SetWeightMidFlightChangesRates) {
  Core core{sim, 0};
  const ContextId a = core.register_context("a", 1.0);
  const ContextId b = core.register_context("b", 1.0);
  SimTime done_a;
  core.demand(a, SimTime::seconds(1), [&] { done_a = sim.now(); });
  core.demand(b, SimTime::seconds(10), [] {});
  sim.run_until(SimTime::seconds(1));  // a consumed 0.5 so far
  core.set_weight(a, 3.0);             // now a runs at 3/4
  sim.run_until(SimTime::seconds(2));
  // 0.5 remaining at rate 3/4 → finishes at 1 + 2/3 s.
  EXPECT_NEAR(done_a.to_seconds(), 1.0 + 2.0 / 3.0, kTol);
}

TEST_F(CoreTest, ContextChainNoRecursionBlowup) {
  Core core{sim, 0};
  const ContextId ctx = core.register_context("a");
  int remaining = 20'000;
  std::function<void()> next = [&] {
    if (--remaining > 0) core.demand(ctx, SimTime::zero(), next);
  };
  core.demand(ctx, SimTime::zero(), next);
  sim.run();
  EXPECT_EQ(remaining, 0);
}

TEST_F(CoreTest, ChunkedConsumptionMatchesContinuous) {
  // 10 × 100 ms chunks back to back behave like one 1 s demand.
  Core core{sim, 0};
  const ContextId a = core.register_context("a");
  const ContextId b = core.register_context("b");
  core.demand(b, SimTime::seconds(10), [] {});
  int chunks = 10;
  SimTime done_a;
  std::function<void()> next = [&] {
    if (--chunks > 0) {
      core.demand(a, SimTime::millis(100), next);
    } else {
      done_a = sim.now();
    }
  };
  core.demand(a, SimTime::millis(100), next);
  sim.run();
  EXPECT_NEAR(done_a.to_seconds(), 2.0, 1e-4);  // shared 2-way throughout
}

TEST_F(CoreTest, RegisterValidation) {
  Core core{sim, 0};
  EXPECT_THROW(core.register_context("bad", 0.0), CheckFailure);
  EXPECT_THROW(core.register_context("bad", -1.0), CheckFailure);
  const ContextId ctx = core.register_context("ok");
  EXPECT_THROW(core.demand(ctx, SimTime::seconds(-1), [] {}), CheckFailure);
  EXPECT_THROW(core.demand(ctx + 1, SimTime::zero(), [] {}), CheckFailure);
  EXPECT_EQ(core.context_name(ctx), "ok");
}

// ---------------------------------------------------------------- Machine

TEST(MachineTest, TopologyIndexing) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 3, .cores_per_node = 4, .core_speed_overrides = {}}};
  EXPECT_EQ(m.num_cores(), 12);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(3), 0);
  EXPECT_EQ(m.node_of(4), 1);
  EXPECT_EQ(m.node_of(11), 2);
  EXPECT_TRUE(m.same_node(4, 7));
  EXPECT_FALSE(m.same_node(3, 4));
  EXPECT_EQ(m.core(5).id(), 5);
}

TEST(MachineTest, BoundsChecked) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 2, .core_speed_overrides = {}}};
  EXPECT_THROW(m.core(2), CheckFailure);
  EXPECT_THROW(m.core(-1), CheckFailure);
  EXPECT_THROW(m.node_of(99), CheckFailure);
}

TEST(MachineTest, PerCoreSpeedOverrides) {
  Simulator sim;
  MachineConfig config{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}};
  config.core_speed_overrides = {{1, 0.5}, {3, 2.0}};
  Machine m{sim, config};
  EXPECT_DOUBLE_EQ(m.core(0).speed(), 1.0);
  EXPECT_DOUBLE_EQ(m.core(1).speed(), 0.5);
  EXPECT_DOUBLE_EQ(m.core(2).speed(), 1.0);
  EXPECT_DOUBLE_EQ(m.core(3).speed(), 2.0);
}

TEST(MachineTest, NonPositiveSpeedOverrideRejected) {
  Simulator sim;
  MachineConfig config{.nodes = 1, .cores_per_node = 2, .core_speed_overrides = {}};
  config.core_speed_overrides = {{0, 0.0}};
  EXPECT_THROW(Machine(sim, config), CheckFailure);
}

TEST(MachineTest, InvalidConfigRejected) {
  Simulator sim;
  EXPECT_THROW(Machine(sim, MachineConfig{.nodes = 0, .cores_per_node = 4, .core_speed_overrides = {}}),
               CheckFailure);
}

// -------------------------------------------------------------- PowerMeter

TEST(PowerMeterTest, IdleMachineDrawsBasePower) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
  PowerMeter meter{sim, m};
  meter.start();
  sim.run_until(SimTime::seconds(10));
  meter.stop();
  EXPECT_NEAR(meter.energy_joules(), 2 * 40.0 * 10.0, 1e-6);
  EXPECT_NEAR(meter.average_power_watts(), 80.0, 1e-9);
}

TEST(PowerMeterTest, BusyCoreAddsDynamicPower) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};
  const ContextId ctx = m.core(0).register_context("hog");
  PowerMeter meter{sim, m};
  meter.start();
  m.core(0).demand(ctx, SimTime::seconds(10), [] {});
  sim.run_until(SimTime::seconds(10));
  meter.stop();
  EXPECT_NEAR(meter.energy_joules(), 40.0 * 10.0 + 32.5 * 10.0, 1e-3);
  EXPECT_NEAR(meter.average_power_watts(), 72.5, 1e-3);
}

TEST(PowerMeterTest, FullyLoadedQuadCoreNodeHitsPeak) {
  // The paper's testbed: 40 W base, 170 W flat out.
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};
  for (CoreId c = 0; c < 4; ++c) {
    const ContextId ctx = m.core(c).register_context("hog");
    m.core(c).demand(ctx, SimTime::seconds(5), [] {});
  }
  PowerMeter meter{sim, m};
  meter.start();
  sim.run_until(SimTime::seconds(5));
  meter.stop();
  EXPECT_NEAR(meter.average_power_watts(), 170.0, 1e-3);
}

TEST(PowerMeterTest, SamplesAtOneHertz) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 1, .core_speed_overrides = {}}};
  PowerMeter meter{sim, m};
  meter.start();
  sim.run_until(SimTime::from_seconds(5.5));
  meter.stop();
  EXPECT_EQ(meter.samples().size(), 5u);
  for (const auto& s : meter.samples())
    EXPECT_NEAR(s.total_watts, 40.0, 1e-9);
}

TEST(PowerMeterTest, SampledSeriesMatchesExactAverage) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 2, .core_speed_overrides = {}}};
  const ContextId ctx = m.core(0).register_context("hog");
  // Busy 3 s of a 6 s window → utilization 0.5 on one of two cores.
  m.core(0).demand(ctx, SimTime::seconds(3), [] {});
  PowerMeter meter{sim, m};
  meter.start();
  sim.run_until(SimTime::seconds(6));
  meter.stop();
  double sampled = 0.0;
  for (const auto& s : meter.samples()) sampled += s.total_watts;
  sampled /= static_cast<double>(meter.samples().size());
  EXPECT_NEAR(sampled, meter.average_power_watts(), 1e-3);
  EXPECT_NEAR(meter.average_power_watts(), 40.0 + 32.5 * 0.5, 1e-3);
}

TEST(PowerMeterTest, StopFreezesWindow) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 1, .core_speed_overrides = {}}};
  PowerMeter meter{sim, m};
  meter.start();
  sim.run_until(SimTime::seconds(2));
  meter.stop();
  const double e = meter.energy_joules();
  sim.run_until(SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(meter.energy_joules(), e);
  EXPECT_EQ(meter.window(), SimTime::seconds(2));
}

TEST(PowerMeterTest, DoubleStartRejected) {
  Simulator sim;
  Machine m{sim, MachineConfig{.nodes = 1, .cores_per_node = 1, .core_speed_overrides = {}}};
  PowerMeter meter{sim, m};
  meter.start();
  EXPECT_THROW(meter.start(), CheckFailure);
  meter.stop();
  meter.stop();  // idempotent
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "lb/framework.h"
#include "lb/greedy_lb.h"
#include "lb/null_lb.h"
#include "lb/refinement.h"
#include "lb/refinement_internal.h"
#include "machine/machine.h"
#include "runtime/chare.h"
#include "runtime/job.h"
#include "runtime/network.h"
#include "runtime/shard_partition.h"
#include "runtime/sharded_runtime.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/sim_time.h"
#include "util/validate.h"
#include "vm/virtual_machine.h"

namespace cloudlb {

// Friend-declared corruption seams: the deep validators exist to catch
// structural damage that no public API can produce, so the tests reach
// into private state to inflict exactly that damage.
struct SimulatorTestAccess {
  static std::vector<Simulator::QueueEntry>& queue(Simulator& sim) {
    return sim.queue_;
  }
  static std::vector<Simulator::Slot>& slots(Simulator& sim) {
    return sim.slots_;
  }
  static std::uint32_t free_head(const Simulator& sim) {
    return sim.free_head_;
  }
  static std::size_t& stale(Simulator& sim) { return sim.stale_; }
};

struct RuntimeJobTestAccess {
  static std::vector<PeId>& assignment(RuntimeJob& job) {
    return job.assignment_;
  }
  static std::vector<std::uint8_t>& chare_done(RuntimeJob& job) {
    return job.chare_done_;
  }
  static ShardPartition& partition(RuntimeJob& job) {
    CLB_CHECK(job.part_ != nullptr);
    return *job.part_;
  }
};

namespace {

/// Self-messaging worker; AtSync every lb_period iterations.
class WorkerChare final : public Chare {
 public:
  WorkerChare(int iterations, SimTime task_cost)
      : iterations_{iterations}, task_cost_{task_cost} {}

  void on_start() override { send(id(), 0, {}); }
  SimTime cost(const Message&) const override { return task_cost_; }
  void execute(const Message&) override {
    ++iter_;
    if (iter_ >= iterations_) {
      finish();
      return;
    }
    const int period = job().lb_period();
    if (period > 0 && iter_ % period == 0) {
      at_sync();
    } else {
      send(id(), 0, {});
    }
  }
  void on_resume_sync() override { send(id(), 0, {}); }
  std::size_t footprint_bytes() const override { return 4096; }

 private:
  int iterations_;
  SimTime task_cost_;
  int iter_ = 0;
};

struct Rig {
  explicit Rig(int cores, std::unique_ptr<LoadBalancer> lb = nullptr,
               JobConfig config = JobConfig{})
      : machine{sim, MachineConfig{.nodes = 1,
                                   .cores_per_node = cores,
                                   .core_speed_overrides = {}}} {
    std::vector<CoreId> ids(static_cast<std::size_t>(cores));
    std::iota(ids.begin(), ids.end(), 0);
    vm = std::make_unique<VirtualMachine>(machine, "app", ids);
    if (lb == nullptr) lb = std::make_unique<NullLb>();
    job = std::make_unique<RuntimeJob>(sim, *vm, std::move(config),
                                       std::move(lb));
  }

  Simulator sim;
  Machine machine;
  std::unique_ptr<VirtualMachine> vm;
  std::unique_ptr<RuntimeJob> job;
};

// ------------------------------------------------------ toggle semantics

TEST(ValidationToggleTest, ScopeSetsAndRestores) {
  const bool before = validation_enabled();
  {
    ValidationScope on{true};
    EXPECT_TRUE(validation_enabled());
    {
      ValidationScope off{false};
      EXPECT_FALSE(validation_enabled());
    }
    EXPECT_TRUE(validation_enabled());
  }
  EXPECT_EQ(validation_enabled(), before);
}

TEST(ValidationToggleTest, SetReturnsPreviousState) {
  const bool before = validation_enabled();
  EXPECT_EQ(set_validation_enabled(true), before);
  EXPECT_EQ(set_validation_enabled(before), true);
  EXPECT_EQ(validation_enabled(), before);
}

// ------------------------------------------------- simulator validators

TEST(SimulatorValidateTest, CleanEngineUnderChurnPasses) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i)
    handles.push_back(sim.schedule_at(SimTime::micros(i + 1), [] {}));
  for (int i = 0; i < 200; i += 3)
    EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
  sim.validate_integrity();
  sim.run_until(SimTime::micros(100));
  sim.validate_integrity();
  sim.run();
  sim.validate_integrity();
}

TEST(SimulatorValidateTest, BrokenHeapPropertyIsCaught) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_at(SimTime::micros(i), [] {});
  auto& queue = SimulatorTestAccess::queue(sim);
  std::swap(queue.front(), queue.back());  // later event parked above earlier
  EXPECT_THROW(sim.validate_integrity(), CheckFailure);
}

TEST(SimulatorValidateTest, GenerationDriftIsCaught) {
  Simulator sim;
  sim.schedule_at(SimTime::micros(1), [] {});
  // Bump the slot's generation behind the engine's back: the queue entry
  // silently goes stale without the stale/live accounting moving.
  ++SimulatorTestAccess::slots(sim)[SimulatorTestAccess::queue(sim)
                                        .front()
                                        .slot]
        .gen;
  EXPECT_THROW(sim.validate_integrity(), CheckFailure);
}

// The stale-entry ledger is integrity state, not a soft counter. step()
// used to clamp an underflow away (`if (stale_ > 0) --stale_;`), which
// let drifted accounting pass silently and unwind as heap-audit noise
// much later; now skipping a cancelled head with stale_ == 0 fails hard
// at the exact corrupted pop.
TEST(SimulatorValidateTest, StaleLedgerUnderflowIsCaught) {
  Simulator sim;
  const EventHandle doomed = sim.schedule_at(SimTime::micros(1), [] {});
  sim.schedule_at(SimTime::micros(2), [] {});
  ASSERT_TRUE(sim.cancel(doomed));
  SimulatorTestAccess::stale(sim) = 0;  // the corruption under test
  EXPECT_THROW(sim.run(), CheckFailure);
}

TEST(SimulatorValidateTest, FreeListCycleIsCaught) {
  Simulator sim;
  sim.schedule_at(SimTime::micros(1), [] {});
  sim.run();  // slot released back to the free list
  const std::uint32_t head = SimulatorTestAccess::free_head(sim);
  ASSERT_NE(head, 0xffffffffu);
  SimulatorTestAccess::slots(sim)[head].next_free = head;  // self-loop
  EXPECT_THROW(sim.validate_integrity(), CheckFailure);
}

TEST(SimulatorValidateTest, CallbackLeftOnFreeSlotIsCaught) {
  Simulator sim;
  sim.schedule_at(SimTime::micros(1), [] {});
  sim.run();
  const std::uint32_t head = SimulatorTestAccess::free_head(sim);
  ASSERT_NE(head, 0xffffffffu);
  SimulatorTestAccess::slots(sim)[head].cb = [] {};
  EXPECT_THROW(sim.validate_integrity(), CheckFailure);
}

TEST(SimulatorValidateTest, NonMonotoneTraceIsCaught) {
  Simulator sim;
  const SimTime t = SimTime::micros(5);
  sim.schedule_at(t, [] {});
  sim.schedule_at(t, [] {});
  // Same timestamp, so FIFO order is carried entirely by the sequence
  // numbers; swapping the heap entries makes seq run backwards without
  // tripping the clock-consistency check.
  auto& queue = SimulatorTestAccess::queue(sim);
  ASSERT_EQ(queue.size(), 2u);
  std::swap(queue[0], queue[1]);
  ValidationScope validation{true};
  EXPECT_TRUE(sim.step());
  EXPECT_THROW(static_cast<void>(sim.step()), CheckFailure);
}

// ---------------------------------------------------- runtime validators

TEST(RuntimeValidateTest, HealthyJobPassesAfterMigrations) {
  ValidationScope validation{true};  // exercise the automatic call sites too
  Rig rig{4, std::make_unique<GreedyLb>()};
  for (int i = 0; i < 8; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(
        20, SimTime::micros(100 * (i + 1)))));
  rig.job->start();
  rig.sim.run();
  EXPECT_TRUE(rig.job->finished());
  EXPECT_GT(rig.job->counters().lb_steps, 0);
  rig.job->validate_invariants();
}

TEST(RuntimeValidateTest, OutOfRangeAssignmentIsCaught) {
  Rig rig{2};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(2, SimTime::micros(10))));
  rig.job->start();
  rig.sim.run();
  rig.job->validate_invariants();
  RuntimeJobTestAccess::assignment(*rig.job)[0] = 99;  // PE that doesn't exist
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

TEST(RuntimeValidateTest, DoneCountDriftIsCaught) {
  Rig rig{2};
  for (int i = 0; i < 4; ++i)
    static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(2, SimTime::micros(10))));
  rig.job->start();
  rig.sim.run();
  auto done = RuntimeJobTestAccess::chare_done(*rig.job);
  RuntimeJobTestAccess::chare_done(*rig.job)[0] =
      static_cast<std::uint8_t>(done[0] == 0);
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

// ----------------------------------------- partitioned-state validators

/// A completed sharded run whose partitioned state the tests then damage
/// through the corruption seams: every validator below must catch its
/// specific kind of rot (the partition only ever rots through bugs in the
/// window/merge protocol, which is exactly why it needs a validator).
struct ShardedRig {
  explicit ShardedRig(int shards) {
    MachineConfig mc;
    mc.nodes = 4;
    mc.cores_per_node = 2;
    ShardedRuntimeHost::Config hc;
    hc.shards = shards;
    hc.window = shard_window_width(JobConfig{}.network);
    host = std::make_unique<ShardedRuntimeHost>(mc, hc);
    std::vector<CoreId> ids(8);
    std::iota(ids.begin(), ids.end(), 0);
    vm = std::make_unique<VirtualMachine>(host->machine(), "app", ids);
    JobConfig jc;
    jc.lb_period = 4;
    job = std::make_unique<RuntimeJob>(*host, *vm, jc,
                                       std::make_unique<GreedyLb>());
    for (int i = 0; i < 16; ++i)
      static_cast<void>(job->add_chare(std::make_unique<WorkerChare>(
          12, SimTime::micros(100 * (i % 5 + 1)))));
    job->start();
    host->drive(/*max_events=*/100'000'000);
  }

  std::unique_ptr<ShardedRuntimeHost> host;
  std::unique_ptr<VirtualMachine> vm;
  std::unique_ptr<RuntimeJob> job;
};

TEST(PartitionValidateTest, HealthyShardedJobPasses) {
  ShardedRig rig{2};
  EXPECT_TRUE(rig.job->finished());
  rig.job->validate_invariants();
}

TEST(PartitionValidateTest, ShardedDoneCountDriftIsCaught) {
  ShardedRig rig{2};
  rig.job->validate_invariants();
  RuntimeJobTestAccess::chare_done(*rig.job)[0] = 0;  // un-finish a chare
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

TEST(PartitionValidateTest, ReductionCounterDriftIsCaught) {
  ShardedRig rig{2};
  rig.job->validate_invariants();
  // A red_count with no logged contribution means a shard counted a
  // contribution it never recorded — the merge would silently drop it.
  ++RuntimeJobTestAccess::partition(*rig.job).seg(0).red_count;
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

TEST(PartitionValidateTest, NonMonotoneContributionsAreCaught) {
  ShardedRig rig{2};
  rig.job->validate_invariants();
  // A shard's contribution log must be in its own execution order; a
  // backwards timestamp means a foreign thread wrote into the segment.
  ShardSegment& seg = RuntimeJobTestAccess::partition(*rig.job).seg(0);
  seg.contributions.emplace_back(SimTime::seconds(2), 1.0);
  seg.contributions.emplace_back(SimTime::seconds(1), 1.0);
  seg.red_count += 2;
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

TEST(PartitionValidateTest, WindowTotalDriftIsCaught) {
  ShardedRig rig{2};
  rig.job->validate_invariants();
  // The running duplicate of the database's window total feeds the
  // per-shard load summaries; drift means the summaries lie about load.
  RuntimeJobTestAccess::partition(*rig.job).seg(0).window_cpu_sec += 1.0;
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

TEST(PartitionValidateTest, SegmentCountMismatchIsCaught) {
  ShardedRig rig{3};
  rig.job->validate_invariants();
  // More chares "at the barrier" than live chares: quiescence could fire
  // before the last straggler arrives.
  RuntimeJobTestAccess::partition(*rig.job).seg(0).sync_count = 999;
  EXPECT_THROW(rig.job->validate_invariants(), CheckFailure);
}

// -------------------------------------------------- refinement validator

namespace rd = refinement_detail;

LbStats make_stats(const std::vector<double>& pe_loads,
                   const std::vector<std::pair<PeId, double>>& chares) {
  LbStats stats;
  for (std::size_t p = 0; p < pe_loads.size(); ++p)
    stats.pes.push_back(PeSample{.pe = static_cast<PeId>(p),
                                 .core = static_cast<std::int32_t>(p),
                                 .wall_sec = 1.0,
                                 .core_idle_sec = 1.0 - pe_loads[p],
                                 .task_cpu_sec = pe_loads[p]});
  for (std::size_t c = 0; c < chares.size(); ++c)
    stats.chares.push_back(ChareSample{.chare = static_cast<ChareId>(c),
                                       .pe = chares[c].first,
                                       .cpu_sec = chares[c].second,
                                       .bytes = 1024});
  return stats;
}

TEST(RefinementValidateTest, EngineRunsCleanUnderValidation) {
  ValidationScope validation{true};
  // Unbalanced on purpose: PE0 carries everything, so refinement must move
  // chares and the engine's own post-pass audit runs on a non-trivial plan.
  const LbStats stats = make_stats(
      {0.8, 0.0}, {{0, 0.4}, {0, 0.2}, {0, 0.1}, {0, 0.1}});
  const std::vector<double> external(2, 0.0);
  const RefinementResult result = refine_assignment(stats, external, 0.05);
  EXPECT_GT(result.migrations, 0);
}

TEST(RefinementValidateTest, TamperedAssignmentBreaksConservation) {
  // Already balanced, so the engine's incremental loads equal the initial
  // ones and the validator's recomputation agrees — until we tamper.
  const LbStats stats = make_stats(
      {0.3, 0.3}, {{0, 0.15}, {0, 0.15}, {1, 0.15}, {1, 0.15}});
  const std::vector<double> external(2, 0.0);
  const rd::Problem problem =
      rd::build_problem(stats, external, RefinementOptions{});
  RefinementResult result = refine_assignment(stats, external, 0.05);
  EXPECT_EQ(result.migrations, 0);
  rd::validate_refinement(stats, external, problem, result);

  result.assignment[0] = 1;  // move a chare without moving its load
  EXPECT_THROW(rd::validate_refinement(stats, external, problem, result),
               CheckFailure);
}

TEST(RefinementValidateTest, DriftedLoadVectorBreaksEq1) {
  const LbStats stats = make_stats(
      {0.3, 0.3}, {{0, 0.15}, {0, 0.15}, {1, 0.15}, {1, 0.15}});
  const std::vector<double> external(2, 0.0);
  rd::Problem problem = rd::build_problem(stats, external, RefinementOptions{});
  const RefinementResult result = refine_assignment(stats, external, 0.05);
  problem.load[0] += 1.0;  // Eq. 1: Σ load must stay P · T_avg
  EXPECT_THROW(rd::validate_refinement(stats, external, problem, result),
               CheckFailure);
}

// ------------------------------------------------- observe-only contract

TEST(ValidationDeterminismTest, ValidatedRunIsBitIdentical) {
  using Trace = std::vector<std::pair<SimTime, std::uint64_t>>;
  const auto run_once = [](bool validated) {
    ValidationScope validation{validated};
    Rig rig{4, std::make_unique<GreedyLb>()};
    for (int i = 0; i < 8; ++i)
      static_cast<void>(rig.job->add_chare(std::make_unique<WorkerChare>(
          20, SimTime::micros(100 * (i + 1)))));
    Trace trace;
    rig.sim.set_trace_hook([&trace](SimTime t, std::uint64_t seq) {
      trace.emplace_back(t, seq);
    });
    rig.job->start();
    rig.sim.run();
    return trace;
  };
  const Trace plain = run_once(false);
  const Trace validated = run_once(true);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, validated);
}

}  // namespace
}  // namespace cloudlb

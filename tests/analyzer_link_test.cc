// Unit tests for the whole-program link step's LLVM-free half: the
// summary model + JSON codec + content hashing (tools/analyzer/summary.h)
// and the propagation engine (tools/analyzer/linker.h). These run on
// every machine — no clang frontend needed — so the cross-TU analysis
// logic stays pinned even where only CI can build the emitter.
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "linker.h"
#include "summary.h"

namespace cloudlb_analyzer {
namespace {

// --- Builders ---------------------------------------------------------

FunctionSummary make_fn(const std::string& name,
                        std::vector<std::string> annotations = {}) {
  FunctionSummary fn;
  fn.usr = "c:@F@" + name;
  fn.name = name;
  fn.file = "/repo/src/" + name + ".cc";
  fn.line = 10;
  fn.annotations = std::move(annotations);
  return fn;
}

CallEdge edge_to(const std::string& callee, int line = 20) {
  CallEdge edge;
  edge.usr = "c:@F@" + callee;
  edge.name = callee;
  edge.line = line;
  edge.col = 3;
  return edge;
}

Fact make_fact(const char* kind, const std::string& detail, int line = 30) {
  Fact fact;
  fact.kind = kind;
  fact.detail = detail;
  fact.line = line;
  fact.col = 5;
  return fact;
}

TuSummary make_tu(const std::string& tu,
                  std::vector<FunctionSummary> functions) {
  TuSummary summary;
  summary.tool = "cloudlb-analyzer";
  summary.tu = tu;
  summary.functions = std::move(functions);
  return summary;
}

/// Links one synthetic TU set with filesystem access stubbed out (no
/// NOLINT lines exist for synthetic paths).
LinkResult link_tus(std::vector<TuSummary> tus, LinkOptions options = {}) {
  Linker linker;
  for (const TuSummary& tu : tus) linker.add_summary(tu);
  if (!options.read_line)
    options.read_line = [](const std::string&, int, std::string*) {
      return false;
    };
  return linker.link(options);
}

std::vector<LinkFinding> findings_for(const LinkResult& result,
                                      const std::string& check) {
  std::vector<LinkFinding> out;
  for (const LinkFinding& f : result.findings)
    if (f.check == check) out.push_back(f);
  return out;
}

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << bytes;
  return path;
}

// --- JSON round-trip --------------------------------------------------

TEST(SummaryJson, RoundTripPreservesEverything) {
  FunctionSummary fn = make_fn("hot_loop", {annot::kWarmPath});
  CallEdge edge = edge_to("helper");
  edge.in_loop = true;
  edge.guarded = true;
  edge.cold = false;
  edge.in_lambda = true;
  fn.calls.push_back(edge);
  Fact fact = make_fact(fact_kind::kAlloc, "operator new");
  fact.in_loop = true;
  fact.amortized = true;
  fn.facts.push_back(fact);

  TuSummary tu = make_tu("/repo/src/sim/engine.cc", {fn});
  tu.content_hash = 0xdeadbeefULL;
  tu.deps.push_back(DepHash{"/repo/src/sim/engine.cc", 42});
  tu.deps.push_back(DepHash{"/repo/src/sim/engine_core.h", 7});

  TuSummary parsed;
  std::string error;
  ASSERT_TRUE(from_json(to_json(tu), &parsed, &error)) << error;
  EXPECT_EQ(parsed, tu);
}

TEST(SummaryJson, EscapesSpecialCharacters) {
  FunctionSummary fn = make_fn("weird");
  fn.facts.push_back(
      make_fact(fact_kind::kBlock, "say \"hi\"\n\tback\\slash"));
  TuSummary tu = make_tu("/repo/a.cc", {fn});
  TuSummary parsed;
  std::string error;
  ASSERT_TRUE(from_json(to_json(tu), &parsed, &error)) << error;
  EXPECT_EQ(parsed.functions[0].facts[0].detail, "say \"hi\"\n\tback\\slash");
}

// --- Robustness: stale/corrupt summaries fail loudly ------------------

TEST(SummaryJson, RejectsWrongSchemaVersion) {
  TuSummary tu = make_tu("/repo/a.cc", {});
  std::string json = to_json(tu);
  const std::string needle = "\"schema_version\":1";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"schema_version\":999");
  TuSummary parsed;
  std::string error;
  EXPECT_FALSE(from_json(json, &parsed, &error));
  EXPECT_NE(error.find("999"), std::string::npos) << error;
  EXPECT_NE(error.find("1"), std::string::npos) << error;
}

TEST(SummaryJson, RejectsTruncation) {
  FunctionSummary fn = make_fn("f");
  fn.calls.push_back(edge_to("g"));
  const std::string json = to_json(make_tu("/repo/a.cc", {fn}));
  // Cutting before the closing brace must be refused — truncation
  // anywhere structural is loud. (The document ends "}\n"; losing only
  // trailing whitespace is legitimately still complete.)
  const std::size_t last_brace = json.rfind('}');
  ASSERT_NE(last_brace, std::string::npos);
  for (std::size_t len : {json.size() / 4, json.size() / 2, last_brace}) {
    TuSummary parsed;
    std::string error;
    EXPECT_FALSE(from_json(json.substr(0, len), &parsed, &error))
        << "accepted a summary truncated to " << len << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SummaryJson, RejectsBitFlips) {
  FunctionSummary fn = make_fn("f");
  fn.facts.push_back(make_fact(fact_kind::kConfinedTouch, "load_"));
  const std::string json = to_json(make_tu("/repo/a.cc", {fn}));
  int rejected = 0;
  int accepted = 0;
  for (std::size_t i = 0; i < json.size(); i += 7) {
    std::string mutated = json;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x04);
    if (mutated == json) continue;
    TuSummary parsed;
    std::string error;
    if (from_json(mutated, &parsed, &error)) {
      // A flip inside a string literal's payload is legitimately still
      // valid JSON; it must at least not equal the original summary.
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // Structural bytes dominate this document; most flips must be refused.
  EXPECT_GT(rejected, accepted);
}

TEST(SummaryJson, RejectsTrailingGarbage) {
  const std::string json = to_json(make_tu("/repo/a.cc", {})) + "{}";
  TuSummary parsed;
  std::string error;
  EXPECT_FALSE(from_json(json, &parsed, &error));
}

TEST(SummaryFile, ReadErrorNamesThePath) {
  const std::string path =
      write_temp("cloudlb_corrupt_summary.json", "{\"schema_version\":");
  TuSummary parsed;
  std::string error;
  ASSERT_FALSE(read_summary_file(path, &parsed, &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(SummaryFile, WriteThenReadRoundTrips) {
  TuSummary tu = make_tu("/repo/a.cc", {make_fn("f")});
  tu.content_hash = 99;
  const std::string path =
      ::testing::TempDir() + "cloudlb_roundtrip_summary.json";
  std::string error;
  ASSERT_TRUE(write_summary_file(path, tu, &error)) << error;
  TuSummary parsed;
  ASSERT_TRUE(read_summary_file(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed, tu);
}

// --- Content hashing and freshness ------------------------------------

TEST(SummaryHash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit test vector: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(""), kFnvOffset);
}

TEST(SummaryHash, FreshnessTracksDepContent) {
  const std::string dep =
      write_temp("cloudlb_fresh_dep.h", "struct A { int x; };\n");
  TuSummary tu = make_tu("/repo/a.cc", {});
  DepHash dep_hash{dep, 0};
  ASSERT_TRUE(hash_file(dep, &dep_hash.hash));
  tu.deps.push_back(dep_hash);
  const std::string command = "clang++ -std=c++20 -c a.cc";
  tu.content_hash = summary_content_hash(command, tu.deps);

  EXPECT_TRUE(summary_is_fresh(tu, command));
  EXPECT_FALSE(summary_is_fresh(tu, command + " -DEXTRA"));

  {
    std::ofstream out{dep, std::ios::binary | std::ios::trunc};
    out << "struct A { int x; int y; };\n";
  }
  EXPECT_FALSE(summary_is_fresh(tu, command));
}

TEST(SummaryHash, FreshnessFailsOnMissingDepOrStaleSchema) {
  TuSummary tu = make_tu("/repo/a.cc", {});
  tu.deps.push_back(DepHash{::testing::TempDir() + "cloudlb_no_such_dep.h", 1});
  tu.content_hash = summary_content_hash("cmd", tu.deps);
  EXPECT_FALSE(summary_is_fresh(tu, "cmd"));

  TuSummary stale = make_tu("/repo/a.cc", {});
  stale.schema_version = kSummarySchemaVersion + 1;
  stale.content_hash = summary_content_hash("cmd", stale.deps);
  EXPECT_FALSE(summary_is_fresh(stale, "cmd"));
}

TEST(SummaryFile, FileNameFlattensSeparators) {
  EXPECT_EQ(summary_file_name("/repo/src/sim/engine.cc"),
            "_repo_src_sim_engine.cc.json");
}

// --- Propagation: shard-confined --------------------------------------

TEST(LinkShardConfined, BlessesDepthThreeChains) {
  // root(CLB_SHARD_CONFINED) -> a -> b -> touches confined state: clean.
  FunctionSummary root = make_fn("root", {annot::kShardConfined});
  root.calls.push_back(edge_to("a"));
  FunctionSummary a = make_fn("a");
  a.calls.push_back(edge_to("b"));
  FunctionSummary b = make_fn("b");
  b.facts.push_back(make_fact(fact_kind::kConfinedTouch, "load_"));

  const LinkResult clean = link_tus({make_tu("/repo/t1.cc", {root}),
                                     make_tu("/repo/t2.cc", {a}),
                                     make_tu("/repo/t3.cc", {b})});
  EXPECT_TRUE(findings_for(clean, "analyzer-shard-confined").empty());

  // Remove the root annotation: the same touch is now laundered.
  FunctionSummary bad_root = make_fn("root");
  bad_root.calls.push_back(edge_to("a"));
  const LinkResult dirty = link_tus({make_tu("/repo/t1.cc", {bad_root}),
                                     make_tu("/repo/t2.cc", {a}),
                                     make_tu("/repo/t3.cc", {b})});
  const auto found = findings_for(dirty, "analyzer-shard-confined");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, b.file);
  EXPECT_EQ(found[0].line, 30);
  EXPECT_NE(found[0].message.find("load_"), std::string::npos);
}

TEST(LinkShardConfined, ColdTouchesAreExempt) {
  FunctionSummary orphan = make_fn("orphan");
  Fact fact = make_fact(fact_kind::kConfinedTouch, "load_");
  fact.cold = true;
  orphan.facts.push_back(fact);
  const LinkResult result = link_tus({make_tu("/repo/t.cc", {orphan})});
  EXPECT_TRUE(findings_for(result, "analyzer-shard-confined").empty());
}

// --- Propagation: barrier-phase ---------------------------------------

TEST(LinkBarrierPhase, FlagsUnguardedCrossTuChain) {
  // confined -> relay -> barrier, no guard anywhere: the finding anchors
  // at relay's call into the barrier function and names the whole chain.
  FunctionSummary confined = make_fn("window_tick", {annot::kShardConfined});
  confined.calls.push_back(edge_to("relay"));
  FunctionSummary relay = make_fn("relay");
  relay.calls.push_back(edge_to("merge_totals", 44));
  FunctionSummary barrier = make_fn("merge_totals", {annot::kBarrierPhase});

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {confined}),
                                      make_tu("/repo/t2.cc", {relay}),
                                      make_tu("/repo/t3.cc", {barrier})});
  const auto found = findings_for(result, "analyzer-barrier-phase");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, relay.file);
  EXPECT_EQ(found[0].line, 44);
  EXPECT_NE(found[0].message.find("window_tick -> relay -> merge_totals"),
            std::string::npos)
      << found[0].message;
}

TEST(LinkBarrierPhase, GuardAtAnyHopClears) {
  FunctionSummary confined = make_fn("window_tick", {annot::kShardConfined});
  CallEdge guarded_edge = edge_to("relay");
  guarded_edge.guarded = true;  // in_window() checked before delegating
  confined.calls.push_back(guarded_edge);
  FunctionSummary relay = make_fn("relay");
  relay.calls.push_back(edge_to("merge_totals"));
  FunctionSummary barrier = make_fn("merge_totals", {annot::kBarrierPhase});

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {confined}),
                                      make_tu("/repo/t2.cc", {relay}),
                                      make_tu("/repo/t3.cc", {barrier})});
  EXPECT_TRUE(findings_for(result, "analyzer-barrier-phase").empty());
}

TEST(LinkBarrierPhase, LambdaAndColdEdgesDoNotPropagateContext) {
  FunctionSummary confined = make_fn("window_tick", {annot::kShardConfined});
  CallEdge deferred = edge_to("relay");
  deferred.in_lambda = true;  // runs later, outside this window
  confined.calls.push_back(deferred);
  FunctionSummary relay = make_fn("relay");
  relay.calls.push_back(edge_to("merge_totals"));
  FunctionSummary barrier = make_fn("merge_totals", {annot::kBarrierPhase});

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {confined}),
                                      make_tu("/repo/t2.cc", {relay}),
                                      make_tu("/repo/t3.cc", {barrier})});
  EXPECT_TRUE(findings_for(result, "analyzer-barrier-phase").empty());
}

TEST(LinkBarrierPhase, AnnotatedIntermediateStopsPropagation) {
  // A CLB_BARRIER_PHASE intermediate is itself barrier context — calls
  // it makes into other barrier functions are legitimate.
  FunctionSummary confined = make_fn("tick", {annot::kShardConfined});
  CallEdge g = edge_to("flush");
  g.guarded = true;
  confined.calls.push_back(g);
  FunctionSummary flush = make_fn("flush", {annot::kBarrierPhase});
  flush.calls.push_back(edge_to("merge"));
  FunctionSummary merge = make_fn("merge", {annot::kBarrierPhase});

  const LinkResult result = link_tus(
      {make_tu("/repo/t.cc", {confined, flush, merge})});
  EXPECT_TRUE(findings_for(result, "analyzer-barrier-phase").empty());
}

// --- Propagation: float-merge -----------------------------------------

TEST(LinkFloatMerge, CombineBlessesTransitively) {
  FunctionSummary combine = make_fn("combine", {annot::kCanonicalCombine});
  combine.calls.push_back(edge_to("fold_helper"));
  FunctionSummary helper = make_fn("fold_helper");
  helper.facts.push_back(
      make_fact(fact_kind::kFloatFold, "compound assignment"));

  const LinkResult clean = link_tus({make_tu("/repo/t1.cc", {combine}),
                                     make_tu("/repo/t2.cc", {helper})});
  EXPECT_TRUE(findings_for(clean, "analyzer-float-merge").empty());

  const LinkResult dirty = link_tus({make_tu("/repo/t2.cc", {helper})});
  EXPECT_EQ(findings_for(dirty, "analyzer-float-merge").size(), 1u);
}

// --- Propagation: unranked fan-out ------------------------------------

TEST(LinkUnrankedFanout, BareScheduleInHelperCalledFromLoop) {
  FunctionSummary fanout = make_fn("rebalance", {annot::kRankedFanout});
  CallEdge loop_edge = edge_to("send_one", 55);
  loop_edge.in_loop = true;
  fanout.calls.push_back(loop_edge);
  FunctionSummary helper = make_fn("send_one");
  helper.facts.push_back(
      make_fact(fact_kind::kBareSchedule, "EngineCore::schedule_at"));

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {fanout}),
                                      make_tu("/repo/t2.cc", {helper})});
  const auto found = findings_for(result, "analyzer-unranked-fanout");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].line, 55);
  EXPECT_NE(found[0].message.find("send_one"), std::string::npos);
}

TEST(LinkUnrankedFanout, PropagatesThroughHelperCycles) {
  // send_one <-> send_other form an SCC; the bare schedule in either
  // must surface at the fan-out loop.
  FunctionSummary fanout = make_fn("rebalance", {annot::kRankedFanout});
  CallEdge loop_edge = edge_to("send_one");
  loop_edge.in_loop = true;
  fanout.calls.push_back(loop_edge);
  FunctionSummary one = make_fn("send_one");
  one.calls.push_back(edge_to("send_other"));
  FunctionSummary other = make_fn("send_other");
  other.calls.push_back(edge_to("send_one"));
  other.facts.push_back(
      make_fact(fact_kind::kBareSchedule, "EngineCore::schedule_after"));

  const LinkResult result = link_tus(
      {make_tu("/repo/t.cc", {fanout, one, other})});
  EXPECT_EQ(findings_for(result, "analyzer-unranked-fanout").size(), 1u);
}

TEST(LinkUnrankedFanout, AnnotatedCalleeStopsPropagation) {
  // Warm-annotated engine internals legitimately contain schedule calls;
  // they must not leak "has a bare schedule" upward.
  FunctionSummary fanout = make_fn("rebalance", {annot::kRankedFanout});
  CallEdge loop_edge = edge_to("engine_step");
  loop_edge.in_loop = true;
  fanout.calls.push_back(loop_edge);
  FunctionSummary engine_step = make_fn("engine_step", {annot::kWarmPath});
  engine_step.facts.push_back(
      make_fact(fact_kind::kBareSchedule, "EngineCore::schedule_at"));

  const LinkResult result = link_tus(
      {make_tu("/repo/t.cc", {fanout, engine_step})});
  EXPECT_TRUE(findings_for(result, "analyzer-unranked-fanout").empty());
}

// --- Propagation: warm path -------------------------------------------

TEST(LinkWarmPath, FlagsTransitiveAllocationWithChain) {
  FunctionSummary fire = make_fn("fire_fast", {annot::kWarmPath});
  fire.calls.push_back(edge_to("stage"));
  FunctionSummary stage = make_fn("stage");
  stage.calls.push_back(edge_to("make_buffer"));
  FunctionSummary make_buffer = make_fn("make_buffer");
  make_buffer.facts.push_back(make_fact(fact_kind::kAlloc, "operator new"));

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {fire}),
                                      make_tu("/repo/t2.cc", {stage}),
                                      make_tu("/repo/t3.cc", {make_buffer})});
  const auto found = findings_for(result, "analyzer-warm-path");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, make_buffer.file);
  EXPECT_NE(found[0].message.find("fire_fast -> stage -> make_buffer"),
            std::string::npos)
      << found[0].message;
}

TEST(LinkWarmPath, AmortizedGrowthAndColdAllocationsAreExempt) {
  FunctionSummary fire = make_fn("fire_fast", {annot::kWarmPath});
  Fact amortized = make_fact(fact_kind::kAlloc, "vector::push_back");
  amortized.amortized = true;
  fire.facts.push_back(amortized);
  Fact cold = make_fact(fact_kind::kAlloc, "operator new", 31);
  cold.cold = true;
  fire.facts.push_back(cold);

  const LinkResult result = link_tus({make_tu("/repo/t.cc", {fire})});
  EXPECT_TRUE(findings_for(result, "analyzer-warm-path").empty());
}

TEST(LinkWarmPath, OwnBodyBlockingExemptButCalleeBlockingFlagged) {
  // run_round's own cv wait IS the round barrier (annotated, audited);
  // the same wait inside an unannotated callee is a stall on the warm
  // path.
  FunctionSummary run_round = make_fn("run_round", {annot::kWarmPath});
  run_round.facts.push_back(
      make_fact(fact_kind::kBlock, "condition_variable::wait"));
  const LinkResult own = link_tus({make_tu("/repo/t.cc", {run_round})});
  EXPECT_TRUE(findings_for(own, "analyzer-warm-path").empty());

  FunctionSummary warm = make_fn("step", {annot::kWarmPath});
  warm.calls.push_back(edge_to("log_sync"));
  FunctionSummary blocking = make_fn("log_sync");
  blocking.facts.push_back(make_fact(fact_kind::kBlock, "mutex::lock"));
  const LinkResult callee = link_tus({make_tu("/repo/t.cc", {warm, blocking})});
  EXPECT_EQ(findings_for(callee, "analyzer-warm-path").size(), 1u);
}

TEST(LinkWarmPath, LambdaEdgesAreDeferredNotWarm) {
  // schedule_at(cb) stores cb for later; constructing the closure is
  // warm, running it is a future step() — its own warmth comes from
  // step() being a warm root, not from this edge.
  FunctionSummary warm = make_fn("schedule_at", {annot::kWarmPath});
  CallEdge deferred = edge_to("expensive_callback");
  deferred.in_lambda = true;
  warm.calls.push_back(deferred);
  FunctionSummary cb = make_fn("expensive_callback");
  cb.facts.push_back(make_fact(fact_kind::kAlloc, "operator new"));

  const LinkResult result = link_tus({make_tu("/repo/t.cc", {warm, cb})});
  EXPECT_TRUE(findings_for(result, "analyzer-warm-path").empty());
}

TEST(LinkWarmPath, OverSboConstructionFlagged) {
  FunctionSummary warm = make_fn("schedule_at", {annot::kWarmPath});
  warm.facts.push_back(make_fact(
      fact_kind::kOverSbo, "capture of 80 bytes exceeds the 64-byte "
                           "SmallFunction budget"));
  const LinkResult result = link_tus({make_tu("/repo/t.cc", {warm})});
  const auto found = findings_for(result, "analyzer-warm-path");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].message.find("spills to the heap"), std::string::npos);
}

// --- Graph merging ----------------------------------------------------

TEST(LinkGraph, HeaderInlineFunctionsMergeAcrossTus) {
  // The same header-inline function seen by two TUs: annotations union,
  // and the copy with more context wins. Only one finding results.
  FunctionSummary decl_side = make_fn("helper");
  FunctionSummary def_side = make_fn("helper", {annot::kWarmPath});
  def_side.facts.push_back(make_fact(fact_kind::kAlloc, "operator new"));

  const LinkResult result = link_tus({make_tu("/repo/t1.cc", {decl_side}),
                                      make_tu("/repo/t2.cc", {def_side})});
  EXPECT_EQ(result.stats.functions, 1u);
  EXPECT_EQ(findings_for(result, "analyzer-warm-path").size(), 1u);
}

TEST(LinkGraph, FindingsAreSortedAndDeduped) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "operator new", 50));
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "malloc", 40));
  // The same TU summary added twice (e.g. duplicated cache entries)
  // must not double-report.
  const LinkResult result = link_tus({make_tu("/repo/t.cc", {warm}),
                                      make_tu("/repo/t.cc", {warm})});
  const auto found = findings_for(result, "analyzer-warm-path");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_LT(found[0].line, found[1].line);
}

// --- NOLINT and baseline filtering ------------------------------------

TEST(LinkSuppression, NolintOnFlaggedLineSuppresses) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "operator new", 30));
  LinkOptions options;
  options.read_line = [](const std::string&, int line, std::string* text) {
    if (line != 30) return false;
    // Assembled so the linter's stale-suppression scan does not read
    // this literal as a suppression of this test file itself.
    *text = std::string{"  grab_slot();  // NOLINT-CLOUDLB"} +
            "(warm-path)";
    return true;
  };
  const LinkResult result =
      link_tus({make_tu("/repo/t.cc", {warm})}, std::move(options));
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.stats.suppressed, 1u);
}

TEST(LinkSuppression, NolintWithFullCheckNameAndListSuppresses) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "operator new", 30));
  LinkOptions options;
  options.read_line = [](const std::string&, int, std::string* text) {
    *text = std::string{"x;  // NOLINT-CLOUDLB"} +
            "(shard-confined, analyzer-warm-path)";
    return true;
  };
  const LinkResult result =
      link_tus({make_tu("/repo/t.cc", {warm})}, std::move(options));
  EXPECT_TRUE(result.findings.empty());
}

TEST(LinkBaseline, SuffixMatchedEntryFiltersAndIsNotStale) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "operator new", 30));
  LinkOptions options;
  options.baseline.push_back(
      BaselineEntry{"analyzer-warm-path", "src/warm.cc", 30});
  options.baseline.push_back(
      BaselineEntry{"analyzer-warm-path", "src/other.cc", -1});
  const LinkResult result =
      link_tus({make_tu("/repo/t.cc", {warm})}, std::move(options));
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.stats.baselined, 1u);
  ASSERT_EQ(result.unmatched_baseline.size(), 1u);
  EXPECT_EQ(result.unmatched_baseline[0].file, "src/other.cc");
}

TEST(LinkBaseline, ParseAcceptsValidAndRejectsMalformed) {
  std::vector<BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(parse_baseline(
      R"({"schema_version":1,"findings":[)"
      R"({"check":"warm-path","file":"src/a.cc","line":12},)"
      R"({"check":"analyzer-barrier-phase","file":"src/b.cc"}]})",
      &entries, &error))
      << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].line, 12);
  EXPECT_EQ(entries[1].line, -1);

  entries.clear();
  EXPECT_FALSE(parse_baseline(R"({"findings":[]})", &entries, &error));
  EXPECT_FALSE(parse_baseline(R"({"schema_version":2,"findings":[]})",
                              &entries, &error));
  EXPECT_FALSE(
      parse_baseline(R"({"schema_version":1,"findings":[{"check":"x"}]})",
                     &entries, &error));
}

// --- Output rendering -------------------------------------------------

TEST(LinkOutput, TextFormatMatchesPerTuAnalyzer) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "operator new", 30));
  const LinkResult result = link_tus({make_tu("/repo/t.cc", {warm})});
  std::string text;
  EXPECT_EQ(print_link_result(result, &text), 1u);
  EXPECT_NE(text.find("/repo/src/warm.cc:30:5: warning:"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[analyzer-warm-path]"), std::string::npos);
  EXPECT_NE(text.find("cloudlb-analyzer --link: 1 finding(s)"),
            std::string::npos);
}

TEST(LinkOutput, SarifIsParseableAndRootRelative) {
  FunctionSummary warm = make_fn("warm", {annot::kWarmPath});
  warm.facts.push_back(make_fact(fact_kind::kAlloc, "say \"hi\"", 30));
  const LinkResult result = link_tus({make_tu("/repo/t.cc", {warm})});
  const std::string sarif = to_sarif(result, "/repo");

  // The emitted SARIF must itself survive our strict JSON parser.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(sarif, &doc, &error)) << error;
  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue* results = runs->array[0].find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 1u);
  const JsonValue* rule = results->array[0].find("ruleId");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->string_value, "analyzer-warm-path");

  // Root-relative URI: the /repo prefix is stripped.
  EXPECT_NE(sarif.find("\"uri\":\"src/warm.cc\""), std::string::npos)
      << sarif;
  // All five rules enumerated even though one fired.
  EXPECT_NE(sarif.find("analyzer-barrier-phase"), std::string::npos);
}

// --- JSON parser edge cases -------------------------------------------

TEST(JsonParser, RejectsFloatsAndUnknownEscapes) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(parse_json("{\"x\": 1.5}", &value, &error));
  EXPECT_FALSE(parse_json("{\"x\": \"\\q\"}", &value, &error));
  EXPECT_TRUE(parse_json("{\"x\": -3, \"y\": [true, false, null]}", &value,
                         &error))
      << error;
  const JsonValue* x = value.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->int_value, -3);
}

}  // namespace
}  // namespace cloudlb_analyzer

// Fixture: patterns analyzer-shard-confined must NOT flag — annotated
// window/barrier/combine entry points, their direct helpers, a confined
// record's own methods, and suppressed coordinator-side probes.
#include "cloudlb_mock.h"

namespace fixture {

struct CLB_SHARD_CONFINED ShardSegment {
  int tasks_executed = 0;
  long long busy_ns = 0;
  // A confined record's own methods touch their fields freely: the
  // record-level annotation confines the object, not each accessor.
  void reset() {
    tasks_executed = 0;
    busy_ns = 0;
  }
};

class Runtime {
 public:
  CLB_SHARD_CONFINED void on_task();
  CLB_BARRIER_PHASE void merge_segments();
  CLB_CANONICAL_COMBINE long long combined_busy() const;
  void coordinator_view();

  ShardSegment seg;
};

// Each effect annotation marks a legitimate accessor of confined state:
// window execution, the between-windows barrier, and the canonical
// combine that reads per-shard results.
CLB_SHARD_CONFINED void Runtime::on_task() { seg.tasks_executed += 1; }
CLB_BARRIER_PHASE void Runtime::merge_segments() { seg.reset(); }
long long Runtime::combined_busy() const { return seg.busy_ns; }

// A direct helper of an annotated entry point inherits its effect.
static void bump(ShardSegment& seg) { seg.tasks_executed += 1; }

CLB_SHARD_CONFINED void window_tick(Runtime& rt) { bump(rt.seg); }

// Suppression: the coordinator-side debug probe is deliberate.
void Runtime::coordinator_view() {
  (void)seg.tasks_executed;  // NOLINT-CLOUDLB(analyzer-shard-confined)
}

}  // namespace fixture

// Fixture: the cross-shard arm of analyzer-stale-handle — a plain
// EventHandle scheduled on one statically-known per-shard engine and
// cancelled through a different one acts on an unrelated slot.
#include "cloudlb_mock.h"

namespace fixture {

// The canonical bug: schedule on shard 0, cancel through shard 1.
void cross_shard_cancel(cloudlb::ShardedRuntimeHost& host) {
  cloudlb::EventHandle h = host.engine_of_shard(0).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  static_cast<void>(
      host.engine_of_shard(1).cancel(h));  // EXPECT-ANALYZER(stale-handle)
}

// Assignment (not just initialization) records the origin too.
void cross_pe_cancel(cloudlb::ShardedRuntimeHost& host,
                     cloudlb::EventHandle h) {
  h = host.engine_of_pe(2).schedule_after(cloudlb::SimTime::nanos(30),
                                          [] {});
  static_cast<void>(
      host.engine_of_pe(3).cancel(h));  // EXPECT-ANALYZER(stale-handle)
}

}  // namespace fixture

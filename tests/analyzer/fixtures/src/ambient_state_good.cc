// Fixture: no analyzer-ambient-state findings — simulation-sourced time
// plus the NOLINT-CLOUDLB escape hatch, which must silence the full
// check name exactly as the Python linter's syntax does.
#include "cloudlb_mock.h"

namespace fixture {

// Suppressed on the offending line: the one sanctioned ambient read.
unsigned seeded_probe() {
  std::random_device device;  // NOLINT-CLOUDLB(analyzer-ambient-state): fixture proves suppression works
  return device();
}

// Virtual time comes from the simulator, not the host.
cloudlb::SimTime virtual_now(const cloudlb::Simulator& sim) {
  return sim.now();
}

// Naming an ambient API in a string is not calling it.
const char* help_text() {
  return "do not use rand() or time(nullptr) in simulation code";
}

}  // namespace fixture

// Fixture: patterns analyzer-unranked-fanout must NOT flag — ranked and
// stamped scheduling in fan-out loops, bare calls outside loops or
// outside CLB_RANKED_FANOUT functions, and the single-engine facade.
#include "cloudlb_mock.h"

namespace fixture {

// The blessed fan-out: pin the legacy rank explicitly...
CLB_RANKED_FANOUT void resume_ranked(cloudlb::ShardedRuntimeHost& host,
                                     int pes) {
  for (int pe = 0; pe < pes; ++pe) {
    host.engine_of_pe(pe).schedule_at_ranked(cloudlb::SimTime::millis(2),
                                             cloudlb::SimTime::zero(),
                                             7ULL, [] {});
  }
}

// ...or inherit the scheduling context's stamp.
CLB_RANKED_FANOUT void resume_stamped(cloudlb::EngineCore& eng, int n) {
  for (int i = 0; i < n; ++i) {
    eng.schedule_at_stamped(cloudlb::SimTime::millis(2),
                            cloudlb::SimTime::zero(), [] {});
  }
}

// A single bare schedule outside any loop admits one order.
CLB_RANKED_FANOUT void kick_once(cloudlb::EngineCore& eng) {
  eng.schedule_after(cloudlb::SimTime::nanos(10), [] {});
}

// Unannotated callers are outside the contract's scope.
void legacy_loop(cloudlb::EngineCore& eng, int n) {
  for (int i = 0; i < n; ++i) {
    eng.schedule_after(cloudlb::SimTime::nanos(10), [] {});
  }
}

// The Simulator facade owns a single engine: its heap order IS the
// canonical order.
CLB_RANKED_FANOUT void facade_loop(cloudlb::Simulator& sim, int n) {
  for (int i = 0; i < n; ++i) {
    sim.schedule_after(cloudlb::SimTime::nanos(10), [] {});
  }
}

// Suppression: a deliberately order-insensitive broadcast.
CLB_RANKED_FANOUT void broadcast(cloudlb::EngineCore& eng, int n) {
  for (int i = 0; i < n; ++i) {
    eng.schedule_at(  // NOLINT-CLOUDLB(analyzer-unranked-fanout)
        cloudlb::SimTime::millis(3), [] {});
  }
}

}  // namespace fixture

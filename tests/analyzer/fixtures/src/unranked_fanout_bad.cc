// Fixture: analyzer-unranked-fanout must fire on bare EngineCore
// schedule calls inside the loops of a CLB_RANKED_FANOUT function —
// heap insertion order stamps the tie-break rank there, and that order
// varies with the shard count.
#include "cloudlb_mock.h"

namespace fixture {

// Fan-out across PE engines with the order-sensitive legacy call.
CLB_RANKED_FANOUT void resume_all(cloudlb::ShardedRuntimeHost& host,
                                  int pes) {
  for (int pe = 0; pe < pes; ++pe) {
    host.engine_of_pe(pe).schedule_at(  // EXPECT-ANALYZER(unranked-fanout)
        cloudlb::SimTime::millis(2), [] {});
  }
}

// schedule_after in a while-loop drain is the same defect.
CLB_RANKED_FANOUT void drain(cloudlb::EngineCore& eng, int backlog) {
  while (backlog > 0) {
    eng.schedule_after(  // EXPECT-ANALYZER(unranked-fanout)
        cloudlb::SimTime::nanos(50), [] {});
    --backlog;
  }
}

// Range-for fan-out over a shard id list.
CLB_RANKED_FANOUT void kick_shards(cloudlb::ShardedRuntimeHost& host,
                                   std::vector<int>& ids) {
  for (int id : ids) {
    host.engine_of_shard(id).schedule_at(  // EXPECT-ANALYZER(unranked-fanout)
        cloudlb::SimTime::millis(1), [] {});
  }
}

}  // namespace fixture
